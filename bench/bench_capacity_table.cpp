// bench_capacity_table — capacity-planning tables from a service sweep.
//
// Runs the route service as a sweep cell grid (SimulatorKind::kService):
// offered load x shard count x policy on a fixed scenario, each cell a
// full RouteServer epoch pipeline in deterministic replay mode. The
// per-cell route-latency quantiles come from merged LogHistograms, so the
// table answers the capacity question directly: at which offered load,
// with how many shards and which policy, does the served p99/p999 stay
// acceptable and the Wardrop gap keep shrinking? Alongside the
// human-readable table it writes BENCH_capacity.json, the
// machine-readable record future PRs diff against (all figures in it are
// deterministic — reruns on any host and thread count reproduce it
// byte-for-byte except the wall-clock "cells_per_second" field).
//
// Usage: bench_capacity_table [threads] [json_path]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

int run_main(int argc, char** argv) {
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::string json_path = "BENCH_capacity.json";
  if (argc > 1) {
    const int parsed = std::atoi(argv[1]);
    if (parsed < 0 || parsed > 1024) {
      std::cerr << "usage: bench_capacity_table [threads 0..1024] "
                   "[json_path]\n";
      return 2;
    }
    threads = static_cast<std::size_t>(parsed);
  }
  if (argc > 2) json_path = argv[2];
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  // The capacity grid: offered load from well below to well above one
  // query per client per epoch, serial vs moderately vs heavily sharded,
  // under the paper's two headline policies. Braess keeps the dynamics
  // libm-free so the JSON is reproducible bit-for-bit across platforms.
  ExperimentSpec spec;
  spec.simulator = SimulatorKind::kService;
  spec.scenarios = {"braess"};
  spec.policies = {named_policy("replicator"), named_policy("alpha:0.5")};
  spec.update_periods = {0.1};
  spec.workloads = {"closed-loop:500", "closed-loop:2000",
                    "closed-loop:8000"};
  spec.shard_counts = {1, 8, 64};
  spec.num_clients = 8'000;
  spec.replicas = 1;
  spec.horizon = 4.0;  // 40 epochs per cell
  spec.stop_gap = 1e-3;
  spec.base_seed = 7;

  const SweepRunner runner;
  std::cout << "capacity table: braess, T=0.1, 40 epochs/cell, "
            << spec.num_clients << " clients, threads=" << threads << "\n\n";
  const SweepResult result = runner.run(spec, threads);

  Table table({"policy", "load/epoch", "shards", "queries", "mig rate",
               "final gap", "p50", "p99", "p999"});
  std::size_t errors = 0;
  for (const CellResult& cell : result.cells) {
    if (!cell.ok) {
      ++errors;
      std::cerr << "cell " << cell.cell.index << " failed: " << cell.error
                << "\n";
      continue;
    }
    table.add_row({cell.cell.policy, cell.cell.workload,
                   fmt_int((long long)cell.cell.shards),
                   fmt_int((long long)cell.queries),
                   fmt(cell.migration_rate, 4), fmt_sci(cell.final_gap),
                   fmt(cell.latency.quantile(0.5), 4),
                   fmt(cell.latency.quantile(0.99), 4),
                   fmt(cell.latency.quantile(0.999), 4)});
  }
  table.print(std::cout);
  std::cout << "\n" << result.cells.size() << " cells in "
            << fmt(result.wall_seconds, 2) << " s ("
            << fmt(result.cells_per_second(), 1) << " cells/s), digest="
            << std::hex << cells_digest(result) << std::dec << "\n";
  if (errors > 0) return 1;

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "cannot open " << json_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"capacity_table\",\n"
       << "  \"config\": {\n"
       << "    \"scenario\": \"braess\",\n"
       << "    \"update_period\": 0.1,\n"
       << "    \"epochs_per_cell\": 40,\n"
       << "    \"clients\": " << spec.num_clients << ",\n"
       << "    \"seed\": " << spec.base_seed << ",\n"
       << "    \"hardware_threads\": " << std::thread::hardware_concurrency()
       << "\n  },\n"
       << "  \"digest\": \"" << std::hex << cells_digest(result) << std::dec
       << "\",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& cell = result.cells[i];
    json << "    {\"policy\": \"" << cell.cell.policy << "\", \"workload\": \""
         << cell.cell.workload << "\", \"shards\": " << cell.cell.shards
         << ", \"queries\": " << cell.queries
         << ", \"migration_rate\": " << fmt_exact(cell.migration_rate)
         << ", \"final_gap\": " << fmt_exact(cell.final_gap)
         << ", \"latency_p50\": " << fmt_exact(cell.latency.quantile(0.5))
         << ", \"latency_p99\": " << fmt_exact(cell.latency.quantile(0.99))
         << ", \"latency_p999\": " << fmt_exact(cell.latency.quantile(0.999))
         << "}" << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"cells_per_second\": " << result.cells_per_second() << "\n"
       << "}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace staleflow

int main(int argc, char** argv) { return staleflow::run_main(argc, argv); }
