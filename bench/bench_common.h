// Shared hygiene for the BENCH_*.json perf-trajectory records.
//
// The scaling benches exist to be diffed PR over PR, which only works if
// the records come from comparable hosts: a BENCH_service.json measured
// on one core silently replacing a 16-core record would read as a
// catastrophic regression. The guard here refuses to overwrite a
// multicore record from a single-core host unless the caller passes
// --force-bench-overwrite (e.g. deliberately re-baselining on a small
// box).
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>

#include "util/stopwatch.h"

namespace staleflow::bench {

/// Times one callable on the serving layer's monotonic clock
/// (util/stopwatch.h Stopwatch — the same steady_clock the trace
/// recorder stamps spans with), so bench wall numbers, epoch timings,
/// and offline trace quantiles are all directly comparable. The one
/// timing idiom benches should use; no ad-hoc chrono arithmetic.
template <typename Fn>
inline double timed_seconds(Fn&& fn) {
  const Stopwatch watch;
  std::forward<Fn>(fn)();
  return watch.seconds();
}

/// Strips --force-bench-overwrite from argv (the benches parse positional
/// arguments, so the flag may appear anywhere); returns whether it was
/// present.
inline bool take_force_overwrite(int& argc, char** argv) {
  bool force = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--force-bench-overwrite") {
      force = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return force;
}

/// `hardware_threads` recorded in an existing BENCH_*.json, or 0 when the
/// file is missing or carries no such field (legacy records).
inline unsigned recorded_hardware_threads(const std::string& json_path) {
  std::ifstream in(json_path);
  if (!in) return 0;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  const std::string key = "\"hardware_threads\":";
  const std::size_t at = contents.find(key);
  if (at == std::string::npos) return 0;
  std::size_t pos = at + key.size();
  while (pos < contents.size() && contents[pos] == ' ') ++pos;
  unsigned value = 0;
  while (pos < contents.size() && contents[pos] >= '0' &&
         contents[pos] <= '9') {
    value = value * 10 + static_cast<unsigned>(contents[pos] - '0');
    ++pos;
  }
  return value;
}

/// JSON rendering for scaling-derived figures (speedup, efficiency). On a
/// single-core host every thread count time-slices one core, so these
/// ratios measure scheduler noise, not scaling — report them as JSON
/// null there so trajectory diffs skip them instead of flagging a fake
/// regression. Multicore hosts get the plain number.
inline std::string json_scaling(double value) {
  if (std::thread::hardware_concurrency() <= 1) return "null";
  return std::to_string(value);
}

/// True (and prints why) when writing `json_path` from THIS host must be
/// refused: the existing record is multicore, this host is single-core,
/// and --force-bench-overwrite was not given.
inline bool refuse_single_core_overwrite(const std::string& json_path,
                                         bool force) {
  const unsigned current =
      std::max(1u, std::thread::hardware_concurrency());
  const unsigned recorded = recorded_hardware_threads(json_path);
  if (force || current > 1 || recorded <= 1) return false;
  std::cerr << "refusing to overwrite " << json_path << ": it records a "
            << recorded << "-core host, this host has 1 core — the "
            << "scaling columns would not be comparable. Pass "
            << "--force-bench-overwrite to re-baseline anyway.\n";
  return true;
}

}  // namespace staleflow::bench
