// E8 — Figure 1: the piecewise bound on the error terms.
//
// The heart of the Lemma 4 proof is inequality (10): for every edge e the
// error term U_e is dominated by the virtual-gain chunks assigned to it,
//   U_e <= - sum_{P,Q} V^e_PQ,   V^e_PQ = V_PQ / (4D) for e in P or Q.
// Figure 1 illustrates this decomposition. This bench regenerates the
// underlying data for a real phase: per-edge flows before/after, U_e, the
// chunk sum, and the per-pair V_PQ table, verifying the inequality and
// the pairwise identity sum_PQ V_PQ = V.
#include <cmath>
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

void run() {
  const Instance inst = braess(true);
  const Policy policy = make_uniform_linear_policy(inst);
  const double T = inst.safe_update_period(*policy.smoothness());
  std::cout << "instance: " << inst.describe() << "\npolicy:   "
            << policy.name() << "\nphase:    T = T_safe = " << T << "\n\n";

  // One phase from a skewed start.
  const FlowVector start =
      FlowVector::concentrated(inst, std::vector<std::size_t>{0});
  BulletinBoard board(inst);
  board.post(0.0, start.values());
  const PhaseRates rates(inst, policy, board);
  const std::vector<double> end = rates.transition(T).apply(start.values());
  const Matrix volumes = rates.migrated_volumes(start.values(), T);

  // Per-pair virtual gains V_PQ = Delta f_PQ * (l̂_Q - l̂_P).
  const std::size_t n = inst.path_count();
  Matrix v_pq(n, n);
  double v_total = 0.0;
  std::cout << "-- Table E8a: per-pair migrated volume and virtual gain\n\n";
  Table pair_table({"P -> Q", "l̂_P", "l̂_Q", "Delta f_PQ", "V_PQ"});
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (volumes(p, q) == 0.0) continue;
      const double lp = board.path_latency()[p];
      const double lq = board.path_latency()[q];
      v_pq(p, q) = volumes(p, q) * (lq - lp);
      v_total += v_pq(p, q);
      pair_table.add_row({"P" + std::to_string(p) + " -> P" +
                              std::to_string(q),
                          fmt(lp, 4), fmt(lq, 4), fmt(volumes(p, q), 6),
                          fmt_sci(v_pq(p, q))});
    }
  }
  pair_table.print(std::cout);

  const double v_direct = virtual_gain(inst, start.values(), end);
  std::cout << "\nsum_PQ V_PQ = " << fmt_sci(v_total)
            << "   V(f̂,f) via Eq.(8) = " << fmt_sci(v_direct)
            << "   |difference| = " << fmt_sci(std::abs(v_total - v_direct))
            << "\n\n";

  // Per-edge decomposition: U_e vs the chunk sum (Fig. 1 / Ineq. (10)).
  const std::vector<double> u = error_terms(inst, start.values(), end);
  const std::vector<double> fe_hat = edge_flows(inst, start.values());
  const std::vector<double> fe = edge_flows(inst, end);
  const double d = static_cast<double>(inst.max_path_length());

  std::cout << "-- Table E8b: per-edge error terms vs virtual-gain chunks\n"
            << "   (inequality (10): U_e <= -sum V^e_PQ)\n\n";
  Table edge_table({"edge", "f̂_e", "f_e", "U_e", "-sum V^e_PQ", "holds"});
  bool all_hold = true;
  for (std::size_t e = 0; e < inst.edge_count(); ++e) {
    double chunk_sum = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = 0; q < n; ++q) {
        if (v_pq(p, q) == 0.0) continue;
        const bool touches = inst.path(PathId{p}).uses(EdgeId{e}) ||
                             inst.path(PathId{q}).uses(EdgeId{e});
        if (touches) chunk_sum += v_pq(p, q) / (4.0 * d);
      }
    }
    const bool holds = u[e] <= -chunk_sum + 1e-12;
    all_hold = all_hold && holds;
    edge_table.add_row({"e" + std::to_string(e), fmt(fe_hat[e], 4),
                        fmt(fe[e], 4), fmt_sci(u[e]), fmt_sci(-chunk_sum),
                        fmt_bool(holds)});
  }
  edge_table.print(std::cout);

  const double delta_phi =
      potential(inst, end) - potential(inst, start.values());
  std::cout << "\nDelta Phi = " << fmt_sci(delta_phi)
            << "   V/2 = " << fmt_sci(0.5 * v_direct)
            << "   Lemma 4 (Delta Phi <= V/2): "
            << fmt_bool(delta_phi <= 0.5 * v_direct + 1e-12) << '\n';
  std::cout << "inequality (10) holds on every edge: " << fmt_bool(all_hold)
            << '\n';
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E8: the Figure 1 error-bound decomposition "
               "(paper Lemma 4, inequality (10)) ===\n\n";
  staleflow::run();
  std::cout << "\nShape check: every edge's error term is dominated by its\n"
               "virtual-gain chunks, the pairwise gains sum to V, and the\n"
               "phase's potential drop is at least |V|/2.\n";
  return 0;
}
