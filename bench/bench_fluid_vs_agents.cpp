// E10 — the fluid-limit assumption: the paper analyses infinitely many
// infinitesimal agents. This bench validates that abstraction by running
// the *finite*-population stochastic simulator against the fluid ODE and
// measuring the deviation as N grows (expected to shrink like ~1/sqrt(N)).
#include <cmath>
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

Instance pigou() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, constant(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

void run_instance(const std::string& name, const Instance& inst,
                  const Policy& policy, const FlowVector& start, double T,
                  double horizon) {
  std::cout << "-- Table E10 (" << name << "): deviation from the fluid "
            << "trajectory vs N\n\n";

  // Fluid reference trajectory at phase boundaries.
  const FluidSimulator fluid(inst, policy);
  std::vector<std::vector<double>> reference;
  SimulationOptions fluid_options;
  fluid_options.update_period = T;
  fluid_options.horizon = horizon;
  fluid_options.method = IntegrationMethod::kExact;
  fluid.run(start, fluid_options,
            [&](const PhaseInfo& info) {
              reference.emplace_back(info.flow_after.begin(),
                                     info.flow_after.end());
            });

  const AgentSimulator agents(inst, policy);
  Table table({"N", "max dev (3 seeds)", "dev*sqrt(N)"});
  std::vector<double> xs, ys;
  for (const std::size_t n : {100u, 1'000u, 10'000u, 100'000u}) {
    // Average over a few seeds to damp noise in the table.
    RunningStats max_devs;
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      std::size_t k = 0;
      double max_dev = 0.0;
      AgentSimOptions options;
      options.num_agents = n;
      options.update_period = T;
      options.horizon = horizon;
      options.seed = seed;
      agents.run(start, options,
                 [&](const PhaseInfo& info) {
                   if (k >= reference.size()) return;
                   for (std::size_t p = 0; p < info.flow_after.size(); ++p) {
                     const double d =
                         std::abs(info.flow_after[p] - reference[k][p]);
                     max_dev = std::max(max_dev, d);
                   }
                   ++k;
                 });
      max_devs.add(max_dev);
    }
    const double dev = max_devs.mean();
    table.add_row({fmt_int(static_cast<long long>(n)), fmt_sci(dev),
                   fmt(dev * std::sqrt(static_cast<double>(n)), 3)});
    xs.push_back(static_cast<double>(n));
    ys.push_back(std::max(dev, 1e-12));
  }
  table.print(std::cout);
  const PowerFit fit = fit_power(xs, ys);
  std::cout << "decay exponent of the deviation in N: "
            << fmt(fit.exponent, 2) << " (CLT predicts ~ -0.5)\n\n";
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E10: fluid limit vs finite populations ===\n\n";
  {
    const staleflow::Instance inst = staleflow::pigou();
    const staleflow::Policy policy =
        staleflow::make_uniform_linear_policy(inst);
    staleflow::run_instance("pigou", inst, policy,
                            staleflow::FlowVector::uniform(inst), 0.25, 4.0);
  }
  {
    const staleflow::Instance inst = staleflow::two_link_pulse(4.0);
    const staleflow::Policy policy =
        staleflow::make_uniform_linear_policy(inst);
    // Start off-equilibrium: the uniform flow is already the Wardrop
    // equilibrium of the pulse instance.
    staleflow::run_instance("pulse", inst, policy,
                            staleflow::FlowVector(inst, {0.8, 0.2}), 0.25,
                            4.0);
  }
  std::cout << "Shape check: the empirical process tracks the fluid ODE and\n"
               "the deviation decays like ~N^{-1/2}, justifying the paper's\n"
               "fluid-limit analysis.\n";
  return 0;
}
