// E2 — Theorem 2: with up-to-date information every selfish sampling +
// migration policy converges to the set of Wardrop equilibria.
//
// Runs the fresh-information fluid dynamics (Eq. (1)) for the paper's
// policy families on four networks and reports the final Wardrop gap, the
// potential above its optimum, whether the potential was monotone (the
// Lyapunov argument), and the time to reach gap <= 1e-3.
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

Instance pigou() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, constant(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

struct NamedInstance {
  std::string name;
  Instance instance;
};

void run() {
  Rng rng(2025);
  std::vector<NamedInstance> instances;
  instances.push_back({"pigou", pigou()});
  instances.push_back({"pulse(beta=4)", two_link_pulse(4.0)});
  instances.push_back({"braess", braess(true)});
  instances.push_back({"grid3x3", grid(3, 3, rng)});

  Table table({"instance", "policy", "final gap", "Phi - Phi*", "monotone",
               "t(gap<=1e-3)"});

  for (const auto& [name, inst] : instances) {
    const double phi_star = optimal_potential(inst);
    std::vector<Policy> policies;
    policies.push_back(make_uniform_linear_policy(inst));
    policies.push_back(make_replicator_policy(inst, 0.02));
    policies.push_back(make_logit_policy(inst, 5.0));

    for (const Policy& policy : policies) {
      const FluidSimulator sim(inst, policy);
      TrajectoryRecorder recorder(inst);
      SimulationOptions options;
      options.update_period = 0.0;  // fresh information
      options.horizon = 600.0;
      options.record_interval = 0.5;
      const SimulationResult result =
          sim.run(FlowVector::uniform(inst), options, recorder.observer());
      const auto hit = recorder.time_to_gap(1e-3);
      table.add_row(
          {name, policy.name(), fmt_sci(result.final_gap),
           fmt_sci(result.final_potential - phi_star),
           fmt_bool(recorder.max_potential_increase() < 1e-9),
           hit ? fmt(*hit, 1) : "DNF"});
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E2: convergence under up-to-date information "
               "(paper Theorem 2) ===\n\n";
  staleflow::run();
  std::cout << "\nShape check: every policy family drives the gap towards 0\n"
               "with a monotone potential, matching the Lyapunov argument.\n";
  return 0;
}
