// E9 — Section 2.2's smoothed best response: logit sampling with
// parameter c approximates best response as c grows. The paper notes that
// combined with a *smoothed better-response* migration rule this family
// fails to converge under staleness — smoothness of the migration rule,
// not the sampling rule, is what rescues convergence.
//
// Two sweeps on the pulse instance at a fixed T:
//   (a) logit(c) + constant migration (NOT alpha-smooth): oscillates, and
//       the amplitude grows with c towards the best-response amplitude.
//   (b) logit(c) + linear migration (alpha-smooth): settles for every c.
#include <cmath>
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

struct Outcome {
  /// How much the flow still moves per phase in the tail (0 = settled).
  double step_amp = 0.0;
  /// Mean max-latency-deviation over the tail (for a period-2 cycle this
  /// is the sustained oscillation cost; compare to the BR amplitude).
  double mean_tail_deviation = 0.0;
  double final_gap = 0.0;
  bool settled = false;
};

Outcome run_policy(const Instance& inst, Policy policy, double T) {
  const FluidSimulator sim(inst, policy);
  TrajectoryRecorder::Options rec_options;
  rec_options.store_flows = true;
  TrajectoryRecorder recorder(inst, rec_options);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 240.0;
  const SimulationResult result =
      sim.run(FlowVector(inst, {0.9, 0.1}), options, recorder.observer());

  Outcome outcome;
  const std::size_t window = recorder.samples().size() / 3;
  RunningStats tail_devs;
  for (std::size_t i = recorder.samples().size() - window;
       i < recorder.samples().size(); ++i) {
    tail_devs.add(recorder.samples()[i].max_deviation);
  }
  outcome.mean_tail_deviation = tail_devs.mean();
  outcome.final_gap = result.final_gap;
  const OscillationReport report = analyse_oscillation(
      recorder.flows(), recorder.flows().size() / 3, 1e-7);
  outcome.step_amp = report.step_amplitude;
  outcome.settled = report.settled;
  return outcome;
}

void run() {
  const double beta = 8.0;
  const Instance inst = two_link_pulse(beta);
  const Policy reference = make_uniform_linear_policy(inst);
  const double T = inst.safe_update_period(*reference.smoothness());

  // Best-response amplitude at this T, for reference.
  const double br_amplitude =
      beta * (1.0 - std::exp(-T)) / (2.0 * std::exp(-T) + 2.0);
  std::cout << "instance " << inst.describe() << ", T = " << T
            << " (safe for the linear rule)\n"
            << "best-response amplitude at this T: " << fmt(br_amplitude, 6)
            << "\n\n";

  std::cout << "-- Table E9: logit parameter sweep under staleness\n\n";
  Table table({"c", "migration", "alpha-smooth", "flow step amp",
               "mean tail deviation", "final gap", "settled"});
  for (const double c : {0.5, 2.0, 8.0, 32.0, 128.0}) {
    const Outcome naive = run_policy(
        inst, Policy(logit_sampling(c), constant_migration(1.0)), T);
    table.add_row({fmt(c, 1), "constant(1)", "no", fmt_sci(naive.step_amp),
                   fmt(naive.mean_tail_deviation, 6),
                   fmt_sci(naive.final_gap), fmt_bool(naive.settled)});
  }
  for (const double c : {0.5, 2.0, 8.0, 32.0, 128.0}) {
    const Outcome smooth = run_policy(
        inst,
        Policy(logit_sampling(c), linear_migration(inst.max_latency())), T);
    table.add_row({fmt(c, 1), "linear", "yes", fmt_sci(smooth.step_amp),
                   fmt(smooth.mean_tail_deviation, 6),
                   fmt_sci(smooth.final_gap), fmt_bool(smooth.settled)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E9: smoothed best response (logit sampling) under "
               "staleness (paper Section 2.2) ===\n\n";
  staleflow::run();
  std::cout << "\nShape check: with a non-smooth migration rule the logit\n"
               "dynamics keeps oscillating and its amplitude approaches the\n"
               "best-response amplitude as c grows; swapping in the\n"
               "alpha-smooth linear migration restores convergence for\n"
               "every c — Definition 2 is what matters.\n";
  return 0;
}
