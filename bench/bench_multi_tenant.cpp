// bench_multi_tenant — co-tenancy scaling of the multi-tenant registry.
//
// Hosts fleets of identical closed-loop tenants (distinct seeds) on one
// shared executor and measures, for every tenant count x thread count:
// aggregate epochs/sec, aggregate queries/sec, wall seconds and the
// worst per-tenant deterministic route p99 — the host's capacity table
// for co-scheduled serving. Per-tenant digests are asserted identical
// across thread counts (the isolation contract under load), and the
// machine-readable BENCH_tenant.json perf-trajectory record (including
// hardware_threads — scaling columns are only meaningful on multicore
// hosts) is written for future PRs to diff against.
//
// Usage: bench_multi_tenant [max_threads] [json_path]
//                           [--force-bench-overwrite]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

struct Point {
  std::size_t tenants = 0;
  std::size_t threads = 0;
  std::size_t rounds = 0;
  double wall_seconds = 0.0;
  double epochs_per_sec = 0.0;
  double qps = 0.0;
  double worst_route_p99 = 0.0;  // deterministic, max over tenants
};

int run_main(int argc, char** argv) {
  const bool force_overwrite = bench::take_force_overwrite(argc, argv);
  std::size_t max_threads = 8;
  std::string json_path = "BENCH_tenant.json";
  if (argc > 1) {
    const int parsed = std::atoi(argv[1]);
    if (parsed < 0 || parsed > 1024) {
      std::cerr << "usage: bench_multi_tenant [max_threads 0..1024] "
                   "[json_path]\n";
      return 2;
    }
    max_threads = static_cast<std::size_t>(parsed);
  }
  if (argc > 2) json_path = argv[2];
  if (max_threads == 0) {
    max_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  // Fixed per-tenant configuration: braess keeps the dynamics libm-free
  // (digests platform-stable) and off-equilibrium (migrations happen).
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  const WorkloadPtr workload = make_workload("closed-loop:20000");

  RouteServerOptions base;
  base.update_period = 0.05;
  base.epochs = 12;
  base.num_clients = 5'000;
  base.shards = 8;
  base.record_latency = false;  // the measured figures are wall-level

  const std::vector<std::size_t> tenant_counts = {1, 2, 4, 8};

  std::cout << "multi-tenant scaling: " << instance.describe() << "\n  "
            << policy.name() << " x " << workload->name() << ", "
            << base.epochs << " epochs, " << base.num_clients
            << " clients, " << base.shards << " shards per tenant"
            << " (hardware: " << std::thread::hardware_concurrency()
            << " cores)\n\n";

  Table table({"tenants", "threads", "rounds", "wall s", "epochs/s",
               "Mq/s", "worst p99"});
  std::vector<Point> points;

  for (const std::size_t tenants : tenant_counts) {
    // Per-tenant digests pinned at 1 thread, checked at every other
    // thread count: co-tenancy scaling must not touch a single byte of
    // any tenant's telemetry.
    std::map<std::string, std::uint64_t> reference_digests;

    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      TenantRegistry registry;
      for (std::size_t t = 0; t < tenants; ++t) {
        TenantOptions options;
        options.server = base;
        options.server.seed = 100 + t;
        registry.add("t" + std::to_string(t), instance, policy, *workload,
                     options);
      }
      Executor executor(threads);
      const MultiTenantResult result = registry.run(executor);

      Point point;
      point.tenants = tenants;
      point.threads = threads;
      point.rounds = result.rounds;
      point.wall_seconds = result.wall_seconds;
      point.epochs_per_sec =
          result.wall_seconds > 0.0
              ? static_cast<double>(result.total_epochs()) /
                    result.wall_seconds
              : 0.0;
      point.qps = result.wall_seconds > 0.0
                      ? static_cast<double>(result.total_queries()) /
                            result.wall_seconds
                      : 0.0;
      for (const TenantResult& tenant : result.tenants) {
        point.worst_route_p99 =
            std::max(point.worst_route_p99,
                     tenant.server.route_latency.empty()
                         ? 0.0
                         : tenant.server.route_latency.quantile(0.99));
        const std::uint64_t digest =
            telemetry_digest(tenant.server.epochs);
        auto [it, inserted] =
            reference_digests.emplace(tenant.name, digest);
        if (!inserted && it->second != digest) {
          std::cerr << "FAIL: tenant " << tenant.name
                    << " digest differs at " << threads
                    << " threads — isolation contract broken\n";
          return 1;
        }
      }
      points.push_back(point);

      table.add_row({std::to_string(tenants), std::to_string(threads),
                     std::to_string(point.rounds),
                     fmt(point.wall_seconds, 3),
                     fmt(point.epochs_per_sec, 1), fmt(point.qps / 1e6, 3),
                     fmt(point.worst_route_p99, 4)});
    }
  }
  table.print(std::cout);

  if (bench::refuse_single_core_overwrite(json_path, force_overwrite)) {
    return 1;
  }
  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "cannot open " << json_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"multi_tenant\",\n"
       << "  \"config\": {\n"
       << "    \"scenario\": \"braess\",\n"
       << "    \"policy\": \"" << policy.name() << "\",\n"
       << "    \"workload\": \"" << workload->name() << "\",\n"
       << "    \"epochs_per_tenant\": " << base.epochs << ",\n"
       << "    \"clients_per_tenant\": " << base.num_clients << ",\n"
       << "    \"shards_per_tenant\": " << base.shards << ",\n"
       << "    \"hardware_threads\": " << std::thread::hardware_concurrency()
       << "\n  },\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << "    {\"tenants\": " << p.tenants << ", \"threads\": "
         << p.threads << ", \"rounds\": " << p.rounds
         << ", \"wall_seconds\": " << p.wall_seconds
         << ", \"epochs_per_sec\": " << p.epochs_per_sec
         << ", \"qps\": " << p.qps
         << ", \"worst_route_p99\": " << p.worst_route_p99 << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace staleflow

int main(int argc, char** argv) { return staleflow::run_main(argc, argv); }
