// E1 — Section 3.2: best response under stale information oscillates.
//
// Reproduces the paper's closed-form analysis on the two-link instance
// l_1(x) = l_2(x) = max{0, beta (x - 1/2)}:
//   * the orbit started at f_1(0) = 1/(e^{-T}+1) has period 2,
//   * the latency deviation at phase starts is
//       X = beta (1 - e^{-T}) / (2 e^{-T} + 2),
//   * keeping X <= eps requires T <= ln((1+2eps/beta)/(1-2eps/beta)),
// and contrasts it with a smooth policy on the same instance, which
// settles instead of cycling.
#include <cmath>
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

void oscillation_amplitude_table(double beta) {
  std::cout << "-- Table E1a: best-response oscillation amplitude (beta="
            << beta << ")\n"
            << "   measured max latency deviation at phase starts vs the\n"
            << "   paper's closed form X = beta(1-e^-T)/(2e^-T+2)\n\n";
  Table table({"T", "X measured", "X predicted", "rel err", "period-2"});

  for (const double T : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0}) {
    const Instance inst = two_link_pulse(beta);
    const BestResponseSimulator sim(inst);
    const double f1 = 1.0 / (std::exp(-T) + 1.0);

    TrajectoryRecorder::Options rec_options;
    rec_options.store_flows = true;
    TrajectoryRecorder recorder(inst, rec_options);
    double measured = 0.0;
    const PhaseObserver recorder_obs = recorder.observer();
    BestResponseOptions options;
    options.update_period = T;
    options.horizon = 40.0 * T;
    sim.run(FlowVector(inst, {f1, 1.0 - f1}), options,
            [&](const PhaseInfo& info) {
              recorder_obs(info);
              measured = std::max(
                  measured,
                  max_latency_deviation(inst, info.flow_before, -1.0));
            });

    const double predicted =
        beta * (1.0 - std::exp(-T)) / (2.0 * std::exp(-T) + 2.0);
    const OscillationReport report =
        analyse_oscillation(recorder.flows(), 20, 1e-9);
    table.add_row({fmt(T, 3), fmt(measured, 6), fmt(predicted, 6),
                   fmt_sci(std::abs(measured - predicted) /
                           std::max(predicted, 1e-300)),
                   fmt_bool(report.period_two)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void staleness_threshold_table(double beta) {
  std::cout << "-- Table E1b: update period needed to keep the deviation\n"
            << "   below eps: T*(eps) = ln((1+2eps/beta)/(1-2eps/beta))\n"
            << "   (empirical: largest T on a fine grid with X <= eps)\n\n";
  Table table({"eps", "T* predicted", "T* empirical", "O(eps/beta)"});

  for (const double eps : {0.01, 0.02, 0.05, 0.1, 0.2}) {
    const double predicted = std::log((1.0 + 2.0 * eps / beta) /
                                      (1.0 - 2.0 * eps / beta));
    // Empirical scan: X(T) is increasing in T, bisect for X(T) = eps.
    double lo = 0.0, hi = 4.0;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      const double x = beta * (1.0 - std::exp(-mid)) /
                       (2.0 * std::exp(-mid) + 2.0);
      (x <= eps ? lo : hi) = mid;
    }
    // Verify by simulation at the bisected T.
    const Instance inst = two_link_pulse(beta);
    const BestResponseSimulator sim(inst);
    const double f1 = 1.0 / (std::exp(-lo) + 1.0);
    double measured = 0.0;
    BestResponseOptions options;
    options.update_period = lo;
    options.horizon = 30.0 * lo;
    sim.run(FlowVector(inst, {f1, 1.0 - f1}), options,
            [&](const PhaseInfo& info) {
              measured = std::max(
                  measured,
                  max_latency_deviation(inst, info.flow_before, -1.0));
            });
    table.add_row({fmt(eps, 3), fmt(predicted, 6), fmt(lo, 6),
                   fmt(4.0 * eps / beta, 6)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void smooth_contrast_table(double beta) {
  std::cout << "-- Table E1c: the smooth alternative on the same instance\n"
            << "   (uniform sampling + linear migration, same T values):\n"
            << "   the flow settles; no period-2 cycle survives.\n\n";
  Table table({"T", "T<=T_safe", "final gap", "tail amplitude", "settled"});

  const Instance inst = two_link_pulse(beta);
  const Policy policy = make_uniform_linear_policy(inst);
  const double t_safe = inst.safe_update_period(*policy.smoothness());

  for (const double T : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0}) {
    const FluidSimulator sim(inst, policy);
    TrajectoryRecorder::Options rec_options;
    rec_options.store_flows = true;
    TrajectoryRecorder recorder(inst, rec_options);
    SimulationOptions options;
    options.update_period = T;
    options.horizon = 300.0;
    const SimulationResult result = sim.run(
        FlowVector(inst, {0.9, 0.1}), options, recorder.observer());

    std::vector<double> deviations;
    for (const PhaseSample& s : recorder.samples()) {
      deviations.push_back(s.max_deviation);
    }
    const OscillationReport report =
        analyse_oscillation(recorder.flows(), 40, 1e-7);
    table.add_row({fmt(T, 3), fmt_bool(T <= t_safe + 1e-12),
                   fmt_sci(result.final_gap),
                   fmt_sci(tail_amplitude(deviations, 40)),
                   fmt_bool(report.settled)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E1: best-response oscillation under stale information "
               "(paper Section 3.2) ===\n\n";
  staleflow::oscillation_amplitude_table(8.0);
  staleflow::staleness_threshold_table(8.0);
  staleflow::smooth_contrast_table(8.0);
  std::cout << "Shape check: measured X matches the closed form to ~1e-10,\n"
               "best response cycles for every T > 0 while the smooth\n"
               "policy settles, and T*(eps) = O(eps/beta).\n";
  return 0;
}
