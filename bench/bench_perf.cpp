// E12 — engine micro-benchmarks (google-benchmark): the cost of the
// building blocks every experiment leans on.
#include <benchmark/benchmark.h>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

void BM_PathEnumerationGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Graph g(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (c + 1 < n) g.add_edge(VertexId{r * n + c}, VertexId{r * n + c + 1});
      if (r + 1 < n) g.add_edge(VertexId{r * n + c}, VertexId{(r + 1) * n + c});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        count_simple_paths(g, VertexId{0}, VertexId{n * n - 1}));
  }
}
BENCHMARK(BM_PathEnumerationGrid)->Arg(4)->Arg(6)->Arg(8);

void BM_FlowEvaluate(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Instance inst = uniform_parallel_links(m, 0.5, 1.0);
  const FlowVector f = FlowVector::uniform(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate(inst, f.values()));
  }
}
BENCHMARK(BM_FlowEvaluate)->Arg(8)->Arg(64)->Arg(512);

void BM_PotentialClosedForm(benchmark::State& state) {
  Rng rng(3);
  const Instance inst = grid(4, 4, rng);
  const FlowVector f = FlowVector::uniform(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(potential(inst, f.values()));
  }
}
BENCHMARK(BM_PotentialClosedForm);

void BM_PhaseRatesBuild(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Instance inst = uniform_parallel_links(m, 0.5, 1.0);
  const Policy policy = make_uniform_linear_policy(inst);
  BulletinBoard board(inst);
  board.post(0.0, FlowVector::uniform(inst).values());
  for (auto _ : state) {
    benchmark::DoNotOptimize(PhaseRates(inst, policy, board));
  }
}
BENCHMARK(BM_PhaseRatesBuild)->Arg(8)->Arg(32)->Arg(128);

void BM_ExpmTransition(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Instance inst = uniform_parallel_links(m, 0.5, 1.0);
  const Policy policy = make_uniform_linear_policy(inst);
  BulletinBoard board(inst);
  board.post(0.0, FlowVector::uniform(inst).values());
  const PhaseRates rates(inst, policy, board);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rates.transition(0.25));
  }
}
BENCHMARK(BM_ExpmTransition)->Arg(8)->Arg(32)->Arg(64);

void BM_Rk4Phase(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Instance inst = uniform_parallel_links(m, 0.5, 1.0);
  const Policy policy = make_uniform_linear_policy(inst);
  BulletinBoard board(inst);
  board.post(0.0, FlowVector::uniform(inst).values());
  const PhaseRates rates(inst, policy, board);
  const OdeRhs rhs = [&rates](double, std::span<const double> y,
                              std::span<double> dydt) { rates.rhs(y, dydt); };
  const RungeKutta4 integrator(0.25 / 32.0);
  const FlowVector start = FlowVector::uniform(inst);
  for (auto _ : state) {
    std::vector<double> f(start.values().begin(), start.values().end());
    integrator.integrate(rhs, 0.0, 0.25, f);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_Rk4Phase)->Arg(8)->Arg(32)->Arg(128);

void BM_FrankWolfeSolve(benchmark::State& state) {
  Rng rng(17);
  const Instance inst = random_parallel_links(
      static_cast<std::size_t>(state.range(0)), rng);
  FrankWolfeOptions options;
  options.gap_tolerance = 1e-8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_equilibrium(inst, options));
  }
}
BENCHMARK(BM_FrankWolfeSolve)->Arg(4)->Arg(16)->Arg(64);

void BM_AgentSimulator(benchmark::State& state) {
  const Instance inst = uniform_parallel_links(8, 0.5, 1.0);
  const Policy policy = make_uniform_linear_policy(inst);
  const AgentSimulator sim(inst, policy);
  AgentSimOptions options;
  options.num_agents = static_cast<std::size_t>(state.range(0));
  options.update_period = 0.25;
  options.horizon = 1.0;
  options.seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(FlowVector::uniform(inst), options));
  }
}
BENCHMARK(BM_AgentSimulator)->Arg(1'000)->Arg(10'000);

void BM_BestResponsePhase(benchmark::State& state) {
  const Instance inst = two_link_pulse(4.0);
  const BestResponseSimulator sim(inst);
  BestResponseOptions options;
  options.update_period = 0.1;
  options.horizon = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(FlowVector(inst, {0.7, 0.3}), options));
  }
}
BENCHMARK(BM_BestResponsePhase);

}  // namespace
}  // namespace staleflow

BENCHMARK_MAIN();
