// E15 (related work) — the price of anarchy of the instances in play.
//
// The paper frames itself against Roughgarden & Tardos [22]: selfish
// routing converges (that is this paper's contribution) but to an
// equilibrium whose social cost can exceed the optimum. This bench
// reproduces the classical PoA landmarks with the library's social-
// optimum machinery: Pigou and Braess at exactly 4/3, affine instances
// never above 4/3, and polynomial latencies of growing degree pushing
// the ratio towards the known Theta(d / ln d) growth.
#include <cmath>
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

Instance pigou_like(double degree) {
  // l1 = x^d vs l2 = 1: the worst-case Pigou family for degree d.
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, monomial(1.0, degree));
  b.set_latency(e2, constant(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

void run() {
  std::cout << "-- Table E15a: classical landmarks\n\n";
  {
    Table table({"instance", "eq cost", "opt cost", "PoA", "known value"});
    auto row = [&table](const std::string& name, const Instance& inst,
                        const std::string& known) {
      const PriceOfAnarchyResult poa = price_of_anarchy(inst);
      table.add_row({name, fmt(poa.equilibrium_cost, 6),
                     fmt(poa.optimum_cost, 6), fmt(poa.ratio, 6), known});
    };
    row("pigou (l=x vs 1)", pigou_like(1.0), "4/3");
    row("braess + shortcut", braess(true), "4/3");
    row("braess, no shortcut", braess(false), "1");
    row("chained braess k=3", chained_braess(3), "4/3");
    table.print(std::cout);
  }

  std::cout << "\n-- Table E15b: affine random instances stay below 4/3 "
               "(Roughgarden-Tardos)\n\n";
  {
    Table table({"seed", "links", "PoA", "<= 4/3"});
    for (int seed = 1; seed <= 8; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed));
      const auto links = static_cast<std::size_t>(3 + seed % 4);
      const Instance inst = random_parallel_links(links, rng, 1.0, 0.1, 2.0);
      const PriceOfAnarchyResult poa = price_of_anarchy(inst);
      table.add_row({fmt_int(seed), fmt_int(static_cast<long long>(links)),
                     fmt(poa.ratio, 6),
                     fmt_bool(poa.ratio <= 4.0 / 3.0 + 1e-6)});
    }
    table.print(std::cout);
  }

  std::cout << "\n-- Table E15c: polynomial degree sweep on the Pigou "
               "family (PoA grows with d)\n\n";
  {
    Table table({"degree d", "PoA", "exact (1-d(d+1)^{-(d+1)/d})^{-1}"});
    for (const double d : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      const PriceOfAnarchyResult poa = price_of_anarchy(pigou_like(d));
      const double exact =
          1.0 / (1.0 - d * std::pow(d + 1.0, -(d + 1.0) / d));
      table.add_row({fmt(d, 0), fmt(poa.ratio, 6), fmt(exact, 6)});
    }
    table.print(std::cout);
  }
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E15 (related work): price of anarchy of the library's "
               "instances ===\n\n";
  staleflow::run();
  std::cout << "\nShape check: Pigou/Braess hit exactly 4/3, affine\n"
               "instances never exceed it, and the degree-d Pigou family\n"
               "matches the known closed form — the adaptive agents of the\n"
               "main benches converge to exactly these equilibria.\n";
  return 0;
}
