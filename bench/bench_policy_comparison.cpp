// E11 — policy ablation: the replicator connection ([11]) and the cost of
// staleness across networks.
//
// Head-to-head of the paper's policy families (plus the naive baseline)
// on three networks under the bulletin-board model, and the "price of
// staleness": how the time to reach a small gap grows as T shrinks the
// allowed migration aggressiveness.
#include <cmath>
#include <iostream>
#include <optional>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

struct Outcome {
  std::optional<double> time_to_gap;
  double final_gap = 0.0;
  double tail_amp = 0.0;
};

Outcome run_fluid(const Instance& inst, const Policy& policy, double T,
                  double horizon, const FlowVector& start) {
  const FluidSimulator sim(inst, policy);
  TrajectoryRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = horizon;
  const SimulationResult result = sim.run(start, options,
                                          recorder.observer());
  Outcome outcome;
  outcome.time_to_gap = recorder.time_to_gap(1e-3);
  outcome.final_gap = result.final_gap;
  std::vector<double> deviations;
  for (const PhaseSample& s : recorder.samples()) {
    deviations.push_back(s.max_deviation);
  }
  outcome.tail_amp = tail_amplitude(
      deviations, std::max<std::size_t>(deviations.size() / 4, 2));
  return outcome;
}

Outcome run_best_response(const Instance& inst, double T, double horizon,
                          const FlowVector& start) {
  const BestResponseSimulator sim(inst);
  TrajectoryRecorder recorder(inst);
  BestResponseOptions options;
  options.update_period = T;
  options.horizon = horizon;
  const SimulationResult result = sim.run(start, options,
                                          recorder.observer());
  Outcome outcome;
  outcome.time_to_gap = recorder.time_to_gap(1e-3);
  outcome.final_gap = result.final_gap;
  std::vector<double> deviations;
  for (const PhaseSample& s : recorder.samples()) {
    deviations.push_back(s.max_deviation);
  }
  outcome.tail_amp = tail_amplitude(
      deviations, std::max<std::size_t>(deviations.size() / 4, 2));
  return outcome;
}

void head_to_head() {
  std::cout << "-- Table E11a: policies head-to-head under staleness\n"
            << "   (T = T_safe of the linear rule; horizon 400)\n\n";
  Rng rng(31);
  struct Net {
    std::string name;
    Instance inst;
  };
  std::vector<Net> nets;
  nets.push_back({"pulse(4)", two_link_pulse(4.0)});
  nets.push_back({"braess", braess(true)});
  nets.push_back({"grid3x3", grid(3, 3, rng)});

  Table table({"network", "policy", "t(gap<=1e-3)", "final gap",
               "tail amp"});
  for (auto& [name, inst] : nets) {
    const Policy linear_ref = make_uniform_linear_policy(inst);
    const double T = inst.safe_update_period(*linear_ref.smoothness());
    // Concentrated start (everything on each commodity's first path):
    // far from equilibrium, so differences between policies show.
    const FlowVector start = FlowVector::concentrated(
        inst, std::vector<std::size_t>(inst.commodity_count(), 0));

    struct Entry {
      std::string label;
      Outcome outcome;
    };
    std::vector<Entry> entries;
    entries.push_back({"uniform+linear",
                       run_fluid(inst, make_uniform_linear_policy(inst), T,
                                 400.0, start)});
    entries.push_back({"replicator",
                       run_fluid(inst, make_replicator_policy(inst, 0.02), T,
                                 400.0, start)});
    entries.push_back({"logit(8)+linear",
                       run_fluid(inst, make_logit_policy(inst, 8.0), T,
                                 400.0, start)});
    entries.push_back(
        {"best response", run_best_response(inst, T, 400.0, start)});

    for (const auto& [label, outcome] : entries) {
      table.add_row({name, label,
                     outcome.time_to_gap ? fmt(*outcome.time_to_gap, 1)
                                         : "DNF",
                     fmt_sci(outcome.final_gap), fmt_sci(outcome.tail_amp)});
    }
  }
  table.print(std::cout);
  std::cout << '\n';
}

void price_of_staleness() {
  std::cout << "-- Table E11b: price of staleness — the safe migration\n"
            << "   aggressiveness scales as alpha = 1/(4 D beta T), so the\n"
            << "   time to a small gap grows roughly linearly in T\n\n";
  const Instance inst = two_link_pulse(4.0);
  Table table({"T", "alpha = 1/(4DbT)", "t(gap<=1e-3)", "final gap"});
  for (const double T : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    // Pick the most aggressive alpha that keeps T safe.
    const double alpha =
        1.0 / (4.0 * static_cast<double>(inst.max_path_length()) *
               inst.max_slope() * T);
    const Policy policy = make_alpha_policy(alpha);
    const Outcome outcome = run_fluid(inst, policy, T, 800.0,
                                      FlowVector(inst, {0.9, 0.1}));
    table.add_row({fmt(T, 2), fmt(alpha, 4),
                   outcome.time_to_gap ? fmt(*outcome.time_to_gap, 1)
                                       : "DNF",
                   fmt_sci(outcome.final_gap)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E11: policy comparison and the price of staleness "
               "===\n\n";
  staleflow::head_to_head();
  staleflow::price_of_staleness();
  std::cout << "\nShape check: all smooth policies converge on every\n"
               "network while best response either oscillates (pulse) or\n"
               "converges only on instances with a dominant path; slowing\n"
               "the dynamics by 1/T (Corollary 5's requirement) stretches\n"
               "the convergence time accordingly.\n";
  return 0;
}
