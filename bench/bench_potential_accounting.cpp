// E4 + E5 — Lemma 3 (exact potential accounting) and Lemma 4 (the true
// potential gain is at least half the virtual gain when T is safe).
//
// For each simulated phase we print both sides of the identity
//   Phi(f) - Phi(f̂) = sum_e U_e + V(f̂, f)
// and the Lemma 4 check Delta Phi <= V/2 <= 0; then a summary across
// several instances, and the contrast run at an unsafe period where the
// inequality's premise is violated.
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

void per_phase_table() {
  const Instance inst = braess(true);
  const Policy policy = make_uniform_linear_policy(inst);
  const double t_safe = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);

  std::cout << "-- Table E4: per-phase accounting on " << inst.describe()
            << "\n   policy " << policy.name() << ", T = T_safe = " << t_safe
            << "\n\n";

  Table table({"phase", "Phi before", "Phi after", "dPhi", "V", "sum U_e",
               "identity resid", "dPhi<=V/2"});
  AccountingRecorder recorder(inst);
  const PhaseObserver acc_obs = recorder.observer();
  std::size_t printed = 0;
  SimulationOptions options;
  options.update_period = t_safe;
  options.horizon = 120.0 * t_safe;
  sim.run(FlowVector::concentrated(inst, std::vector<std::size_t>{0}),
          options, [&](const PhaseInfo& info) {
            acc_obs(info);
            if (printed < 12 || info.index % 20 == 0) {
              const PhaseAccounting& acc = recorder.records().back();
              table.add_row({fmt_int(static_cast<long long>(info.index)),
                             fmt(acc.potential_before, 8),
                             fmt(acc.potential_after, 8),
                             fmt_sci(acc.delta_phi), fmt_sci(acc.virtual_gain),
                             fmt_sci(acc.error_sum),
                             fmt_sci(acc.identity_residual),
                             fmt_bool(acc.lemma4_holds)});
              ++printed;
            }
          });
  table.print(std::cout);
  std::cout << "\nSummary over " << recorder.records().size()
            << " phases: max identity residual = "
            << fmt_sci(recorder.max_identity_residual())
            << ", Lemma 4 violations = " << recorder.lemma4_violations()
            << ", max potential rise = " << fmt_sci(recorder.max_delta_phi())
            << "\n\n";
}

void summary_across_instances() {
  std::cout << "-- Table E5: Lemma 3/4 summary across instances and "
               "periods\n\n";
  Rng rng(7);
  struct Row {
    std::string name;
    Instance inst;
  };
  std::vector<Row> rows;
  rows.push_back({"pulse(8)", two_link_pulse(8.0)});
  rows.push_back({"braess", braess(true)});
  rows.push_back({"grid3x3", grid(3, 3, rng)});
  rows.push_back({"bottleneck", shared_bottleneck(0.5)});

  Table table({"instance", "policy", "T/T_safe", "phases", "max resid",
               "L4 violations", "max dPhi rise"});
  for (auto& [name, inst] : rows) {
    for (const double fraction : {0.5, 1.0, 8.0}) {
      const Policy policy = make_uniform_linear_policy(inst);
      const double t_safe = inst.safe_update_period(*policy.smoothness());
      const FluidSimulator sim(inst, policy);
      AccountingRecorder recorder(inst);
      SimulationOptions options;
      options.update_period = fraction * t_safe;
      options.horizon = std::min(200.0 * options.update_period, 100.0);
      sim.run(FlowVector::uniform(inst), options, recorder.observer());
      table.add_row(
          {name, "uniform+linear", fmt(fraction, 2),
           fmt_int(static_cast<long long>(recorder.records().size())),
           fmt_sci(recorder.max_identity_residual()),
           fmt_int(static_cast<long long>(recorder.lemma4_violations())),
           fmt_sci(recorder.max_delta_phi())});
    }
  }
  // The naive baseline at a large T: Lemma 4's premise fails and the
  // potential can rise within a phase.
  const Instance pulse = two_link_pulse(16.0);
  const Policy naive = make_naive_better_response_policy();
  const FluidSimulator sim(pulse, naive);
  AccountingRecorder recorder(pulse);
  SimulationOptions options;
  options.update_period = 2.0;
  options.horizon = 60.0;
  sim.run(FlowVector(pulse, {0.95, 0.05}), options, recorder.observer());
  table.add_row({"pulse(16)", "naive BR", "n/a",
                 fmt_int(static_cast<long long>(recorder.records().size())),
                 fmt_sci(recorder.max_identity_residual()),
                 fmt_int(static_cast<long long>(recorder.lemma4_violations())),
                 fmt_sci(recorder.max_delta_phi())});
  table.print(std::cout);
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E4/E5: potential accounting (paper Lemmas 3 and 4) "
               "===\n\n";
  staleflow::per_phase_table();
  staleflow::summary_across_instances();
  std::cout << "\nShape check: the Lemma 3 identity holds to ~1e-13 in every\n"
               "phase; smooth policies at T <= T_safe never violate\n"
               "dPhi <= V/2, while the naive baseline does.\n";
  return 0;
}
