// E7 — Theorem 7: proportional sampling (the replicator policy) reaches
// weak approximate equilibria in O( 1/(eps T) * (l_max/delta)^2 ) bad
// rounds — *independent of the number of paths* m, unlike Theorem 6.
//
// Same sweeps as E6 but counting weak (delta, eps)-violations, plus the
// head-to-head m-sweep of both samplers that shows uniform pays the
// factor m while proportional stays flat.
#include <cmath>
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

Instance spread_links(std::size_t m) {
  return parallel_links(m, [m](std::size_t j) {
    return affine(0.5 * static_cast<double>(j) / static_cast<double>(m),
                  1.0);
  });
}

/// Start: most demand on the worst link, the rest spread evenly (the
/// replicator cannot discover paths with zero flow, so the start must be
/// interior).
FlowVector interior_start(const Instance& inst) {
  const std::size_t m = inst.path_count();
  std::vector<double> f(m, 0.1 / static_cast<double>(m - 1));
  f[m - 1] = 0.9;
  return FlowVector(inst, std::move(f));
}

struct Measurement {
  std::size_t bad_rounds = 0;
  std::size_t last_bad = 0;
  double bound = 0.0;
  double T = 0.0;
};

Measurement measure(std::size_t m, double delta, double eps, bool uniform) {
  const Instance inst = spread_links(m);
  const Policy policy = uniform ? make_uniform_linear_policy(inst)
                                : make_replicator_policy(inst);
  const double T =
      std::min(inst.safe_update_period(*policy.smoothness()), 1.0);

  const FluidSimulator sim(inst, policy);
  RoundCounter counter(inst, RoundCounter::Mode::kWeak, delta, eps);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 1e9;
  options.max_phases = 20'000;
  options.stop_gap = 1e-10;
  options.step_size = T / 16.0;
  sim.run(interior_start(inst), options, counter.observer());

  Measurement result;
  result.bad_rounds = counter.bad_rounds();
  result.last_bad = counter.last_bad_round();
  result.T = T;
  result.bound = 1.0 / (eps * T) * (inst.max_latency() / delta) *
                 (inst.max_latency() / delta);
  return result;
}

void sweep_m_comparison() {
  std::cout << "-- Table E7a: weak bad rounds vs m — proportional vs "
               "uniform (delta=0.10, eps=0.05)\n\n";
  Table table({"m", "proportional", "uniform", "Thm7 bound",
               "prop/bound"});
  std::vector<double> xs, prop_ys, unif_ys;
  for (const std::size_t m : {2u, 4u, 8u, 16u, 32u}) {
    const Measurement prop = measure(m, 0.10, 0.05, /*uniform=*/false);
    const Measurement unif = measure(m, 0.10, 0.05, /*uniform=*/true);
    table.add_row(
        {fmt_int(static_cast<long long>(m)),
         fmt_int(static_cast<long long>(prop.bad_rounds)),
         fmt_int(static_cast<long long>(unif.bad_rounds)),
         fmt_sci(prop.bound),
         fmt_sci(static_cast<double>(prop.bad_rounds) / prop.bound)});
    xs.push_back(static_cast<double>(m));
    prop_ys.push_back(
        static_cast<double>(std::max<std::size_t>(prop.bad_rounds, 1)));
    unif_ys.push_back(
        static_cast<double>(std::max<std::size_t>(unif.bad_rounds, 1)));
  }
  table.print(std::cout);
  const PowerFit prop_fit = fit_power(xs, prop_ys);
  const PowerFit unif_fit = fit_power(xs, unif_ys);
  std::cout << "m-exponent: proportional " << fmt(prop_fit.exponent, 2)
            << " (Theorem 7 predicts ~0), uniform "
            << fmt(unif_fit.exponent, 2) << " (Theorem 6 pays up to 1)\n\n";
}

void sweep_delta() {
  std::cout << "-- Table E7b: weak bad rounds vs delta (m=8, eps=0.05)\n\n";
  Table table({"delta", "bad rounds", "Thm7 bound", "measured/bound"});
  std::vector<double> xs, ys;
  for (const double delta : {0.05, 0.10, 0.20, 0.40}) {
    const Measurement r = measure(8, delta, 0.05, /*uniform=*/false);
    table.add_row({fmt(delta, 2),
                   fmt_int(static_cast<long long>(r.bad_rounds)),
                   fmt_sci(r.bound),
                   fmt_sci(static_cast<double>(r.bad_rounds) / r.bound)});
    xs.push_back(delta);
    ys.push_back(static_cast<double>(std::max<std::size_t>(r.bad_rounds, 1)));
  }
  table.print(std::cout);
  const PowerFit fit = fit_power(xs, ys);
  std::cout << "delta-exponent: " << fmt(fit.exponent, 2)
            << " (bound predicts >= -2)\n\n";
}

void sweep_eps() {
  std::cout << "-- Table E7c: weak bad rounds vs eps (m=8, delta=0.10)\n\n";
  Table table({"eps", "bad rounds", "Thm7 bound", "measured/bound"});
  std::vector<double> xs, ys;
  for (const double eps : {0.02, 0.05, 0.10, 0.20}) {
    const Measurement r = measure(8, 0.10, eps, /*uniform=*/false);
    table.add_row({fmt(eps, 2),
                   fmt_int(static_cast<long long>(r.bad_rounds)),
                   fmt_sci(r.bound),
                   fmt_sci(static_cast<double>(r.bad_rounds) / r.bound)});
    xs.push_back(eps);
    ys.push_back(static_cast<double>(std::max<std::size_t>(r.bad_rounds, 1)));
  }
  table.print(std::cout);
  const PowerFit fit = fit_power(xs, ys);
  std::cout << "eps-exponent: " << fmt(fit.exponent, 2)
            << " (bound predicts >= -1)\n\n";
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E7: proportional sampling convergence time "
               "(paper Theorem 7) ===\n\n";
  staleflow::sweep_m_comparison();
  staleflow::sweep_delta();
  staleflow::sweep_eps();
  std::cout << "Shape check: the proportional sampler's bad-round count is\n"
               "flat in m (Theorem 7's |P|-free bound) while the uniform\n"
               "sampler's count grows with m; both shrink in delta and eps\n"
               "and stay below the respective bounds.\n";
  return 0;
}
