// E13 — the conclusion's open problem and [10]'s answer, as an ablation.
//
// The paper's Corollary 5 ties the safe migration aggressiveness to the
// maximum *slope* beta, which blows up for steep (high-degree polynomial)
// latencies; its conclusion points to the follow-up policy of [10] whose
// speed depends on the *elasticity* instead. We compare:
//   * linear migration (alpha = 1/l_max, Corollary 5 machinery) and
//   * relative-slack migration (extension; scale-free)
// on parallel links with monomial latencies c*x^d as the degree d grows.
// The slope bound grows like c*d while the elasticity is exactly d, so
// the linear rule slows down far more than the relative rule.
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

Instance monomial_links(double degree) {
  // Four links with distinct coefficients so the equilibrium is interior.
  return parallel_links(4, [degree](std::size_t j) {
    return monomial(1.0 + 0.5 * static_cast<double>(j), degree);
  });
}

void run() {
  Table table({"degree d", "beta", "elasticity", "policy", "T", "t(gap<=1e-3)",
               "final gap"});
  for (const double degree : {1.0, 2.0, 4.0, 8.0}) {
    const Instance inst = monomial_links(degree);
    const double elasticity = max_elasticity(inst.latency(EdgeId{0}));

    std::vector<double> start(4, 0.1 / 3.0);
    start[3] = 0.9;

    struct Candidate {
      std::string label;
      Policy policy;
    };
    std::vector<Candidate> candidates;
    candidates.push_back(
        {"linear (Cor.5)", make_uniform_linear_policy(inst)});
    candidates.push_back(
        {"relative-slack", make_relative_slack_policy(0.25)});

    for (auto& [label, policy] : candidates) {
      const double T = inst.safe_update_period(*policy.smoothness());
      const FluidSimulator sim(inst, policy);
      TrajectoryRecorder recorder(inst);
      SimulationOptions options;
      options.update_period = T;
      options.horizon = 20'000.0;
      options.stop_gap = 1e-7;
      const SimulationResult result =
          sim.run(FlowVector(inst, start), options, recorder.observer());
      const auto hit = recorder.time_to_gap(1e-3);
      table.add_row({fmt(degree, 0), fmt(inst.max_slope(), 1),
                     fmt(elasticity, 1), label, fmt(T, 4),
                     hit ? fmt(*hit, 1) : "DNF",
                     fmt_sci(result.final_gap)});
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E13 (extension): slope-bound vs elasticity-style "
               "policies on steep latencies ===\n\n";
  staleflow::run();
  std::cout
      << "\nShape check: as the degree grows, beta grows with it and the\n"
         "linear rule's convergence time inflates, while the relative-\n"
         "slack rule's time stays comparatively flat — the elasticity,\n"
         "not the slope, is what limits it (paper conclusion / [10]).\n";
  return 0;
}
