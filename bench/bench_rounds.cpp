// E14 (extension) — synchronous rounds: staleness is not the only enemy.
//
// Mitzenmacher's model is round-based; in the synchronous fluid limit the
// flow evolves by the map f' = f + lambda * G(board) f. Two parameters
// now control stability: the activation probability lambda (synchrony
// overshoot) and the board cadence R (staleness). We sweep both for the
// smooth policy and for better response on the pulse instance and report
// the settled/oscillating phase diagram — the continuous model's
// guarantees survive for gentle lambda, while lambda -> 1 reintroduces
// oscillation even with a fresh board when the policy is not smooth.
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

struct Cell {
  double final_gap = 0.0;
  double tail_amp = 0.0;
};

Cell run_cell(const Instance& inst, const Policy& policy, double lambda,
              std::size_t cadence) {
  const RoundSimulator sim(inst, policy);
  RoundSimOptions options;
  options.activation_probability = lambda;
  options.rounds_per_update = cadence;
  options.total_rounds = 4'000;
  std::vector<double> gaps;
  const RoundSimResult result =
      sim.run(FlowVector(inst, {0.8, 0.2}), options,
              [&](const RoundInfo& info) {
                gaps.push_back(wardrop_gap(inst, info.flow_after));
              });
  Cell cell;
  cell.final_gap = result.final_gap;
  cell.tail_amp = tail_amplitude(gaps, 500);
  return cell;
}

void run() {
  const Instance inst = two_link_pulse(8.0);
  const Policy smooth = make_uniform_linear_policy(inst);
  const Policy naive = make_naive_better_response_policy();

  std::cout << "instance: " << inst.describe() << "\n\n"
            << "-- Table E14: settled (tail amplitude < 1e-6) in the\n"
            << "   (lambda, board cadence R) plane, 4000 rounds\n\n";

  Table table({"policy", "lambda", "R=1 (fresh)", "R=4", "R=16", "R=64"});
  for (const auto* entry : {&smooth, &naive}) {
    const bool is_smooth = entry == &smooth;
    for (const double lambda : {0.05, 0.25, 1.0}) {
      std::vector<std::string> row{is_smooth ? "smooth" : "better-resp",
                                   fmt(lambda, 2)};
      for (const std::size_t cadence : {1u, 4u, 16u, 64u}) {
        const Cell cell = run_cell(inst, *entry, lambda, cadence);
        row.push_back(cell.tail_amp < 1e-6
                          ? "settled"
                          : "osc(" + fmt_sci(cell.tail_amp, 1) + ")");
      }
      table.add_row(row);
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E14 (extension): synchronous-rounds stability map "
               "===\n\n";
  staleflow::run();
  std::cout
      << "\nShape check: lambda * R plays the role of the continuous\n"
         "model's T. Better response oscillates at EVERY stale cadence\n"
         "(R > 1), even with 5% activation — matching Section 3.2's\n"
         "'no T > 0 is safe'. The smooth policy tolerates a much larger\n"
         "effective staleness before destabilising (its boundary sits\n"
         "well beyond the conservative T_safe), and with a fresh board\n"
         "both dynamics settle — it is the combination of staleness and\n"
         "aggressive reaction that breaks convergence.\n";
  return 0;
}
