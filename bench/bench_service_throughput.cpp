// bench_service_throughput — queries/sec scaling of the route service on
// the execution layer.
//
// Serves two fixed workloads on 1..N worker threads and reports
// throughput, latency quantiles, speedup over single-threaded and
// parallel efficiency:
//   - closed-loop: the PR-2/PR-3 baseline shape (uniform batches, no
//     sub-batch splitting at the default threshold) — comparable against
//     the historical BENCH_service.json trajectory;
//   - bursty: skewed on/off load with the sub-batch split threshold
//     forced low, exercising deterministic work-splitting and the
//     pipelined epoch snapshot build — the configuration the execution
//     layer exists for.
// Alongside the human-readable tables it writes BENCH_service.json, the
// machine-readable perf-trajectory record future PRs diff against. The
// dynamics outcome (digest) is asserted identical across thread counts
// for every workload — the determinism contract under load.
//
// Usage: bench_service_throughput [max_threads] [json_path]
//                                 [--force-bench-overwrite]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

struct ScalingPoint {
  std::size_t threads = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double wall_seconds = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
};

struct WorkloadRun {
  std::string name;
  std::size_t sub_batch_queries = 0;
  std::vector<ScalingPoint> points;
};

int run_main(int argc, char** argv) {
  const bool force_overwrite = bench::take_force_overwrite(argc, argv);
  std::size_t max_threads = 8;
  std::string json_path = "BENCH_service.json";
  if (argc > 1) {
    const int parsed = std::atoi(argv[1]);
    if (parsed < 0 || parsed > 1024) {
      std::cerr << "usage: bench_service_throughput [max_threads 0..1024] "
                   "[json_path]\n";
      return 2;
    }
    max_threads = static_cast<std::size_t>(parsed);
  }
  if (argc > 2) json_path = argv[2];
  if (max_threads == 0) {
    max_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  // Fixed configuration: a 32-link instance keeps the per-query CDF search
  // nontrivial; both workloads answer the same queries at every thread
  // count (closed loop by construction, bursty by the replay contract).
  Rng scenario_rng(7);
  const Instance instance = random_parallel_links(32, scenario_rng);
  const Policy policy = make_replicator_policy(instance);

  RouteServerOptions options;
  options.update_period = 0.05;
  options.epochs = 15;
  options.num_clients = 50'000;
  options.shards = 32;
  options.seed = 42;
  // Measure the execution layer at full depth: locality placement is
  // always on, and pipelining overlaps each epoch's telemetry tail with
  // the next epoch's serving (digest-checked below — the contract says
  // pipelining may only move wall clock, never values).
  options.pipeline = true;

  std::cout << "service throughput: " << instance.describe() << "\n  "
            << policy.name() << " x " << options.epochs << " epochs, "
            << options.num_clients << " clients, " << options.shards
            << " shards (hardware: " << std::thread::hardware_concurrency()
            << " cores)\n";

  // The two measured shapes. The bursty peaks offer 4e6 * 0.05 = 200k
  // queries (6250 per shard), so the forced 2048-query threshold splits
  // every peak shard into ~4 sub-batches; the closed-loop run keeps the
  // default threshold (no splitting) as the historical baseline.
  std::vector<WorkloadRun> runs;
  runs.push_back({"closed-loop:200000", 16384, {}});
  runs.push_back({"bursty:4000000,200000,3,2", 2048, {}});

  for (WorkloadRun& run : runs) {
    const WorkloadPtr workload = make_workload(run.name);
    options.sub_batch_queries = run.sub_batch_queries;

    std::cout << "\n  workload " << run.name << " (sub-batch "
              << run.sub_batch_queries << ")\n\n";
    Table table({"threads", "Mq/s", "p50 us", "p99 us", "speedup", "eff"});
    std::uint64_t reference_digest = 0;

    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      options.threads = threads;
      RouteServer server(instance, policy, *workload);
      const RouteServerResult result =
          server.run(FlowVector::uniform(instance), options);

      const std::uint64_t digest = telemetry_digest(result.epochs);
      if (threads == 1) {
        reference_digest = digest;
      } else if (digest != reference_digest) {
        std::cerr << "FAIL: digest differs at " << threads
                  << " threads — determinism contract broken\n";
        return 1;
      }

      ScalingPoint point;
      point.threads = threads;
      point.qps = result.queries_per_second;
      point.p50_us = result.p50_us;
      point.p99_us = result.p99_us;
      point.wall_seconds = result.wall_seconds;
      point.speedup =
          run.points.empty() ? 1.0 : point.qps / run.points.front().qps;
      point.efficiency = point.speedup / static_cast<double>(threads);
      run.points.push_back(point);

      table.add_row({std::to_string(threads), fmt(point.qps / 1e6, 3),
                     fmt(point.p50_us, 2), fmt(point.p99_us, 2),
                     fmt(point.speedup, 2), fmt(point.efficiency, 2)});
    }
    table.print(std::cout);
  }

  if (bench::refuse_single_core_overwrite(json_path, force_overwrite)) {
    return 1;
  }
  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "cannot open " << json_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"service_throughput\",\n"
       << "  \"config\": {\n"
       << "    \"scenario\": \"random-links-32\",\n"
       << "    \"policy\": \"" << policy.name() << "\",\n"
       << "    \"epochs\": " << options.epochs << ",\n"
       << "    \"clients\": " << options.num_clients << ",\n"
       << "    \"shards\": " << options.shards << ",\n"
       << "    \"pipeline\": true,\n"
       << "    \"hardware_threads\": " << std::thread::hardware_concurrency()
       << "\n  },\n"
       << "  \"workloads\": [\n";
  for (std::size_t w = 0; w < runs.size(); ++w) {
    const WorkloadRun& run = runs[w];
    json << "    {\"workload\": \"" << run.name
         << "\", \"sub_batch_queries\": " << run.sub_batch_queries
         << ", \"results\": [\n";
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      const ScalingPoint& p = run.points[i];
      json << "      {\"threads\": " << p.threads << ", \"qps\": " << p.qps
           << ", \"p50_us\": " << p.p50_us << ", \"p99_us\": " << p.p99_us
           << ", \"wall_seconds\": " << p.wall_seconds
           << ", \"speedup\": " << bench::json_scaling(p.speedup)
           << ", \"efficiency\": " << bench::json_scaling(p.efficiency) << "}"
           << (i + 1 < run.points.size() ? "," : "") << "\n";
    }
    json << "    ]}" << (w + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace staleflow

int main(int argc, char** argv) { return staleflow::run_main(argc, argv); }
