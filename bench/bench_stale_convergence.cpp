// E3 — Corollary 5: an alpha-smooth policy converges in the bulletin-board
// model whenever T <= T_safe = 1/(4 D alpha beta).
//
// Sweeps T across multiples of T_safe for a smooth policy and for the
// naive better-response baseline. The paper guarantees convergence on the
// safe side; the baseline oscillates at every T.
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

struct RunOutcome {
  double final_gap = 0.0;
  double tail_amp = 0.0;
  double max_phi_rise = 0.0;
  std::size_t lemma4_violations = 0;
  bool settled = false;
};

RunOutcome run_policy(const Instance& inst, const Policy& policy, double T,
                      double horizon) {
  const FluidSimulator sim(inst, policy);
  TrajectoryRecorder::Options rec_options;
  rec_options.store_flows = true;
  rec_options.stride = 1;
  TrajectoryRecorder recorder(inst, rec_options);
  AccountingRecorder accounting(inst);
  const PhaseObserver rec_obs = recorder.observer();
  const PhaseObserver acc_obs = accounting.observer();

  SimulationOptions options;
  options.update_period = T;
  options.horizon = horizon;
  const SimulationResult result =
      sim.run(FlowVector(inst, {0.9, 0.1}), options,
              [&](const PhaseInfo& info) {
                rec_obs(info);
                acc_obs(info);
              });

  RunOutcome outcome;
  outcome.final_gap = result.final_gap;
  std::vector<double> deviations;
  for (const PhaseSample& s : recorder.samples()) {
    deviations.push_back(s.max_deviation);
  }
  outcome.tail_amp =
      tail_amplitude(deviations, std::max<std::size_t>(deviations.size() / 4,
                                                       4));
  outcome.max_phi_rise = accounting.max_delta_phi();
  outcome.lemma4_violations = accounting.lemma4_violations();
  if (recorder.flows().size() >= 4) {
    outcome.settled = analyse_oscillation(recorder.flows(),
                                          recorder.flows().size() / 4, 1e-7)
                          .settled;
  }
  return outcome;
}

void run() {
  const double beta = 8.0;
  const Instance inst = two_link_pulse(beta);
  const double alpha = 0.5;
  const Policy smooth = make_alpha_policy(alpha);
  const Policy naive = make_naive_better_response_policy();
  const double t_safe = inst.safe_update_period(alpha);

  std::cout << "instance: " << inst.describe() << "\n"
            << "smooth policy: " << smooth.name() << " (alpha=" << alpha
            << "), T_safe = 1/(4*D*alpha*beta) = " << t_safe << "\n\n";

  Table table({"policy", "T/T_safe", "final gap", "tail amp",
               "max dPhi rise", "L4 violations", "settled"});

  for (const double fraction : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double T = fraction * t_safe;
    const RunOutcome outcome = run_policy(inst, smooth, T, 400.0);
    table.add_row({"smooth", fmt(fraction, 2), fmt_sci(outcome.final_gap),
                   fmt_sci(outcome.tail_amp), fmt_sci(outcome.max_phi_rise),
                   fmt_int(static_cast<long long>(outcome.lemma4_violations)),
                   fmt_bool(outcome.settled)});
  }
  for (const double fraction : {1.0, 4.0, 16.0}) {
    const double T = fraction * t_safe;
    const RunOutcome outcome = run_policy(inst, naive, T, 400.0);
    table.add_row({"better-resp", fmt(fraction, 2),
                   fmt_sci(outcome.final_gap), fmt_sci(outcome.tail_amp),
                   fmt_sci(outcome.max_phi_rise),
                   fmt_int(static_cast<long long>(outcome.lemma4_violations)),
                   fmt_bool(outcome.settled)});
  }
  table.print(std::cout);
}

void jitter_table() {
  // Model extension: randomised board intervals. Lemma 4 bounds every
  // phase of length <= T_safe, so convergence survives as long as the
  // longest possible phase stays safe.
  const Instance inst = two_link_pulse(8.0);
  const Policy policy = make_uniform_linear_policy(inst);
  const double t_safe = inst.safe_update_period(*policy.smoothness());
  std::cout << "\n-- Table E3b (extension): randomised update intervals\n"
            << "   lengths ~ U[T(1-j), T(1+j)]; safe iff T(1+j) <= T_safe\n\n";
  Table table({"T/T_safe", "jitter", "max phase <= T_safe", "final gap",
               "L4 violations"});
  for (const double fraction : {0.5, 0.8, 1.0}) {
    for (const double jitter : {0.0, 0.25, 0.5, 0.9}) {
      const double T = fraction * t_safe;
      const FluidSimulator sim(inst, policy);
      AccountingRecorder recorder(inst);
      SimulationOptions options;
      options.update_period = T;
      options.period_jitter = jitter;
      options.jitter_seed = 7;
      options.horizon = 300.0;
      options.stop_gap = 1e-10;
      const SimulationResult result =
          sim.run(FlowVector(inst, {0.9, 0.1}), options,
                  recorder.observer());
      table.add_row(
          {fmt(fraction, 2), fmt(jitter, 2),
           fmt_bool(T * (1.0 + jitter) <= t_safe + 1e-12),
           fmt_sci(result.final_gap),
           fmt_int(static_cast<long long>(recorder.lemma4_violations()))});
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E3: staleness sweep around the safe period "
               "(paper Corollary 5) ===\n\n";
  staleflow::run();
  staleflow::jitter_table();
  std::cout
      << "\nShape check: the smooth policy has zero Lemma 4 violations and\n"
         "settles whenever T/T_safe <= 1 (and, being a conservative bound,\n"
         "often somewhat beyond), while better response keeps a visible\n"
         "oscillation amplitude at every period.\n";
  return 0;
}
