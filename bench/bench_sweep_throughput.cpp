// Sweep-engine throughput: cells/sec scaling from 1 to N threads.
//
// The sweep engine is the substrate every large-scale experiment runs on,
// so its scaling *is* the experiment budget: a sweep that takes an hour
// single-threaded should take minutes on a workstation. This bench runs a
// fixed 120-cell fluid sweep (4 scenarios x 5 policies x 2 periods x 3
// replicas) at doubling thread counts and reports cells/sec, speedup and
// parallel efficiency — plus a cross-check that every thread count
// produced identical results (the determinism contract of runner.h).
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

ExperimentSpec make_spec() {
  ExperimentSpec spec;
  spec.scenarios = {"two-link-pulse", "braess", "uniform-links-8",
                    "random-links-8"};
  for (const char* name :
       {"replicator", "uniform-linear", "alpha:0.5", "logit:10", "safe"}) {
    spec.policies.push_back(named_policy(name));
  }
  spec.update_periods = {0.05, 0.1};
  spec.replicas = 3;
  spec.horizon = 30.0;
  spec.stop_gap = 1e-6;
  return spec;
}

/// Deterministic fields of a result, flattened for comparison.
std::vector<double> fingerprint(const SweepResult& result) {
  std::vector<double> out;
  out.reserve(result.cells.size() * 4);
  for (const CellResult& cell : result.cells) {
    out.push_back(cell.final_gap);
    out.push_back(cell.final_potential);
    out.push_back(cell.oscillation_amplitude);
    out.push_back(static_cast<double>(cell.phases));
  }
  return out;
}

void run() {
  const ExperimentSpec spec = make_spec();
  const SweepRunner runner;
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::cout << "sweep: " << cell_count(spec) << " fluid cells, hardware "
            << "concurrency " << hardware << "\n\n"
            << "-- Table S1: sweep throughput vs. thread count\n\n";

  std::vector<std::size_t> thread_counts = {1};
  while (thread_counts.back() < hardware) {
    thread_counts.push_back(std::min(hardware, thread_counts.back() * 2));
  }

  Table table({"threads", "seconds", "cells/s", "speedup", "efficiency"});
  double base_seconds = 0.0;
  std::vector<double> reference;
  bool all_identical = true;

  for (const std::size_t threads : thread_counts) {
    const SweepResult result = runner.run(spec, threads);
    if (threads == 1) {
      base_seconds = result.wall_seconds;
      reference = fingerprint(result);
    } else if (fingerprint(result) != reference) {
      all_identical = false;
    }
    const double speedup =
        result.wall_seconds > 0.0 ? base_seconds / result.wall_seconds : 0.0;
    table.add_row({fmt_int((long long)threads),
                   fmt(result.wall_seconds, 2),
                   fmt(result.cells_per_second(), 1), fmt(speedup, 2),
                   fmt(speedup / static_cast<double>(threads), 2)});
  }
  table.print(std::cout);

  std::cout << "\nresults bit-identical across thread counts: "
            << fmt_bool(all_identical) << "\n";
}

}  // namespace
}  // namespace staleflow

int main() {
  staleflow::run();
  return 0;
}
