// bench_trace_overhead — what the always-on trace plane costs.
//
// Serves one fixed deterministic configuration twice per thread count —
// untraced, then traced to a real file — and reports epochs/s and
// queries/s for both, plus the relative overhead. The digests are
// asserted equal pairwise (tracing must be digest-neutral, the same
// contract tests/trace_test.cpp pins) and the trace is decoded to report
// how many events a serving run of this shape emits.
//
// Writes BENCH_trace.json, the machine-readable record future PRs diff
// against: if a hook creep makes "always-on" stop being "cheap", the
// overhead column is where it shows first.
//
// Usage: bench_trace_overhead [max_threads] [json_path]
//                             [--force-bench-overwrite]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

struct OverheadPoint {
  std::size_t threads = 0;
  double untraced_eps = 0.0;  // epochs per second
  double traced_eps = 0.0;
  double untraced_qps = 0.0;
  double traced_qps = 0.0;
  double overhead_pct = 0.0;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
};

int run_main(int argc, char** argv) {
  const bool force_overwrite = bench::take_force_overwrite(argc, argv);
  std::size_t max_threads = 8;
  std::string json_path = "BENCH_trace.json";
  if (argc > 1) {
    const int parsed = std::atoi(argv[1]);
    if (parsed < 0 || parsed > 1024) {
      std::cerr << "usage: bench_trace_overhead [max_threads 0..1024] "
                   "[json_path]\n";
      return 2;
    }
    max_threads = static_cast<std::size_t>(parsed);
  }
  if (argc > 2) json_path = argv[2];
  if (max_threads == 0) {
    max_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  // The bursty sub-batch-splitting shape from bench_service_throughput:
  // the configuration with the most trace events per epoch (every split
  // sub-batch is a span), i.e. the worst case for tracing overhead.
  Rng scenario_rng(7);
  const Instance instance = random_parallel_links(32, scenario_rng);
  const Policy policy = make_replicator_policy(instance);
  const WorkloadPtr workload = make_workload("bursty:4000000,200000,3,2");

  RouteServerOptions options;
  options.update_period = 0.05;
  options.epochs = 15;
  options.num_clients = 50'000;
  options.shards = 32;
  options.seed = 42;
  options.sub_batch_queries = 2048;

  std::cout << "trace overhead: " << instance.describe() << "\n  "
            << policy.name() << " x " << options.epochs
            << " epochs, bursty workload, sub-batch "
            << options.sub_batch_queries << " (hardware: "
            << std::thread::hardware_concurrency() << " cores)\n\n";

  const std::string trace_path = json_path + ".trace.tmp";
  Table table({"threads", "untraced ep/s", "traced ep/s", "overhead %",
               "events", "dropped"});
  std::vector<OverheadPoint> points;
  std::uint64_t reference_digest = 0;

  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    options.threads = threads;

    RouteServer untraced(instance, policy, *workload);
    const RouteServerResult baseline =
        untraced.run(FlowVector::uniform(instance), options);

    trace::start(trace_path, "bench_trace_overhead");
    RouteServer recorded(instance, policy, *workload);
    const RouteServerResult traced =
        recorded.run(FlowVector::uniform(instance), options);
    trace::stop();

    const std::uint64_t untraced_digest = telemetry_digest(baseline.epochs);
    const std::uint64_t traced_digest = telemetry_digest(traced.epochs);
    if (untraced_digest != traced_digest) {
      std::cerr << "FAIL: tracing changed the digest at " << threads
                << " threads — digest-neutrality contract broken\n";
      return 1;
    }
    if (reference_digest == 0) {
      reference_digest = untraced_digest;
    } else if (untraced_digest != reference_digest) {
      std::cerr << "FAIL: digest differs at " << threads
                << " threads — determinism contract broken\n";
      return 1;
    }

    const trace::LoadedTrace loaded = trace::load_trace(trace_path);

    OverheadPoint point;
    point.threads = threads;
    point.untraced_eps =
        static_cast<double>(options.epochs) / baseline.wall_seconds;
    point.traced_eps =
        static_cast<double>(options.epochs) / traced.wall_seconds;
    point.untraced_qps = baseline.queries_per_second;
    point.traced_qps = traced.queries_per_second;
    point.overhead_pct =
        (point.untraced_eps / point.traced_eps - 1.0) * 100.0;
    point.trace_events = loaded.trailer_events;
    point.trace_dropped = loaded.trailer_dropped;
    points.push_back(point);

    table.add_row({std::to_string(threads), fmt(point.untraced_eps, 2),
                   fmt(point.traced_eps, 2), fmt(point.overhead_pct, 2),
                   std::to_string(point.trace_events),
                   std::to_string(point.trace_dropped)});
  }
  table.print(std::cout);
  std::remove(trace_path.c_str());

  if (bench::refuse_single_core_overwrite(json_path, force_overwrite)) {
    return 1;
  }
  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "cannot open " << json_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"trace_overhead\",\n"
       << "  \"config\": {\n"
       << "    \"scenario\": \"random-links-32\",\n"
       << "    \"policy\": \"" << policy.name() << "\",\n"
       << "    \"workload\": \"bursty:4000000,200000,3,2\",\n"
       << "    \"epochs\": " << options.epochs << ",\n"
       << "    \"clients\": " << options.num_clients << ",\n"
       << "    \"shards\": " << options.shards << ",\n"
       << "    \"sub_batch_queries\": " << options.sub_batch_queries << ",\n"
       << "    \"hardware_threads\": " << std::thread::hardware_concurrency()
       << "\n  },\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const OverheadPoint& p = points[i];
    json << "    {\"threads\": " << p.threads
         << ", \"untraced_epochs_per_s\": " << p.untraced_eps
         << ", \"traced_epochs_per_s\": " << p.traced_eps
         << ", \"untraced_qps\": " << p.untraced_qps
         << ", \"traced_qps\": " << p.traced_qps
         << ", \"overhead_pct\": " << p.overhead_pct
         << ", \"trace_events\": " << p.trace_events
         << ", \"trace_dropped\": " << p.trace_dropped << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace staleflow

int main(int argc, char** argv) { return staleflow::run_main(argc, argv); }
