// E6 — Theorem 6: uniform sampling + linear migration reaches approximate
// equilibria; the number of update periods not starting at a
// (delta, eps)-equilibrium is O( m / (eps T) * (l_max/delta)^2 ),
// m = max_i |P_i|.
//
// We measure the actual number of bad rounds on heterogeneous parallel
// links and check the *shape*: the count grows with m and with
// (l_max/delta)^2, shrinks with eps, and the measured count never exceeds
// the paper's bound (which is a worst-case upper bound, so the ratio
// stays below 1).
#include <cmath>
#include <iostream>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

/// m parallel links l_j(x) = a_j + x with offsets spread over [0, 1/2].
Instance spread_links(std::size_t m) {
  return parallel_links(m, [m](std::size_t j) {
    return affine(0.5 * static_cast<double>(j) / static_cast<double>(m),
                  1.0);
  });
}

struct Measurement {
  std::size_t bad_rounds = 0;
  std::size_t total_rounds = 0;
  std::size_t last_bad = 0;
  double bound = 0.0;
  double T = 0.0;
};

Measurement measure(std::size_t m, double delta, double eps) {
  const Instance inst = spread_links(m);
  const Policy policy = make_uniform_linear_policy(inst);
  const double T =
      std::min(inst.safe_update_period(*policy.smoothness()), 1.0);

  // Start with everything on the worst link.
  std::vector<std::size_t> worst{m - 1};
  const FlowVector start = FlowVector::concentrated(inst, worst);

  const FluidSimulator sim(inst, policy);
  RoundCounter counter(inst, RoundCounter::Mode::kStrict, delta, eps);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 1e9;        // bounded by max_phases / stop_gap below
  options.max_phases = 20'000;
  options.stop_gap = 1e-10;     // equilibrium reached: all later rounds good
  options.step_size = T / 16.0;
  sim.run(start, options, counter.observer());

  Measurement result;
  result.bad_rounds = counter.bad_rounds();
  result.total_rounds = counter.total_rounds();
  result.last_bad = counter.last_bad_round();
  result.T = T;
  result.bound = static_cast<double>(m) / (eps * T) *
                 (inst.max_latency() / delta) * (inst.max_latency() / delta);
  return result;
}

void sweep_m() {
  std::cout << "-- Table E6a: bad rounds vs m (delta=0.10, eps=0.05)\n\n";
  Table table({"m", "bad rounds", "last bad", "T", "paper bound",
               "measured/bound"});
  std::vector<double> xs, ys;
  for (const std::size_t m : {2u, 4u, 8u, 16u, 32u}) {
    const Measurement r = measure(m, 0.10, 0.05);
    table.add_row({fmt_int(static_cast<long long>(m)),
                   fmt_int(static_cast<long long>(r.bad_rounds)),
                   fmt_int(static_cast<long long>(r.last_bad)), fmt(r.T, 3),
                   fmt_sci(r.bound),
                   fmt_sci(static_cast<double>(r.bad_rounds) / r.bound)});
    xs.push_back(static_cast<double>(m));
    ys.push_back(static_cast<double>(std::max<std::size_t>(r.bad_rounds, 1)));
  }
  table.print(std::cout);
  const PowerFit fit = fit_power(xs, ys);
  std::cout << "growth exponent of bad rounds in m: " << fmt(fit.exponent, 2)
            << " (paper bound predicts <= 1; uniform sampling pays the\n"
               "factor m because each specific path is found with\n"
               "probability 1/m)\n\n";
}

void sweep_delta() {
  std::cout << "-- Table E6b: bad rounds vs delta (m=8, eps=0.05)\n\n";
  Table table({"delta", "bad rounds", "paper bound", "measured/bound"});
  std::vector<double> xs, ys;
  for (const double delta : {0.05, 0.10, 0.20, 0.40}) {
    const Measurement r = measure(8, delta, 0.05);
    table.add_row({fmt(delta, 2),
                   fmt_int(static_cast<long long>(r.bad_rounds)),
                   fmt_sci(r.bound),
                   fmt_sci(static_cast<double>(r.bad_rounds) / r.bound)});
    xs.push_back(delta);
    ys.push_back(static_cast<double>(std::max<std::size_t>(r.bad_rounds, 1)));
  }
  table.print(std::cout);
  const PowerFit fit = fit_power(xs, ys);
  std::cout << "scaling exponent of bad rounds in delta: "
            << fmt(fit.exponent, 2)
            << " (paper bound predicts >= -2)\n\n";
}

void sweep_eps() {
  std::cout << "-- Table E6c: bad rounds vs eps (m=8, delta=0.10)\n\n";
  Table table({"eps", "bad rounds", "paper bound", "measured/bound"});
  std::vector<double> xs, ys;
  for (const double eps : {0.02, 0.05, 0.10, 0.20}) {
    const Measurement r = measure(8, 0.10, eps);
    table.add_row({fmt(eps, 2),
                   fmt_int(static_cast<long long>(r.bad_rounds)),
                   fmt_sci(r.bound),
                   fmt_sci(static_cast<double>(r.bad_rounds) / r.bound)});
    xs.push_back(eps);
    ys.push_back(static_cast<double>(std::max<std::size_t>(r.bad_rounds, 1)));
  }
  table.print(std::cout);
  const PowerFit fit = fit_power(xs, ys);
  std::cout << "scaling exponent of bad rounds in eps: "
            << fmt(fit.exponent, 2)
            << " (paper bound predicts >= -1)\n\n";
}

}  // namespace
}  // namespace staleflow

int main() {
  std::cout << "=== E6: uniform sampling convergence time "
               "(paper Theorem 6) ===\n\n";
  staleflow::sweep_m();
  staleflow::sweep_delta();
  staleflow::sweep_eps();
  std::cout << "Shape check: bad-round counts grow with m, shrink in delta\n"
               "and eps, and stay below the paper's worst-case bound\n"
               "(measured/bound < 1 throughout).\n";
  return 0;
}
