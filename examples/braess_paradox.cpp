// Braess paradox under adaptive routing: adding a zero-latency shortcut
// makes everyone slower — and the adaptive agents find the bad equilibrium
// on their own, from any start, even with stale information.
//
//   $ ./braess_paradox
#include <iostream>

#include "staleflow/staleflow.h"

namespace {

void report(const staleflow::Instance& inst, const char* title) {
  using namespace staleflow;
  std::cout << "--- " << title << " ---\n" << inst.describe() << "\n";
  for (std::size_t p = 0; p < inst.path_count(); ++p) {
    std::cout << "  path P" << p << ": "
              << inst.path(PathId{p}).describe(inst.graph()) << '\n';
  }

  // Exact equilibrium.
  const FrankWolfeResult eq = solve_equilibrium(inst);
  const FlowEvaluation eval = evaluate(inst, eq.flow.values());
  std::cout << "equilibrium average latency: " << fmt(eval.average_latency, 4)
            << "\n";

  // Adaptive agents with a stale board find the same equilibrium.
  const Policy policy = make_replicator_policy(inst, 0.02);
  const double T = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 2'000.0;
  options.stop_gap = 1e-6;
  const SimulationResult result =
      sim.run(FlowVector::uniform(inst), options);
  const FlowEvaluation sim_eval = evaluate(inst, result.final_flow.values());
  std::cout << "replicator agents (stale board, T=" << fmt(T, 3)
            << ") reach average latency " << fmt(sim_eval.average_latency, 4)
            << " with gap " << fmt_sci(result.final_gap) << "\n";
  for (std::size_t p = 0; p < inst.path_count(); ++p) {
    std::cout << "  flow on P" << p << ": "
              << fmt(result.final_flow[PathId{p}], 4) << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace staleflow;
  std::cout << "The Braess network: s->a (l=x), s->b (l=1), a->t (l=1), "
               "b->t (l=x),\nplus an optional zero-latency shortcut "
               "a->b.\n\n";

  report(braess(false), "without the shortcut");
  report(braess(true), "with the shortcut");

  std::cout << "Paradox reproduced: the shortcut lures every agent onto\n"
               "s->a->b->t, raising everyone's latency from 1.5 to 2.0 —\n"
               "and load-adaptive routing converges to exactly that bad\n"
               "equilibrium, stale information or not.\n";
  return 0;
}
