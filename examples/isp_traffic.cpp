// ISP-style scenario: multiple customer populations share a backbone and
// receive load reports only every T seconds (the motivation the paper's
// introduction cites: real-time load-adaptive traffic engineering
// oscillates when its feedback loop is too aggressive, cf. the revised
// ARPANET metric).
//
//   $ ./isp_traffic
//
// Two commodities, a shared bottleneck, BPR-style road/queueing latencies.
// We sweep the report period T and compare:
//   * the naive operator (better response): oscillation cost,
//   * the smooth operator (alpha tuned to T per Corollary 5): converges,
//     but more slowly the staler the reports.
#include <iostream>

#include "staleflow/staleflow.h"

namespace {

staleflow::Instance backbone() {
  using namespace staleflow;
  // Two access routers (a, b) feed a shared backbone link to the sink,
  // each with a private overflow path.
  Graph g(4);
  const VertexId a{0}, b{1}, hub{2}, t{3};
  const EdgeId a_hub = g.add_edge(a, hub);
  const EdgeId b_hub = g.add_edge(b, hub);
  const EdgeId hub_t = g.add_edge(hub, t);   // the shared bottleneck
  const EdgeId a_t = g.add_edge(a, t);       // private overflow
  const EdgeId b_t = g.add_edge(b, t);
  InstanceBuilder builder(std::move(g));
  builder.set_latency(a_hub, bpr(0.2, 0.5, 0.8, 2.0));
  builder.set_latency(b_hub, bpr(0.2, 0.5, 0.8, 2.0));
  builder.set_latency(hub_t, bpr(0.3, 2.0, 0.6, 2.0));  // congests quickly
  builder.set_latency(a_t, constant(1.0));
  builder.set_latency(b_t, constant(1.0));
  builder.add_commodity(a, t, 0.55);
  builder.add_commodity(b, t, 0.45);
  return std::move(builder).build();
}

}  // namespace

int main() {
  using namespace staleflow;
  const Instance inst = backbone();
  std::cout << "backbone instance: " << inst.describe() << "\n";

  const FrankWolfeResult eq = solve_equilibrium(inst);
  std::cout << "optimal potential Phi* = " << fmt(eq.potential, 6)
            << ", equilibrium average latency "
            << fmt(evaluate(inst, eq.flow.values()).average_latency, 4)
            << "\n\n";

  Table table({"report period T", "operator", "final gap", "avg latency",
               "tail amplitude"});
  for (const double T : {0.1, 0.5, 2.0}) {
    // Naive operator: always jump to the best-looking route.
    {
      const BestResponseSimulator sim(inst);
      TrajectoryRecorder recorder(inst);
      BestResponseOptions options;
      options.update_period = T;
      options.horizon = 300.0;
      const SimulationResult result = sim.run(
          FlowVector::uniform(inst), options, recorder.observer());
      std::vector<double> latencies;
      for (const PhaseSample& s : recorder.samples()) {
        latencies.push_back(s.average_latency);
      }
      table.add_row({fmt(T, 2), "best response", fmt_sci(result.final_gap),
                     fmt(latencies.back(), 4),
                     fmt_sci(tail_amplitude(latencies,
                                            latencies.size() / 3))});
    }
    // Smooth operator: migration aggressiveness tuned to the report
    // period via alpha = 1/(4 D beta T) (Corollary 5).
    {
      const double alpha =
          1.0 / (4.0 * static_cast<double>(inst.max_path_length()) *
                 inst.max_slope() * T);
      const Policy policy = make_alpha_policy(alpha);
      const FluidSimulator sim(inst, policy);
      TrajectoryRecorder recorder(inst);
      SimulationOptions options;
      options.update_period = T;
      options.horizon = 300.0;
      const SimulationResult result = sim.run(
          FlowVector::uniform(inst), options, recorder.observer());
      std::vector<double> latencies;
      for (const PhaseSample& s : recorder.samples()) {
        latencies.push_back(s.average_latency);
      }
      table.add_row({fmt(T, 2), "smooth (Cor. 5)",
                     fmt_sci(result.final_gap), fmt(latencies.back(), 4),
                     fmt_sci(tail_amplitude(latencies,
                                            latencies.size() / 3))});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: the naive operator's traffic keeps sloshing\n"
               "between the backbone and the overflow paths (non-zero tail\n"
               "amplitude), while the smooth operator converges at every\n"
               "report period by scaling its migration probability with\n"
               "1/T — the paper's prescription.\n";
  return 0;
}
