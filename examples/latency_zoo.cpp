// Latency zoo: every latency family the library ships, with the numbers
// the paper's machinery cares about — the slope bound beta (drives the
// safe update period) and the elasticity (drives the [10]-style rules).
//
//   $ ./latency_zoo
#include <iostream>
#include <vector>

#include "staleflow/staleflow.h"

int main() {
  using namespace staleflow;

  struct Entry {
    std::string family;
    LatencyPtr fn;
  };
  std::vector<Entry> zoo;
  zoo.push_back({"constant", constant(1.0)});
  zoo.push_back({"affine", affine(0.5, 2.0)});
  zoo.push_back({"monomial", monomial(1.0, 4.0)});
  zoo.push_back({"polynomial", polynomial({0.1, 0.0, 1.0, 0.5})});
  zoo.push_back({"shifted linear (paper Sec 3.2)", shifted_linear(4.0, 0.5)});
  zoo.push_back({"piecewise linear",
                 piecewise_linear({{0.0, 0.1}, {0.6, 0.4}, {1.0, 2.0}})});
  zoo.push_back({"BPR (road traffic)", bpr(1.0, 0.15, 0.8, 4.0)});
  zoo.push_back({"M/M/1 queue", mm1(2.0)});
  zoo.push_back({"combinator: 2*(x) + 0.3",
                 offset(scale(2.0, linear(1.0)), 0.3)});
  zoo.push_back({"marginal cost of x^2",
                 std::make_unique<MarginalCostLatency>(MonomialLatency(1.0, 2.0))});

  Table table({"family", "formula", "l(1/2)", "INT_0^1 l", "beta",
               "elasticity", "contract"});
  for (const auto& [family, fn] : zoo) {
    const std::string violation = check_latency_contract(*fn);
    table.add_row({family, fn->describe(), fmt(fn->value(0.5), 4),
                   fmt(fn->integral(1.0), 4), fmt(fn->max_slope(1.0), 3),
                   fmt(max_elasticity(*fn), 3),
                   violation.empty() ? "ok" : violation});
  }
  table.print(std::cout);

  std::cout << "\nWhy these columns matter:\n"
               "  * beta bounds the safe bulletin-board period via\n"
               "    T <= 1/(4 D alpha beta) (paper Corollary 5);\n"
               "  * INT l is the edge's exact contribution to the\n"
               "    Beckmann-McGuire-Winsten potential (no quadrature);\n"
               "  * elasticity is what the follow-up policy of [10]\n"
               "    depends on instead of beta (see bench_relative_slack).\n";
  return 0;
}
