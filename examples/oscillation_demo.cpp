// Oscillation demo: watch best response thrash under stale information,
// then fix it with an alpha-smooth policy — the paper's core story on one
// screen.
//
//   $ ./oscillation_demo [beta] [T]
//
// Prints an ASCII strip chart of the flow on link 1 over time for both
// dynamics on the two-link pulse network l(x) = max{0, beta(x - 1/2)}.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "staleflow/staleflow.h"

namespace {

/// Renders f1 in [0,1] as a bar with a marker, e.g. "[#######|....]".
std::string bar(double f1) {
  const int width = 48;
  const int pos = static_cast<int>(f1 * width);
  std::string out = "[";
  for (int i = 0; i < width; ++i) {
    out += (i == width / 2) ? '|' : (i < pos ? '#' : '.');
  }
  out += ']';
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace staleflow;
  const double beta = argc > 1 ? std::atof(argv[1]) : 4.0;
  const double T = argc > 2 ? std::atof(argv[2]) : 0.5;

  const Instance inst = two_link_pulse(beta);
  std::cout << "network: two links, l(x) = max{0, " << beta
            << "(x - 1/2)}; bulletin board refreshed every T = " << T
            << "\nWardrop equilibrium: f = (1/2, 1/2), latency 0."
            << "\nThe '|' marks the equilibrium split.\n";

  // Start on the paper's closed-form period-2 orbit.
  const double f1 = 1.0 / (std::exp(-T) + 1.0);
  const FlowVector start(inst, {f1, 1.0 - f1});

  std::cout << "\n--- best response against the stale board (Eq. (4)) ---\n";
  const BestResponseSimulator naive(inst);
  BestResponseOptions naive_options;
  naive_options.update_period = T;
  naive_options.horizon = 14.0 * T;
  naive.run(start, naive_options, [&](const PhaseInfo& info) {
    std::cout << "t=" << fmt(info.end_time, 2) << "  " << bar(info.flow_after[0])
              << "  f1=" << fmt(info.flow_after[0], 4) << '\n';
  });
  const double amplitude =
      beta * (1.0 - std::exp(-T)) / (2.0 * std::exp(-T) + 2.0);
  std::cout << "=> period-2 oscillation forever; sustained latency "
            << fmt(amplitude, 4) << " above equilibrium (paper Sec. 3.2)\n";

  std::cout << "\n--- smooth policy (uniform sampling + linear migration, "
               "Corollary 5) ---\n";
  const Policy policy = make_uniform_linear_policy(inst);
  const double T_safe = inst.safe_update_period(*policy.smoothness());
  std::cout << "safe period 1/(4*D*alpha*beta) = " << fmt(T_safe, 4)
            << (T <= T_safe ? " (T is safe)\n" : " (T exceeds it — the "
               "guarantee needs a slower rule; watch it still behave)\n");
  const FluidSimulator smooth(inst, policy);
  SimulationOptions smooth_options;
  smooth_options.update_period = T;
  smooth_options.horizon = 14.0 * T;
  smooth.run(start, smooth_options, [&](const PhaseInfo& info) {
    std::cout << "t=" << fmt(info.end_time, 2) << "  " << bar(info.flow_after[0])
              << "  f1=" << fmt(info.flow_after[0], 4) << '\n';
  });
  std::cout << "=> the same stale board, but the population settles at the "
               "equilibrium split.\n";
  return 0;
}
