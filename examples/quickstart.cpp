// Quickstart: build a network, pick a rerouting policy, simulate it under
// stale information, and compare against the exact Wardrop equilibrium.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~80 lines.
#include <iostream>

#include "staleflow/staleflow.h"

int main() {
  using namespace staleflow;

  // 1. Topology: two routes from s to t — a short congestible road and a
  //    long fixed-latency highway (Pigou's example).
  Graph g(2);
  const VertexId s{0}, t{1};
  const EdgeId road = g.add_edge(s, t);
  const EdgeId highway = g.add_edge(s, t);

  // 2. Latency functions and demand. Demands are normalised to sum to 1.
  InstanceBuilder builder(std::move(g));
  builder.set_latency(road, linear(1.0));       // l(x) = x
  builder.set_latency(highway, constant(1.0));  // l(x) = 1
  builder.add_commodity(s, t, 1.0);
  const Instance instance = std::move(builder).build();
  std::cout << "instance: " << instance.describe() << "\n";

  // 3. Ground truth: the Wardrop equilibrium via convex optimisation.
  const FrankWolfeResult equilibrium = solve_equilibrium(instance);
  std::cout << "equilibrium flow on the road: "
            << equilibrium.flow[PathId{0}]
            << " (everyone drives; latency 1 everywhere)\n";

  // 4. A rerouting policy: uniform path sampling + the linear migration
  //    rule. Its smoothness parameter is alpha = 1/l_max, so the paper's
  //    Corollary 5 guarantees convergence for any bulletin-board period
  //    T <= 1/(4 * D * alpha * beta).
  const Policy policy = make_uniform_linear_policy(instance);
  const double T_safe = instance.safe_update_period(*policy.smoothness());
  std::cout << "policy: " << policy.name() << ", safe period T = " << T_safe
            << "\n";

  // 5. Simulate the fluid dynamics in the bulletin-board model, recording
  //    potential and Wardrop gap at every phase.
  const FluidSimulator simulator(instance, policy);
  TrajectoryRecorder recorder(instance);
  SimulationOptions options;
  options.update_period = T_safe;
  options.horizon = 120.0;
  const SimulationResult result = simulator.run(
      FlowVector::uniform(instance), options, recorder.observer());

  std::cout << "after t = " << result.final_time
            << ": flow on the road = " << result.final_flow[PathId{0}]
            << ", Wardrop gap = " << result.final_gap << "\n";

  // 6. The Beckmann-McGuire-Winsten potential decreased monotonically —
  //    the certificate that stale information did not cause oscillation.
  std::cout << "largest per-phase potential increase: "
            << recorder.max_potential_increase()
            << " (0 means monotone convergence)\n";

  const auto hit = recorder.time_to_gap(1e-3);
  if (hit) {
    std::cout << "gap fell below 1e-3 at t = " << *hit << "\n";
  }

  // 7. Cross-check the fluid trajectory with 10,000 discrete agents.
  const AgentSimulator agents(instance, policy);
  AgentSimOptions agent_options;
  agent_options.num_agents = 10'000;
  agent_options.update_period = T_safe;
  agent_options.horizon = 120.0;
  agent_options.seed = 42;
  const AgentSimResult empirical =
      agents.run(FlowVector::uniform(instance), agent_options);
  std::cout << "10k discrete agents end with road flow = "
            << empirical.final_flow[PathId{0}] << " ("
            << empirical.migrations << " migrations)\n";
  return 0;
}
