#include "agents/agent_simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "agents/population.h"
#include "core/bulletin_board.h"

namespace staleflow {

AgentSimulator::AgentSimulator(const Instance& instance, const Policy& policy)
    : instance_(&instance), policy_(&policy) {}

AgentSimResult AgentSimulator::run(const FlowVector& initial,
                                   const AgentSimOptions& options,
                                   const PhaseObserver& observer) const {
  if (!is_feasible(*instance_, initial.values(), 1e-7)) {
    throw std::invalid_argument("AgentSimulator::run: infeasible start");
  }
  if (!(options.update_period > 0.0) || !(options.horizon > 0.0)) {
    throw std::invalid_argument("AgentSimulator::run: bad options");
  }

  Rng rng(options.seed);
  const std::size_t k = instance_->commodity_count();
  Population population(*instance_, options.num_agents, initial.values());

  BulletinBoard board(*instance_);
  // Per-commodity sampling distribution, fixed within a phase.
  std::vector<std::vector<double>> cdfs(k);
  auto refresh_board = [&](double now) {
    board.post(now, population.empirical_flow());
    for (std::size_t c = 0; c < k; ++c) {
      sampling_cdf(*policy_, *instance_,
                   instance_->commodity(CommodityId{c}), board.path_flow(),
                   board.path_latency(), cdfs[c]);
    }
  };

  AgentSimResult result{FlowVector(*instance_, population.empirical_flow())};
  const double total_rate = static_cast<double>(options.num_agents);
  std::vector<double> flow_before(population.empirical_flow().begin(),
                                  population.empirical_flow().end());

  // Regret accounting: per-path latency integrals and the flow-weighted
  // experienced latency, accumulated per completed phase at its left
  // endpoint (the board's own snapshot).
  std::vector<double> cumulative_latency(instance_->path_count(), 0.0);
  double experienced_integral = 0.0;
  double accounted_time = 0.0;
  auto account_phase_latency = [&]() {
    const double T = options.update_period;
    for (std::size_t p = 0; p < instance_->path_count(); ++p) {
      const double l_hat = board.path_latency()[p];
      cumulative_latency[p] += l_hat * T;
      experienced_integral += board.path_flow()[p] * l_hat * T;
    }
    accounted_time += T;
  };

  double t = 0.0;
  std::size_t phase = 0;
  refresh_board(0.0);
  double next_update = options.update_period;

  while (t < options.horizon) {
    const double wait = rng.exponential(total_rate);
    double next_t = t + wait;

    // Process any board updates that occur before the next activation.
    while (next_update <= std::min(next_t, options.horizon)) {
      account_phase_latency();
      ++phase;
      if (observer) {
        PhaseInfo info;
        info.index = phase - 1;
        info.start_time = next_update - options.update_period;
        info.end_time = next_update;
        info.flow_before = flow_before;
        info.flow_after = population.empirical_flow();
        observer(info);
      }
      refresh_board(next_update);
      flow_before.assign(population.empirical_flow().begin(),
                         population.empirical_flow().end());
      next_update += options.update_period;
    }
    if (next_t >= options.horizon) {
      t = options.horizon;
      break;
    }
    t = next_t;

    // Activate one uniformly random agent.
    const auto agent = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(options.num_agents)));
    ++result.activations;
    const CommodityId c = population.commodity_of(agent);
    const Commodity& commodity = instance_->commodity(c);
    const std::size_t current_local = population.local_path(agent);

    // Sample a candidate path from the phase-constant distribution.
    const std::size_t sampled_local = sample_from_cdf(cdfs[c.index()], rng);
    if (sampled_local == current_local) continue;

    const double l_current =
        board.path_latency()[commodity.paths[current_local].index()];
    const double l_sampled =
        board.path_latency()[commodity.paths[sampled_local].index()];
    const double mu = policy_->migration().probability(l_current, l_sampled);
    if (!rng.bernoulli(mu)) continue;

    population.migrate(agent, sampled_local);
    ++result.migrations;
  }

  result.final_flow = FlowVector(*instance_, population.empirical_flow());
  result.final_time = t;
  result.phases = phase;

  if (accounted_time > 0.0) {
    // Total demand is normalised to 1, so the population average is the
    // raw integral divided by time.
    result.average_experienced_latency =
        experienced_integral / accounted_time;
    for (std::size_t c = 0; c < k; ++c) {
      const Commodity& commodity = instance_->commodity(CommodityId{c});
      double best = std::numeric_limits<double>::infinity();
      for (const PathId p : commodity.paths) {
        best = std::min(best, cumulative_latency[p.index()]);
      }
      result.hindsight_best_latency +=
          commodity.demand * best / accounted_time;
    }
    result.average_regret = result.average_experienced_latency -
                            result.hindsight_best_latency;
  }
  return result;
}

}  // namespace staleflow
