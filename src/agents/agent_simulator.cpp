#include "agents/agent_simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/bulletin_board.h"

namespace staleflow {
namespace {

/// Per-commodity agent bookkeeping: which path each agent sits on, and the
/// flow each agent carries.
struct CommodityAgents {
  std::vector<std::size_t> path_of_agent;  // local path index per agent
  double flow_per_agent = 0.0;
};

/// Allocates `num_agents` across commodities proportionally to demand,
/// guaranteeing at least one agent per commodity.
std::vector<std::size_t> allocate_agents(const Instance& instance,
                                         std::size_t num_agents) {
  const std::size_t k = instance.commodity_count();
  if (num_agents < k) {
    throw std::invalid_argument(
        "AgentSimulator: need at least one agent per commodity");
  }
  std::vector<std::size_t> counts(k, 1);
  std::size_t assigned = k;
  for (std::size_t c = 0; c < k && assigned < num_agents; ++c) {
    const double demand = instance.commodity(CommodityId{c}).demand;
    const auto extra = static_cast<std::size_t>(
        std::floor(demand * static_cast<double>(num_agents)));
    const std::size_t grant = std::min(extra > 0 ? extra - 1 : 0,
                                       num_agents - assigned);
    counts[c] += grant;
    assigned += grant;
  }
  // Distribute any remainder round-robin.
  for (std::size_t c = 0; assigned < num_agents; c = (c + 1) % k) {
    ++counts[c];
    ++assigned;
  }
  return counts;
}

/// Initial path counts per commodity approximating the target flow.
std::vector<std::size_t> initial_counts(const Commodity& commodity,
                                        std::span<const double> flow,
                                        std::size_t agents) {
  const std::size_t m = commodity.paths.size();
  std::vector<std::size_t> counts(m, 0);
  std::size_t assigned = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const double share =
        std::max(flow[commodity.paths[j].index()], 0.0) / commodity.demand;
    counts[j] = static_cast<std::size_t>(
        std::floor(share * static_cast<double>(agents)));
    assigned += counts[j];
  }
  // Greedily hand out the rounding remainder to the largest fractional
  // parts (deterministic: first-come order is fine for validation).
  std::size_t j = 0;
  while (assigned < agents) {
    const double share =
        std::max(flow[commodity.paths[j].index()], 0.0) / commodity.demand;
    const double frac = share * static_cast<double>(agents) -
                        std::floor(share * static_cast<double>(agents));
    if (frac > 0.0 || assigned + (m - j) >= agents) {
      ++counts[j];
      ++assigned;
    }
    j = (j + 1) % m;
  }
  return counts;
}

}  // namespace

AgentSimulator::AgentSimulator(const Instance& instance, const Policy& policy)
    : instance_(&instance), policy_(&policy) {}

AgentSimResult AgentSimulator::run(const FlowVector& initial,
                                   const AgentSimOptions& options,
                                   const PhaseObserver& observer) const {
  if (!is_feasible(*instance_, initial.values(), 1e-7)) {
    throw std::invalid_argument("AgentSimulator::run: infeasible start");
  }
  if (!(options.update_period > 0.0) || !(options.horizon > 0.0)) {
    throw std::invalid_argument("AgentSimulator::run: bad options");
  }

  Rng rng(options.seed);
  const std::size_t k = instance_->commodity_count();
  const std::vector<std::size_t> agents_per_commodity =
      allocate_agents(*instance_, options.num_agents);

  // Set up agents and empirical flow.
  std::vector<CommodityAgents> population(k);
  std::vector<double> empirical(instance_->path_count(), 0.0);
  std::vector<std::size_t> agent_commodity;  // global agent id -> commodity
  agent_commodity.reserve(options.num_agents);
  std::vector<std::size_t> agent_local;  // global agent id -> local index
  agent_local.reserve(options.num_agents);

  for (std::size_t c = 0; c < k; ++c) {
    const Commodity& commodity = instance_->commodity(CommodityId{c});
    CommodityAgents& pop = population[c];
    const std::size_t n_c = agents_per_commodity[c];
    pop.flow_per_agent = commodity.demand / static_cast<double>(n_c);
    const std::vector<std::size_t> counts =
        initial_counts(commodity, initial.values(), n_c);
    for (std::size_t j = 0; j < counts.size(); ++j) {
      for (std::size_t a = 0; a < counts[j]; ++a) {
        agent_commodity.push_back(c);
        agent_local.push_back(pop.path_of_agent.size());
        pop.path_of_agent.push_back(j);
      }
      empirical[commodity.paths[j].index()] +=
          static_cast<double>(counts[j]) * pop.flow_per_agent;
    }
  }

  BulletinBoard board(*instance_);
  // Per-commodity sampling distribution, fixed within a phase.
  std::vector<std::vector<double>> sampling_cdf(k);
  auto refresh_board = [&](double now) {
    board.post(now, empirical);
    for (std::size_t c = 0; c < k; ++c) {
      const Commodity& commodity = instance_->commodity(CommodityId{c});
      std::vector<double>& cdf = sampling_cdf[c];
      cdf.resize(commodity.paths.size());
      policy_->sampling().distribution(*instance_, commodity,
                                       board.path_flow(),
                                       board.path_latency(), cdf);
      double acc = 0.0;
      for (double& v : cdf) {
        acc += v;
        v = acc;
      }
      // Defend against round-off in the final bucket.
      if (!cdf.empty()) cdf.back() = std::max(cdf.back(), 1.0);
    }
  };

  AgentSimResult result{FlowVector(*instance_, empirical)};
  const double total_rate = static_cast<double>(options.num_agents);
  std::vector<double> flow_before = empirical;

  // Regret accounting: per-path latency integrals and the flow-weighted
  // experienced latency, accumulated per completed phase at its left
  // endpoint (the board's own snapshot).
  std::vector<double> cumulative_latency(instance_->path_count(), 0.0);
  double experienced_integral = 0.0;
  double accounted_time = 0.0;
  auto account_phase_latency = [&]() {
    const double T = options.update_period;
    for (std::size_t p = 0; p < instance_->path_count(); ++p) {
      const double l_hat = board.path_latency()[p];
      cumulative_latency[p] += l_hat * T;
      experienced_integral += board.path_flow()[p] * l_hat * T;
    }
    accounted_time += T;
  };

  double t = 0.0;
  std::size_t phase = 0;
  refresh_board(0.0);
  double next_update = options.update_period;

  while (t < options.horizon) {
    const double wait = rng.exponential(total_rate);
    double next_t = t + wait;

    // Process any board updates that occur before the next activation.
    while (next_update <= std::min(next_t, options.horizon)) {
      account_phase_latency();
      ++phase;
      if (observer) {
        PhaseInfo info;
        info.index = phase - 1;
        info.start_time = next_update - options.update_period;
        info.end_time = next_update;
        info.flow_before = flow_before;
        info.flow_after = empirical;
        observer(info);
      }
      refresh_board(next_update);
      flow_before = empirical;
      next_update += options.update_period;
    }
    if (next_t >= options.horizon) {
      t = options.horizon;
      break;
    }
    t = next_t;

    // Activate one uniformly random agent.
    const auto agent = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(options.num_agents)));
    ++result.activations;
    const std::size_t c = agent_commodity[agent];
    const Commodity& commodity = instance_->commodity(CommodityId{c});
    CommodityAgents& pop = population[c];
    const std::size_t current_local = pop.path_of_agent[agent_local[agent]];

    // Sample a candidate path from the phase-constant distribution.
    const std::vector<double>& cdf = sampling_cdf[c];
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto sampled_local = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(cdf.size()) - 1));
    if (sampled_local == current_local) continue;

    const double l_current =
        board.path_latency()[commodity.paths[current_local].index()];
    const double l_sampled =
        board.path_latency()[commodity.paths[sampled_local].index()];
    const double mu = policy_->migration().probability(l_current, l_sampled);
    if (!rng.bernoulli(mu)) continue;

    // Migrate.
    pop.path_of_agent[agent_local[agent]] = sampled_local;
    empirical[commodity.paths[current_local].index()] -= pop.flow_per_agent;
    empirical[commodity.paths[sampled_local].index()] += pop.flow_per_agent;
    ++result.migrations;
  }

  result.final_flow = FlowVector(*instance_, empirical);
  result.final_time = t;
  result.phases = phase;

  if (accounted_time > 0.0) {
    // Total demand is normalised to 1, so the population average is the
    // raw integral divided by time.
    result.average_experienced_latency =
        experienced_integral / accounted_time;
    for (std::size_t c = 0; c < k; ++c) {
      const Commodity& commodity = instance_->commodity(CommodityId{c});
      double best = std::numeric_limits<double>::infinity();
      for (const PathId p : commodity.paths) {
        best = std::min(best, cumulative_latency[p.index()]);
      }
      result.hindsight_best_latency +=
          commodity.demand * best / accounted_time;
    }
    result.average_regret = result.average_experienced_latency -
                            result.hindsight_best_latency;
  }
  return result;
}

}  // namespace staleflow
