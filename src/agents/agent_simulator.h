// Finite-population stochastic simulator.
//
// The paper analyses the fluid limit (infinitely many infinitesimal
// agents). This simulator runs the *pre-limit* process: N discrete agents,
// each activated by an independent unit-rate Poisson clock, sampling and
// migrating against the same bulletin board. It validates that the fluid
// ODE is the right abstraction: empirical flows converge to the fluid
// trajectory as N grows (bench E10).
#pragma once

#include <cstdint>
#include <vector>

#include "core/fluid_simulator.h"
#include "core/policy.h"
#include "net/flow.h"
#include "net/instance.h"
#include "util/rng.h"

namespace staleflow {

struct AgentSimOptions {
  /// Total number of agents (allocated to commodities proportionally to
  /// demand; each agent carries demand_i / N_i flow).
  std::size_t num_agents = 10'000;
  /// Bulletin-board period T > 0.
  double update_period = 0.1;
  double horizon = 10.0;
  std::uint64_t seed = 1;
};

struct AgentSimResult {
  /// Empirical path flow at the end of the run.
  FlowVector final_flow;
  double final_time = 0.0;
  std::size_t phases = 0;
  /// Total number of agent activations processed.
  std::size_t activations = 0;
  /// Number of activations that resulted in a migration.
  std::size_t migrations = 0;

  // Regret accounting (related work [1,5]: no-regret routing). Latency
  // integrals use the left endpoint of each completed board phase
  // (flows and latencies as posted), so they are exact in the limit of
  // short phases and ignore the trailing partial phase.
  /// Population-average sustained latency per unit time,
  /// (1/t) INT sum_P f_P l_P dt.
  double average_experienced_latency = 0.0;
  /// Demand-weighted average over commodities of the best fixed path in
  /// hindsight, sum_i r_i min_{P in P_i} (1/t) INT l_P dt.
  double hindsight_best_latency = 0.0;
  /// average_experienced_latency - hindsight_best_latency; approaches 0
  /// when the dynamics converges (agents become no-regret on average).
  double average_regret = 0.0;
};

/// Event-driven (Gillespie) simulation of N agents under a policy.
///
/// Thread-safety: run() is const, seeds its own Rng from the options and
/// keeps all state local; concurrent runs against the same
/// Instance/Policy are safe.
class AgentSimulator {
 public:
  AgentSimulator(const Instance& instance, const Policy& policy);

  /// Runs from an initial assignment that approximates `initial` (counts
  /// are rounded; rounding drift is corrected greedily). The observer is
  /// invoked at every bulletin-board update with the empirical flows.
  AgentSimResult run(const FlowVector& initial, const AgentSimOptions& options,
                     const PhaseObserver& observer = nullptr) const;

 private:
  const Instance* instance_;
  const Policy* policy_;
};

}  // namespace staleflow
