#include "agents/population.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace staleflow {
namespace {

/// Allocates `num_clients` across commodities proportionally to demand,
/// guaranteeing at least one client per commodity.
std::vector<std::size_t> allocate_clients(const Instance& instance,
                                          std::size_t num_clients) {
  const std::size_t k = instance.commodity_count();
  if (num_clients < k) {
    throw std::invalid_argument(
        "Population: need at least one client per commodity");
  }
  std::vector<std::size_t> counts(k, 1);
  std::size_t assigned = k;
  for (std::size_t c = 0; c < k && assigned < num_clients; ++c) {
    const double demand = instance.commodity(CommodityId{c}).demand;
    const auto extra = static_cast<std::size_t>(
        std::floor(demand * static_cast<double>(num_clients)));
    const std::size_t grant = std::min(extra > 0 ? extra - 1 : 0,
                                       num_clients - assigned);
    counts[c] += grant;
    assigned += grant;
  }
  // Distribute any remainder round-robin.
  for (std::size_t c = 0; assigned < num_clients; c = (c + 1) % k) {
    ++counts[c];
    ++assigned;
  }
  return counts;
}

/// Initial path counts per commodity approximating the target flow.
std::vector<std::size_t> initial_counts(const Commodity& commodity,
                                        std::span<const double> flow,
                                        std::size_t clients) {
  const std::size_t m = commodity.paths.size();
  std::vector<std::size_t> counts(m, 0);
  std::size_t assigned = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const double share =
        std::max(flow[commodity.paths[j].index()], 0.0) / commodity.demand;
    counts[j] = static_cast<std::size_t>(
        std::floor(share * static_cast<double>(clients)));
    assigned += counts[j];
  }
  // Greedily hand out the rounding remainder to the largest fractional
  // parts (deterministic: first-come order is fine for validation).
  std::size_t j = 0;
  while (assigned < clients) {
    const double share =
        std::max(flow[commodity.paths[j].index()], 0.0) / commodity.demand;
    const double frac = share * static_cast<double>(clients) -
                        std::floor(share * static_cast<double>(clients));
    if (frac > 0.0 || assigned + (m - j) >= clients) {
      ++counts[j];
      ++assigned;
    }
    j = (j + 1) % m;
  }
  return counts;
}

}  // namespace

Population::Population(const Instance& instance, std::size_t num_clients,
                       std::span<const double> target)
    : instance_(&instance),
      clients_per_commodity_(allocate_clients(instance, num_clients)),
      flow_per_client_(instance.commodity_count(), 0.0),
      empirical_(instance.path_count(), 0.0) {
  commodity_.reserve(num_clients);
  local_path_.reserve(num_clients);
  const std::size_t k = instance.commodity_count();
  for (std::size_t c = 0; c < k; ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    const std::size_t n_c = clients_per_commodity_[c];
    flow_per_client_[c] = commodity.demand / static_cast<double>(n_c);
    const std::vector<std::size_t> counts =
        initial_counts(commodity, target, n_c);
    for (std::size_t j = 0; j < counts.size(); ++j) {
      for (std::size_t a = 0; a < counts[j]; ++a) {
        commodity_.push_back(static_cast<std::uint32_t>(c));
        local_path_.push_back(static_cast<std::uint32_t>(j));
      }
      empirical_[commodity.paths[j].index()] +=
          static_cast<double>(counts[j]) * flow_per_client_[c];
    }
  }
}

PathId Population::path_of(std::size_t client) const {
  const Commodity& commodity = instance_->commodity(commodity_of(client));
  return commodity.paths[local_path_[client]];
}

void Population::migrate(std::size_t client, std::size_t target) {
  const Commodity& commodity = instance_->commodity(commodity_of(client));
  const double flow = flow_per_client_[commodity_[client]];
  empirical_[commodity.paths[local_path_[client]].index()] -= flow;
  empirical_[commodity.paths[target].index()] += flow;
  local_path_[client] = static_cast<std::uint32_t>(target);
}

}  // namespace staleflow
