// A finite client population partitioned across commodities.
//
// The offline AgentSimulator and the online RouteServer simulate the same
// pre-limit object: N discrete clients, each pinned to one commodity,
// currently sitting on one of its paths and carrying demand_i / N_i flow.
// This class is that shared state — the allocation of clients to
// commodities (proportional to demand, at least one each), the initial
// path assignment approximating a target flow, and the induced empirical
// path-flow vector.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/instance.h"

namespace staleflow {

class Population {
 public:
  /// Allocates `num_clients` across commodities proportionally to demand
  /// (at least one each; throws std::invalid_argument when num_clients <
  /// commodity_count()) and assigns each client to a path so the empirical
  /// flow approximates `target` (counts are rounded; rounding drift is
  /// corrected greedily). Client ids enumerate commodities in order, then
  /// paths in local order — the layout is deterministic.
  Population(const Instance& instance, std::size_t num_clients,
             std::span<const double> target);

  std::size_t size() const noexcept { return commodity_.size(); }

  CommodityId commodity_of(std::size_t client) const {
    return CommodityId{static_cast<std::size_t>(commodity_[client])};
  }

  /// Index into the client's commodity path list.
  std::size_t local_path(std::size_t client) const {
    return local_path_[client];
  }

  /// Global path the client currently uses.
  PathId path_of(std::size_t client) const;

  /// Flow volume the client carries (its commodity's demand_i / N_i).
  double flow_of(std::size_t client) const {
    return flow_per_client_[commodity_[client]];
  }

  std::size_t clients_of(CommodityId c) const {
    return clients_per_commodity_[c.index()];
  }

  /// Empirical path flow induced by the assignment. Reflects migrate()
  /// calls only — reassign() leaves it to the caller's own accounting.
  std::span<const double> empirical_flow() const noexcept {
    return empirical_;
  }

  /// Moves the client to local path `target` and updates the empirical
  /// flow (single-threaded use: AgentSimulator).
  void migrate(std::size_t client, std::size_t target);

  /// Moves the client without touching the shared empirical flow; the
  /// caller accounts the flow deltas itself. Distinct clients may be
  /// reassigned from distinct threads concurrently (sharded server mode).
  void reassign(std::size_t client, std::size_t target) {
    local_path_[client] = static_cast<std::uint32_t>(target);
  }

 private:
  const Instance* instance_;
  std::vector<std::uint32_t> commodity_;   // by client
  std::vector<std::uint32_t> local_path_;  // by client
  std::vector<std::size_t> clients_per_commodity_;
  std::vector<double> flow_per_client_;    // by commodity
  std::vector<double> empirical_;          // by path
};

}  // namespace staleflow
