#include "analysis/accounting.h"

#include <algorithm>

namespace staleflow {

AccountingRecorder::AccountingRecorder(const Instance& instance)
    : instance_(&instance) {}

PhaseObserver AccountingRecorder::observer() {
  return [this](const PhaseInfo& info) {
    records_.push_back(
        account_phase(*instance_, info.flow_before, info.flow_after));
  };
}

double AccountingRecorder::max_identity_residual() const {
  double worst = 0.0;
  for (const PhaseAccounting& r : records_) {
    worst = std::max(worst, r.identity_residual);
  }
  return worst;
}

std::size_t AccountingRecorder::lemma4_violations() const {
  std::size_t count = 0;
  for (const PhaseAccounting& r : records_) {
    if (!r.lemma4_holds) ++count;
  }
  return count;
}

double AccountingRecorder::max_delta_phi() const {
  double worst = 0.0;
  for (const PhaseAccounting& r : records_) {
    worst = std::max(worst, r.delta_phi);
  }
  return worst;
}

}  // namespace staleflow
