// Per-phase potential accounting recorder (Lemmas 3 and 4).
#pragma once

#include <vector>

#include "core/fluid_simulator.h"
#include "equilibrium/potential.h"
#include "net/instance.h"

namespace staleflow {

/// Records a PhaseAccounting entry for every simulated phase, so tests and
/// benches can verify the Lemma 3 identity and the Lemma 4 inequality
/// round by round.
class AccountingRecorder {
 public:
  explicit AccountingRecorder(const Instance& instance);

  PhaseObserver observer();

  const std::vector<PhaseAccounting>& records() const noexcept {
    return records_;
  }

  /// Largest Lemma 3 identity residual across all phases (should be ~0).
  double max_identity_residual() const;

  /// Number of phases where Lemma 4's Delta-Phi <= V/2 failed.
  std::size_t lemma4_violations() const;

  /// Largest observed potential increase across a phase (0 when the
  /// potential only ever decreased).
  double max_delta_phi() const;

 private:
  const Instance* instance_;
  std::vector<PhaseAccounting> records_;
};

}  // namespace staleflow
