#include "analysis/convergence.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/statistics.h"

namespace staleflow {

DecayEstimate estimate_decay(std::span<const double> times,
                             std::span<const double> values) {
  if (times.size() != values.size()) {
    throw std::invalid_argument("estimate_decay: size mismatch");
  }
  std::vector<double> ts, logs;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] > 0.0 && std::isfinite(values[i])) {
      ts.push_back(times[i]);
      logs.push_back(std::log(values[i]));
    }
  }
  DecayEstimate estimate;
  if (ts.size() < 3) return estimate;
  // Guard against constant times (all samples at one instant).
  bool varies = false;
  for (std::size_t i = 1; i < ts.size(); ++i) {
    if (ts[i] != ts[0]) {
      varies = true;
      break;
    }
  }
  if (!varies) return estimate;
  const LinearFit fit = fit_line(ts, logs);
  estimate.rate = -fit.slope;
  estimate.coefficient = std::exp(fit.intercept);
  estimate.r_squared = fit.r_squared;
  estimate.valid = true;
  return estimate;
}

DecayEstimate estimate_gap_decay(std::span<const PhaseSample> samples) {
  std::vector<double> times, gaps;
  times.reserve(samples.size());
  gaps.reserve(samples.size());
  for (const PhaseSample& s : samples) {
    times.push_back(s.time);
    gaps.push_back(s.gap);
  }
  return estimate_decay(times, gaps);
}

std::optional<std::size_t> settling_index(std::span<const double> series,
                                          double tolerance,
                                          std::size_t consecutive) {
  if (consecutive == 0) consecutive = 1;
  std::size_t run = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i] <= tolerance) {
      if (++run >= consecutive) return i + 1 - consecutive;
    } else {
      run = 0;
    }
  }
  return std::nullopt;
}

}  // namespace staleflow
