// Convergence-rate estimation for recorded trajectories.
//
// The theorems bound *counts of bad rounds*; empirically the gap and the
// potential surplus usually decay exponentially. These helpers quantify
// that: fit gap(t) ~ C * exp(-rate * t) over the decaying part of a
// trajectory and locate the settling time.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "analysis/trajectory.h"

namespace staleflow {

struct DecayEstimate {
  /// gap(t) ~ coefficient * exp(-rate * t).
  double rate = 0.0;
  double coefficient = 0.0;
  /// Goodness of the log-linear fit in [0, 1].
  double r_squared = 0.0;
  /// False if there were not enough strictly positive samples to fit.
  bool valid = false;
};

/// Fits an exponential to (times, values). Non-positive values (already
/// converged to numerical zero) are excluded; requires >= 3 usable
/// points, else returns an invalid estimate.
DecayEstimate estimate_decay(std::span<const double> times,
                             std::span<const double> values);

/// Convenience overload on a recorded trajectory's gap series.
DecayEstimate estimate_gap_decay(std::span<const PhaseSample> samples);

/// First index i such that series[j] <= tolerance for all j in
/// [i, i + consecutive); nullopt if the series never settles that long.
std::optional<std::size_t> settling_index(std::span<const double> series,
                                          double tolerance,
                                          std::size_t consecutive = 1);

}  // namespace staleflow
