#include "analysis/oscillation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace staleflow {
namespace {

double inf_distance(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

OscillationReport analyse_oscillation(
    std::span<const std::vector<double>> flow_snapshots, std::size_t window,
    double tolerance) {
  if (flow_snapshots.size() < 4) {
    throw std::invalid_argument(
        "analyse_oscillation: need at least 4 snapshots");
  }
  if (window == 0) window = flow_snapshots.size() / 2;
  window = std::min(window, flow_snapshots.size() - 2);
  const std::size_t begin = flow_snapshots.size() - 2 - window;

  OscillationReport report;
  for (std::size_t i = begin; i + 2 < flow_snapshots.size(); ++i) {
    report.step_amplitude =
        std::max(report.step_amplitude,
                 inf_distance(flow_snapshots[i], flow_snapshots[i + 1]));
    report.period2_residual =
        std::max(report.period2_residual,
                 inf_distance(flow_snapshots[i], flow_snapshots[i + 2]));
  }
  report.settled = report.step_amplitude <= tolerance;
  report.period_two =
      !report.settled && report.period2_residual <= tolerance;
  return report;
}

double tail_amplitude(std::span<const double> series, std::size_t window) {
  if (series.empty()) {
    throw std::invalid_argument("tail_amplitude: empty series");
  }
  window = std::min(window, series.size());
  if (window == 0) window = series.size();
  const auto tail = series.subspan(series.size() - window);
  const auto [lo, hi] = std::minmax_element(tail.begin(), tail.end());
  return *hi - *lo;
}

}  // namespace staleflow
