// Oscillation detection for flow trajectories.
//
// Section 3.2 shows best response under staleness enters an exact period-2
// orbit on the two-link pulse instance. These helpers classify recorded
// trajectories: does the tail settle (converge) or cycle, and with what
// amplitude?
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace staleflow {

struct OscillationReport {
  /// max over the tail window of || f(i) - f(i+1) ||_inf: movement between
  /// consecutive phases. ~0 for settled trajectories.
  double step_amplitude = 0.0;
  /// max over the tail window of || f(i) - f(i+2) ||_inf: deviation from a
  /// period-2 orbit. ~0 for exact period-2 cycles.
  double period2_residual = 0.0;
  /// True if the tail moves (step_amplitude > tolerance) but returns every
  /// other phase (period2_residual <= tolerance).
  bool period_two = false;
  /// True if the tail does not move at all (step_amplitude <= tolerance).
  bool settled = false;
};

/// Analyses the last `window` snapshots of a flow trajectory (phase-start
/// or phase-end flows taken at equal spacing). Requires at least
/// window + 2 snapshots; pass window = 0 to use half the trajectory.
OscillationReport analyse_oscillation(
    std::span<const std::vector<double>> flow_snapshots,
    std::size_t window = 0, double tolerance = 1e-6);

/// Peak-to-peak amplitude of a scalar series' tail window (e.g. potential
/// or max-deviation series): max - min over the last `window` entries.
double tail_amplitude(std::span<const double> series, std::size_t window);

}  // namespace staleflow
