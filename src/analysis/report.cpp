#include "analysis/report.h"

#include <sstream>

#include "equilibrium/metrics.h"
#include "equilibrium/potential.h"
#include "equilibrium/social.h"
#include "net/flow.h"
#include "util/table.h"

namespace staleflow {

FlowReport make_report(const Instance& instance,
                       std::span<const double> path_flow) {
  const FlowEvaluation eval = evaluate(instance, path_flow);
  FlowReport report;
  report.potential = potential(instance, path_flow);
  report.gap = wardrop_gap(instance, path_flow, eval);
  report.average_latency = eval.average_latency;
  report.social_cost = social_cost(instance, path_flow);

  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    CommodityReport cr;
    cr.id = CommodityId{c};
    cr.demand = commodity.demand;
    cr.min_latency = eval.commodity_min_latency[c];
    cr.avg_latency = eval.commodity_avg_latency[c];
    for (const PathId p : commodity.paths) {
      if (path_flow[p.index()] > 1e-9) ++cr.active_paths;
      cr.gap_share += path_flow[p.index()] *
                      (eval.path_latency[p.index()] -
                       eval.commodity_min_latency[c]);
    }
    report.commodities.push_back(cr);
  }
  return report;
}

std::string format_report(const Instance& instance,
                          const FlowReport& report) {
  std::ostringstream os;
  os << instance.describe() << "\n"
     << "potential " << fmt(report.potential, 6) << "  gap "
     << fmt_sci(report.gap) << "  avg latency "
     << fmt(report.average_latency, 6) << "  social cost "
     << fmt(report.social_cost, 6) << "\n";
  Table table({"commodity", "demand", "min latency", "avg latency",
               "gap share", "active paths"});
  for (const CommodityReport& cr : report.commodities) {
    table.add_row({"c" + std::to_string(cr.id.value), fmt(cr.demand, 4),
                   fmt(cr.min_latency, 6), fmt(cr.avg_latency, 6),
                   fmt_sci(cr.gap_share),
                   fmt_int(static_cast<long long>(cr.active_paths))});
  }
  os << table.to_string();
  return os.str();
}

std::string describe_flow(const Instance& instance,
                          std::span<const double> path_flow) {
  return format_report(instance, make_report(instance, path_flow));
}

}  // namespace staleflow
