// Human-readable state reports: the "show me the network right now" layer
// used by the CLI and the examples.
#pragma once

#include <span>
#include <string>

#include "net/instance.h"

namespace staleflow {

/// Per-commodity snapshot derived from a flow vector.
struct CommodityReport {
  CommodityId id;
  double demand = 0.0;
  double min_latency = 0.0;
  double avg_latency = 0.0;
  /// Flow-weighted excess over the commodity minimum (the commodity's
  /// share of the Wardrop gap).
  double gap_share = 0.0;
  /// Number of paths carrying more than 1e-9 flow.
  std::size_t active_paths = 0;
};

/// Whole-network snapshot.
struct FlowReport {
  double potential = 0.0;
  double gap = 0.0;
  double average_latency = 0.0;
  double social_cost = 0.0;
  std::vector<CommodityReport> commodities;
};

/// Computes a FlowReport for a feasible flow vector.
FlowReport make_report(const Instance& instance,
                       std::span<const double> path_flow);

/// Renders the report as an aligned text block (one line per commodity
/// plus a header with the global quantities).
std::string format_report(const Instance& instance, const FlowReport& report);

/// Convenience: make + format in one call.
std::string describe_flow(const Instance& instance,
                          std::span<const double> path_flow);

}  // namespace staleflow
