#include "analysis/round_counter.h"

#include <stdexcept>

#include "equilibrium/metrics.h"

namespace staleflow {

RoundCounter::RoundCounter(const Instance& instance, Mode mode, double delta,
                           double eps)
    : instance_(&instance), mode_(mode), delta_(delta), eps_(eps) {
  if (!(delta > 0.0) || !(eps > 0.0)) {
    throw std::invalid_argument("RoundCounter: delta and eps must be > 0");
  }
}

PhaseObserver RoundCounter::observer() {
  return [this](const PhaseInfo& info) { record(info); };
}

void RoundCounter::record(const PhaseInfo& info) {
  ++total_;
  const double volume =
      mode_ == Mode::kStrict
          ? unsatisfied_volume(*instance_, info.flow_before, delta_)
          : weakly_unsatisfied_volume(*instance_, info.flow_before, delta_);
  if (volume > eps_) {
    ++bad_;
    last_bad_ = info.index;
  }
}

}  // namespace staleflow
