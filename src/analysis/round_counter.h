// Round classification for Theorems 6 and 7.
//
// Both theorems bound "the number of update periods not *starting* at a
// (weak) (delta, eps)-equilibrium". This counter classifies every phase by
// its starting flow and tallies the bad rounds.
#pragma once

#include <cstddef>

#include "core/fluid_simulator.h"
#include "net/instance.h"

namespace staleflow {

/// Counts phases whose starting flow fails the chosen approximate
/// equilibrium test.
class RoundCounter {
 public:
  enum class Mode {
    kStrict,  // Definition 3: l_P > l^i_min + delta
    kWeak     // Definition 4: l_P > L_i + delta
  };

  RoundCounter(const Instance& instance, Mode mode, double delta, double eps);

  /// Adapter usable as a simulator observer; the counter must outlive it.
  PhaseObserver observer();

  std::size_t total_rounds() const noexcept { return total_; }
  std::size_t bad_rounds() const noexcept { return bad_; }
  /// Index of the last bad round (total_rounds() if none were bad, so it
  /// can be used as "rounds until permanently good" only with care).
  std::size_t last_bad_round() const noexcept { return last_bad_; }

 private:
  void record(const PhaseInfo& info);

  const Instance* instance_;
  Mode mode_;
  double delta_;
  double eps_;
  std::size_t total_ = 0;
  std::size_t bad_ = 0;
  std::size_t last_bad_ = 0;
};

}  // namespace staleflow
