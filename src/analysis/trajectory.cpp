#include "analysis/trajectory.h"

#include <algorithm>

#include "equilibrium/metrics.h"
#include "equilibrium/potential.h"

namespace staleflow {

TrajectoryRecorder::TrajectoryRecorder(const Instance& instance,
                                       Options options)
    : instance_(&instance), options_(options) {
  if (options_.stride == 0) options_.stride = 1;
}

PhaseObserver TrajectoryRecorder::observer() {
  return [this](const PhaseInfo& info) { record(info); };
}

void TrajectoryRecorder::record(const PhaseInfo& info) {
  if (info.index % options_.stride != 0) return;
  const std::span<const double> f = info.flow_after;

  PhaseSample sample;
  sample.phase = info.index;
  sample.time = info.end_time;
  sample.potential = potential(*instance_, f);
  const FlowEvaluation eval = evaluate(*instance_, f);
  sample.gap = wardrop_gap(*instance_, f, eval);
  sample.average_latency = eval.average_latency;
  sample.max_deviation = max_latency_deviation(*instance_, f, 1e-9);
  sample.unsatisfied = unsatisfied_volume(*instance_, f, options_.delta);
  sample.weakly_unsatisfied =
      weakly_unsatisfied_volume(*instance_, f, options_.delta);
  samples_.push_back(sample);

  if (options_.store_flows) {
    flows_.emplace_back(f.begin(), f.end());
  }
}

std::optional<double> TrajectoryRecorder::time_to_gap(
    double threshold) const {
  for (const PhaseSample& s : samples_) {
    if (s.gap <= threshold) return s.time;
  }
  return std::nullopt;
}

double TrajectoryRecorder::max_potential_increase() const {
  double worst = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    worst = std::max(worst,
                     samples_[i].potential - samples_[i - 1].potential);
  }
  return worst;
}

}  // namespace staleflow
