// Trajectory recording: turns the simulators' per-phase callbacks into
// time series of the quantities the paper reasons about.
#pragma once

#include <optional>
#include <vector>

#include "core/fluid_simulator.h"
#include "net/instance.h"

namespace staleflow {

/// One recorded phase boundary.
struct PhaseSample {
  std::size_t phase = 0;
  double time = 0.0;             // end of the phase
  double potential = 0.0;        // Phi(f)
  double gap = 0.0;              // Wardrop gap
  double average_latency = 0.0;  // L
  double max_deviation = 0.0;    // max_{used P} l_P - l^i_min
  double unsatisfied = 0.0;      // volume of delta-unsatisfied agents
  double weakly_unsatisfied = 0.0;
};

/// Configuration for TrajectoryRecorder.
struct TrajectoryOptions {
  /// delta used for the (weak) unsatisfied volumes.
  double delta = 0.01;
  /// Keep a copy of f at every phase boundary (memory: |P| per phase).
  bool store_flows = false;
  /// Record only every n-th phase (1 = all).
  std::size_t stride = 1;
};

/// Records a PhaseSample per phase (evaluated at the end-of-phase flow).
/// Optionally keeps full flow snapshots for oscillation analysis.
class TrajectoryRecorder {
 public:
  using Options = TrajectoryOptions;

  explicit TrajectoryRecorder(const Instance& instance, Options options = {});

  /// Adapter usable as FluidSimulator / BestResponseSimulator /
  /// AgentSimulator observer. The recorder must outlive the returned
  /// callable.
  PhaseObserver observer();

  const std::vector<PhaseSample>& samples() const noexcept {
    return samples_;
  }
  const std::vector<std::vector<double>>& flows() const noexcept {
    return flows_;
  }

  /// First recorded time at which the gap was <= `threshold`, if any.
  std::optional<double> time_to_gap(double threshold) const;

  /// Potential values must be non-increasing for convergent runs; returns
  /// the largest observed increase between consecutive samples (0 for a
  /// monotone trajectory).
  double max_potential_increase() const;

 private:
  void record(const PhaseInfo& info);

  const Instance* instance_;
  Options options_;
  std::vector<PhaseSample> samples_;
  std::vector<std::vector<double>> flows_;
};

}  // namespace staleflow
