#include "core/best_response.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "equilibrium/metrics.h"
#include "equilibrium/potential.h"

namespace staleflow {

FlowVector best_reply_flow(const Instance& instance,
                           std::span<const double> path_latency,
                           double tie_tolerance) {
  if (path_latency.size() != instance.path_count()) {
    throw std::invalid_argument("best_reply_flow: wrong latency count");
  }
  FlowVector reply(instance);
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    double lo = std::numeric_limits<double>::infinity();
    for (const PathId p : commodity.paths) {
      lo = std::min(lo, path_latency[p.index()]);
    }
    std::vector<PathId> winners;
    for (const PathId p : commodity.paths) {
      if (path_latency[p.index()] <= lo + tie_tolerance) {
        winners.push_back(p);
      }
    }
    const double share =
        commodity.demand / static_cast<double>(winners.size());
    for (const PathId p : winners) reply[p] = share;
  }
  return reply;
}

BestResponseSimulator::BestResponseSimulator(const Instance& instance)
    : instance_(&instance) {}

SimulationResult BestResponseSimulator::run(
    const FlowVector& initial, const BestResponseOptions& options,
    const PhaseObserver& observer) const {
  if (!is_feasible(*instance_, initial.values(), 1e-7)) {
    throw std::invalid_argument("BestResponseSimulator::run: infeasible start");
  }
  if (!(options.update_period > 0.0) || !(options.horizon > 0.0)) {
    throw std::invalid_argument(
        "BestResponseSimulator::run: update_period and horizon must be > 0");
  }

  SimulationResult result{initial};
  std::vector<double>& f = result.final_flow.mutable_values();
  std::vector<double> flow_before(f.size());

  double t = 0.0;
  std::size_t phase = 0;
  // Multiplicative phase boundaries avoid a round-off sliver phase.
  while (phase < options.max_phases) {
    const double t_start =
        options.update_period * static_cast<double>(phase);
    if (t_start >= options.horizon * (1.0 - 1e-12)) break;
    const double t_end =
        std::min(options.update_period * static_cast<double>(phase + 1),
                 options.horizon);
    const double tau = t_end - t_start;
    t = t_start;
    flow_before = f;

    // Board snapshot and the closed-form phase solution.
    const std::vector<double> latency = path_latencies(*instance_, f);
    const FlowVector reply =
        best_reply_flow(*instance_, latency, options.tie_tolerance);
    const double decay = std::exp(-tau);
    for (std::size_t p = 0; p < f.size(); ++p) {
      f[p] = reply[PathId{p}] + (flow_before[p] - reply[PathId{p}]) * decay;
    }

    t = t_end;
    ++phase;

    if (observer) {
      PhaseInfo info;
      info.index = phase - 1;
      info.start_time = t_start;
      info.end_time = t_end;
      info.flow_before = flow_before;
      info.flow_after = f;
      observer(info);
    }

    if (options.stop_gap > 0.0 &&
        wardrop_gap(*instance_, f) <= options.stop_gap) {
      result.stopped_by_gap = true;
      break;
    }
  }

  result.final_time = t;
  result.phases = phase;
  result.final_potential = potential(*instance_, f);
  result.final_gap = wardrop_gap(*instance_, f);
  return result;
}

}  // namespace staleflow
