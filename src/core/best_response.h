// Best response dynamics under stale information (Eqs. (2) and (4)).
//
// Every activated agent switches to a minimum-latency path of its
// commodity as shown on the bulletin board. In the fluid limit the flow
// decays exponentially towards the best-reply flow b(f̂):
//   f(t̂ + tau) = b + (f(t̂) - b) * e^{-tau},
// which this simulator evaluates in closed form — no integrator error.
// Section 3.2 of the paper proves this dynamics oscillates forever on the
// two-link pulse instance for every T > 0.
#pragma once

#include <span>

#include "core/fluid_simulator.h"
#include "net/flow.h"
#include "net/instance.h"

namespace staleflow {

struct BestResponseOptions {
  /// Bulletin-board period T > 0.
  double update_period = 0.1;
  double horizon = 100.0;
  /// Latencies within this of the minimum count as best replies and share
  /// the commodity's demand equally (0 = exact ties only).
  double tie_tolerance = 0.0;
  /// Early stop once the Wardrop gap falls to or below this (0 disables).
  double stop_gap = 0.0;
  std::size_t max_phases = std::numeric_limits<std::size_t>::max();
};

/// Best-reply flow against the given path latencies: each commodity's
/// demand split equally over its (near-)minimum-latency paths.
FlowVector best_reply_flow(const Instance& instance,
                           std::span<const double> path_latency,
                           double tie_tolerance = 0.0);

/// Simulates Eq. (4): best response against the bulletin board, solved
/// exactly per phase. Reuses PhaseInfo / SimulationResult from the fluid
/// simulator so analysis tooling works on both.
class BestResponseSimulator {
 public:
  explicit BestResponseSimulator(const Instance& instance);

  SimulationResult run(const FlowVector& initial,
                       const BestResponseOptions& options,
                       const PhaseObserver& observer = nullptr) const;

 private:
  const Instance* instance_;
};

}  // namespace staleflow
