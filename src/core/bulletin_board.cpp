#include "core/bulletin_board.h"

#include <stdexcept>

namespace staleflow {

BulletinBoard::BulletinBoard(const Instance& instance)
    : instance_(&instance),
      path_flow_(instance.path_count(), 0.0),
      edge_latency_(instance.edge_count(), 0.0),
      path_latency_(instance.path_count(), 0.0) {}

void BulletinBoard::post(double now, std::span<const double> path_flow) {
  if (path_flow.size() != instance_->path_count()) {
    throw std::invalid_argument("BulletinBoard::post: wrong path count");
  }
  posted_at_ = now;
  has_data_ = true;
  path_flow_.assign(path_flow.begin(), path_flow.end());
  const FlowEvaluation eval = evaluate(*instance_, path_flow);
  edge_latency_ = eval.edge_latency;
  path_latency_ = eval.path_latency;
}

}  // namespace staleflow
