// Mitzenmacher's bulletin board: the model of stale information.
//
// All latency information the agents see is posted here at the start of
// every phase of length T (Section 2.3). Between updates the board is
// frozen, so agents act on values up to T time units old.
#pragma once

#include <span>
#include <vector>

#include "net/flow.h"
#include "net/instance.h"

namespace staleflow {

/// Snapshot of the network state as visible to the agents.
class BulletinBoard {
 public:
  explicit BulletinBoard(const Instance& instance);

  /// Posts the state induced by `path_flow` at time `now` (the start of a
  /// phase). Computes and stores edge/path latencies.
  void post(double now, std::span<const double> path_flow);

  bool has_data() const noexcept { return has_data_; }
  double posted_at() const noexcept { return posted_at_; }

  /// Board copies of the flow and induced latencies (valid after post()).
  std::span<const double> path_flow() const noexcept { return path_flow_; }
  std::span<const double> edge_latency() const noexcept {
    return edge_latency_;
  }
  std::span<const double> path_latency() const noexcept {
    return path_latency_;
  }

 private:
  const Instance* instance_;
  bool has_data_ = false;
  double posted_at_ = 0.0;
  std::vector<double> path_flow_;
  std::vector<double> edge_latency_;
  std::vector<double> path_latency_;
};

}  // namespace staleflow
