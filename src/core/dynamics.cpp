#include "core/dynamics.h"

#include <stdexcept>
#include <vector>

#include "ode/expm.h"

namespace staleflow {
namespace {

/// Fills `generator` and `pair_rates` (both pre-sized |P| x |P|) from
/// per-commodity sampling distributions and migration probabilities
/// evaluated on the given flow/latency vectors.
void build_generator(const Instance& instance, const Policy& policy,
                     std::span<const double> path_flow,
                     std::span<const double> path_latency,
                     Matrix& generator, Matrix& pair_rates) {
  std::vector<double> sigma;
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    const std::size_t m = commodity.paths.size();
    sigma.resize(m);
    policy.sampling().distribution(instance, commodity, path_flow,
                                   path_latency, sigma);
    for (std::size_t jp = 0; jp < m; ++jp) {
      const std::size_t p = commodity.paths[jp].index();
      double outflow = 0.0;
      for (std::size_t jq = 0; jq < m; ++jq) {
        if (jq == jp) continue;
        const std::size_t q = commodity.paths[jq].index();
        const double rate =
            sigma[jq] *
            policy.migration().probability(path_latency[p], path_latency[q]);
        if (rate == 0.0) continue;
        pair_rates(p, q) = rate;
        generator(q, p) += rate;  // inflow into q from p
        outflow += rate;
      }
      generator(p, p) -= outflow;
    }
  }
}

}  // namespace

PhaseRates::PhaseRates(const Instance& instance, const Policy& policy,
                       const BulletinBoard& board)
    : generator_(instance.path_count(), instance.path_count()),
      pair_rates_(instance.path_count(), instance.path_count()) {
  if (!board.has_data()) {
    throw std::logic_error("PhaseRates: bulletin board has no data");
  }
  build_generator(instance, policy, board.path_flow(), board.path_latency(),
                  generator_, pair_rates_);
}

void PhaseRates::rhs(std::span<const double> path_flow,
                     std::span<double> dfdt) const {
  if (path_flow.size() != generator_.rows() ||
      dfdt.size() != generator_.rows()) {
    throw std::invalid_argument("PhaseRates::rhs: size mismatch");
  }
  const std::vector<double> out = generator_.apply(path_flow);
  std::copy(out.begin(), out.end(), dfdt.begin());
}

Matrix PhaseRates::transition(double tau) const {
  if (!(tau >= 0.0)) {
    throw std::invalid_argument("PhaseRates::transition: tau must be >= 0");
  }
  Matrix scaled = generator_;
  scaled *= tau;
  return expm(scaled);
}

Matrix PhaseRates::migrated_volumes(std::span<const double> start_flow,
                                    double tau) const {
  const std::size_t n = generator_.rows();
  if (start_flow.size() != n) {
    throw std::invalid_argument(
        "PhaseRates::migrated_volumes: size mismatch");
  }
  if (!(tau >= 0.0)) {
    throw std::invalid_argument(
        "PhaseRates::migrated_volumes: tau must be >= 0");
  }
  // Augmented linear system over [f; F] with F' = f: the block matrix
  //   [G 0; I 0] exponentiated gives both f(tau) and F(tau) = INT f dt.
  Matrix augmented(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      augmented(i, j) = generator_(i, j);
    }
    augmented(n + i, i) = 1.0;
  }
  augmented *= tau;
  const Matrix phase = expm(augmented);
  std::vector<double> state(2 * n, 0.0);
  std::copy(start_flow.begin(), start_flow.end(), state.begin());
  const std::vector<double> end = phase.apply(state);

  Matrix volumes(n, n);
  for (std::size_t p = 0; p < n; ++p) {
    const double time_integral = end[n + p];  // INT_0^tau f_p(t) dt
    for (std::size_t q = 0; q < n; ++q) {
      if (pair_rates_(p, q) == 0.0) continue;
      volumes(p, q) = pair_rates_(p, q) * time_integral;
    }
  }
  return volumes;
}

FreshDynamics::FreshDynamics(const Instance& instance, const Policy& policy)
    : instance_(&instance), policy_(&policy) {}

void FreshDynamics::rhs(std::span<const double> path_flow,
                        std::span<double> dfdt) const {
  if (path_flow.size() != instance_->path_count() ||
      dfdt.size() != instance_->path_count()) {
    throw std::invalid_argument("FreshDynamics::rhs: size mismatch");
  }
  const std::vector<double> latency = path_latencies(*instance_, path_flow);
  std::fill(dfdt.begin(), dfdt.end(), 0.0);
  std::vector<double> sigma;
  for (std::size_t c = 0; c < instance_->commodity_count(); ++c) {
    const Commodity& commodity = instance_->commodity(CommodityId{c});
    const std::size_t m = commodity.paths.size();
    sigma.resize(m);
    policy_->sampling().distribution(*instance_, commodity, path_flow,
                                     latency, sigma);
    for (std::size_t jp = 0; jp < m; ++jp) {
      const std::size_t p = commodity.paths[jp].index();
      for (std::size_t jq = 0; jq < m; ++jq) {
        if (jq == jp) continue;
        const std::size_t q = commodity.paths[jq].index();
        const double rate =
            path_flow[p] * sigma[jq] *
            policy_->migration().probability(latency[p], latency[q]);
        if (rate == 0.0) continue;
        dfdt[p] -= rate;
        dfdt[q] += rate;
      }
    }
  }
}

}  // namespace staleflow
