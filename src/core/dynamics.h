// The fluid-limit dynamics (Eqs. (1) and (3)).
//
// Within one bulletin-board phase the per-agent migration rates
//   m_PQ = sigma_Q(f̂) * mu(l̂_P, l̂_Q)
// are constants, so the dynamics is the *linear* ODE f' = G f where G is a
// generator matrix (columns sum to zero):
//   G[q][p] = m_pq for p != q (inflow into q from p),
//   G[p][p] = -sum_{q != p} m_pq.
// PhaseRates builds G once per phase and offers both an RHS for generic
// integrators and the exact solution via expm.
//
// FreshDynamics implements Eq. (1) — information always up to date — where
// the rates are re-evaluated at the live flow, making the ODE nonlinear.
#pragma once

#include <span>

#include "core/bulletin_board.h"
#include "core/policy.h"
#include "net/instance.h"
#include "ode/matrix.h"

namespace staleflow {

/// Per-phase constant migration rate structure under stale information.
class PhaseRates {
 public:
  /// Builds the generator from the board contents (board must have data).
  PhaseRates(const Instance& instance, const Policy& policy,
             const BulletinBoard& board);

  /// The generator matrix G with f' = G f.
  const Matrix& generator() const noexcept { return generator_; }

  /// Per-agent migration rate m_PQ = sigma_Q(f̂) * mu(l̂_P, l̂_Q) from path
  /// p to path q (zero across commodities and on the diagonal). The flow
  /// migrating P->Q over the phase is m_PQ * INT f_P(t) dt, which the
  /// Lemma 3/4 decomposition (V_PQ terms, Fig. 1) needs.
  double pair_rate(PathId p, PathId q) const {
    return pair_rates_(p.index(), q.index());
  }
  const Matrix& pair_rates() const noexcept { return pair_rates_; }

  /// Evaluates f' = G f into dfdt (both sized |P|).
  void rhs(std::span<const double> path_flow, std::span<double> dfdt) const;

  /// Exact phase transition: returns expm(G * tau) (tau >= 0), which maps
  /// f(t̂) to f(t̂ + tau).
  Matrix transition(double tau) const;

  /// Per-pair migrated volumes Delta f_PQ over a phase of length tau
  /// starting from `start_flow`: Delta f_PQ = m_PQ * INT_0^tau f_P(t) dt,
  /// computed by integrating the flow alongside its time integral.
  Matrix migrated_volumes(std::span<const double> start_flow,
                          double tau) const;

 private:
  Matrix generator_;
  Matrix pair_rates_;
};

/// Nonlinear fresh-information dynamics (Eq. (1)); evaluates migration
/// rates at the live flow.
class FreshDynamics {
 public:
  FreshDynamics(const Instance& instance, const Policy& policy);

  /// Evaluates the RHS of Eq. (1) at `path_flow` into `dfdt`.
  void rhs(std::span<const double> path_flow, std::span<double> dfdt) const;

 private:
  const Instance* instance_;
  const Policy* policy_;
};

}  // namespace staleflow
