#include "core/fluid_simulator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/bulletin_board.h"
#include "core/dynamics.h"
#include "equilibrium/metrics.h"
#include "equilibrium/potential.h"
#include "ode/integrator.h"
#include "util/rng.h"

namespace staleflow {
namespace {

std::unique_ptr<Integrator> make_integrator(IntegrationMethod method,
                                            double step) {
  switch (method) {
    case IntegrationMethod::kEuler:
      return std::make_unique<ExplicitEuler>(step);
    case IntegrationMethod::kRk4:
      return std::make_unique<RungeKutta4>(step);
    case IntegrationMethod::kAdaptive: {
      DormandPrince45::Options opts;
      opts.initial_step = step;
      return std::make_unique<DormandPrince45>(opts);
    }
    case IntegrationMethod::kExact:
      return nullptr;  // handled separately
  }
  throw std::logic_error("make_integrator: unknown method");
}

}  // namespace

FluidSimulator::FluidSimulator(const Instance& instance, const Policy& policy)
    : instance_(&instance), policy_(&policy) {}

SimulationResult FluidSimulator::run(const FlowVector& initial,
                                     const SimulationOptions& options,
                                     const PhaseObserver& observer) const {
  if (!is_feasible(*instance_, initial.values(), 1e-7)) {
    throw std::invalid_argument("FluidSimulator::run: infeasible start");
  }
  if (options.update_period < 0.0 || !(options.horizon > 0.0)) {
    throw std::invalid_argument("FluidSimulator::run: bad options");
  }
  const bool stale = options.update_period > 0.0;
  if (!stale && options.method == IntegrationMethod::kExact) {
    throw std::invalid_argument(
        "FluidSimulator::run: exact method requires stale mode "
        "(fresh dynamics is nonlinear)");
  }
  if (options.period_jitter < 0.0 || options.period_jitter >= 1.0) {
    throw std::invalid_argument(
        "FluidSimulator::run: period_jitter must be in [0, 1)");
  }
  if (!stale && options.period_jitter > 0.0) {
    throw std::invalid_argument(
        "FluidSimulator::run: period_jitter requires stale mode");
  }

  const double phase_length =
      stale ? options.update_period
            : (options.record_interval > 0.0 ? options.record_interval
                                             : options.horizon / 512.0);
  double step = options.step_size;
  if (step <= 0.0) {
    step = stale ? options.update_period / 32.0
                 : std::min(phase_length, 1.0 / 256.0);
  }
  step = std::min(step, phase_length);

  const std::unique_ptr<Integrator> integrator =
      options.method == IntegrationMethod::kExact
          ? nullptr
          : make_integrator(options.method, step);

  SimulationResult result{initial};
  std::vector<double>& f = result.final_flow.mutable_values();
  std::vector<double> flow_before(f.size());

  BulletinBoard board(*instance_);
  FreshDynamics fresh(*instance_, *policy_);

  Rng jitter_rng(options.jitter_seed);
  const bool jittered = options.period_jitter > 0.0;

  double t = 0.0;
  std::size_t phase = 0;
  // Without jitter, phase boundaries are computed multiplicatively
  // (phase * length) so accumulated round-off cannot create a spurious
  // sliver phase; with jitter the lengths are random and accumulate.
  while (phase < options.max_phases) {
    const double t_start =
        jittered ? t : phase_length * static_cast<double>(phase);
    if (t_start >= options.horizon * (1.0 - 1e-12)) break;
    double next_length = phase_length;
    if (jittered) {
      next_length = phase_length *
                    (1.0 + options.period_jitter *
                               jitter_rng.uniform(-1.0, 1.0));
    }
    const double t_end = jittered
                             ? std::min(t_start + next_length,
                                        options.horizon)
                             : std::min(phase_length *
                                            static_cast<double>(phase + 1),
                                        options.horizon);
    const double tau = t_end - t_start;
    t = t_start;
    flow_before = f;

    if (stale) {
      board.post(t, f);
      const PhaseRates rates(*instance_, *policy_, board);
      if (options.method == IntegrationMethod::kExact) {
        const Matrix transition = rates.transition(tau);
        f = transition.apply(flow_before);
      } else {
        const OdeRhs rhs = [&rates](double, std::span<const double> y,
                                    std::span<double> dydt) {
          rates.rhs(y, dydt);
        };
        integrator->integrate(rhs, t, t + tau, f);
      }
    } else {
      const OdeRhs rhs = [&fresh](double, std::span<const double> y,
                                  std::span<double> dydt) {
        fresh.rhs(y, dydt);
      };
      integrator->integrate(rhs, t, t + tau, f);
    }

    if (options.renormalise) renormalise(*instance_, f);
    t = t_end;
    ++phase;

    if (observer) {
      PhaseInfo info;
      info.index = phase - 1;
      info.start_time = t_start;
      info.end_time = t_end;
      info.flow_before = flow_before;
      info.flow_after = f;
      observer(info);
    }

    if (options.stop_gap > 0.0 &&
        wardrop_gap(*instance_, f) <= options.stop_gap) {
      result.stopped_by_gap = true;
      break;
    }
  }

  result.final_time = t;
  result.phases = phase;
  result.final_potential = potential(*instance_, f);
  result.final_gap = wardrop_gap(*instance_, f);
  return result;
}

}  // namespace staleflow
