// The main simulation driver for the fluid-limit dynamics in the bulletin
// board model (Eq. (3)) and under fresh information (Eq. (1)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>

#include "core/policy.h"
#include "net/flow.h"
#include "net/instance.h"

namespace staleflow {

enum class IntegrationMethod {
  kRk4,      // fixed-step RK4 within each phase (default)
  kEuler,    // fixed-step forward Euler (reference / speed)
  kExact,    // matrix exponential per phase (stale mode only)
  kAdaptive  // Dormand-Prince 45
};

struct SimulationOptions {
  /// Bulletin-board period T. Must be > 0 for stale mode; 0 selects fresh
  /// information (Eq. (1)), where the "phases" below are recording slices.
  double update_period = 0.1;

  /// Total simulated time.
  double horizon = 100.0;

  /// Integrator step within a phase; 0 picks update_period/32 (stale) or
  /// 1/256 (fresh). Ignored by kExact.
  double step_size = 0.0;

  IntegrationMethod method = IntegrationMethod::kRk4;

  /// Slice length used as a pseudo-phase in fresh mode; 0 => horizon/512.
  double record_interval = 0.0;

  /// Re-project the flow onto the feasible set after every phase to stop
  /// numerical drift (the dynamics itself preserves feasibility exactly).
  bool renormalise = true;

  /// Early stop once the Wardrop gap falls to or below this value
  /// (0 disables the check).
  double stop_gap = 0.0;

  /// Hard cap on the number of phases (guards sweeps).
  std::size_t max_phases = std::numeric_limits<std::size_t>::max();

  /// Randomised staleness (model extension): each phase length is drawn
  /// uniformly from [T*(1-jitter), T*(1+jitter)], jitter in [0, 1).
  /// jitter = 0 (default) reproduces the paper's fixed-period board.
  /// Lemma 4 bounds the potential gain of any phase of length <= T, so
  /// convergence is preserved as long as T*(1+jitter) stays safe.
  double period_jitter = 0.0;

  /// Seed for the jitter draws (unused when period_jitter == 0).
  std::uint64_t jitter_seed = 1;
};

/// Data handed to the per-phase observer. Spans are valid only during the
/// callback.
struct PhaseInfo {
  std::size_t index = 0;
  double start_time = 0.0;
  double end_time = 0.0;
  std::span<const double> flow_before;  // f at the board update
  std::span<const double> flow_after;   // f at the end of the phase
};

using PhaseObserver = std::function<void(const PhaseInfo&)>;

struct SimulationResult {
  FlowVector final_flow;
  double final_time = 0.0;
  std::size_t phases = 0;
  double final_potential = 0.0;
  double final_gap = 0.0;
  /// True if the stop_gap criterion triggered before the horizon.
  bool stopped_by_gap = false;
};

/// Simulates a rerouting policy on an instance. Stateless; run() may be
/// called repeatedly with different initial conditions.
///
/// Thread-safety: run() is const and keeps all run state (board, flow,
/// integrator, jitter rng) local, so concurrent run() calls on the same
/// or different simulators are safe as long as the Instance and Policy
/// outlive them — the sweep engine relies on this.
class FluidSimulator {
 public:
  FluidSimulator(const Instance& instance, const Policy& policy);

  /// Runs from `initial` (must be feasible). Throws std::invalid_argument
  /// on an infeasible start or inconsistent options.
  SimulationResult run(const FlowVector& initial,
                       const SimulationOptions& options,
                       const PhaseObserver& observer = nullptr) const;

 private:
  const Instance* instance_;
  const Policy* policy_;
};

}  // namespace staleflow
