#include "core/migration.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace staleflow {

double BetterResponseMigration::probability(double current,
                                            double sampled) const {
  return current > sampled ? 1.0 : 0.0;
}

LinearMigration::LinearMigration(double scale) : scale_(scale) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("LinearMigration: scale must be > 0");
  }
}

double LinearMigration::probability(double current, double sampled) const {
  if (current <= sampled) return 0.0;
  return std::min(1.0, (current - sampled) / scale_);
}

std::string LinearMigration::name() const {
  std::ostringstream os;
  os << "linear(l_max=" << scale_ << ")";
  return os.str();
}

AlphaCappedMigration::AlphaCappedMigration(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0)) {
    throw std::invalid_argument("AlphaCappedMigration: alpha must be > 0");
  }
}

double AlphaCappedMigration::probability(double current,
                                         double sampled) const {
  if (current <= sampled) return 0.0;
  return std::min(1.0, alpha_ * (current - sampled));
}

std::string AlphaCappedMigration::name() const {
  std::ostringstream os;
  os << "alpha-capped(alpha=" << alpha_ << ")";
  return os.str();
}

RelativeSlackMigration::RelativeSlackMigration(double shift)
    : shift_(shift) {
  if (shift < 0.0 || !std::isfinite(shift)) {
    throw std::invalid_argument(
        "RelativeSlackMigration: shift must be >= 0");
  }
}

double RelativeSlackMigration::probability(double current,
                                           double sampled) const {
  if (current <= sampled) return 0.0;
  const double denom = current + shift_;
  if (denom <= 0.0) return 0.0;  // both latencies 0: no gain to realise
  return std::min(1.0, (current - sampled) / denom);
}

std::optional<double> RelativeSlackMigration::smoothness() const {
  if (shift_ > 0.0) return 1.0 / shift_;
  return std::nullopt;
}

std::string RelativeSlackMigration::name() const {
  std::ostringstream os;
  os << "relative-slack(shift=" << shift_ << ")";
  return os.str();
}

ConstantMigration::ConstantMigration(double p) : p_(p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("ConstantMigration: p must be in (0, 1]");
  }
}

double ConstantMigration::probability(double current, double sampled) const {
  return current > sampled ? p_ : 0.0;
}

std::string ConstantMigration::name() const {
  std::ostringstream os;
  os << "constant(p=" << p_ << ")";
  return os.str();
}

MigrationPtr better_response_migration() {
  return std::make_unique<BetterResponseMigration>();
}

MigrationPtr linear_migration(double scale) {
  return std::make_unique<LinearMigration>(scale);
}

MigrationPtr alpha_capped_migration(double alpha) {
  return std::make_unique<AlphaCappedMigration>(alpha);
}

MigrationPtr constant_migration(double p) {
  return std::make_unique<ConstantMigration>(p);
}

MigrationPtr relative_slack_migration(double shift) {
  return std::make_unique<RelativeSlackMigration>(shift);
}

bool satisfies_alpha_smoothness(const MigrationRule& rule, double alpha,
                                double latency_range, int grid) {
  if (grid < 2) grid = 2;
  const auto n = static_cast<std::size_t>(grid);
  auto check_pair = [&](double lp, double lq) {
    const double mu = rule.probability(lp, lq);
    if (mu < 0.0 || mu > 1.0) return false;
    if (lp <= lq) return mu == 0.0;
    return mu <= alpha * (lp - lq) + 1e-12;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const double lq = latency_range * static_cast<double>(i) /
                      static_cast<double>(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      const double lp = latency_range * static_cast<double>(j) /
                        static_cast<double>(n - 1);
      if (!check_pair(lp, lq)) return false;
    }
    // Definition 2 bites hardest for vanishing gains: rules with a jump at
    // gain 0+ (better response, constant) only fail for tiny lp - lq, which
    // an equispaced grid never probes. Sweep gaps down to 1e-12.
    for (double gap = 1e-12; gap < latency_range; gap *= 100.0) {
      if (!check_pair(lq + gap, lq)) return false;
    }
  }
  return true;
}

}  // namespace staleflow
