// Migration rules: step (2) of the rerouting policies, and the paper's
// alpha-smoothness condition (Definition 2).
//
// mu(l_P, l_Q) is the probability of actually switching from the current
// path P to the sampled path Q. A rule is alpha-smooth if
// mu(l_P, l_Q) <= alpha * (l_P - l_Q) for all l_P >= l_Q; smooth rules
// combined with a board period T <= 1/(4*D*alpha*beta) are guaranteed to
// converge (Corollary 5).
#pragma once

#include <memory>
#include <optional>
#include <string>

namespace staleflow {

/// Probability of migrating given the (stale) latencies of the current and
/// the sampled path.
///
/// Contract: selfish — mu(lP, lQ) == 0 whenever lQ >= lP — and
/// non-decreasing in the gain lP - lQ, with values in [0, 1].
class MigrationRule {
 public:
  virtual ~MigrationRule() = default;

  /// Migration probability; `current` and `sampled` are path latencies.
  virtual double probability(double current, double sampled) const = 0;

  /// The smallest alpha for which the rule is alpha-smooth, or nullopt if
  /// it is not alpha-smooth for any alpha (e.g. better response).
  virtual std::optional<double> smoothness() const = 0;

  virtual std::string name() const = 0;
};

/// Better response: switch whenever the sampled path is strictly better.
/// Not alpha-smooth; oscillates under stale information.
class BetterResponseMigration final : public MigrationRule {
 public:
  double probability(double current, double sampled) const override;
  std::optional<double> smoothness() const override { return std::nullopt; }
  std::string name() const override { return "better-response"; }
};

/// Linear migration policy (Section 2.2): mu = (l_P - l_Q) / l_max for
/// l_P > l_Q, which is (1/l_max)-smooth. `scale` is l_max; gains are
/// clamped so the result stays in [0, 1] even if latencies exceed l_max.
class LinearMigration final : public MigrationRule {
 public:
  explicit LinearMigration(double scale);
  double probability(double current, double sampled) const override;
  std::optional<double> smoothness() const override { return 1.0 / scale_; }
  std::string name() const override;

  double scale() const noexcept { return scale_; }

 private:
  double scale_;
};

/// mu = min(1, alpha * (l_P - l_Q)): the generic alpha-smooth rule used to
/// explore the Corollary 5 threshold directly.
class AlphaCappedMigration final : public MigrationRule {
 public:
  explicit AlphaCappedMigration(double alpha);
  double probability(double current, double sampled) const override;
  std::optional<double> smoothness() const override { return alpha_; }
  std::string name() const override;

 private:
  double alpha_;
};

/// Extension (paper conclusion / Fischer-Raecke-Voecking [10]): migrate
/// with a probability proportional to the *relative* latency gain,
///   mu = (l_P - l_Q) / (l_P + shift).
/// Unlike the linear rule this does not scale with l_max, so on steep
/// latency classes (high-degree polynomials) it stays aggressive where
/// the slope-bound-driven rules must crawl. With shift > 0 it is
/// (1/shift)-smooth; with shift = 0 it satisfies no global alpha bound
/// (smoothness() returns nullopt) and convergence follows from the
/// elasticity-based analysis of [10] rather than Corollary 5.
class RelativeSlackMigration final : public MigrationRule {
 public:
  explicit RelativeSlackMigration(double shift);
  double probability(double current, double sampled) const override;
  std::optional<double> smoothness() const override;
  std::string name() const override;

  double shift() const noexcept { return shift_; }

 private:
  double shift_;
};

/// mu = p whenever the sampled path is strictly better (any fixed p > 0).
/// Like better response this is not alpha-smooth — the jump at gain 0+
/// violates Definition 2 — and it serves as a second naive baseline.
class ConstantMigration final : public MigrationRule {
 public:
  explicit ConstantMigration(double p);
  double probability(double current, double sampled) const override;
  std::optional<double> smoothness() const override { return std::nullopt; }
  std::string name() const override;

 private:
  double p_;
};

using MigrationPtr = std::unique_ptr<const MigrationRule>;

MigrationPtr better_response_migration();
MigrationPtr linear_migration(double scale);
MigrationPtr alpha_capped_migration(double alpha);
MigrationPtr constant_migration(double p);
MigrationPtr relative_slack_migration(double shift = 0.0);

/// Numerically checks Definition 2 on a latency grid: returns true iff
/// mu(lP, lQ) <= alpha * (lP - lQ) for all grid pairs lP >= lQ in
/// [0, latency_range], and mu is 0 for lQ >= lP.
bool satisfies_alpha_smoothness(const MigrationRule& rule, double alpha,
                                double latency_range, int grid = 129);

}  // namespace staleflow
