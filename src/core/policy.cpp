#include "core/policy.h"

#include <algorithm>
#include <stdexcept>

namespace staleflow {

Policy::Policy(SamplingPtr sampling, MigrationPtr migration)
    : sampling_(std::move(sampling)), migration_(std::move(migration)) {
  if (sampling_ == nullptr || migration_ == nullptr) {
    throw std::invalid_argument("Policy: rules must be non-null");
  }
}

std::string Policy::name() const {
  return sampling_->name() + " + " + migration_->name();
}

Policy make_replicator_policy(const Instance& instance,
                              double uniform_floor) {
  return Policy(proportional_sampling(uniform_floor),
                linear_migration(instance.max_latency()));
}

Policy make_uniform_linear_policy(const Instance& instance) {
  return Policy(uniform_sampling(),
                linear_migration(instance.max_latency()));
}

Policy make_alpha_policy(double alpha) {
  return Policy(uniform_sampling(), alpha_capped_migration(alpha));
}

Policy make_logit_policy(const Instance& instance, double c) {
  return Policy(logit_sampling(c), linear_migration(instance.max_latency()));
}

Policy make_naive_better_response_policy() {
  return Policy(uniform_sampling(), better_response_migration());
}

Policy make_relative_slack_policy(double shift) {
  return Policy(proportional_sampling(), relative_slack_migration(shift));
}

Policy make_safe_policy(const Instance& instance, double update_period) {
  if (!(update_period > 0.0)) {
    throw std::invalid_argument(
        "make_safe_policy: update_period must be > 0");
  }
  const double d = static_cast<double>(instance.max_path_length());
  const double beta = instance.max_slope();
  if (d == 0.0 || beta == 0.0) {
    throw std::invalid_argument(
        "make_safe_policy: instance has no slope bound; every policy is "
        "safe, pick one explicitly");
  }
  const double alpha = 1.0 / (4.0 * d * beta * update_period);
  return Policy(uniform_sampling(), alpha_capped_migration(alpha));
}

void sampling_cdf(const Policy& policy, const Instance& instance,
                  const Commodity& commodity,
                  std::span<const double> board_path_flow,
                  std::span<const double> board_path_latency,
                  std::vector<double>& out) {
  out.resize(commodity.paths.size());
  policy.sampling().distribution(instance, commodity, board_path_flow,
                                 board_path_latency, out);
  double acc = 0.0;
  for (double& v : out) {
    acc += v;
    v = acc;
  }
  // Defend against round-off in the final bucket.
  if (!out.empty()) out.back() = std::max(out.back(), 1.0);
}

std::size_t sample_from_cdf(std::span<const double> cdf, Rng& rng) {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf.begin(), static_cast<std::ptrdiff_t>(cdf.size()) - 1));
}

}  // namespace staleflow
