// A rerouting policy = sampling rule + migration rule (Section 2.2), with
// factories for the combinations the paper analyses.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/migration.h"
#include "core/sampling.h"
#include "net/instance.h"
#include "util/rng.h"

namespace staleflow {

/// Two-step rerouting policy. Immutable after construction; shared between
/// simulators via const reference.
class Policy {
 public:
  Policy(SamplingPtr sampling, MigrationPtr migration);

  const SamplingRule& sampling() const noexcept { return *sampling_; }
  const MigrationRule& migration() const noexcept { return *migration_; }

  /// e.g. "proportional + linear(l_max=2)".
  std::string name() const;

  /// alpha of the migration rule, or nullopt for non-smooth rules.
  std::optional<double> smoothness() const {
    return migration_->smoothness();
  }

 private:
  SamplingPtr sampling_;
  MigrationPtr migration_;
};

/// Replicator dynamics: proportional sampling + linear migration with
/// scale l_max taken from the instance (Theorem 7's policy).
Policy make_replicator_policy(const Instance& instance,
                              double uniform_floor = 0.0);

/// Uniform sampling + linear migration (Theorem 6's policy).
Policy make_uniform_linear_policy(const Instance& instance);

/// Uniform sampling + min(1, alpha * gain) migration: directly exposes the
/// smoothness parameter for Corollary 5 sweeps.
Policy make_alpha_policy(double alpha);

/// Smoothed best response: logit sampling with parameter c + linear
/// migration.
Policy make_logit_policy(const Instance& instance, double c);

/// Naive baseline: uniform sampling + better-response migration. Not
/// alpha-smooth; oscillates under staleness.
Policy make_naive_better_response_policy();

/// Extension ([10], the paper's conclusion): proportional sampling +
/// relative-slack migration. Its aggressiveness does not degrade with the
/// maximum slope beta; with shift > 0 it is (1/shift)-smooth and covered
/// by Corollary 5.
Policy make_relative_slack_policy(double shift = 0.0);

/// The Corollary 5 recipe inverted: given the bulletin-board period T the
/// deployment must live with, returns the most aggressive uniform-sampling
/// policy that is still provably convergent, i.e. alpha-capped migration
/// with alpha = 1/(4 * D * beta * T). Throws std::invalid_argument if
/// T <= 0 or the instance has zero slope/path length (any policy is safe
/// then — no finite alpha is implied).
Policy make_safe_policy(const Instance& instance, double update_period);

/// Cumulative sampling distribution of `policy` over `commodity`'s local
/// path list, evaluated against bulletin-board values. Resizes `out` to the
/// commodity's path count; the final bucket is clamped to >= 1 so that
/// round-off can never push a uniform draw past the end. Candidates are
/// then drawn with one binary search per activation — the hot-path form
/// shared by the finite-population simulator and the route service.
void sampling_cdf(const Policy& policy, const Instance& instance,
                  const Commodity& commodity,
                  std::span<const double> board_path_flow,
                  std::span<const double> board_path_latency,
                  std::vector<double>& out);

/// Draws a local path index from a distribution built by sampling_cdf():
/// one uniform variate, one binary search, end-clamped against round-off.
/// Requires a non-empty cdf.
std::size_t sample_from_cdf(std::span<const double> cdf, Rng& rng);

}  // namespace staleflow
