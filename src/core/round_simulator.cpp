#include "core/round_simulator.h"

#include <optional>
#include <stdexcept>
#include <vector>

#include "core/bulletin_board.h"
#include "core/dynamics.h"
#include "equilibrium/metrics.h"
#include "equilibrium/potential.h"

namespace staleflow {

RoundSimulator::RoundSimulator(const Instance& instance, const Policy& policy)
    : instance_(&instance), policy_(&policy) {}

RoundSimResult RoundSimulator::run(const FlowVector& initial,
                                   const RoundSimOptions& options,
                                   const RoundObserver& observer) const {
  if (!is_feasible(*instance_, initial.values(), 1e-7)) {
    throw std::invalid_argument("RoundSimulator::run: infeasible start");
  }
  if (!(options.activation_probability > 0.0) ||
      options.activation_probability > 1.0) {
    throw std::invalid_argument(
        "RoundSimulator::run: activation probability must be in (0, 1]");
  }
  if (options.rounds_per_update == 0) {
    throw std::invalid_argument(
        "RoundSimulator::run: rounds_per_update must be >= 1");
  }

  RoundSimResult result{initial};
  std::vector<double>& f = result.final_flow.mutable_values();
  std::vector<double> before(f.size());
  std::vector<double> delta(f.size());

  BulletinBoard board(*instance_);
  std::optional<PhaseRates> rates;

  for (std::size_t round = 0; round < options.total_rounds; ++round) {
    const bool refresh = round % options.rounds_per_update == 0;
    if (refresh) {
      board.post(static_cast<double>(round), f);
      rates.emplace(*instance_, *policy_, board);
    }
    before = f;
    rates->rhs(f, delta);
    for (std::size_t p = 0; p < f.size(); ++p) {
      f[p] += options.activation_probability * delta[p];
    }
    // Totals are preserved by the generator; clamp only round-off (and
    // overshoot for aggressive lambda) back into the feasible set.
    renormalise(*instance_, f);
    ++result.rounds;

    if (observer) {
      RoundInfo info;
      info.round = round;
      info.board_updated = refresh;
      info.flow_before = before;
      info.flow_after = f;
      observer(info);
    }
    if (options.stop_gap > 0.0 &&
        wardrop_gap(*instance_, f) <= options.stop_gap) {
      result.stopped_by_gap = true;
      break;
    }
  }

  result.final_potential = potential(*instance_, f);
  result.final_gap = wardrop_gap(*instance_, f);
  return result;
}

}  // namespace staleflow
