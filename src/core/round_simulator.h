// Synchronous-rounds dynamics: the discrete-time cousin of the fluid model.
//
// Mitzenmacher's bulletin-board model was originally phrased in rounds.
// Here time advances in discrete rounds; in each round every agent is
// activated independently with probability lambda and applies the usual
// sample-and-migrate step against the board, which is refreshed every
// `rounds_per_update` rounds. In the synchronous fluid limit the expected
// flow evolves by the map
//   f_{k+1} = f_k + lambda * G(board) f_k,
// with G the same per-phase generator as the continuous dynamics.
//
// The continuous model recovers as lambda -> 0 with time = lambda * k.
// For large lambda the map overshoots: synchrony is a second source of
// oscillation on top of staleness, which bench_rounds explores.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <span>

#include "core/policy.h"
#include "net/flow.h"
#include "net/instance.h"

namespace staleflow {

struct RoundSimOptions {
  /// Per-round activation probability lambda in (0, 1].
  double activation_probability = 0.1;
  /// Board refresh cadence: 1 = fresh every round, R = stale for R rounds.
  std::size_t rounds_per_update = 1;
  std::size_t total_rounds = 1'000;
  /// Early stop once the Wardrop gap is <= this (0 disables).
  double stop_gap = 0.0;
};

/// Data handed to the per-round observer. Spans valid only in the call.
struct RoundInfo {
  std::size_t round = 0;
  bool board_updated = false;
  std::span<const double> flow_before;
  std::span<const double> flow_after;
};

using RoundObserver = std::function<void(const RoundInfo&)>;

struct RoundSimResult {
  FlowVector final_flow;
  std::size_t rounds = 0;
  double final_potential = 0.0;
  double final_gap = 0.0;
  bool stopped_by_gap = false;
};

/// Iterates the synchronous expected-flow map.
///
/// Thread-safety: like FluidSimulator, run() is const with all state
/// local; concurrent runs against the same Instance/Policy are safe.
class RoundSimulator {
 public:
  RoundSimulator(const Instance& instance, const Policy& policy);

  /// Runs from `initial` (must be feasible). Flow values are clamped to
  /// the feasible set after each round (the map itself preserves totals;
  /// clamping only guards round-off, and overshoot past 0 for large
  /// lambda, which is re-projected like the continuous simulator does).
  RoundSimResult run(const FlowVector& initial, const RoundSimOptions& options,
                     const RoundObserver& observer = nullptr) const;

 private:
  const Instance* instance_;
  const Policy* policy_;
};

}  // namespace staleflow
