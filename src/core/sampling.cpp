#include "core/sampling.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace staleflow {
namespace {

void check_out_size(const Commodity& commodity, std::span<double> out) {
  if (out.size() != commodity.paths.size()) {
    throw std::invalid_argument(
        "SamplingRule::distribution: out size != commodity path count");
  }
}

}  // namespace

void UniformSampling::distribution(const Instance&,
                                   const Commodity& commodity,
                                   std::span<const double>,
                                   std::span<const double>,
                                   std::span<double> out) const {
  check_out_size(commodity, out);
  const double p = 1.0 / static_cast<double>(commodity.paths.size());
  std::fill(out.begin(), out.end(), p);
}

ProportionalSampling::ProportionalSampling(double uniform_floor)
    : floor_(uniform_floor) {
  if (uniform_floor < 0.0 || uniform_floor > 1.0) {
    throw std::invalid_argument(
        "ProportionalSampling: uniform_floor must be in [0, 1]");
  }
}

void ProportionalSampling::distribution(const Instance&,
                                        const Commodity& commodity,
                                        std::span<const double> board_path_flow,
                                        std::span<const double>,
                                        std::span<double> out) const {
  check_out_size(commodity, out);
  const double uniform_share =
      floor_ / static_cast<double>(commodity.paths.size());
  for (std::size_t j = 0; j < commodity.paths.size(); ++j) {
    const double share =
        std::max(board_path_flow[commodity.paths[j].index()], 0.0) /
        commodity.demand;
    out[j] = (1.0 - floor_) * share + uniform_share;
  }
}

LogitSampling::LogitSampling(double c) : c_(c) {
  if (!(c > 0.0)) {
    throw std::invalid_argument("LogitSampling: c must be > 0");
  }
}

void LogitSampling::distribution(const Instance&, const Commodity& commodity,
                                 std::span<const double>,
                                 std::span<const double> board_path_latency,
                                 std::span<double> out) const {
  check_out_size(commodity, out);
  // Shift by the minimum latency for numerical stability; the softmax is
  // shift-invariant.
  double lo = board_path_latency[commodity.paths.front().index()];
  for (const PathId p : commodity.paths) {
    lo = std::min(lo, board_path_latency[p.index()]);
  }
  double total = 0.0;
  for (std::size_t j = 0; j < commodity.paths.size(); ++j) {
    out[j] = std::exp(-c_ * (board_path_latency[commodity.paths[j].index()] -
                             lo));
    total += out[j];
  }
  for (double& v : out) v /= total;
}

std::string LogitSampling::name() const {
  std::ostringstream os;
  os << "logit(c=" << c_ << ")";
  return os.str();
}

BlendedSampling::BlendedSampling(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("BlendedSampling: need >= 1 component");
  }
  double total = 0.0;
  for (const Component& part : components_) {
    if (part.rule == nullptr) {
      throw std::invalid_argument("BlendedSampling: null component rule");
    }
    if (part.weight < 0.0) {
      throw std::invalid_argument("BlendedSampling: negative weight");
    }
    total += part.weight;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument(
        "BlendedSampling: weights must have positive sum");
  }
  for (Component& part : components_) part.weight /= total;
}

void BlendedSampling::distribution(const Instance& instance,
                                   const Commodity& commodity,
                                   std::span<const double> board_path_flow,
                                   std::span<const double> board_path_latency,
                                   std::span<double> out) const {
  check_out_size(commodity, out);
  std::fill(out.begin(), out.end(), 0.0);
  std::vector<double> partial(out.size());
  for (const Component& part : components_) {
    if (part.weight == 0.0) continue;
    part.rule->distribution(instance, commodity, board_path_flow,
                            board_path_latency, partial);
    for (std::size_t j = 0; j < out.size(); ++j) {
      out[j] += part.weight * partial[j];
    }
  }
}

bool BlendedSampling::depends_on_flow() const {
  for (const Component& part : components_) {
    if (part.weight > 0.0 && part.rule->depends_on_flow()) return true;
  }
  return false;
}

std::string BlendedSampling::name() const {
  std::ostringstream os;
  os << "blend(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) os << ", ";
    os << components_[i].weight << "*" << components_[i].rule->name();
  }
  os << ")";
  return os.str();
}

SamplingPtr uniform_sampling() {
  return std::make_unique<UniformSampling>();
}

SamplingPtr proportional_sampling(double uniform_floor) {
  return std::make_unique<ProportionalSampling>(uniform_floor);
}

SamplingPtr logit_sampling(double c) {
  return std::make_unique<LogitSampling>(c);
}

SamplingPtr blended_sampling(std::vector<BlendedSampling::Component> parts) {
  return std::make_unique<BlendedSampling>(std::move(parts));
}

}  // namespace staleflow
