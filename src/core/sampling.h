// Sampling rules: step (1) of the paper's two-step rerouting policies.
//
// When an agent is activated it samples a candidate path Q of its own
// commodity with probability sigma_PQ(f̂), where f̂ is the bulletin-board
// flow. All rules here are origin-independent (sigma_PQ == sigma_Q), which
// covers the paper's uniform, proportional and smoothed-best-response
// (logit) samplers; the interface hands out the whole distribution over a
// commodity's paths at once.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/instance.h"

namespace staleflow {

/// Distribution over a commodity's paths used for sampling candidates.
///
/// Contract (Section 2.2): the probabilities must be a continuous function
/// of the board flow and strictly positive on every path, otherwise
/// convergence to Wardrop equilibria cannot be guaranteed.
class SamplingRule {
 public:
  virtual ~SamplingRule() = default;

  /// Writes the sampling probability of each path of `commodity` into
  /// `out` (indexed like commodity.paths; out.size() must equal
  /// commodity.paths.size()). `board_path_flow` / `board_path_latency`
  /// are the bulletin-board values for *all* paths of the instance.
  virtual void distribution(const Instance& instance,
                            const Commodity& commodity,
                            std::span<const double> board_path_flow,
                            std::span<const double> board_path_latency,
                            std::span<double> out) const = 0;

  /// True if the rule reads the board flow (proportional does, uniform
  /// does not); used by tests and for documentation only.
  virtual bool depends_on_flow() const = 0;

  virtual std::string name() const = 0;
};

/// sigma_Q = 1 / |P_i| (the Theorem 6 rule).
class UniformSampling final : public SamplingRule {
 public:
  void distribution(const Instance& instance, const Commodity& commodity,
                    std::span<const double> board_path_flow,
                    std::span<const double> board_path_latency,
                    std::span<double> out) const override;
  bool depends_on_flow() const override { return false; }
  std::string name() const override { return "uniform"; }
};

/// sigma_Q = f̂_Q / r_i (the Theorem 7 / replicator rule). To preserve
/// strict positivity (required for convergence from arbitrary starts) a
/// small uniform floor can be mixed in: sigma_Q = (1-floor)*f̂_Q/r_i +
/// floor/|P_i|. The paper's analysis uses floor = 0.
class ProportionalSampling final : public SamplingRule {
 public:
  explicit ProportionalSampling(double uniform_floor = 0.0);
  void distribution(const Instance& instance, const Commodity& commodity,
                    std::span<const double> board_path_flow,
                    std::span<const double> board_path_latency,
                    std::span<double> out) const override;
  bool depends_on_flow() const override { return true; }
  std::string name() const override { return "proportional"; }

 private:
  double floor_;
};

/// sigma_Q = exp(-c * l̂_Q) / sum_Q' exp(-c * l̂_Q') — the paper's smoothed
/// best response (Section 2.2). Large c concentrates on minimum-latency
/// paths and approximates best response.
class LogitSampling final : public SamplingRule {
 public:
  explicit LogitSampling(double c);
  void distribution(const Instance& instance, const Commodity& commodity,
                    std::span<const double> board_path_flow,
                    std::span<const double> board_path_latency,
                    std::span<double> out) const override;
  bool depends_on_flow() const override { return false; }
  std::string name() const override;

  double temperature_parameter() const noexcept { return c_; }

 private:
  double c_;
};

using SamplingPtr = std::unique_ptr<const SamplingRule>;

/// Convex combination of sampling rules: sigma = sum_i w_i * sigma_i with
/// w_i >= 0 summing to 1. The paper's class is closed under mixing (each
/// component is continuous in f; positivity holds if any component with
/// positive weight is positive), so Theorem 2 / Corollary 5 apply to any
/// blend — this rule exercises that generality.
class BlendedSampling final : public SamplingRule {
 public:
  struct Component {
    double weight;
    SamplingPtr rule;
  };

  /// Requires >= 1 component, non-negative weights with positive sum
  /// (weights are normalised), non-null rules.
  explicit BlendedSampling(std::vector<Component> components);

  void distribution(const Instance& instance, const Commodity& commodity,
                    std::span<const double> board_path_flow,
                    std::span<const double> board_path_latency,
                    std::span<double> out) const override;
  bool depends_on_flow() const override;
  std::string name() const override;

 private:
  std::vector<Component> components_;
};

SamplingPtr uniform_sampling();
SamplingPtr proportional_sampling(double uniform_floor = 0.0);
SamplingPtr logit_sampling(double c);
SamplingPtr blended_sampling(std::vector<BlendedSampling::Component> parts);

}  // namespace staleflow
