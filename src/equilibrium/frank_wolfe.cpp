#include "equilibrium/frank_wolfe.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "equilibrium/metrics.h"
#include "equilibrium/potential.h"

namespace staleflow {
namespace {

/// d/dgamma Phi(f + gamma * d) = sum_e l_e(f_e + gamma d_e) * d_e.
double directional_derivative(const Instance& instance,
                              const std::vector<double>& edge_flow,
                              const std::vector<double>& edge_dir,
                              double gamma) {
  double acc = 0.0;
  for (std::size_t e = 0; e < edge_flow.size(); ++e) {
    if (edge_dir[e] == 0.0) continue;
    acc += instance.latency(EdgeId{e}).value(edge_flow[e] +
                                             gamma * edge_dir[e]) *
           edge_dir[e];
  }
  return acc;
}

/// Exact line search along f + gamma * d, gamma in [0, 1]. Phi is convex,
/// so the directional derivative is non-decreasing; bisect for its zero.
double line_search(const Instance& instance,
                   const std::vector<double>& edge_flow,
                   const std::vector<double>& edge_dir, double tolerance) {
  if (directional_derivative(instance, edge_flow, edge_dir, 1.0) <= 0.0) {
    return 1.0;
  }
  double lo = 0.0, hi = 1.0;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (directional_derivative(instance, edge_flow, edge_dir, mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

FrankWolfeResult solve_equilibrium(const Instance& instance,
                                   FrankWolfeOptions options) {
  FrankWolfeResult result{FlowVector::uniform(instance)};
  std::vector<double>& f = result.flow.mutable_values();
  std::vector<double> direction(f.size());

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const FlowEvaluation eval = evaluate(instance, f);
    result.gap = wardrop_gap(instance, f, eval);
    result.iterations = iter;
    if (result.gap <= options.gap_tolerance) {
      result.converged = true;
      break;
    }

    // Pairwise ("swap") direction: for every commodity, move the entire
    // mass of its worst flow-carrying path towards its best path. Unlike
    // the classic towards-vertex step this does not re-spread flow over
    // the whole simplex, which gives fast tail convergence.
    std::fill(direction.begin(), direction.end(), 0.0);
    bool any_move = false;
    for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
      const Commodity& commodity = instance.commodity(CommodityId{c});
      PathId best = commodity.paths.front();
      PathId worst{};
      double best_latency = std::numeric_limits<double>::infinity();
      double worst_latency = -1.0;
      for (const PathId p : commodity.paths) {
        const double l = eval.path_latency[p.index()];
        if (l < best_latency) {
          best_latency = l;
          best = p;
        }
        if (f[p.index()] > 1e-15 && l > worst_latency) {
          worst_latency = l;
          worst = p;
        }
      }
      if (!worst.valid() || worst == best ||
          worst_latency - best_latency <= 0.0) {
        continue;
      }
      const double mass = f[worst.index()];
      direction[best.index()] += mass;
      direction[worst.index()] -= mass;
      any_move = true;
    }
    if (!any_move) {
      result.converged = result.gap <= options.gap_tolerance;
      break;
    }

    const std::vector<double> edge_dir = edge_flows(instance, direction);
    const double gamma = line_search(instance, eval.edge_flow, edge_dir,
                                     options.line_search_tolerance);
    if (gamma <= 0.0) {
      break;
    }
    for (std::size_t p = 0; p < f.size(); ++p) {
      f[p] += gamma * direction[p];
      if (f[p] < 0.0) f[p] = 0.0;  // round-off guard
    }
  }

  if (!result.converged) {
    result.gap = wardrop_gap(instance, f);
    result.converged = result.gap <= options.gap_tolerance;
  }
  result.potential = potential(instance, f);
  return result;
}

double optimal_potential(const Instance& instance,
                         FrankWolfeOptions options) {
  return solve_equilibrium(instance, options).potential;
}

}  // namespace staleflow
