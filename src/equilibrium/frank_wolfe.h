// Exact Wardrop equilibria by convex minimisation of the
// Beckmann-McGuire-Winsten potential.
//
// The potential is convex (latencies are non-decreasing), so its minimisers
// are exactly the Wardrop equilibria. The solver uses *pairwise*
// Frank-Wolfe steps — per commodity, shift the mass of the worst
// flow-carrying path towards the best path with an exact line search —
// which avoids the classic towards-vertex variant's O(1/k) tail and
// reaches gaps of 1e-10 quickly on the instances in this library. It
// provides the ground-truth f* and Phi* the dynamics experiments compare
// against.
#pragma once

#include <cstddef>

#include "net/flow.h"
#include "net/instance.h"

namespace staleflow {

struct FrankWolfeOptions {
  std::size_t max_iterations = 100'000;
  /// Stop when the Wardrop gap (a duality gap for this program) drops
  /// below this value.
  double gap_tolerance = 1e-10;
  /// Bisection tolerance of the exact line search (in step length).
  double line_search_tolerance = 1e-12;
};

struct FrankWolfeResult {
  FlowVector flow;
  double potential = 0.0;
  double gap = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Minimises Phi over the feasible flows, starting from the uniform flow.
FrankWolfeResult solve_equilibrium(const Instance& instance,
                                   FrankWolfeOptions options = {});

/// Convenience: just the optimal potential Phi*.
double optimal_potential(const Instance& instance,
                         FrankWolfeOptions options = {});

}  // namespace staleflow
