#include "equilibrium/metrics.h"

#include <algorithm>

namespace staleflow {

double wardrop_gap(const Instance& instance,
                   std::span<const double> path_flow) {
  return wardrop_gap(instance, path_flow, evaluate(instance, path_flow));
}

double wardrop_gap(const Instance& instance, std::span<const double> path_flow,
                   const FlowEvaluation& eval) {
  double gap = 0.0;
  for (std::size_t p = 0; p < instance.path_count(); ++p) {
    const CommodityId c = instance.commodity_of(PathId{p});
    gap += path_flow[p] *
           (eval.path_latency[p] - eval.commodity_min_latency[c.index()]);
  }
  return gap;
}

double unsatisfied_volume(const Instance& instance,
                          std::span<const double> path_flow, double delta) {
  const FlowEvaluation eval = evaluate(instance, path_flow);
  double volume = 0.0;
  for (std::size_t p = 0; p < instance.path_count(); ++p) {
    const CommodityId c = instance.commodity_of(PathId{p});
    if (eval.path_latency[p] >
        eval.commodity_min_latency[c.index()] + delta) {
      volume += path_flow[p];
    }
  }
  return volume;
}

double weakly_unsatisfied_volume(const Instance& instance,
                                 std::span<const double> path_flow,
                                 double delta) {
  const FlowEvaluation eval = evaluate(instance, path_flow);
  double volume = 0.0;
  for (std::size_t p = 0; p < instance.path_count(); ++p) {
    const CommodityId c = instance.commodity_of(PathId{p});
    if (eval.path_latency[p] >
        eval.commodity_avg_latency[c.index()] + delta) {
      volume += path_flow[p];
    }
  }
  return volume;
}

bool is_delta_eps_equilibrium(const Instance& instance,
                              std::span<const double> path_flow, double delta,
                              double eps) {
  return unsatisfied_volume(instance, path_flow, delta) <= eps;
}

bool is_weak_delta_eps_equilibrium(const Instance& instance,
                                   std::span<const double> path_flow,
                                   double delta, double eps) {
  return weakly_unsatisfied_volume(instance, path_flow, delta) <= eps;
}

double max_latency_deviation(const Instance& instance,
                             std::span<const double> path_flow,
                             double flow_threshold) {
  const FlowEvaluation eval = evaluate(instance, path_flow);
  double worst = 0.0;
  for (std::size_t p = 0; p < instance.path_count(); ++p) {
    if (path_flow[p] <= flow_threshold) continue;
    const CommodityId c = instance.commodity_of(PathId{p});
    worst = std::max(worst, eval.path_latency[p] -
                                eval.commodity_min_latency[c.index()]);
  }
  return worst;
}

}  // namespace staleflow
