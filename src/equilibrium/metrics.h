// Equilibrium quality metrics: the Wardrop gap and the paper's approximate
// equilibrium notions (Definitions 3 and 4).
#pragma once

#include <span>

#include "net/flow.h"
#include "net/instance.h"

namespace staleflow {

/// Total excess latency over per-commodity minima:
///   gap(f) = sum_P f_P * (l_P(f) - l^i_min(f)).
/// Zero exactly at Wardrop equilibria; continuous in f.
double wardrop_gap(const Instance& instance,
                   std::span<const double> path_flow);

/// Same, computed from a prepared evaluation (avoids recomputation).
double wardrop_gap(const Instance& instance, std::span<const double> path_flow,
                   const FlowEvaluation& eval);

/// Volume of delta-unsatisfied agents (Definition 3): total flow on paths P
/// with l_P(f) > l^i_min(f) + delta.
double unsatisfied_volume(const Instance& instance,
                          std::span<const double> path_flow, double delta);

/// Volume of weakly delta-unsatisfied agents (Definition 4): total flow on
/// paths P with l_P(f) > L_i(f) + delta.
double weakly_unsatisfied_volume(const Instance& instance,
                                 std::span<const double> path_flow,
                                 double delta);

/// f is at a (delta, eps)-equilibrium iff unsatisfied volume <= eps.
bool is_delta_eps_equilibrium(const Instance& instance,
                              std::span<const double> path_flow, double delta,
                              double eps);

/// f is at a weak (delta, eps)-equilibrium iff weakly unsatisfied volume
/// <= eps.
bool is_weak_delta_eps_equilibrium(const Instance& instance,
                                   std::span<const double> path_flow,
                                   double delta, double eps);

/// Maximum latency deviation from the commodity minimum over paths that
/// carry at least `flow_threshold` volume. This is the X of the paper's
/// Section 3.2 oscillation analysis.
double max_latency_deviation(const Instance& instance,
                             std::span<const double> path_flow,
                             double flow_threshold = 0.0);

}  // namespace staleflow
