#include "equilibrium/potential.h"

#include <cmath>
#include <stdexcept>

#include "net/flow.h"

namespace staleflow {

double potential(const Instance& instance,
                 std::span<const double> path_flow) {
  return potential_from_edge_flows(instance, edge_flows(instance, path_flow));
}

double potential_from_edge_flows(const Instance& instance,
                                 std::span<const double> edge_flow) {
  if (edge_flow.size() != instance.edge_count()) {
    throw std::invalid_argument(
        "potential_from_edge_flows: wrong edge count");
  }
  double phi = 0.0;
  for (std::size_t e = 0; e < edge_flow.size(); ++e) {
    phi += instance.latency(EdgeId{e}).integral(edge_flow[e]);
  }
  return phi;
}

double virtual_gain(const Instance& instance,
                    std::span<const double> stale_flow,
                    std::span<const double> current_flow) {
  const std::vector<double> fe_hat = edge_flows(instance, stale_flow);
  const std::vector<double> fe = edge_flows(instance, current_flow);
  double v = 0.0;
  for (std::size_t e = 0; e < fe.size(); ++e) {
    v += instance.latency(EdgeId{e}).value(fe_hat[e]) * (fe[e] - fe_hat[e]);
  }
  return v;
}

std::vector<double> error_terms(const Instance& instance,
                                std::span<const double> stale_flow,
                                std::span<const double> current_flow) {
  const std::vector<double> fe_hat = edge_flows(instance, stale_flow);
  const std::vector<double> fe = edge_flows(instance, current_flow);
  std::vector<double> u(instance.edge_count());
  for (std::size_t e = 0; e < u.size(); ++e) {
    const LatencyFunction& fn = instance.latency(EdgeId{e});
    // U_e = [I(f_e) - I(f̂_e)] - l(f̂_e) * (f_e - f̂_e), with I the
    // antiderivative; exact thanks to the closed-form integrals.
    u[e] = fn.integral(fe[e]) - fn.integral(fe_hat[e]) -
           fn.value(fe_hat[e]) * (fe[e] - fe_hat[e]);
  }
  return u;
}

PhaseAccounting account_phase(const Instance& instance,
                              std::span<const double> stale_flow,
                              std::span<const double> current_flow) {
  PhaseAccounting acc;
  acc.potential_before = potential(instance, stale_flow);
  acc.potential_after = potential(instance, current_flow);
  acc.delta_phi = acc.potential_after - acc.potential_before;
  acc.virtual_gain = virtual_gain(instance, stale_flow, current_flow);
  for (const double u : error_terms(instance, stale_flow, current_flow)) {
    acc.error_sum += u;
  }
  acc.identity_residual =
      std::abs(acc.delta_phi - (acc.error_sum + acc.virtual_gain));
  acc.lemma4_holds = acc.delta_phi <= 0.5 * acc.virtual_gain + 1e-12;
  return acc;
}

}  // namespace staleflow
