// The Beckmann-McGuire-Winsten potential and the paper's per-phase
// potential accounting (Eqs. (6)-(8), Lemma 3).
//
//   Phi(f)    = sum_e INT_0^{f_e} l_e(u) du
//   V(f̂, f)  = sum_e l_e(f̂_e) * (f_e - f̂_e)          (virtual gain, Eq. 8)
//   U_e       = INT_{f̂_e}^{f_e} (l_e(u) - l_e(f̂_e)) du (error term, Eq. 7)
//
// Lemma 3: Phi(f) - Phi(f̂) = sum_e U_e + V(f̂, f).
#pragma once

#include <span>
#include <vector>

#include "net/instance.h"

namespace staleflow {

/// Phi(f) for a path-flow vector (exact, via closed-form integrals).
double potential(const Instance& instance, std::span<const double> path_flow);

/// Phi computed directly from edge flows.
double potential_from_edge_flows(const Instance& instance,
                                 std::span<const double> edge_flow);

/// The minimum possible potential is >= 0; this evaluates Phi at the given
/// reference and is used by benches to report Phi - Phi*.

/// Virtual potential gain V(f̂, f) of a phase that moved the population
/// from `stale_flow` to `current_flow` (both path-flow vectors).
double virtual_gain(const Instance& instance,
                    std::span<const double> stale_flow,
                    std::span<const double> current_flow);

/// Per-edge error terms U_e of Eq. (7).
std::vector<double> error_terms(const Instance& instance,
                                std::span<const double> stale_flow,
                                std::span<const double> current_flow);

/// Full phase accounting: both sides of Lemma 3 plus the decomposition,
/// so tests and benches can verify the identity and Lemma 4's inequality.
struct PhaseAccounting {
  double potential_before = 0.0;  // Phi(f̂)
  double potential_after = 0.0;   // Phi(f)
  double delta_phi = 0.0;         // Phi(f) - Phi(f̂)
  double virtual_gain = 0.0;      // V(f̂, f)
  double error_sum = 0.0;         // sum_e U_e
  /// |delta_phi - (error_sum + virtual_gain)|; ~0 by Lemma 3.
  double identity_residual = 0.0;
  /// Lemma 4 predicts delta_phi <= virtual_gain / 2 when T is safe.
  bool lemma4_holds = false;
};

PhaseAccounting account_phase(const Instance& instance,
                              std::span<const double> stale_flow,
                              std::span<const double> current_flow);

}  // namespace staleflow
