#include "equilibrium/social.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace staleflow {

MarginalCostLatency::MarginalCostLatency(const LatencyFunction& base)
    : base_(base.clone()) {}

double MarginalCostLatency::value(double x) const {
  return base_->value(x) + x * base_->derivative(x);
}

double MarginalCostLatency::derivative(double x) const {
  // c' = 2 l' + x l''; l'' is unavailable, so use central differences of
  // c itself, one-sided at the domain ends. The stencil stays inside
  // [0, 1] because several base families (e.g. M/M/1) extend flatly
  // beyond 1, which would bias a stencil straddling the boundary.
  const double h = 1e-6;
  double lo = std::max(x - h, 0.0);
  double hi = x + h;
  if (x <= 1.0 && hi > 1.0) hi = 1.0;
  if (hi <= lo) {
    hi = lo + h;
  }
  return (value(hi) - value(lo)) / (hi - lo);
}

double MarginalCostLatency::integral(double x) const {
  // INT_0^x (l + u l') du = INT l + [u l]_0^x - INT l = x * l(x).
  return x * base_->value(x);
}

double MarginalCostLatency::max_slope(double x_max) const {
  // Grid bound; c' is not available in closed form through the interface.
  double worst = 0.0;
  const int n = 257;
  for (int i = 0; i < n; ++i) {
    const double x = x_max * static_cast<double>(i) /
                     static_cast<double>(n - 1);
    worst = std::max(worst, derivative(x));
  }
  return worst * (1.0 + 1e-6);
}

std::string MarginalCostLatency::describe() const {
  return "marginal[" + base_->describe() + "]";
}

LatencyPtr MarginalCostLatency::clone() const {
  return std::make_unique<MarginalCostLatency>(*base_);
}

double social_cost(const Instance& instance,
                   std::span<const double> path_flow) {
  const std::vector<double> fe = edge_flows(instance, path_flow);
  double cost = 0.0;
  for (std::size_t e = 0; e < fe.size(); ++e) {
    cost += fe[e] * instance.latency(EdgeId{e}).value(fe[e]);
  }
  return cost;
}

Instance marginal_cost_instance(const Instance& instance) {
  // Rebuild with the same graph, explicit (identical) path sets, and
  // wrapped latencies. Explicit paths keep the PathId order aligned with
  // the original instance.
  InstanceBuilder builder(instance.graph());
  for (std::size_t e = 0; e < instance.edge_count(); ++e) {
    builder.set_latency(
        EdgeId{e},
        std::make_unique<MarginalCostLatency>(instance.latency(EdgeId{e})));
  }
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    std::vector<std::vector<EdgeId>> paths;
    paths.reserve(commodity.paths.size());
    for (const PathId p : commodity.paths) {
      const auto edges = instance.path(p).edges();
      paths.emplace_back(edges.begin(), edges.end());
    }
    builder.add_commodity(commodity.source, commodity.sink, commodity.demand,
                          std::move(paths));
  }
  return std::move(builder).build();
}

SocialOptimumResult solve_social_optimum(const Instance& instance,
                                         FrankWolfeOptions options) {
  const Instance twin = marginal_cost_instance(instance);
  const FrankWolfeResult eq = solve_equilibrium(twin, options);
  SocialOptimumResult result{eq.flow};
  result.social_cost = social_cost(instance, eq.flow.values());
  result.residual_gap = eq.gap;
  result.converged = eq.converged;
  return result;
}

PriceOfAnarchyResult price_of_anarchy(const Instance& instance,
                                      FrankWolfeOptions options) {
  const FrankWolfeResult eq = solve_equilibrium(instance, options);
  const SocialOptimumResult opt = solve_social_optimum(instance, options);
  PriceOfAnarchyResult result;
  result.equilibrium_cost = social_cost(instance, eq.flow.values());
  result.optimum_cost = opt.social_cost;
  if (!(result.optimum_cost > 0.0)) {
    // A zero-cost optimum (e.g. the pulse instance) has PoA 1 when the
    // equilibrium cost is also 0; otherwise the ratio is unbounded.
    result.ratio = result.equilibrium_cost > 0.0
                       ? std::numeric_limits<double>::infinity()
                       : 1.0;
    return result;
  }
  result.ratio = result.equilibrium_cost / result.optimum_cost;
  return result;
}

}  // namespace staleflow
