// Social cost, social optimum and the price of anarchy.
//
// The paper's related work (Roughgarden & Tardos [22], Beckmann et al.,
// Wardrop) uses the classical correspondence: a flow minimises the social
// cost C(f) = sum_e f_e * l_e(f_e) iff it is a Wardrop equilibrium with
// respect to the *marginal cost* latencies c_e(x) = l_e(x) + x * l_e'(x).
// This module implements that transformation, a social-optimum solver on
// top of the Frank-Wolfe machinery, and the price of anarchy
// PoA = C(equilibrium) / C(optimum).
#pragma once

#include <span>

#include "equilibrium/frank_wolfe.h"
#include "net/flow.h"
#include "net/instance.h"

namespace staleflow {

/// Marginal cost wrapper c(x) = l(x) + x * l'(x).
///
/// Requires the wrapped latency to be convex (all families in this
/// library except decreasing-slope piecewise-linear functions), otherwise
/// c may decrease and the latency contract breaks. The integral has the
/// closed form INT_0^x c(u) du = x * l(x); the derivative is evaluated by
/// central differences because l'' is not part of the LatencyFunction
/// interface.
class MarginalCostLatency final : public LatencyFunction {
 public:
  /// Clones `base`; the wrapper owns its copy.
  explicit MarginalCostLatency(const LatencyFunction& base);

  double value(double x) const override;
  double derivative(double x) const override;
  double integral(double x) const override;
  double max_slope(double x_max) const override;
  std::string describe() const override;
  LatencyPtr clone() const override;

 private:
  LatencyPtr base_;
};

/// Total travel time C(f) = sum_e f_e * l_e(f_e) = sum_P f_P * l_P(f).
double social_cost(const Instance& instance,
                   std::span<const double> path_flow);

/// Builds the marginal-cost twin of an instance: same graph, same
/// commodities and path sets, latencies replaced by MarginalCostLatency.
Instance marginal_cost_instance(const Instance& instance);

struct SocialOptimumResult {
  FlowVector flow;
  /// C(f) at the optimum (measured with the *original* latencies).
  double social_cost = 0.0;
  /// Wardrop gap of the marginal-cost instance at the solution (solver
  /// residual; ~0 on success).
  double residual_gap = 0.0;
  bool converged = false;
};

/// Minimises the social cost via equilibrium computation on the
/// marginal-cost instance.
SocialOptimumResult solve_social_optimum(const Instance& instance,
                                         FrankWolfeOptions options = {});

struct PriceOfAnarchyResult {
  double equilibrium_cost = 0.0;
  double optimum_cost = 0.0;
  /// equilibrium_cost / optimum_cost (>= 1). For affine latencies the
  /// Roughgarden-Tardos bound guarantees <= 4/3.
  double ratio = 1.0;
};

/// Computes the price of anarchy of an instance.
PriceOfAnarchyResult price_of_anarchy(const Instance& instance,
                                      FrankWolfeOptions options = {});

}  // namespace staleflow
