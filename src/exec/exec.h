// Umbrella header for the deterministic execution layer (src/exec/): the
// Executor/TaskGraph runtime over the shared ThreadPool and the
// deterministic sub-batch splitting helpers. See README.md ("The
// execution layer") for the architecture sketch and the determinism
// contract it upholds.
#pragma once

#include "exec/executor.h"
