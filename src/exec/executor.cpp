#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "faults/fault_plan.h"
#include "trace/metrics.h"
#include "trace/recorder.h"

namespace staleflow {

// ------------------------------------------------------------- TaskGraph

TaskGraph::NodeId TaskGraph::add(std::function<void()> fn,
                                 std::span<const NodeId> deps,
                                 std::size_t affinity) {
  if (!fn) {
    throw std::invalid_argument("TaskGraph::add: null task");
  }
  const NodeId id = nodes_.size();
  for (const NodeId dep : deps) {
    if (dep >= id) {
      throw std::invalid_argument(
          "TaskGraph::add: dependencies must reference earlier nodes");
    }
  }
  Node node;
  node.fn = std::move(fn);
  node.dependency_count = deps.size();
  node.affinity = affinity;
  nodes_.push_back(std::move(node));
  for (const NodeId dep : deps) {
    nodes_[dep].dependents.push_back(id);
  }
  return id;
}

TaskGraph::NodeId TaskGraph::add(std::function<void()> fn,
                                 std::initializer_list<NodeId> deps,
                                 std::size_t affinity) {
  return add(std::move(fn), std::span<const NodeId>(deps.begin(), deps.size()),
             affinity);
}

void TaskGraph::run_inline() {
  // Insertion order is a topological order (deps point backward), so this
  // IS the deterministic reference schedule.
  for (Node& node : nodes_) node.fn();
}

void TaskGraph::run_on(ThreadPool& pool) {
  std::vector<NodeId> roots;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    remaining_.assign(nodes_.size(), 0);
    submitted_.assign(nodes_.size(), false);
    cancelled_ = false;
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      remaining_[id] = nodes_[id].dependency_count;
      if (remaining_[id] == 0) {
        submitted_[id] = true;
        roots.push_back(id);
      }
    }
  }
  const ThreadPool::CompletionToken token = pool.make_token();
  for (const NodeId id : roots) submit_node(pool, token, id);
  pool.wait(token);
}

void TaskGraph::submit_node(ThreadPool& pool,
                            const ThreadPool::CompletionToken& token,
                            NodeId id) {
  auto run_node = [this, &pool, token, id] {
        bool skip;
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          skip = cancelled_;
        }
        std::exception_ptr error;
        if (!skip) {
          try {
            nodes_[id].fn();
          } catch (...) {
            error = std::current_exception();
          }
        }
        std::vector<NodeId> ready;
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          if (error && !cancelled_) {
            // First failure: release every not-yet-submitted node as a
            // skip so the token drains instead of deadlocking on nodes
            // whose dependencies will never finish.
            cancelled_ = true;
            for (NodeId other = 0; other < nodes_.size(); ++other) {
              if (!submitted_[other]) {
                submitted_[other] = true;
                ready.push_back(other);
              }
            }
          } else {
            for (const NodeId dependent : nodes_[id].dependents) {
              if (--remaining_[dependent] == 0 && !submitted_[dependent]) {
                submitted_[dependent] = true;
                ready.push_back(dependent);
              }
            }
          }
        }
        for (const NodeId next : ready) submit_node(pool, token, next);
        if (error) std::rethrow_exception(error);  // lands in the token
  };
  const std::size_t affinity = nodes_[id].affinity;
  if (affinity == kNoAffinity) {
    pool.submit(std::move(run_node), token);
  } else {
    pool.submit(std::move(run_node), token,
                shard_lane(affinity, pool.size()));
  }
}

// -------------------------------------------------------------- Executor

Executor::Executor(std::size_t threads, bool pin) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_ = threads;
  if (threads > 1) {
    // The calling thread helps while waiting, so T-1 workers + the caller
    // give exactly T threads of progress.
    pool_ = std::make_unique<ThreadPool>(threads - 1, pin);
  }
}

void Executor::parallel_for(std::size_t count,
                            const std::function<void(std::size_t)>& fn) {
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const ThreadPool::CompletionToken token = pool_->make_token();
  for (std::size_t i = 0; i < count; ++i) {
    pool_->submit([&fn, i] { fn(i); }, token);
  }
  pool_->wait(token);
}

void Executor::run(TaskGraph& graph) {
  static trace::Counter& graphs_counter =
      trace::MetricsRegistry::global().counter("exec.graphs");
  static trace::Counter& nodes_counter =
      trace::MetricsRegistry::global().counter("exec.nodes");
  graphs_counter.inc();
  nodes_counter.add(graph.size());
  trace::Span span(trace::EventKind::kGraphSpan, /*tenant=*/0,
                   /*epoch=*/0, /*arg=*/pool_ == nullptr ? 0 : 1);
  span.value(graph.size());
  const std::uint64_t graph_index =
      graphs_run_.fetch_add(1, std::memory_order_relaxed);
  if (pool_ == nullptr) {
    graph.run_inline();
    return;
  }

  // Injected worker stall: submit sleep tasks BEFORE the graph's roots so
  // the FIFO queue hands them to workers first — those workers are then
  // out of service for the window while the graph runs on whoever is
  // left (the caller helps, so progress is guaranteed even if every
  // worker is held). Purely wall-clock contention.
  ThreadPool::CompletionToken stall_token;
  if (fault_schedule_ != nullptr) {
    const faults::FaultSchedule::Stall stall =
        fault_schedule_->stall_at(graph_index);
    if (stall.workers > 0 && stall.ms > 0) {
      static trace::Counter& stalls_counter =
          trace::MetricsRegistry::global().counter("faults.stalls");
      stalls_counter.inc();
      if (trace::active()) {
        trace::instant(
            trace::EventKind::kFaultSpan, /*tenant=*/0, graph_index,
            static_cast<std::uint64_t>(faults::FaultKind::kWorkerStall),
            stall.ms);
      }
      stall_token = pool_->make_token();
      const std::size_t held =
          std::min<std::size_t>(stall.workers, pool_->size());
      for (std::size_t w = 0; w < held; ++w) {
        pool_->submit(
            [ms = stall.ms] {
              std::this_thread::sleep_for(std::chrono::milliseconds(ms));
            },
            stall_token);
      }
    }
  }

  graph.run_on(*pool_);
  if (stall_token != nullptr) pool_->wait(stall_token);
}

// ------------------------------------------------------------- splitting

std::size_t sub_batch_count(std::size_t items, std::size_t target,
                            std::size_t max_chunks) {
  if (max_chunks == 0) {
    throw std::invalid_argument("sub_batch_count: max_chunks must be >= 1");
  }
  if (target == 0 || items <= target) return 1;
  const std::size_t chunks = (items + target - 1) / target;
  return std::min(chunks, max_chunks);
}

SubRange sub_range(std::size_t total, std::size_t chunks, std::size_t chunk) {
  if (chunks == 0 || chunk >= chunks) {
    throw std::invalid_argument("sub_range: need chunk < chunks, chunks >= 1");
  }
  const std::size_t base = total / chunks;
  const std::size_t extra = total % chunks;
  SubRange range;
  range.begin = chunk * base + std::min(chunk, extra);
  range.count = base + (chunk < extra ? 1 : 0);
  return range;
}

std::size_t auto_sub_batch_target(std::size_t total, std::size_t lanes) {
  if (lanes == 0) {
    throw std::invalid_argument("auto_sub_batch_target: lanes must be >= 1");
  }
  constexpr std::size_t kPiecesPerLane = 4;
  constexpr std::size_t kMinTarget = 256;
  const std::size_t pieces = kPiecesPerLane * lanes;
  return std::max(kMinTarget, (total + pieces - 1) / pieces);
}

std::size_t shard_lane(std::size_t shard, std::size_t lanes) {
  if (lanes == 0) {
    throw std::invalid_argument("shard_lane: lanes must be >= 1");
  }
  // splitmix64 finalizer: consecutive shard ids scatter uniformly over
  // the lanes instead of striding, so shards ≈ lanes doesn't alias.
  std::uint64_t x = static_cast<std::uint64_t>(shard) + 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % lanes);
}

}  // namespace staleflow
