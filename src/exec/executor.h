// The deterministic execution layer: one Executor, one ThreadPool, any
// number of cooperating subsystems.
//
// Everything parallel in staleflow follows the same discipline — work is
// cut into tasks that share no mutable state, anything random or
// order-sensitive is derived *before* dispatch, and reductions walk a
// canonical order — so the only thing a subsystem needs from the runtime
// is "run these tasks, some after others, and tell me when my batch is
// done". Executor is that interface. It wraps a single ThreadPool that
// the sweep runner and the route server share (a kService sweep cell uses
// inner parallelism on the same pool instead of colliding nested pools),
// runs everything inline in deterministic order when threads == 1, and
// guarantees that the values computed are identical either way.
//
// TaskGraph adds dependencies: nodes may only depend on earlier nodes, so
// insertion order is a topological order, which is exactly the order the
// inline mode executes — the parallel schedule can only reorder work that
// is independent by construction. This is how the route server pipelines
// an epoch: serve nodes feed a fold node, which feeds the next snapshot's
// board post + per-commodity CDF nodes in parallel with the telemetry
// summary node.
//
// sub_batch_count / sub_range are the deterministic work-splitting
// helpers: split points are derived from batch sizes alone (never from
// thread count or scheduling), so a skewed batch parallelizes while
// 1-vs-N-thread runs stay byte-identical.
//
// shard_lane is the locality placement map: nodes added with an affinity
// key (the shard id) are routed to worker lane shard_lane(key, lanes), so
// every sub-batch of one shard lands on the same worker and its state
// (ledger slots, histograms, client slices) stays warm in one cache.
// Placement decides only WHERE a task runs, never WHAT it computes — a
// stolen or helped task produces the same bytes — so the determinism
// contract is untouched at any lane count, pinned or not.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/thread_pool.h"

namespace staleflow {

namespace faults {
class FaultSchedule;
}

/// A one-shot dependency graph of tasks. Build with add(), hand to
/// Executor::run(). Nodes may only depend on nodes added before them
/// (enforced), so the graph is acyclic by construction and node order is
/// a valid serial schedule.
class TaskGraph {
 public:
  using NodeId = std::size_t;

  /// Affinity value for nodes with no placement preference (the shared
  /// FIFO queue).
  static constexpr std::size_t kNoAffinity = static_cast<std::size_t>(-1);

  /// Adds a node that runs `fn` once every node in `deps` has finished.
  /// `affinity` is the locality key (typically the shard id): nodes with
  /// the same key are routed to the same worker lane via shard_lane().
  /// Advisory only — placement never changes the node's result. Throws
  /// std::invalid_argument if fn is null or any dep is not an earlier
  /// node's id.
  NodeId add(std::function<void()> fn, std::span<const NodeId> deps = {},
             std::size_t affinity = kNoAffinity);
  NodeId add(std::function<void()> fn, std::initializer_list<NodeId> deps,
             std::size_t affinity = kNoAffinity);

  std::size_t size() const noexcept { return nodes_.size(); }

 private:
  friend class Executor;

  struct Node {
    std::function<void()> fn;
    std::vector<NodeId> dependents;  // nodes waiting on this one
    std::size_t dependency_count = 0;
    std::size_t affinity = kNoAffinity;
  };

  void run_inline();
  void run_on(ThreadPool& pool);
  void submit_node(ThreadPool& pool, const ThreadPool::CompletionToken& token,
                   NodeId id);

  std::vector<Node> nodes_;

  // Per-run scheduling state (run_on only).
  std::mutex mutex_;
  std::vector<std::size_t> remaining_;  // unfinished deps per node
  std::vector<bool> submitted_;
  bool cancelled_ = false;
};

/// Executes batches and task graphs over one worker pool.
///
/// threads == 1 (the default) is inline mode: no pool, every task runs on
/// the calling thread in submission/insertion order — the deterministic
/// reference schedule. threads == 0 picks hardware concurrency. With
/// threads == T > 1 the executor owns T-1 workers and the calling thread
/// helps while waiting, so T threads make progress — and a task may
/// itself call back into the executor (nested parallel_for / run) without
/// deadlock or oversubscription, which is how sweep cells and the route
/// server share the pool.
class Executor {
 public:
  /// With `pin`, worker lane i is pinned to CPU core i where available
  /// (silently a no-op otherwise) — wall-clock placement only, never
  /// semantics. Ignored in inline mode.
  explicit Executor(std::size_t threads = 1, bool pin = false);

  /// Total threads that make progress on this executor's work (>= 1).
  std::size_t threads() const noexcept { return threads_; }
  bool inline_mode() const noexcept { return pool_ == nullptr; }

  /// Runs fn(i) for i in [0, count) and waits; rethrows the first
  /// exception any call raised.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Executes every node of the graph, respecting dependencies, and
  /// waits. Failure is fail-fast: the first node exception is rethrown
  /// and every node that has not yet started — downstream of the failure
  /// or not — is skipped, so which independent nodes ran is
  /// scheduling-dependent after an error (inline mode skips everything
  /// after the throwing node). Don't hang cleanup side effects on graph
  /// nodes. A graph may be run again after run() returns (scheduling
  /// state is rebuilt per run).
  void run(TaskGraph& graph);

  /// Installs a fault schedule whose worker-stall windows apply to this
  /// executor's graph runs (nullptr = healthy, the default). A stall
  /// window covering the N-th graph this executor runs occupies the
  /// scheduled number of pool workers with sleep tasks for its duration —
  /// wall-clock contention only, never dynamics (task *values* are
  /// scheduling-independent by the determinism contract). No-op in
  /// inline mode (there are no workers to stall). The schedule must
  /// outlive every run().
  void set_fault_schedule(const faults::FaultSchedule* schedule) noexcept {
    fault_schedule_ = schedule;
  }

 private:
  std::size_t threads_;
  std::unique_ptr<ThreadPool> pool_;  // null in inline mode
  const faults::FaultSchedule* fault_schedule_ = nullptr;
  // Graph sequence number for stall-window lookup; atomic because sweep
  // cells run graphs on one shared executor concurrently.
  std::atomic<std::uint64_t> graphs_run_{0};
};

/// Number of sub-batches a batch of `items` splits into: ceil(items /
/// target), clamped to [1, max_chunks]. Depends only on the batch size —
/// never on thread count — so the split is part of the deterministic
/// replay contract. target == 0 means "never split". max_chunks must be
/// >= 1.
std::size_t sub_batch_count(std::size_t items, std::size_t target,
                            std::size_t max_chunks);

/// Half-open index range of chunk `chunk` when [0, total) is cut into
/// `chunks` balanced contiguous pieces (sizes differ by at most one, the
/// first total % chunks pieces are the larger ones). Requires chunks >= 1
/// and chunk < chunks.
struct SubRange {
  std::size_t begin = 0;
  std::size_t count = 0;
};
SubRange sub_range(std::size_t total, std::size_t chunks, std::size_t chunk);

/// The adaptive sub-batch target ("--sub-batch auto"): a split threshold
/// derived from the batch's total size so the task count stays stable
/// across load levels — each of `lanes` lanes (shards) aims for about
/// four sub-batches, i.e. target = ceil(total / (4 * lanes)), floored at
/// 256 queries so tiny epochs never shatter into per-query tasks. A pure
/// function of (total, lanes) — never thread count or scheduling — so it
/// is part of the deterministic replay contract, like a fixed target.
/// Requires lanes >= 1.
std::size_t auto_sub_batch_target(std::size_t total, std::size_t lanes);

/// The deterministic shard -> worker-lane placement map: a pure function
/// of (shard, lanes) — a splitmix64 finalizer over the shard id, modulo
/// the lane count — so every shard maps to exactly one lane, the mapping
/// is identical across runs and hosts, and no shard's placement depends
/// on scheduling, thread timing or any other shard. The mix spreads
/// consecutive shard ids across lanes even when shards ≈ lanes; residual
/// imbalance is covered by steal-when-idle. Requires lanes >= 1.
std::size_t shard_lane(std::size_t shard, std::size_t lanes);

}  // namespace staleflow
