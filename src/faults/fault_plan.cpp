#include "faults/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/rng.h"

namespace staleflow::faults {
namespace {

// Salt XORed into the run seed so the fault stream is independent of
// every dynamics stream split from the same seed.
constexpr std::uint64_t kFaultSeedSalt = 0x8F1D3A5C9B7E2460ULL;

constexpr std::string_view kGrammar =
    "expected \"slow:shard=S,us=U[,tenant=T][,at=E][,for=N]\" | "
    "\"stall:workers=W,ms=M[,at=G][,for=N]\" | "
    "\"drop-telemetry[:tenant=T][,at=E][,for=N]\" | "
    "\"brownout:shed=F[,tenant=T][,at=E][,for=N]\" | "
    "\"crash:at=N\" | \"none\", clauses joined by ';' or '+'";

[[noreturn]] void bad_spec(std::string_view detail) {
  throw std::invalid_argument("--faults: " + std::string(detail) + " (" +
                              std::string(kGrammar) + ")");
}

std::vector<std::string_view> split_any(std::string_view text,
                                        std::string_view separators) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || separators.find(text[i]) != std::string_view::npos) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::uint64_t parse_u64(std::string_view value, std::string_view clause,
                        std::string_view key) {
  if (value.empty()) bad_spec("empty " + std::string(key) + " in \"" +
                              std::string(clause) + "\"");
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c)))
      bad_spec("non-numeric " + std::string(key) + "=\"" + std::string(value) +
               "\" in \"" + std::string(clause) + "\"");
  }
  try {
    return std::stoull(std::string(value));
  } catch (const std::out_of_range&) {
    bad_spec(std::string(key) + "=\"" + std::string(value) +
             "\" out of range in \"" + std::string(clause) + "\"");
  }
}

double parse_fraction(std::string_view value, std::string_view clause) {
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(std::string(value), &used);
  } catch (const std::exception&) {
    bad_spec("bad shed=\"" + std::string(value) + "\" in \"" +
             std::string(clause) + "\"");
  }
  if (used != value.size() || !(parsed > 0.0) || parsed > 1.0)
    bad_spec("shed must be a fraction in (0,1], got \"" + std::string(value) +
             "\" in \"" + std::string(clause) + "\"");
  return parsed;
}

FaultClause parse_clause(std::string_view text) {
  const std::size_t colon = text.find(':');
  const std::string_view name = text.substr(0, colon);
  const std::string_view args =
      colon == std::string_view::npos ? std::string_view{}
                                      : text.substr(colon + 1);

  FaultClause clause;
  if (name == "slow") {
    clause.kind = FaultKind::kShardSlowdown;
  } else if (name == "stall") {
    clause.kind = FaultKind::kWorkerStall;
  } else if (name == "drop-telemetry") {
    clause.kind = FaultKind::kDropTelemetry;
  } else if (name == "brownout") {
    clause.kind = FaultKind::kBrownout;
  } else if (name == "crash") {
    clause.kind = FaultKind::kCrash;
  } else {
    bad_spec("unknown fault kind \"" + std::string(name) + "\"");
  }

  bool saw_shard = false, saw_us = false, saw_workers = false, saw_ms = false,
       saw_shed = false;
  if (!args.empty()) {
    for (std::string_view field : split_any(args, ",")) {
      const std::size_t eq = field.find('=');
      if (eq == std::string_view::npos || eq == 0)
        bad_spec("expected key=value, got \"" + std::string(field) +
                 "\" in \"" + std::string(text) + "\"");
      const std::string_view key = field.substr(0, eq);
      const std::string_view value = field.substr(eq + 1);
      if (key == "at") {
        clause.at = parse_u64(value, text, key);
      } else if (key == "for") {
        const std::uint64_t n = parse_u64(value, text, key);
        if (n == 0) bad_spec("for=0 in \"" + std::string(text) + "\"");
        clause.duration = n;
      } else if (key == "tenant" && clause.kind != FaultKind::kWorkerStall &&
                 clause.kind != FaultKind::kCrash) {
        clause.tenant = static_cast<std::uint32_t>(parse_u64(value, text, key));
      } else if (key == "shard" && clause.kind == FaultKind::kShardSlowdown) {
        clause.shard = parse_u64(value, text, key);
        saw_shard = true;
      } else if (key == "us" && clause.kind == FaultKind::kShardSlowdown) {
        clause.slow_us = parse_u64(value, text, key);
        saw_us = true;
      } else if (key == "workers" && clause.kind == FaultKind::kWorkerStall) {
        clause.workers = parse_u64(value, text, key);
        saw_workers = true;
      } else if (key == "ms" && clause.kind == FaultKind::kWorkerStall) {
        clause.stall_ms = parse_u64(value, text, key);
        saw_ms = true;
      } else if (key == "shed" && clause.kind == FaultKind::kBrownout) {
        clause.shed = parse_fraction(value, text);
        saw_shed = true;
      } else {
        bad_spec("unknown key \"" + std::string(key) + "\" for " +
                 std::string(name) + " in \"" + std::string(text) + "\"");
      }
    }
  }

  switch (clause.kind) {
    case FaultKind::kShardSlowdown:
      if (!saw_shard || !saw_us)
        bad_spec("slow requires shard= and us= in \"" + std::string(text) +
                 "\"");
      if (clause.slow_us == 0)
        bad_spec("slow requires us > 0 in \"" + std::string(text) + "\"");
      break;
    case FaultKind::kWorkerStall:
      if (!saw_workers || !saw_ms)
        bad_spec("stall requires workers= and ms= in \"" + std::string(text) +
                 "\"");
      if (clause.workers == 0 || clause.stall_ms == 0)
        bad_spec("stall requires workers > 0 and ms > 0 in \"" +
                 std::string(text) + "\"");
      break;
    case FaultKind::kBrownout:
      if (!saw_shed)
        bad_spec("brownout requires shed= in \"" + std::string(text) + "\"");
      break;
    case FaultKind::kCrash:
      if (!clause.at)
        bad_spec("crash requires at= in \"" + std::string(text) + "\"");
      if (*clause.at == 0)
        bad_spec("crash requires at >= 1 (the first commit point) in \"" +
                 std::string(text) + "\"");
      break;
    case FaultKind::kDropTelemetry:
      break;
  }
  return clause;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kShardSlowdown: return "slow";
    case FaultKind::kWorkerStall: return "stall";
    case FaultKind::kDropTelemetry: return "drop-telemetry";
    case FaultKind::kBrownout: return "brownout";
    case FaultKind::kCrash: return "crash";
  }
  return "unknown";
}

FaultPlan parse_fault_plan(std::string_view spec) {
  if (spec.empty()) bad_spec("empty spec");
  FaultPlan plan;
  plan.spec = std::string(spec);
  for (std::string_view clause : split_any(spec, ";+")) {
    if (clause.empty()) bad_spec("empty clause in \"" + plan.spec + "\"");
    if (clause == "none") continue;
    plan.clauses.push_back(parse_clause(clause));
  }
  return plan;
}

FaultSchedule FaultSchedule::materialize(const FaultPlan& plan,
                                         std::uint64_t seed,
                                         std::uint64_t epochs) {
  FaultSchedule schedule;
  if (plan.empty()) return schedule;
  if (epochs == 0)
    throw std::invalid_argument(
        "--faults: cannot materialize a fault plan for a 0-epoch run");

  // One dedicated stream, walked in clause order: only fields the spec
  // left open consume draws, so pinning one clause's window never
  // shifts another's.
  Rng rng(seed ^ kFaultSeedSalt);
  schedule.faults_.reserve(plan.clauses.size());
  for (const FaultClause& clause : plan.clauses) {
    ActiveFault active;
    active.clause = clause;
    active.begin = clause.at ? *clause.at : rng.below(epochs);
    std::uint64_t duration = 1;
    if (clause.kind == FaultKind::kCrash) {
      // Crash is a point event; `begin` counts committed epochs/rounds.
      duration = 1;
    } else if (clause.duration) {
      duration = *clause.duration;
    } else {
      duration = 1 + rng.below(std::max<std::uint64_t>(1, epochs / 4));
    }
    active.end = active.begin > ~std::uint64_t{0} - duration
                     ? ~std::uint64_t{0}
                     : active.begin + duration;
    schedule.faults_.push_back(active);
  }
  return schedule;
}

std::uint64_t FaultSchedule::slowdown_us(std::uint32_t tenant,
                                         std::uint64_t shard,
                                         std::uint64_t epoch) const noexcept {
  std::uint64_t total = 0;
  for (const ActiveFault& fault : faults_) {
    if (fault.clause.kind == FaultKind::kShardSlowdown &&
        fault.clause.tenant == tenant && fault.clause.shard == shard &&
        fault.covers(epoch))
      total += fault.clause.slow_us;
  }
  return total;
}

double FaultSchedule::brownout_shed(std::uint32_t tenant,
                                    std::uint64_t epoch) const noexcept {
  double survive = 1.0;
  for (const ActiveFault& fault : faults_) {
    if (fault.clause.kind == FaultKind::kBrownout &&
        fault.clause.tenant == tenant && fault.covers(epoch))
      survive *= 1.0 - fault.clause.shed;
  }
  return 1.0 - survive;
}

bool FaultSchedule::telemetry_dropped(std::uint32_t tenant,
                                      std::uint64_t epoch) const noexcept {
  for (const ActiveFault& fault : faults_) {
    if (fault.clause.kind == FaultKind::kDropTelemetry &&
        fault.clause.tenant == tenant && fault.covers(epoch))
      return true;
  }
  return false;
}

FaultSchedule::Stall FaultSchedule::stall_at(
    std::uint64_t graph) const noexcept {
  Stall stall;
  for (const ActiveFault& fault : faults_) {
    if (fault.clause.kind == FaultKind::kWorkerStall && fault.covers(graph)) {
      stall.workers += fault.clause.workers;
      stall.ms = std::max(stall.ms, fault.clause.stall_ms);
    }
  }
  return stall;
}

bool FaultSchedule::crash_after(std::uint64_t committed) const noexcept {
  if (committed == 0) return false;
  for (const ActiveFault& fault : faults_) {
    if (fault.clause.kind == FaultKind::kCrash && fault.begin == committed)
      return true;
  }
  return false;
}

void busy_wait_us(std::uint64_t us) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
    // Spin: the point is to burn wall clock on this worker without
    // changing any state the digest can see.
  }
}

void crash_process(std::uint64_t committed) {
  std::fprintf(stderr,
               "staleflow: injected crash after commit point %llu\n",
               static_cast<unsigned long long>(committed));
  std::fflush(stderr);
  // _Exit mirrors a kill -9: no destructors, no atexit, no flushing of
  // anything the WAL observer didn't already fsync-order itself.
  std::_Exit(137);
}

}  // namespace staleflow::faults
