// Deterministic fault-injection plane.
//
// A FaultPlan is parsed from a `--faults <spec>` string and names *what*
// can go wrong (typed fault clauses); a FaultSchedule is the plan
// materialized against a run's (seed, epochs): every activation window
// the spec leaves open is drawn from a dedicated Rng stream derived from
// the run seed, never from wall clock. The schedule is therefore a pure
// function of (spec, seed, epochs) — two runs with the same triple see
// byte-identical fault timing, which is what makes chaos runs replayable
// and digest-pinnable (and lets a `--resume` after a fault-induced crash
// rebuild the exact same schedule from the WAL header).
//
// Fault kinds and their digest contract:
//   - slow          per-shard busy-wait per serving sub-batch task.
//                   Wall-clock only; never touches dynamics. Digest-neutral.
//   - stall         occupies N pool workers with sleep tasks for the
//                   duration of scheduled task graphs. Digest-neutral.
//   - drop-telemetry suppresses the engine's trace emission for a
//                   (tenant, epoch) window. Traces are digest-neutral by
//                   contract, so dropping them is too.
//   - brownout      deterministically sheds a fraction of a tenant's
//                   planned arrivals. Changes that tenant's digest (by
//                   design — it is load shedding), and ONLY that
//                   tenant's: co-scheduled tenants stay byte-identical.
//   - crash         terminates the process (exit 137) after the N-th
//                   committed epoch/round — the commit point the WAL
//                   observer just flushed — so it composes with
//                   `--wal`/`--resume`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace staleflow::faults {

/// Typed fault kinds. Values are stable (they appear in trace events as
/// the kFaultSpan `arg` field); append, never renumber.
enum class FaultKind : std::uint8_t {
  kShardSlowdown = 0,   ///< busy-wait serving tasks of one shard
  kWorkerStall = 1,     ///< hold pool workers in sleep tasks
  kDropTelemetry = 2,   ///< suppress a tenant's trace emission
  kBrownout = 3,        ///< shed a fraction of a tenant's arrivals
  kCrash = 4,           ///< _Exit(137) after the N-th commit point
};

/// Human-readable fault-kind name ("slow", "stall", ...).
std::string_view fault_kind_name(FaultKind kind) noexcept;

/// One parsed fault clause. Which fields are meaningful depends on
/// `kind`; `at`/`duration` stay unset when the spec omits them and are
/// drawn from the fault Rng stream at materialize time.
struct FaultClause {
  FaultKind kind = FaultKind::kBrownout;
  std::uint32_t tenant = 0;   ///< registry index (slow/drop/brownout)
  std::uint64_t shard = 0;    ///< slow: which logical shard
  std::uint64_t slow_us = 0;  ///< slow: busy-wait per sub-batch task
  std::uint64_t workers = 0;  ///< stall: how many pool workers to hold
  std::uint64_t stall_ms = 0; ///< stall: how long each worker sleeps
  double shed = 0.0;          ///< brownout: fraction of arrivals in (0,1]
  std::optional<std::uint64_t> at;        ///< activation epoch / graph / commit
  std::optional<std::uint64_t> duration;  ///< window length in epochs/graphs
};

/// A parsed `--faults` spec: an ordered list of clauses plus the
/// original text (ordered because omitted windows are drawn from the
/// fault stream in clause order — the order is part of the contract).
struct FaultPlan {
  std::vector<FaultClause> clauses;
  std::string spec;

  bool empty() const noexcept { return clauses.empty(); }
};

/// Parses a fault spec. Grammar (clauses separated by ';' or '+'):
///
///   spec   := clause ((';' | '+') clause)* | "none"
///   clause := "slow:shard=<s>,us=<u>[,tenant=<t>][,at=<e>][,for=<n>]"
///           | "stall:workers=<w>,ms=<m>[,at=<g>][,for=<n>]"
///           | "drop-telemetry[:tenant=<t>][,at=<e>][,for=<n>]"
///           | "brownout:shed=<f>[,tenant=<t>][,at=<e>][,for=<n>]"
///           | "crash:at=<n>"
///
/// `at`/`for` are in epochs (graphs for stall, committed epochs/rounds
/// for crash); omitted ones are drawn at materialize time. `shed` is a
/// fraction in (0,1]. "none" (and a bare "none" clause) parses to an
/// empty plan. Throws std::invalid_argument with a grammar reminder on
/// any malformed spec.
FaultPlan parse_fault_plan(std::string_view spec);

/// One materialized fault window over [begin, end) in epoch (or graph,
/// or commit-count) coordinates, depending on the clause kind.
struct ActiveFault {
  FaultClause clause;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  ///< half-open

  bool covers(std::uint64_t t) const noexcept { return t >= begin && t < end; }
};

/// A FaultPlan bound to concrete activation windows. Query methods are
/// const, lock-free and O(#clauses) — cheap enough for per-sub-batch
/// hooks; a null/empty schedule means a healthy world.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Binds `plan` to a run: windows the spec pinned with `at=`/`for=`
  /// are kept verbatim; omitted ones are drawn from a dedicated stream
  /// seeded by `seed` (the run seed XOR a fault-plane salt), in clause
  /// order. Pure function of (plan, seed, epochs); requires epochs >= 1
  /// for any plan with clauses (throws std::invalid_argument otherwise).
  static FaultSchedule materialize(const FaultPlan& plan, std::uint64_t seed,
                                   std::uint64_t epochs);

  bool empty() const noexcept { return faults_.empty(); }
  const std::vector<ActiveFault>& faults() const noexcept { return faults_; }

  /// Total busy-wait microseconds a serving task of (tenant, shard)
  /// owes during `epoch` (sums overlapping slow windows). 0 = healthy.
  std::uint64_t slowdown_us(std::uint32_t tenant, std::uint64_t shard,
                            std::uint64_t epoch) const noexcept;

  /// Fraction of `tenant`'s planned arrivals to shed in `epoch`.
  /// Overlapping brownouts compose as independent survivor products;
  /// the result is in [0, 1].
  double brownout_shed(std::uint32_t tenant,
                       std::uint64_t epoch) const noexcept;

  /// True when `tenant`'s engine must not emit trace events for `epoch`.
  bool telemetry_dropped(std::uint32_t tenant,
                         std::uint64_t epoch) const noexcept;

  struct Stall {
    std::uint64_t workers = 0;
    std::uint64_t ms = 0;
  };

  /// Worker-stall demand for the `graph`-th task graph the executor
  /// runs (workers summed, ms maxed across overlapping stall windows).
  Stall stall_at(std::uint64_t graph) const noexcept;

  /// True when a crash clause fires after `committed` epochs/rounds —
  /// i.e. the host must _Exit now that commit point `committed` is on
  /// disk. Never true for committed == 0.
  bool crash_after(std::uint64_t committed) const noexcept;

 private:
  std::vector<ActiveFault> faults_;
};

/// Spins on the monotonic clock for `us` microseconds. The slowdown
/// primitive: burns wall clock without yielding state changes.
void busy_wait_us(std::uint64_t us);

/// Terminates the process with exit code 137 (the conventional
/// SIGKILL-style status the recovery CI smoke expects) after noting the
/// injected crash on stderr. Called only from fault hooks, and only
/// after the current commit point's WAL records are flushed.
[[noreturn]] void crash_process(std::uint64_t committed);

}  // namespace staleflow::faults
