// Umbrella header for the deterministic fault-injection plane.
//
// Quickstart:
//
//   auto plan = staleflow::faults::parse_fault_plan(
//       "brownout:shed=0.5,tenant=0,at=3,for=4");
//   auto schedule = staleflow::faults::FaultSchedule::materialize(
//       plan, options.seed, options.epochs);
//   options.faults = &schedule;   // RouteServerOptions runtime pointer
//   // serve — fault timing is a pure function of (spec, seed, epochs),
//   // so the chaos run is bit-for-bit replayable at any thread count.
#pragma once

#include "faults/fault_plan.h"
