#include "graph/graph.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace staleflow {

Graph::Graph(std::size_t n) : out_edges_(n), in_edges_(n) {}

VertexId Graph::add_vertex() {
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return VertexId{vertex_count() - 1};
}

VertexId Graph::add_vertices(std::size_t count) {
  const VertexId first{vertex_count()};
  out_edges_.resize(vertex_count() + count);
  in_edges_.resize(in_edges_.size() + count);
  return first;
}

EdgeId Graph::add_edge(VertexId from, VertexId to) {
  check_vertex(from);
  check_vertex(to);
  const EdgeId id{edge_count()};
  edges_.push_back(Edge{from, to});
  out_edges_[from.index()].push_back(id);
  in_edges_[to.index()].push_back(id);
  return id;
}

const Graph::Edge& Graph::edge(EdgeId e) const {
  if (!contains(e)) throw std::out_of_range("Graph::edge: unknown edge id");
  return edges_[e.index()];
}

std::span<const EdgeId> Graph::out_edges(VertexId v) const {
  check_vertex(v);
  return out_edges_[v.index()];
}

std::span<const EdgeId> Graph::in_edges(VertexId v) const {
  check_vertex(v);
  return in_edges_[v.index()];
}

bool Graph::is_acyclic() const {
  // Kahn's algorithm: the graph is acyclic iff all vertices get popped.
  std::vector<std::size_t> indegree(vertex_count());
  for (const Edge& e : edges_) ++indegree[e.to.index()];
  std::vector<VertexId> queue;
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    if (indegree[v] == 0) queue.push_back(VertexId{v});
  }
  std::size_t popped = 0;
  while (!queue.empty()) {
    const VertexId v = queue.back();
    queue.pop_back();
    ++popped;
    for (const EdgeId e : out_edges_[v.index()]) {
      const VertexId w = edges_[e.index()].to;
      if (--indegree[w.index()] == 0) queue.push_back(w);
    }
  }
  return popped == vertex_count();
}

std::vector<VertexId> Graph::topological_order() const {
  std::vector<std::size_t> indegree(vertex_count());
  for (const Edge& e : edges_) ++indegree[e.to.index()];
  std::vector<VertexId> queue;
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    if (indegree[v] == 0) queue.push_back(VertexId{v});
  }
  std::vector<VertexId> order;
  order.reserve(vertex_count());
  while (!queue.empty()) {
    const VertexId v = queue.back();
    queue.pop_back();
    order.push_back(v);
    for (const EdgeId e : out_edges_[v.index()]) {
      const VertexId w = edges_[e.index()].to;
      if (--indegree[w.index()] == 0) queue.push_back(w);
    }
  }
  if (order.size() != vertex_count()) {
    throw std::logic_error("Graph::topological_order: graph has a cycle");
  }
  return order;
}

bool Graph::reachable(VertexId from, VertexId to) const {
  check_vertex(from);
  check_vertex(to);
  if (from == to) return true;
  std::vector<bool> seen(vertex_count());
  std::vector<VertexId> stack{from};
  seen[from.index()] = true;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const EdgeId e : out_edges_[v.index()]) {
      const VertexId w = edges_[e.index()].to;
      if (w == to) return true;
      if (!seen[w.index()]) {
        seen[w.index()] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

std::string Graph::describe() const {
  std::ostringstream os;
  os << "Graph(V=" << vertex_count() << ", E=" << edge_count() << ")";
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    os << (i == 0 ? ": " : " ") << 'v' << edges_[i].from.value << "->v"
       << edges_[i].to.value << "(e" << i << ')';
  }
  return os.str();
}

void Graph::check_vertex(VertexId v) const {
  if (!contains(v)) {
    throw std::out_of_range("Graph: unknown vertex id");
  }
}

}  // namespace staleflow
