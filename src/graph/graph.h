// Directed finite multigraph — the network substrate of the Wardrop model.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/ids.h"

namespace staleflow {

/// A directed multigraph G = (V, E). Parallel edges and self-loops are
/// allowed (the paper's canonical example is two parallel links).
///
/// Vertices and edges are created once and never removed; ids are dense
/// indices, which lets all per-edge data elsewhere in the library live in
/// flat vectors.
class Graph {
 public:
  struct Edge {
    VertexId from;
    VertexId to;
  };

  Graph() = default;

  /// Creates a graph with `n` isolated vertices.
  explicit Graph(std::size_t n);

  /// Adds a vertex and returns its id.
  VertexId add_vertex();

  /// Adds `count` vertices; returns the id of the first.
  VertexId add_vertices(std::size_t count);

  /// Adds a directed edge. Both endpoints must already exist.
  EdgeId add_edge(VertexId from, VertexId to);

  std::size_t vertex_count() const noexcept { return out_edges_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  bool contains(VertexId v) const noexcept {
    return v.valid() && v.index() < vertex_count();
  }
  bool contains(EdgeId e) const noexcept {
    return e.valid() && e.index() < edge_count();
  }

  /// Endpoints of an edge. Throws std::out_of_range for an unknown id.
  const Edge& edge(EdgeId e) const;
  VertexId source(EdgeId e) const { return edge(e).from; }
  VertexId target(EdgeId e) const { return edge(e).to; }

  /// Outgoing / incoming edge lists of a vertex.
  std::span<const EdgeId> out_edges(VertexId v) const;
  std::span<const EdgeId> in_edges(VertexId v) const;

  std::size_t out_degree(VertexId v) const { return out_edges(v).size(); }
  std::size_t in_degree(VertexId v) const { return in_edges(v).size(); }

  /// True if the graph contains no directed cycle.
  bool is_acyclic() const;

  /// Topological order of the vertices. Throws std::logic_error if cyclic.
  std::vector<VertexId> topological_order() const;

  /// True if `to` is reachable from `from` along directed edges.
  bool reachable(VertexId from, VertexId to) const;

  /// Human-readable dump, e.g. "v0->v1(e0) v0->v1(e1)".
  std::string describe() const;

 private:
  void check_vertex(VertexId v) const;

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
};

}  // namespace staleflow
