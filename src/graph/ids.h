// Strong index types for the distinct id spaces used across the library.
//
// Vertices, edges, paths and commodities are all "just integers", but mixing
// them up is a classic source of silent bugs. Each id is a distinct type
// with explicit construction, so e.g. passing a PathId where an EdgeId is
// expected fails to compile (Core Guidelines I.4).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace staleflow {

namespace detail {

/// CRTP-free strong integer id. `Tag` makes each instantiation unique.
template <typename Tag>
struct StrongId {
  using underlying_type = std::int32_t;

  underlying_type value = -1;

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type v) noexcept : value(v) {}
  constexpr explicit StrongId(std::size_t v) noexcept
      : value(static_cast<underlying_type>(v)) {}

  constexpr bool valid() const noexcept { return value >= 0; }
  constexpr std::size_t index() const noexcept {
    return static_cast<std::size_t>(value);
  }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;
};

}  // namespace detail

struct VertexTag {};
struct EdgeTag {};
struct PathTag {};
struct CommodityTag {};

using VertexId = detail::StrongId<VertexTag>;
using EdgeId = detail::StrongId<EdgeTag>;
using PathId = detail::StrongId<PathTag>;
using CommodityId = detail::StrongId<CommodityTag>;

}  // namespace staleflow

template <typename Tag>
struct std::hash<staleflow::detail::StrongId<Tag>> {
  std::size_t operator()(
      staleflow::detail::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};
