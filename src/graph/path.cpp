#include "graph/path.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace staleflow {

Path::Path(const Graph& graph, std::vector<EdgeId> edges)
    : edges_(std::move(edges)) {
  if (edges_.empty()) {
    throw std::invalid_argument("Path: edge sequence must be non-empty");
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (!graph.contains(edges_[i])) {
      throw std::invalid_argument("Path: unknown edge id");
    }
    if (i > 0 && graph.target(edges_[i - 1]) != graph.source(edges_[i])) {
      throw std::invalid_argument("Path: edges are not contiguous");
    }
  }
  source_ = graph.source(edges_.front());
  sink_ = graph.target(edges_.back());
}

bool Path::is_simple(const Graph& graph) const {
  std::unordered_set<VertexId> visited;
  visited.insert(source_);
  for (const EdgeId e : edges_) {
    if (!visited.insert(graph.target(e)).second) return false;
  }
  return true;
}

bool Path::uses(EdgeId e) const noexcept {
  return std::find(edges_.begin(), edges_.end(), e) != edges_.end();
}

std::string Path::describe(const Graph& graph) const {
  std::ostringstream os;
  os << 'v' << source_.value;
  for (const EdgeId e : edges_) {
    os << " -e" << e.value << "-> v" << graph.target(e).value;
  }
  return os.str();
}

}  // namespace staleflow
