// Paths: edge sequences connecting a commodity's source to its sink.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/ids.h"

namespace staleflow {

/// A directed path: a non-empty, contiguous sequence of edges.
///
/// Invariant (checked at construction against the owning graph): for
/// consecutive edges e_i, e_{i+1} it holds target(e_i) == source(e_{i+1}).
class Path {
 public:
  /// Validates `edges` against `graph`. Throws std::invalid_argument if the
  /// sequence is empty or not contiguous.
  Path(const Graph& graph, std::vector<EdgeId> edges);

  std::span<const EdgeId> edges() const noexcept { return edges_; }
  std::size_t length() const noexcept { return edges_.size(); }

  VertexId source() const noexcept { return source_; }
  VertexId sink() const noexcept { return sink_; }

  /// True if the path visits no vertex twice.
  bool is_simple(const Graph& graph) const;

  /// True if the path uses edge `e`.
  bool uses(EdgeId e) const noexcept;

  /// e.g. "v0 -e2-> v1 -e5-> v3".
  std::string describe(const Graph& graph) const;

  friend bool operator==(const Path& a, const Path& b) noexcept {
    return a.edges_ == b.edges_;
  }

 private:
  std::vector<EdgeId> edges_;
  VertexId source_;
  VertexId sink_;
};

}  // namespace staleflow
