#include "graph/path_enumeration.h"

#include <stdexcept>

namespace staleflow {
namespace {

/// Shared DFS skeleton. `emit` is called once per complete path with the
/// current edge stack; it returns false to abort the whole enumeration.
class Enumerator {
 public:
  Enumerator(const Graph& graph, VertexId source, VertexId sink,
             EnumerationLimits limits)
      : graph_(graph), sink_(sink), limits_(limits),
        on_stack_(graph.vertex_count(), false) {
    if (!graph.contains(source) || !graph.contains(sink)) {
      throw std::out_of_range("enumerate_simple_paths: unknown vertex");
    }
    if (source == sink) {
      throw std::invalid_argument(
          "enumerate_simple_paths: source == sink (paths must be non-empty "
          "and simple)");
    }
    on_stack_[source.index()] = true;
    dfs(source);
  }

  std::vector<Path> take_paths(const Graph& graph) {
    std::vector<Path> result;
    result.reserve(found_.size());
    for (auto& edges : found_) result.emplace_back(graph, std::move(edges));
    return result;
  }

  std::size_t count() const noexcept { return count_; }

 private:
  void dfs(VertexId v) {
    for (const EdgeId e : graph_.out_edges(v)) {
      const VertexId w = graph_.target(e);
      if (on_stack_[w.index()]) continue;  // keep the path simple
      stack_.push_back(e);
      if (w == sink_) {
        record();
      } else if (limits_.max_length == 0 ||
                 stack_.size() < limits_.max_length) {
        on_stack_[w.index()] = true;
        dfs(w);
        on_stack_[w.index()] = false;
      }
      stack_.pop_back();
    }
  }

  void record() {
    if (limits_.max_length != 0 && stack_.size() > limits_.max_length) return;
    ++count_;
    if (count_ > limits_.max_paths) {
      throw std::length_error(
          "enumerate_simple_paths: exceeded limits.max_paths");
    }
    found_.push_back(stack_);
  }

  const Graph& graph_;
  VertexId sink_;
  EnumerationLimits limits_;
  std::vector<bool> on_stack_;
  std::vector<EdgeId> stack_;
  std::vector<std::vector<EdgeId>> found_;
  std::size_t count_ = 0;
};

}  // namespace

std::vector<Path> enumerate_simple_paths(const Graph& graph, VertexId source,
                                         VertexId sink,
                                         EnumerationLimits limits) {
  Enumerator enumerator(graph, source, sink, limits);
  return enumerator.take_paths(graph);
}

std::size_t count_simple_paths(const Graph& graph, VertexId source,
                               VertexId sink, EnumerationLimits limits) {
  Enumerator enumerator(graph, source, sink, limits);
  return enumerator.count();
}

}  // namespace staleflow
