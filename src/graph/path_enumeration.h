// Enumeration of simple source->sink paths.
//
// The Wardrop instances in this library carry explicit path sets P_i per
// commodity; this module produces them from the topology.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "graph/ids.h"
#include "graph/path.h"

namespace staleflow {

/// Limits for path enumeration; defaults are generous for the small- to
/// medium-size networks used in the paper's setting.
struct EnumerationLimits {
  /// Maximum number of edges per path (0 = no limit).
  std::size_t max_length = 0;
  /// Abort by throwing std::length_error once this many paths were found.
  std::size_t max_paths = 1'000'000;
};

/// Returns all simple `source`->`sink` paths in deterministic
/// (lexicographic-by-edge-id) order. Returns an empty vector when the sink
/// is unreachable. Throws std::length_error if `limits.max_paths` is hit,
/// as silently truncating the strategy space would corrupt the game.
std::vector<Path> enumerate_simple_paths(const Graph& graph, VertexId source,
                                         VertexId sink,
                                         EnumerationLimits limits = {});

/// Counts simple source->sink paths without materialising them (same
/// limits semantics, but max_paths acts as a hard cap on the count).
std::size_t count_simple_paths(const Graph& graph, VertexId source,
                               VertexId sink, EnumerationLimits limits = {});

}  // namespace staleflow
