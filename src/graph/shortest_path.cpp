#include "graph/shortest_path.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace staleflow {
namespace {

void check_weights(const Graph& graph, std::span<const double> weights,
                   bool require_non_negative) {
  if (weights.size() != graph.edge_count()) {
    throw std::invalid_argument("shortest path: weight count != edge count");
  }
  if (require_non_negative) {
    for (const double w : weights) {
      if (w < 0.0) {
        throw std::invalid_argument("dijkstra: negative edge weight");
      }
    }
  }
}

}  // namespace

ShortestPathTree dijkstra(const Graph& graph, VertexId source,
                          std::span<const double> weights) {
  check_weights(graph, weights, /*require_non_negative=*/true);
  if (!graph.contains(source)) {
    throw std::out_of_range("dijkstra: unknown source vertex");
  }
  ShortestPathTree tree;
  tree.dist.assign(graph.vertex_count(), ShortestPathTree::kInfinity);
  tree.parent_edge.assign(graph.vertex_count(), EdgeId{});
  tree.dist[source.index()] = 0.0;

  using Entry = std::pair<double, VertexId>;
  auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > tree.dist[v.index()]) continue;  // stale heap entry
    for (const EdgeId e : graph.out_edges(v)) {
      const VertexId w = graph.target(e);
      const double candidate = d + weights[e.index()];
      if (candidate < tree.dist[w.index()]) {
        tree.dist[w.index()] = candidate;
        tree.parent_edge[w.index()] = e;
        heap.emplace(candidate, w);
      }
    }
  }
  return tree;
}

ShortestPathTree bellman_ford(const Graph& graph, VertexId source,
                              std::span<const double> weights) {
  check_weights(graph, weights, /*require_non_negative=*/false);
  if (!graph.contains(source)) {
    throw std::out_of_range("bellman_ford: unknown source vertex");
  }
  ShortestPathTree tree;
  tree.dist.assign(graph.vertex_count(), ShortestPathTree::kInfinity);
  tree.parent_edge.assign(graph.vertex_count(), EdgeId{});
  tree.dist[source.index()] = 0.0;

  const std::size_t n = graph.vertex_count();
  for (std::size_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (std::size_t ei = 0; ei < graph.edge_count(); ++ei) {
      const EdgeId e{ei};
      const auto& edge = graph.edge(e);
      const double base = tree.dist[edge.from.index()];
      if (base == ShortestPathTree::kInfinity) continue;
      const double candidate = base + weights[ei];
      if (candidate < tree.dist[edge.to.index()]) {
        tree.dist[edge.to.index()] = candidate;
        tree.parent_edge[edge.to.index()] = e;
        changed = true;
      }
    }
    if (!changed) return tree;
  }
  // One more pass: any improvement implies a reachable negative cycle.
  for (std::size_t ei = 0; ei < graph.edge_count(); ++ei) {
    const auto& edge = graph.edge(EdgeId{ei});
    const double base = tree.dist[edge.from.index()];
    if (base == ShortestPathTree::kInfinity) continue;
    if (base + weights[ei] < tree.dist[edge.to.index()]) {
      throw std::logic_error("bellman_ford: negative cycle reachable");
    }
  }
  return tree;
}

std::optional<std::vector<EdgeId>> extract_path(const ShortestPathTree& tree,
                                                const Graph& graph,
                                                VertexId source,
                                                VertexId sink) {
  if (!tree.reachable(sink)) return std::nullopt;
  std::vector<EdgeId> rev;
  VertexId v = sink;
  while (v != source) {
    const EdgeId e = tree.parent_edge[v.index()];
    if (!e.valid()) return std::nullopt;  // sink==source handled above loop
    rev.push_back(e);
    v = graph.source(e);
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

}  // namespace staleflow
