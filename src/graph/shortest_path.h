// Shortest-path algorithms over per-edge weights.
//
// Used by the Frank-Wolfe equilibrium solver (best-reply direction), by the
// best-response dynamics, and by instance generators for sanity checks.
#pragma once

#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/ids.h"

namespace staleflow {

/// Result of a single-source shortest path computation.
struct ShortestPathTree {
  /// dist[v] = shortest distance from the source; +inf if unreachable.
  std::vector<double> dist;
  /// parent_edge[v] = last edge on a shortest path to v (invalid at source
  /// and unreachable vertices).
  std::vector<EdgeId> parent_edge;

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  bool reachable(VertexId v) const {
    return dist.at(v.index()) < kInfinity;
  }
};

/// Dijkstra from `source`. Requires weights.size() == graph.edge_count()
/// and all weights >= 0 (throws std::invalid_argument otherwise).
ShortestPathTree dijkstra(const Graph& graph, VertexId source,
                          std::span<const double> weights);

/// Bellman-Ford from `source`; handles negative weights. Throws
/// std::logic_error if a negative cycle is reachable from the source.
ShortestPathTree bellman_ford(const Graph& graph, VertexId source,
                              std::span<const double> weights);

/// Extracts the edge sequence of a shortest source->sink path from a tree.
/// Returns std::nullopt if `sink` is unreachable.
std::optional<std::vector<EdgeId>> extract_path(const ShortestPathTree& tree,
                                                const Graph& graph,
                                                VertexId source,
                                                VertexId sink);

}  // namespace staleflow
