#include "latency/combinators.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "latency/functions.h"

namespace staleflow {

ScaledLatency::ScaledLatency(double factor, const LatencyFunction& base)
    : factor_(factor), base_(base.clone()) {
  if (!(factor >= 0.0) || !std::isfinite(factor)) {
    throw std::invalid_argument("ScaledLatency: factor must be >= 0");
  }
}

double ScaledLatency::value(double x) const {
  return factor_ * base_->value(x);
}

double ScaledLatency::derivative(double x) const {
  return factor_ * base_->derivative(x);
}

double ScaledLatency::integral(double x) const {
  return factor_ * base_->integral(x);
}

double ScaledLatency::max_slope(double x_max) const {
  return factor_ * base_->max_slope(x_max);
}

std::string ScaledLatency::describe() const {
  std::ostringstream os;
  os << factor_ << "*(" << base_->describe() << ")";
  return os.str();
}

LatencyPtr ScaledLatency::clone() const {
  return std::make_unique<ScaledLatency>(factor_, *base_);
}

SumLatency::SumLatency(const LatencyFunction& lhs, const LatencyFunction& rhs)
    : lhs_(lhs.clone()), rhs_(rhs.clone()) {}

double SumLatency::value(double x) const {
  return lhs_->value(x) + rhs_->value(x);
}

double SumLatency::derivative(double x) const {
  return lhs_->derivative(x) + rhs_->derivative(x);
}

double SumLatency::integral(double x) const {
  return lhs_->integral(x) + rhs_->integral(x);
}

double SumLatency::max_slope(double x_max) const {
  // Sum of the bounds; a valid (if not tight) upper bound on (f+g)'.
  return lhs_->max_slope(x_max) + rhs_->max_slope(x_max);
}

std::string SumLatency::describe() const {
  return "(" + lhs_->describe() + ") + (" + rhs_->describe() + ")";
}

LatencyPtr SumLatency::clone() const {
  return std::make_unique<SumLatency>(*lhs_, *rhs_);
}

LatencyPtr scale(double factor, const LatencyFunction& base) {
  return std::make_unique<ScaledLatency>(factor, base);
}

LatencyPtr scale(double factor, const LatencyPtr& base) {
  if (base == nullptr) throw std::invalid_argument("scale: null latency");
  return scale(factor, *base);
}

LatencyPtr add(const LatencyFunction& lhs, const LatencyFunction& rhs) {
  return std::make_unique<SumLatency>(lhs, rhs);
}

LatencyPtr add(const LatencyPtr& lhs, const LatencyPtr& rhs) {
  if (lhs == nullptr || rhs == nullptr) {
    throw std::invalid_argument("add: null latency");
  }
  return add(*lhs, *rhs);
}

LatencyPtr offset(const LatencyFunction& base, double constant_term) {
  const ConstantLatency shift(constant_term);
  return add(base, shift);
}

LatencyPtr offset(const LatencyPtr& base, double constant_term) {
  if (base == nullptr) throw std::invalid_argument("offset: null latency");
  return offset(*base, constant_term);
}

}  // namespace staleflow
