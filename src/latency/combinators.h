// Latency-function combinators: build new latencies from existing ones
// while keeping exact derivatives, integrals and slope bounds.
//
//   scale(c, f)   : x -> c * f(x)          (c >= 0)
//   add(f, g)     : x -> f(x) + g(x)
//   offset(f, c)  : x -> f(x) + c          (c >= 0)
//
// Combinators own clones of their operands, so temporaries are safe:
//   LatencyPtr l = add(scale(2.0, affine(0, 1)), constant(3.0));
#pragma once

#include "latency/latency_function.h"

namespace staleflow {

/// c * f(x).
class ScaledLatency final : public LatencyFunction {
 public:
  ScaledLatency(double factor, const LatencyFunction& base);
  double value(double x) const override;
  double derivative(double x) const override;
  double integral(double x) const override;
  double max_slope(double x_max) const override;
  std::string describe() const override;
  LatencyPtr clone() const override;

 private:
  double factor_;
  LatencyPtr base_;
};

/// f(x) + g(x).
class SumLatency final : public LatencyFunction {
 public:
  SumLatency(const LatencyFunction& lhs, const LatencyFunction& rhs);
  double value(double x) const override;
  double derivative(double x) const override;
  double integral(double x) const override;
  double max_slope(double x_max) const override;
  std::string describe() const override;
  LatencyPtr clone() const override;

 private:
  LatencyPtr lhs_;
  LatencyPtr rhs_;
};

LatencyPtr scale(double factor, const LatencyFunction& base);
LatencyPtr scale(double factor, const LatencyPtr& base);
LatencyPtr add(const LatencyFunction& lhs, const LatencyFunction& rhs);
LatencyPtr add(const LatencyPtr& lhs, const LatencyPtr& rhs);
LatencyPtr offset(const LatencyFunction& base, double constant_term);
LatencyPtr offset(const LatencyPtr& base, double constant_term);

}  // namespace staleflow
