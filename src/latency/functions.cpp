#include "latency/functions.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace staleflow {
namespace {

void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

}  // namespace

// ---------------------------------------------------------------- Constant

ConstantLatency::ConstantLatency(double c) : c_(c) {
  require(c >= 0.0 && std::isfinite(c), "ConstantLatency: c must be >= 0");
}

std::string ConstantLatency::describe() const {
  std::ostringstream os;
  os << c_;
  return os.str();
}

LatencyPtr ConstantLatency::clone() const {
  return std::make_unique<ConstantLatency>(*this);
}

// ------------------------------------------------------------------ Affine

AffineLatency::AffineLatency(double a, double b) : a_(a), b_(b) {
  require(a >= 0.0 && std::isfinite(a), "AffineLatency: a must be >= 0");
  require(b >= 0.0 && std::isfinite(b), "AffineLatency: b must be >= 0");
}

std::string AffineLatency::describe() const {
  std::ostringstream os;
  os << a_ << " + " << b_ << "x";
  return os.str();
}

LatencyPtr AffineLatency::clone() const {
  return std::make_unique<AffineLatency>(*this);
}

// ---------------------------------------------------------------- Monomial

MonomialLatency::MonomialLatency(double coefficient, double degree)
    : c_(coefficient), d_(degree) {
  require(coefficient >= 0.0 && std::isfinite(coefficient),
          "MonomialLatency: coefficient must be >= 0");
  require(degree >= 1.0 && std::isfinite(degree),
          "MonomialLatency: degree must be >= 1");
}

double MonomialLatency::value(double x) const {
  return c_ * std::pow(std::max(x, 0.0), d_);
}

double MonomialLatency::derivative(double x) const {
  return c_ * d_ * std::pow(std::max(x, 0.0), d_ - 1.0);
}

double MonomialLatency::integral(double x) const {
  return c_ / (d_ + 1.0) * std::pow(std::max(x, 0.0), d_ + 1.0);
}

double MonomialLatency::max_slope(double x_max) const {
  // Derivative is increasing in x, so the bound is attained at x_max.
  return derivative(std::max(x_max, 0.0));
}

std::string MonomialLatency::describe() const {
  std::ostringstream os;
  os << c_ << "x^" << d_;
  return os.str();
}

LatencyPtr MonomialLatency::clone() const {
  return std::make_unique<MonomialLatency>(*this);
}

// -------------------------------------------------------------- Polynomial

PolynomialLatency::PolynomialLatency(std::vector<double> coefficients)
    : coeffs_(std::move(coefficients)) {
  require(!coeffs_.empty(), "PolynomialLatency: need at least one coefficient");
  for (const double c : coeffs_) {
    require(c >= 0.0 && std::isfinite(c),
            "PolynomialLatency: coefficients must be >= 0");
  }
}

double PolynomialLatency::value(double x) const {
  // Horner evaluation, highest degree first.
  double acc = 0.0;
  for (std::size_t j = coeffs_.size(); j > 0; --j) {
    acc = acc * x + coeffs_[j - 1];
  }
  return acc;
}

double PolynomialLatency::derivative(double x) const {
  double acc = 0.0;
  for (std::size_t j = coeffs_.size(); j > 1; --j) {
    acc = acc * x + coeffs_[j - 1] * static_cast<double>(j - 1);
  }
  return acc;
}

double PolynomialLatency::integral(double x) const {
  double acc = 0.0;
  for (std::size_t j = coeffs_.size(); j > 0; --j) {
    acc = acc * x + coeffs_[j - 1] / static_cast<double>(j);
  }
  return acc * x;
}

double PolynomialLatency::max_slope(double x_max) const {
  // All coefficients are non-negative, so the derivative is non-decreasing.
  return derivative(std::max(x_max, 0.0));
}

std::string PolynomialLatency::describe() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t j = 0; j < coeffs_.size(); ++j) {
    if (coeffs_[j] == 0.0 && coeffs_.size() > 1) continue;
    if (!first) os << " + ";
    os << coeffs_[j];
    if (j == 1) os << "x";
    if (j > 1) os << "x^" << j;
    first = false;
  }
  if (first) os << "0";
  return os.str();
}

LatencyPtr PolynomialLatency::clone() const {
  return std::make_unique<PolynomialLatency>(*this);
}

// ----------------------------------------------------------- ShiftedLinear

ShiftedLinearLatency::ShiftedLinearLatency(double slope, double threshold)
    : slope_(slope), threshold_(threshold) {
  require(slope >= 0.0 && std::isfinite(slope),
          "ShiftedLinearLatency: slope must be >= 0");
  require(threshold >= 0.0 && std::isfinite(threshold),
          "ShiftedLinearLatency: threshold must be >= 0");
}

double ShiftedLinearLatency::value(double x) const {
  return std::max(0.0, slope_ * (x - threshold_));
}

double ShiftedLinearLatency::derivative(double x) const {
  return x >= threshold_ ? slope_ : 0.0;
}

double ShiftedLinearLatency::integral(double x) const {
  if (x <= threshold_) return 0.0;
  const double t = x - threshold_;
  return 0.5 * slope_ * t * t;
}

double ShiftedLinearLatency::max_slope(double x_max) const {
  return x_max > threshold_ ? slope_ : 0.0;
}

std::string ShiftedLinearLatency::describe() const {
  std::ostringstream os;
  os << "max{0, " << slope_ << "(x - " << threshold_ << ")}";
  return os.str();
}

LatencyPtr ShiftedLinearLatency::clone() const {
  return std::make_unique<ShiftedLinearLatency>(*this);
}

// ---------------------------------------------------------- PiecewiseLinear

PiecewiseLinearLatency::PiecewiseLinearLatency(std::vector<Breakpoint> points)
    : points_(std::move(points)) {
  require(points_.size() >= 2,
          "PiecewiseLinearLatency: need at least two breakpoints");
  require(points_.front().x == 0.0,
          "PiecewiseLinearLatency: first breakpoint must be at x = 0");
  require(points_.back().x >= 1.0,
          "PiecewiseLinearLatency: breakpoints must cover [0, 1]");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    require(std::isfinite(points_[i].x) && std::isfinite(points_[i].y),
            "PiecewiseLinearLatency: breakpoints must be finite");
    require(points_[i].y >= 0.0,
            "PiecewiseLinearLatency: latency must be non-negative");
    if (i > 0) {
      require(points_[i].x > points_[i - 1].x,
              "PiecewiseLinearLatency: x must be strictly increasing");
      require(points_[i].y >= points_[i - 1].y,
              "PiecewiseLinearLatency: latency must be non-decreasing");
    }
  }
  prefix_integral_.assign(points_.size(), 0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& lo = points_[i - 1];
    const auto& hi = points_[i];
    prefix_integral_[i] =
        prefix_integral_[i - 1] + 0.5 * (lo.y + hi.y) * (hi.x - lo.x);
  }
}

std::size_t PiecewiseLinearLatency::segment(double x) const {
  // First segment whose right endpoint is >= x.
  const auto it = std::lower_bound(
      points_.begin() + 1, points_.end(), x,
      [](const Breakpoint& p, double value) { return p.x < value; });
  const auto idx = static_cast<std::size_t>(it - points_.begin());
  return std::min(idx, points_.size() - 1);
}

double PiecewiseLinearLatency::value(double x) const {
  if (x <= 0.0) return points_.front().y;
  if (x >= points_.back().x) return points_.back().y;
  const std::size_t i = segment(x);
  const auto& lo = points_[i - 1];
  const auto& hi = points_[i];
  const double t = (x - lo.x) / (hi.x - lo.x);
  return lo.y + t * (hi.y - lo.y);
}

double PiecewiseLinearLatency::derivative(double x) const {
  if (x < 0.0 || x >= points_.back().x) return 0.0;
  // Right derivative at breakpoints.
  std::size_t i = segment(x);
  if (points_[i].x == x && i + 1 < points_.size()) ++i;
  const auto& lo = points_[i - 1];
  const auto& hi = points_[i];
  return (hi.y - lo.y) / (hi.x - lo.x);
}

double PiecewiseLinearLatency::integral(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= points_.back().x) {
    return prefix_integral_.back() +
           points_.back().y * (x - points_.back().x);
  }
  const std::size_t i = segment(x);
  const auto& lo = points_[i - 1];
  const double y_at_x = value(x);
  return prefix_integral_[i - 1] + 0.5 * (lo.y + y_at_x) * (x - lo.x);
}

double PiecewiseLinearLatency::max_slope(double x_max) const {
  double best = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i - 1].x >= x_max) break;
    const double slope = (points_[i].y - points_[i - 1].y) /
                         (points_[i].x - points_[i - 1].x);
    best = std::max(best, slope);
  }
  return best;
}

std::string PiecewiseLinearLatency::describe() const {
  std::ostringstream os;
  os << "pwl{";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) os << ", ";
    os << '(' << points_[i].x << ',' << points_[i].y << ')';
  }
  os << '}';
  return os.str();
}

LatencyPtr PiecewiseLinearLatency::clone() const {
  return std::make_unique<PiecewiseLinearLatency>(*this);
}

// --------------------------------------------------------------------- BPR

BprLatency::BprLatency(double free_flow_time, double alpha, double capacity,
                       double power)
    : t0_(free_flow_time), alpha_(alpha), capacity_(capacity), power_(power) {
  require(free_flow_time > 0.0 && std::isfinite(free_flow_time),
          "BprLatency: free flow time must be > 0");
  require(alpha >= 0.0 && std::isfinite(alpha),
          "BprLatency: alpha must be >= 0");
  require(capacity > 0.0 && std::isfinite(capacity),
          "BprLatency: capacity must be > 0");
  require(power >= 1.0 && std::isfinite(power),
          "BprLatency: power must be >= 1");
}

double BprLatency::value(double x) const {
  return t0_ * (1.0 + alpha_ * std::pow(std::max(x, 0.0) / capacity_, power_));
}

double BprLatency::derivative(double x) const {
  return t0_ * alpha_ * power_ / capacity_ *
         std::pow(std::max(x, 0.0) / capacity_, power_ - 1.0);
}

double BprLatency::integral(double x) const {
  const double xp = std::max(x, 0.0);
  return t0_ * xp + t0_ * alpha_ * xp / (power_ + 1.0) *
                        std::pow(xp / capacity_, power_);
}

double BprLatency::max_slope(double x_max) const {
  return derivative(std::max(x_max, 0.0));
}

std::string BprLatency::describe() const {
  std::ostringstream os;
  os << t0_ << "(1 + " << alpha_ << "(x/" << capacity_ << ")^" << power_
     << ")";
  return os.str();
}

LatencyPtr BprLatency::clone() const {
  return std::make_unique<BprLatency>(*this);
}

// -------------------------------------------------------------------- MM1

MM1Latency::MM1Latency(double capacity) : capacity_(capacity) {
  require(capacity > 1.0 && std::isfinite(capacity),
          "MM1Latency: capacity must be > 1 so the slope is finite on [0,1]");
}

double MM1Latency::value(double x) const {
  return 1.0 / (capacity_ - std::clamp(x, 0.0, 1.0));
}

double MM1Latency::derivative(double x) const {
  const double d = capacity_ - std::clamp(x, 0.0, 1.0);
  return 1.0 / (d * d);
}

double MM1Latency::integral(double x) const {
  const double xc = std::clamp(x, 0.0, 1.0);
  return std::log(capacity_ / (capacity_ - xc));
}

double MM1Latency::max_slope(double x_max) const {
  return derivative(std::min(std::max(x_max, 0.0), 1.0));
}

std::string MM1Latency::describe() const {
  std::ostringstream os;
  os << "1/(" << capacity_ << " - x)";
  return os.str();
}

LatencyPtr MM1Latency::clone() const {
  return std::make_unique<MM1Latency>(*this);
}

// --------------------------------------------------------------- factories

LatencyPtr constant(double c) { return std::make_unique<ConstantLatency>(c); }

LatencyPtr affine(double a, double b) {
  return std::make_unique<AffineLatency>(a, b);
}

LatencyPtr linear(double b) { return affine(0.0, b); }

LatencyPtr monomial(double coefficient, double degree) {
  return std::make_unique<MonomialLatency>(coefficient, degree);
}

LatencyPtr polynomial(std::vector<double> coefficients) {
  return std::make_unique<PolynomialLatency>(std::move(coefficients));
}

LatencyPtr shifted_linear(double slope, double threshold) {
  return std::make_unique<ShiftedLinearLatency>(slope, threshold);
}

LatencyPtr piecewise_linear(
    std::vector<PiecewiseLinearLatency::Breakpoint> points) {
  return std::make_unique<PiecewiseLinearLatency>(std::move(points));
}

LatencyPtr bpr(double free_flow_time, double alpha, double capacity,
               double power) {
  return std::make_unique<BprLatency>(free_flow_time, alpha, capacity, power);
}

LatencyPtr mm1(double capacity) {
  return std::make_unique<MM1Latency>(capacity);
}

}  // namespace staleflow
