// Concrete latency function families.
//
// Each family provides exact value, derivative, integral and slope bound.
// The set covers everything the paper and its experiments need:
//   * Constant / Affine / Monomial / Polynomial — standard congestion costs.
//   * ShiftedLinear max{0, beta*(x - x0)}      — the Section 3.2 oscillation
//                                                example (with x0 = 1/2).
//   * PiecewiseLinear                          — arbitrary non-decreasing
//                                                piecewise-linear costs.
//   * Bpr                                      — t0*(1 + a*(x/c)^p), the
//                                                road-traffic standard.
//   * MM1                                      — 1/(c - x) queueing delay
//                                                (finite slope needs c > 1).
#pragma once

#include <vector>

#include "latency/latency_function.h"

namespace staleflow {

/// l(x) = c, c >= 0.
class ConstantLatency final : public LatencyFunction {
 public:
  explicit ConstantLatency(double c);
  double value(double) const override { return c_; }
  double derivative(double) const override { return 0.0; }
  double integral(double x) const override { return c_ * x; }
  double max_slope(double) const override { return 0.0; }
  std::string describe() const override;
  LatencyPtr clone() const override;

  double constant_value() const noexcept { return c_; }

 private:
  double c_;
};

/// l(x) = a + b*x, a >= 0, b >= 0.
class AffineLatency final : public LatencyFunction {
 public:
  AffineLatency(double a, double b);
  double value(double x) const override { return a_ + b_ * x; }
  double derivative(double) const override { return b_; }
  double integral(double x) const override {
    return a_ * x + 0.5 * b_ * x * x;
  }
  double max_slope(double) const override { return b_; }
  std::string describe() const override;
  LatencyPtr clone() const override;

  double offset() const noexcept { return a_; }
  double slope() const noexcept { return b_; }

 private:
  double a_;
  double b_;
};

/// l(x) = c * x^d, c >= 0, d >= 1 (d >= 1 keeps the derivative finite and
/// monotone on [0,1]).
class MonomialLatency final : public LatencyFunction {
 public:
  MonomialLatency(double coefficient, double degree);
  double value(double x) const override;
  double derivative(double x) const override;
  double integral(double x) const override;
  double max_slope(double x_max) const override;
  std::string describe() const override;
  LatencyPtr clone() const override;

  double coefficient() const noexcept { return c_; }
  double degree() const noexcept { return d_; }

 private:
  double c_;
  double d_;
};

/// l(x) = sum_j coeffs[j] * x^j with all coeffs[j] >= 0 (which guarantees
/// monotonicity and non-negativity on [0, 1]).
class PolynomialLatency final : public LatencyFunction {
 public:
  explicit PolynomialLatency(std::vector<double> coefficients);
  double value(double x) const override;
  double derivative(double x) const override;
  double integral(double x) const override;
  double max_slope(double x_max) const override;
  std::string describe() const override;
  LatencyPtr clone() const override;

  const std::vector<double>& coefficients() const noexcept { return coeffs_; }

 private:
  std::vector<double> coeffs_;
};

/// l(x) = max{0, slope * (x - threshold)} — the paper's oscillation
/// example uses slope = beta, threshold = 1/2.
class ShiftedLinearLatency final : public LatencyFunction {
 public:
  ShiftedLinearLatency(double slope, double threshold);
  double value(double x) const override;
  double derivative(double x) const override;
  double integral(double x) const override;
  double max_slope(double x_max) const override;
  std::string describe() const override;
  LatencyPtr clone() const override;

  double slope() const noexcept { return slope_; }
  double threshold() const noexcept { return threshold_; }

 private:
  double slope_;
  double threshold_;
};

/// Continuous piecewise-linear latency through the given (x, y) breakpoints.
/// Requirements: x strictly increasing starting at 0.0 and ending at >= 1.0,
/// y non-negative and non-decreasing.
class PiecewiseLinearLatency final : public LatencyFunction {
 public:
  struct Breakpoint {
    double x;
    double y;
  };

  explicit PiecewiseLinearLatency(std::vector<Breakpoint> points);
  double value(double x) const override;
  double derivative(double x) const override;
  double integral(double x) const override;
  double max_slope(double x_max) const override;
  std::string describe() const override;
  LatencyPtr clone() const override;

  const std::vector<Breakpoint>& breakpoints() const noexcept {
    return points_;
  }

 private:
  /// Index of the segment containing x (last segment for x past the end).
  std::size_t segment(double x) const;

  std::vector<Breakpoint> points_;
  std::vector<double> prefix_integral_;  // integral up to points_[i].x
};

/// Bureau of Public Roads function l(x) = t0 * (1 + a * (x / c)^p),
/// t0 > 0, a >= 0, c > 0, p >= 1.
class BprLatency final : public LatencyFunction {
 public:
  BprLatency(double free_flow_time, double alpha, double capacity,
             double power);
  double value(double x) const override;
  double derivative(double x) const override;
  double integral(double x) const override;
  double max_slope(double x_max) const override;
  std::string describe() const override;
  LatencyPtr clone() const override;

  double free_flow_time() const noexcept { return t0_; }
  double alpha() const noexcept { return alpha_; }
  double capacity() const noexcept { return capacity_; }
  double power() const noexcept { return power_; }

 private:
  double t0_;
  double alpha_;
  double capacity_;
  double power_;
};

/// M/M/1-style delay l(x) = 1 / (c - x), requires capacity c > 1 so the
/// slope stays finite on [0, 1] (beta = 1/(c-1)^2).
class MM1Latency final : public LatencyFunction {
 public:
  explicit MM1Latency(double capacity);
  double value(double x) const override;
  double derivative(double x) const override;
  double integral(double x) const override;
  double max_slope(double x_max) const override;
  std::string describe() const override;
  LatencyPtr clone() const override;

  double capacity() const noexcept { return capacity_; }

 private:
  double capacity_;
};

// Convenience factories (Core Guidelines R.22: prefer factory functions
// returning unique_ptr).
LatencyPtr constant(double c);
LatencyPtr affine(double a, double b);
LatencyPtr linear(double b);  // affine(0, b)
LatencyPtr monomial(double coefficient, double degree);
LatencyPtr polynomial(std::vector<double> coefficients);
LatencyPtr shifted_linear(double slope, double threshold = 0.5);
LatencyPtr piecewise_linear(
    std::vector<PiecewiseLinearLatency::Breakpoint> points);
LatencyPtr bpr(double free_flow_time, double alpha, double capacity,
               double power);
LatencyPtr mm1(double capacity);

}  // namespace staleflow
