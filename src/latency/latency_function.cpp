#include "latency/latency_function.h"

#include <cmath>
#include <sstream>

#include "latency/quadrature.h"

namespace staleflow {

double max_elasticity(const LatencyFunction& fn, double x_max,
                      int grid_points) {
  if (grid_points < 2) grid_points = 2;
  const auto n = static_cast<std::size_t>(grid_points);
  double worst = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double x = x_max * static_cast<double>(i) /
                     static_cast<double>(n - 1);
    const double value = fn.value(x);
    if (value <= 0.0) continue;
    worst = std::max(worst, x * fn.derivative(x) / value);
  }
  return worst;
}

std::string check_latency_contract(const LatencyFunction& fn,
                                   int grid_points) {
  if (grid_points < 3) grid_points = 3;
  const auto n = static_cast<std::size_t>(grid_points);
  const double beta = fn.max_slope(1.0);
  if (!(beta >= 0.0) || !std::isfinite(beta)) {
    return "max_slope(1.0) is not a finite non-negative number";
  }

  auto report = [](const char* what, double x) {
    std::ostringstream os;
    os << what << " at x=" << x;
    return os.str();
  };

  double prev_value = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n - 1);
    const double v = fn.value(x);
    if (!std::isfinite(v) || v < 0.0) return report("negative/NaN value", x);
    if (i > 0 && v < prev_value - 1e-12) return report("decreasing value", x);
    prev_value = v;

    const double d = fn.derivative(x);
    if (!std::isfinite(d) || d < -1e-12) {
      return report("negative/NaN derivative", x);
    }
    if (d > beta * (1.0 + 1e-9) + 1e-12) {
      return report("derivative exceeds max_slope", x);
    }

    // Closed-form integral vs adaptive Simpson quadrature.
    const double exact = fn.integral(x);
    if (!std::isfinite(exact) || exact < -1e-12) {
      return report("negative/NaN integral", x);
    }
    const double numeric =
        integrate([&fn](double u) { return fn.value(u); }, 0.0, x, 1e-10);
    const double scale = 1.0 + std::abs(exact);
    if (std::abs(exact - numeric) > 1e-6 * scale) {
      return report("integral() disagrees with quadrature", x);
    }

    // Difference quotients must respect the slope bound.
    if (i > 0) {
      const double h = 1.0 / static_cast<double>(n - 1);
      const double quotient = (v - fn.value(x - h)) / h;
      if (quotient > beta * (1.0 + 1e-6) + 1e-9) {
        return report("difference quotient exceeds max_slope", x);
      }
    }
  }
  if (fn.integral(0.0) != 0.0) return "integral(0) != 0";
  return {};
}

}  // namespace staleflow
