// Edge latency functions l_e : [0, 1] -> R>=0.
//
// The paper requires latency functions that are continuous, non-decreasing
// and have finite first derivative on the whole range (Section 2.1). The
// maximum slope beta and the exact integral INT_0^x l(u) du are first-class
// operations here because the convergence bound T <= 1/(4*D*alpha*beta) and
// the Beckmann-McGuire-Winsten potential Phi = sum_e INT_0^{f_e} l_e both
// depend on them.
#pragma once

#include <memory>
#include <string>

namespace staleflow {

/// Abstract edge latency function on the normalised flow domain [0, 1]
/// (total demand is normalised to 1, so an edge never carries more).
///
/// Implementations must be continuous, non-decreasing, non-negative and
/// have a finite first derivative on [0, 1].
class LatencyFunction {
 public:
  virtual ~LatencyFunction() = default;

  /// l(x). Callers keep x within [0, 1]; implementations extend
  /// continuously outside for robustness against round-off.
  virtual double value(double x) const = 0;

  /// l'(x). At kinks, the right derivative.
  virtual double derivative(double x) const = 0;

  /// Exact INT_0^x l(u) du (closed form, no quadrature).
  virtual double integral(double x) const = 0;

  /// An upper bound on l'(x) over [0, x_max]; this is the paper's beta.
  virtual double max_slope(double x_max = 1.0) const = 0;

  /// Human-readable formula, e.g. "3 + 2x".
  virtual std::string describe() const = 0;

  /// Deep copy (latency functions are immutable; copies are cheap).
  virtual std::unique_ptr<LatencyFunction> clone() const = 0;

 protected:
  LatencyFunction() = default;
  LatencyFunction(const LatencyFunction&) = default;
  LatencyFunction& operator=(const LatencyFunction&) = default;
};

using LatencyPtr = std::unique_ptr<LatencyFunction>;

/// Maximum elasticity d = sup_x x * l'(x) / l(x) over (0, x_max],
/// estimated on a grid. The elasticity is the parameter the follow-up
/// work [Fischer-Raecke-Voecking, STOC'06] replaces the slope bound with:
/// for a monomial c*x^d it equals the degree d, independent of c. Points
/// with l(x) == 0 are skipped (elasticity is undefined there); returns 0
/// for functions that are zero on the whole range.
double max_elasticity(const LatencyFunction& fn, double x_max = 1.0,
                      int grid_points = 257);

/// Validates the model contract numerically on a grid: non-negativity,
/// monotonicity, value/derivative/integral consistency, and that
/// max_slope really bounds the observed difference quotients.
/// Returns an empty string when consistent, else a description of the
/// first violation (used by tests and by Instance validation).
std::string check_latency_contract(const LatencyFunction& fn,
                                   int grid_points = 257);

}  // namespace staleflow
