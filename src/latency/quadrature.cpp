#include "latency/quadrature.h"

#include <cmath>
#include <stdexcept>

namespace staleflow {
namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& fn, double a, double fa,
                double b, double fb, double m, double fm, double whole,
                double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = fn(lm);
  const double frm = fn(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(fn, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive(fn, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& fn, double a, double b,
                 double tolerance) {
  if (!(tolerance > 0.0)) {
    throw std::invalid_argument("integrate: tolerance must be positive");
  }
  if (a == b) return 0.0;
  const double sign = a < b ? 1.0 : -1.0;
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  const double mid = 0.5 * (lo + hi);
  const double flo = fn(lo);
  const double fhi = fn(hi);
  const double fmid = fn(mid);
  const double whole = simpson(lo, flo, hi, fhi, fmid);
  return sign *
         adaptive(fn, lo, flo, hi, fhi, mid, fmid, whole, tolerance, 48);
}

}  // namespace staleflow
