// Adaptive numerical integration, used as an independent cross-check of the
// closed-form latency integrals and for user-supplied callable latencies.
#pragma once

#include <functional>

namespace staleflow {

/// Adaptive Simpson quadrature of `fn` over [a, b] (a <= b or a > b; the
/// sign convention is the usual oriented integral). `tolerance` is an
/// absolute error target.
double integrate(const std::function<double(double)>& fn, double a, double b,
                 double tolerance = 1e-10);

}  // namespace staleflow
