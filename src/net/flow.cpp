#include "net/flow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace staleflow {

FlowVector::FlowVector(const Instance& instance)
    : values_(instance.path_count(), 0.0) {}

FlowVector FlowVector::uniform(const Instance& instance) {
  FlowVector flow(instance);
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    const double share =
        commodity.demand / static_cast<double>(commodity.paths.size());
    for (const PathId p : commodity.paths) flow[p] = share;
  }
  return flow;
}

FlowVector FlowVector::concentrated(const Instance& instance,
                                    std::span<const std::size_t> choice) {
  if (choice.size() != instance.commodity_count()) {
    throw std::invalid_argument(
        "FlowVector::concentrated: one choice per commodity required");
  }
  FlowVector flow(instance);
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    if (choice[c] >= commodity.paths.size()) {
      throw std::out_of_range(
          "FlowVector::concentrated: path choice out of range");
    }
    flow[commodity.paths[choice[c]]] = commodity.demand;
  }
  return flow;
}

FlowVector::FlowVector(const Instance& instance, std::vector<double> values)
    : values_(std::move(values)) {
  if (values_.size() != instance.path_count()) {
    throw std::invalid_argument("FlowVector: wrong number of path values");
  }
}

FlowVector::FlowVector(const Instance& instance,
                       std::span<const double> values)
    : FlowVector(instance,
                 std::vector<double>(values.begin(), values.end())) {}

bool is_feasible(const Instance& instance, std::span<const double> path_flow,
                 double tolerance) {
  if (path_flow.size() != instance.path_count()) return false;
  for (const double f : path_flow) {
    if (!(f >= -tolerance) || !std::isfinite(f)) return false;
  }
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    double total = 0.0;
    for (const PathId p : commodity.paths) total += path_flow[p.index()];
    if (std::abs(total - commodity.demand) > tolerance) return false;
  }
  return true;
}

void renormalise(const Instance& instance, std::vector<double>& path_flow) {
  if (path_flow.size() != instance.path_count()) {
    throw std::invalid_argument("renormalise: wrong number of path values");
  }
  for (double& f : path_flow) f = std::max(f, 0.0);
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    double total = 0.0;
    for (const PathId p : commodity.paths) total += path_flow[p.index()];
    if (!(total > 0.0)) {
      throw std::invalid_argument(
          "renormalise: commodity block has zero mass");
    }
    const double scale = commodity.demand / total;
    for (const PathId p : commodity.paths) path_flow[p.index()] *= scale;
  }
}

std::vector<double> edge_flows(const Instance& instance,
                               std::span<const double> path_flow) {
  if (path_flow.size() != instance.path_count()) {
    throw std::invalid_argument("edge_flows: wrong number of path values");
  }
  std::vector<double> result(instance.edge_count(), 0.0);
  for (std::size_t p = 0; p < path_flow.size(); ++p) {
    const double f = path_flow[p];
    if (f == 0.0) continue;
    for (const EdgeId e : instance.path(PathId{p}).edges()) {
      result[e.index()] += f;
    }
  }
  return result;
}

FlowEvaluation evaluate(const Instance& instance,
                        std::span<const double> path_flow) {
  FlowEvaluation eval;
  eval.edge_flow = edge_flows(instance, path_flow);

  eval.edge_latency.resize(instance.edge_count());
  for (std::size_t e = 0; e < instance.edge_count(); ++e) {
    eval.edge_latency[e] = instance.latency(EdgeId{e}).value(eval.edge_flow[e]);
  }

  eval.path_latency.resize(instance.path_count());
  for (std::size_t p = 0; p < instance.path_count(); ++p) {
    double total = 0.0;
    for (const EdgeId e : instance.path(PathId{p}).edges()) {
      total += eval.edge_latency[e.index()];
    }
    eval.path_latency[p] = total;
  }

  eval.commodity_min_latency.assign(instance.commodity_count(),
                                    std::numeric_limits<double>::infinity());
  eval.commodity_avg_latency.assign(instance.commodity_count(), 0.0);
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    double avg = 0.0;
    double& lo = eval.commodity_min_latency[c];
    for (const PathId p : commodity.paths) {
      lo = std::min(lo, eval.path_latency[p.index()]);
      avg += path_flow[p.index()] / commodity.demand *
             eval.path_latency[p.index()];
    }
    eval.commodity_avg_latency[c] = avg;
    eval.average_latency += commodity.demand * avg;
  }
  return eval;
}

std::vector<double> path_latencies(const Instance& instance,
                                   std::span<const double> path_flow) {
  const std::vector<double> fe = edge_flows(instance, path_flow);
  std::vector<double> le(instance.edge_count());
  for (std::size_t e = 0; e < instance.edge_count(); ++e) {
    le[e] = instance.latency(EdgeId{e}).value(fe[e]);
  }
  std::vector<double> result(instance.path_count());
  for (std::size_t p = 0; p < instance.path_count(); ++p) {
    double total = 0.0;
    for (const EdgeId e : instance.path(PathId{p}).edges()) {
      total += le[e.index()];
    }
    result[p] = total;
  }
  return result;
}

}  // namespace staleflow
