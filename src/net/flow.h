// Flow vectors and their induced quantities.
//
// A flow vector f assigns volume to every path. Everything the dynamics and
// the metrics need — edge flows, edge/path latencies, per-commodity averages
// L_i, overall average L — derives from it. FlowEvaluation bundles those
// derived quantities so they are computed once per time step.
#pragma once

#include <span>
#include <vector>

#include "graph/ids.h"
#include "net/instance.h"

namespace staleflow {

/// Path-flow vector tied to an instance's path index space.
class FlowVector {
 public:
  /// Zero flow (infeasible until populated).
  explicit FlowVector(const Instance& instance);

  /// Even split: each commodity's demand spread uniformly over its paths.
  static FlowVector uniform(const Instance& instance);

  /// All demand of each commodity on the path given by `choice[c]`, which
  /// indexes into the commodity's path list.
  static FlowVector concentrated(const Instance& instance,
                                 std::span<const std::size_t> choice);

  /// Wraps raw values (must have instance.path_count() entries).
  FlowVector(const Instance& instance, std::vector<double> values);

  /// Copies raw values out of a span (same size contract).
  FlowVector(const Instance& instance, std::span<const double> values);

  double operator[](PathId p) const { return values_[p.index()]; }
  double& operator[](PathId p) { return values_[p.index()]; }

  std::span<const double> values() const noexcept { return values_; }
  std::vector<double>& mutable_values() noexcept { return values_; }
  std::size_t size() const noexcept { return values_.size(); }

 private:
  std::vector<double> values_;
};

/// Checks feasibility: f_P >= -tol and |sum_{P in P_i} f_P - r_i| <= tol.
bool is_feasible(const Instance& instance, std::span<const double> path_flow,
                 double tolerance = 1e-9);

/// Projects a nearly feasible vector back onto the simplex product: clamps
/// negatives to 0 and rescales each commodity block to its demand. Used to
/// contain numerical drift in long ODE integrations. Throws
/// std::invalid_argument if a commodity block has zero total mass.
void renormalise(const Instance& instance, std::vector<double>& path_flow);

/// Aggregates path flow into per-edge flow, f_e = sum_{P : e in P} f_P.
std::vector<double> edge_flows(const Instance& instance,
                               std::span<const double> path_flow);

/// All derived quantities of a flow vector at once.
struct FlowEvaluation {
  std::vector<double> edge_flow;      // by EdgeId
  std::vector<double> edge_latency;   // l_e(f_e)
  std::vector<double> path_latency;   // l_P(f) = sum_{e in P} l_e(f_e)
  std::vector<double> commodity_min_latency;  // per commodity, min_P l_P
  std::vector<double> commodity_avg_latency;  // L_i = sum (f_P/r_i) l_P
  double average_latency = 0.0;               // L = sum_P f_P l_P
};

FlowEvaluation evaluate(const Instance& instance,
                        std::span<const double> path_flow);

/// Just the path latencies induced by `path_flow` (cheaper than evaluate()).
std::vector<double> path_latencies(const Instance& instance,
                                   std::span<const double> path_flow);

}  // namespace staleflow
