#include "net/generators.h"

#include <stdexcept>

#include "latency/functions.h"

namespace staleflow {

Instance two_link_pulse(double beta) {
  Graph g(2);
  const VertexId s{0}, t{1};
  const EdgeId e1 = g.add_edge(s, t);
  const EdgeId e2 = g.add_edge(s, t);
  InstanceBuilder builder(std::move(g));
  builder.set_latency(e1, shifted_linear(beta, 0.5));
  builder.set_latency(e2, shifted_linear(beta, 0.5));
  builder.add_commodity(s, t, 1.0);
  return std::move(builder).build();
}

Instance parallel_links(
    std::size_t m,
    const std::function<LatencyPtr(std::size_t)>& make_latency) {
  if (m == 0) throw std::invalid_argument("parallel_links: m must be >= 1");
  Graph g(2);
  const VertexId s{0}, t{1};
  std::vector<EdgeId> edges;
  edges.reserve(m);
  for (std::size_t j = 0; j < m; ++j) edges.push_back(g.add_edge(s, t));
  InstanceBuilder builder(std::move(g));
  for (std::size_t j = 0; j < m; ++j) {
    builder.set_latency(edges[j], make_latency(j));
  }
  builder.add_commodity(s, t, 1.0);
  return std::move(builder).build();
}

Instance uniform_parallel_links(std::size_t m, double a, double b) {
  return parallel_links(m, [a, b](std::size_t) { return affine(a, b); });
}

Instance random_parallel_links(std::size_t m, Rng& rng, double offset_max,
                               double slope_min, double slope_max) {
  if (!(slope_min > 0.0) || slope_max < slope_min) {
    throw std::invalid_argument("random_parallel_links: bad slope range");
  }
  return parallel_links(m, [&](std::size_t) {
    return affine(rng.uniform(0.0, offset_max),
                  rng.uniform(slope_min, slope_max));
  });
}

Instance braess(bool include_shortcut) {
  Graph g(4);
  const VertexId s{0}, a{1}, b{2}, t{3};
  const EdgeId sa = g.add_edge(s, a);
  const EdgeId sb = g.add_edge(s, b);
  const EdgeId at = g.add_edge(a, t);
  const EdgeId bt = g.add_edge(b, t);
  EdgeId ab{};
  if (include_shortcut) ab = g.add_edge(a, b);
  InstanceBuilder builder(std::move(g));
  builder.set_latency(sa, linear(1.0));     // l(x) = x
  builder.set_latency(sb, constant(1.0));   // l(x) = 1
  builder.set_latency(at, constant(1.0));   // l(x) = 1
  builder.set_latency(bt, linear(1.0));     // l(x) = x
  if (include_shortcut) builder.set_latency(ab, constant(0.0));
  builder.add_commodity(s, t, 1.0);
  return std::move(builder).build();
}

Instance grid(std::size_t rows, std::size_t cols, Rng& rng) {
  if (rows < 2 || cols < 2) {
    throw std::invalid_argument("grid: need at least 2x2");
  }
  Graph g(rows * cols);
  auto vertex = [cols](std::size_t r, std::size_t c) {
    return VertexId{r * cols + c};
  };
  std::vector<EdgeId> edges;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(g.add_edge(vertex(r, c), vertex(r, c + 1)));
      if (r + 1 < rows) edges.push_back(g.add_edge(vertex(r, c), vertex(r + 1, c)));
    }
  }
  InstanceBuilder builder(std::move(g));
  for (const EdgeId e : edges) {
    builder.set_latency(e,
                        affine(rng.uniform(0.0, 1.0), rng.uniform(0.1, 1.0)));
  }
  builder.add_commodity(vertex(0, 0), vertex(rows - 1, cols - 1), 1.0);
  return std::move(builder).build();
}

Instance layered_dag(std::size_t layers, std::size_t width,
                     std::size_t fanout, Rng& rng) {
  if (layers < 1 || width < 1 || fanout < 1) {
    throw std::invalid_argument("layered_dag: layers, width, fanout >= 1");
  }
  if (fanout > width) fanout = width;
  Graph g(layers * width + 2);
  const VertexId source{0};
  const VertexId sink{layers * width + 1};
  auto vertex = [width](std::size_t layer, std::size_t slot) {
    return VertexId{1 + layer * width + slot};
  };
  std::vector<EdgeId> edges;
  for (std::size_t w = 0; w < width; ++w) {
    edges.push_back(g.add_edge(source, vertex(0, w)));
    edges.push_back(g.add_edge(vertex(layers - 1, w), sink));
  }
  for (std::size_t layer = 0; layer + 1 < layers; ++layer) {
    for (std::size_t w = 0; w < width; ++w) {
      // `fanout` distinct random targets in the next layer.
      std::vector<std::size_t> slots(width);
      for (std::size_t i = 0; i < width; ++i) slots[i] = i;
      rng.shuffle(slots);
      for (std::size_t i = 0; i < fanout; ++i) {
        edges.push_back(g.add_edge(vertex(layer, w), vertex(layer + 1, slots[i])));
      }
    }
  }
  InstanceBuilder builder(std::move(g));
  for (const EdgeId e : edges) {
    builder.set_latency(e,
                        affine(rng.uniform(0.0, 1.0), rng.uniform(0.1, 1.0)));
  }
  builder.add_commodity(source, sink, 1.0);
  return std::move(builder).build();
}

Instance shared_bottleneck(double demand_split) {
  if (!(demand_split > 0.0) || !(demand_split < 1.0)) {
    throw std::invalid_argument("shared_bottleneck: split must be in (0,1)");
  }
  // s1 -> m, s2 -> m, m -> t (shared, congestible), plus private bypasses
  // s1 -> t and s2 -> t with constant latency.
  Graph g(4);
  const VertexId s1{0}, s2{1}, m{2}, t{3};
  const EdgeId s1m = g.add_edge(s1, m);
  const EdgeId s2m = g.add_edge(s2, m);
  const EdgeId mt = g.add_edge(m, t);
  const EdgeId s1t = g.add_edge(s1, t);
  const EdgeId s2t = g.add_edge(s2, t);
  InstanceBuilder builder(std::move(g));
  builder.set_latency(s1m, linear(0.5));
  builder.set_latency(s2m, linear(0.5));
  builder.set_latency(mt, linear(2.0));  // the bottleneck
  builder.set_latency(s1t, constant(1.0));
  builder.set_latency(s2t, constant(1.0));
  builder.add_commodity(s1, t, demand_split);
  builder.add_commodity(s2, t, 1.0 - demand_split);
  return std::move(builder).build();
}

Instance multicommodity_grid(std::size_t rows, std::size_t cols,
                             std::size_t commodities, Rng& rng) {
  if (rows < 2 || cols < 2) {
    throw std::invalid_argument("multicommodity_grid: need at least 2x2");
  }
  if (commodities < 1 || commodities > rows) {
    throw std::invalid_argument(
        "multicommodity_grid: need 1 <= commodities <= rows");
  }
  Graph g(rows * cols);
  auto vertex = [cols](std::size_t r, std::size_t c) {
    return VertexId{r * cols + c};
  };
  std::vector<EdgeId> edges;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(g.add_edge(vertex(r, c), vertex(r, c + 1)));
      if (r + 1 < rows) edges.push_back(g.add_edge(vertex(r, c), vertex(r + 1, c)));
    }
  }
  InstanceBuilder builder(std::move(g));
  for (const EdgeId e : edges) {
    builder.set_latency(e,
                        affine(rng.uniform(0.0, 1.0), rng.uniform(0.1, 1.0)));
  }
  // Commodity i starts at left-border row i; all commodities share the
  // bottom-right sink (edges only go right/down, so this keeps every
  // source-sink pair connected).
  for (std::size_t i = 0; i < commodities; ++i) {
    builder.add_commodity(vertex(i, 0), vertex(rows - 1, cols - 1), 1.0);
  }
  return std::move(builder).build();
}

namespace {

/// Recursively wires a series-parallel block between `from` and `to`,
/// collecting created edges.
void build_series_parallel(Graph& g, VertexId from, VertexId to,
                           std::size_t depth, std::vector<EdgeId>& edges) {
  if (depth == 0) {
    edges.push_back(g.add_edge(from, to));
    return;
  }
  // Series composition of two blocks through a fresh midpoint...
  const VertexId mid = g.add_vertex();
  build_series_parallel(g, from, mid, depth - 1, edges);
  build_series_parallel(g, mid, to, depth - 1, edges);
  // ...in parallel with a third block.
  build_series_parallel(g, from, to, depth - 1, edges);
}

}  // namespace

Instance series_parallel(std::size_t depth, Rng& rng) {
  if (depth > 6) {
    throw std::invalid_argument(
        "series_parallel: depth must be <= 6 (path count is exponential)");
  }
  Graph g(2);
  const VertexId s{0}, t{1};
  std::vector<EdgeId> edges;
  build_series_parallel(g, s, t, depth, edges);
  InstanceBuilder builder(std::move(g));
  for (const EdgeId e : edges) {
    builder.set_latency(e,
                        affine(rng.uniform(0.0, 1.0), rng.uniform(0.1, 1.0)));
  }
  builder.add_commodity(s, t, 1.0);
  return std::move(builder).build();
}

Instance chained_braess(std::size_t k) {
  if (k == 0 || k > 8) {
    throw std::invalid_argument("chained_braess: need 1 <= k <= 8");
  }
  // Gadget i spans anchor_i -> anchor_{i+1} with internal vertices a, b.
  Graph g(k + 1);
  struct GadgetEdges {
    EdgeId sa, sb, at, bt, ab;
  };
  std::vector<GadgetEdges> gadgets;
  gadgets.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const VertexId entry{i};
    const VertexId exit{i + 1};
    const VertexId a = g.add_vertex();
    const VertexId b = g.add_vertex();
    GadgetEdges ge;
    ge.sa = g.add_edge(entry, a);
    ge.sb = g.add_edge(entry, b);
    ge.at = g.add_edge(a, exit);
    ge.bt = g.add_edge(b, exit);
    ge.ab = g.add_edge(a, b);
    gadgets.push_back(ge);
  }
  InstanceBuilder builder(std::move(g));
  for (const GadgetEdges& ge : gadgets) {
    builder.set_latency(ge.sa, linear(1.0));
    builder.set_latency(ge.sb, constant(1.0));
    builder.set_latency(ge.at, constant(1.0));
    builder.set_latency(ge.bt, linear(1.0));
    builder.set_latency(ge.ab, constant(0.0));
  }
  builder.add_commodity(VertexId{0}, VertexId{k}, 1.0);
  return std::move(builder).build();
}

}  // namespace staleflow
