// Standard instance families used by the paper, the tests and the benches.
#pragma once

#include <cstddef>
#include <functional>

#include "net/instance.h"
#include "util/rng.h"

namespace staleflow {

/// The Section 3.2 oscillation instance: two parallel links with
/// l_1(x) = l_2(x) = max{0, beta * (x - 1/2)} and demand 1.
/// Wardrop equilibrium: f = (1/2, 1/2) at latency 0.
Instance two_link_pulse(double beta);

/// `m` parallel links between one source and one sink, latency of link j
/// produced by `make_latency(j)`. Single commodity with demand 1.
Instance parallel_links(std::size_t m,
                        const std::function<LatencyPtr(std::size_t)>&
                            make_latency);

/// `m` identical affine parallel links l(x) = a + b*x.
Instance uniform_parallel_links(std::size_t m, double a, double b);

/// `m` affine links with offsets/slopes drawn uniformly from the given
/// ranges (deterministic given the rng state).
Instance random_parallel_links(std::size_t m, Rng& rng,
                               double offset_max = 1.0,
                               double slope_min = 0.1,
                               double slope_max = 1.0);

/// The Braess network. Vertices s, a, b, t and edges
///   s->a: l(x) = x,   s->b: l(x) = 1,
///   a->t: l(x) = 1,   b->t: l(x) = x,
///   a->b: l(x) = 0  (the "paradox" shortcut; include_shortcut = false
///                    builds the two-path variant).
/// Demand 1 from s to t.
Instance braess(bool include_shortcut = true);

/// Directed grid of (rows x cols) vertices with edges right and down;
/// single commodity top-left -> bottom-right. Affine latencies randomised
/// via `rng`.
Instance grid(std::size_t rows, std::size_t cols, Rng& rng);

/// Layered random DAG: `layers` layers of `width` vertices, each vertex
/// wired to `fanout` random vertices of the next layer, plus source/sink.
/// Affine latencies randomised via `rng`. Single commodity.
Instance layered_dag(std::size_t layers, std::size_t width,
                     std::size_t fanout, Rng& rng);

/// Two-commodity instance sharing a bottleneck: commodities (s1->t) and
/// (s2->t) each with own private link plus a shared congestible middle
/// edge. Exercises multi-commodity coupling.
Instance shared_bottleneck(double demand_split = 0.5);

/// Multi-commodity grid: one commodity per border pair, demands equal.
Instance multicommodity_grid(std::size_t rows, std::size_t cols,
                             std::size_t commodities, Rng& rng);

/// Recursive series-parallel network of the given depth: depth 0 is a
/// single edge; at each level two sub-networks are composed in series and
/// that pair in parallel with a third. Affine latencies randomised via
/// `rng`. Single commodity. Path count grows exponentially in depth
/// (depth <= 6 enforced).
Instance series_parallel(std::size_t depth, Rng& rng);

/// `k` Braess gadgets chained in series (the classic hard instance family
/// for selfish routing, cf. Roughgarden's recursive construction).
/// Single commodity; path count 3^k.
Instance chained_braess(std::size_t k);

}  // namespace staleflow
