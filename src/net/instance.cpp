#include "net/instance.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "graph/path_enumeration.h"

namespace staleflow {

const LatencyFunction& Instance::latency(EdgeId e) const {
  if (!e.valid() || e.index() >= latencies_.size()) {
    throw std::out_of_range("Instance::latency: unknown edge id");
  }
  return *latencies_[e.index()];
}

const Path& Instance::path(PathId p) const {
  if (!p.valid() || p.index() >= paths_.size()) {
    throw std::out_of_range("Instance::path: unknown path id");
  }
  return paths_[p.index()];
}

const Commodity& Instance::commodity(CommodityId c) const {
  if (!c.valid() || c.index() >= commodities_.size()) {
    throw std::out_of_range("Instance::commodity: unknown commodity id");
  }
  return commodities_[c.index()];
}

CommodityId Instance::commodity_of(PathId p) const {
  if (!p.valid() || p.index() >= path_owner_.size()) {
    throw std::out_of_range("Instance::commodity_of: unknown path id");
  }
  return path_owner_[p.index()];
}

double Instance::safe_update_period(double alpha) const {
  if (!(alpha > 0.0)) {
    throw std::invalid_argument(
        "Instance::safe_update_period: alpha must be > 0");
  }
  const double d = static_cast<double>(max_path_length_);
  if (max_slope_ == 0.0 || d == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / (4.0 * d * alpha * max_slope_);
}

std::string Instance::describe() const {
  std::ostringstream os;
  os << "Instance(V=" << graph_.vertex_count() << ", E=" << edge_count()
     << ", k=" << commodity_count() << ", |P|=" << path_count()
     << ", D=" << max_path_length_ << ", beta=" << max_slope_
     << ", ell_max=" << max_latency_ << ")";
  return os.str();
}

InstanceBuilder::InstanceBuilder(Graph graph)
    : graph_(std::move(graph)), latencies_(graph_.edge_count()) {}

InstanceBuilder& InstanceBuilder::set_latency(EdgeId e, LatencyPtr fn) {
  if (!graph_.contains(e)) {
    throw std::out_of_range("InstanceBuilder::set_latency: unknown edge");
  }
  if (fn == nullptr) {
    throw std::invalid_argument(
        "InstanceBuilder::set_latency: null latency function");
  }
  latencies_[e.index()] = std::move(fn);
  return *this;
}

InstanceBuilder& InstanceBuilder::add_commodity(VertexId source,
                                                VertexId sink,
                                                double demand) {
  return add_commodity(source, sink, demand, {});
}

InstanceBuilder& InstanceBuilder::add_commodity(
    VertexId source, VertexId sink, double demand,
    std::vector<std::vector<EdgeId>> paths) {
  if (!graph_.contains(source) || !graph_.contains(sink)) {
    throw std::out_of_range("InstanceBuilder::add_commodity: unknown vertex");
  }
  if (!(demand > 0.0)) {
    throw std::invalid_argument(
        "InstanceBuilder::add_commodity: demand must be > 0");
  }
  pending_.push_back(
      PendingCommodity{source, sink, demand, std::move(paths)});
  return *this;
}

Instance InstanceBuilder::build() && {
  if (consumed_) {
    throw std::logic_error("InstanceBuilder::build: already consumed");
  }
  consumed_ = true;

  for (std::size_t e = 0; e < latencies_.size(); ++e) {
    if (latencies_[e] == nullptr) {
      throw std::logic_error("InstanceBuilder::build: edge e" +
                             std::to_string(e) + " has no latency function");
    }
  }
  if (pending_.empty()) {
    throw std::logic_error("InstanceBuilder::build: no commodities");
  }

  Instance inst;
  inst.graph_ = std::move(graph_);
  inst.latencies_ = std::move(latencies_);

  double total_demand = 0.0;
  for (const auto& pc : pending_) total_demand += pc.demand;

  for (const auto& pc : pending_) {
    Commodity commodity;
    commodity.source = pc.source;
    commodity.sink = pc.sink;
    commodity.demand = pc.demand / total_demand;  // normalise sum to 1

    std::vector<Path> paths;
    if (pc.explicit_paths.empty()) {
      paths = enumerate_simple_paths(inst.graph_, pc.source, pc.sink);
      if (paths.empty()) {
        throw std::logic_error(
            "InstanceBuilder::build: commodity sink unreachable from source");
      }
    } else {
      paths.reserve(pc.explicit_paths.size());
      for (const auto& edges : pc.explicit_paths) {
        Path path(inst.graph_, edges);
        if (path.source() != pc.source || path.sink() != pc.sink) {
          throw std::invalid_argument(
              "InstanceBuilder::build: explicit path endpoints do not match "
              "the commodity");
        }
        paths.push_back(std::move(path));
      }
    }

    const CommodityId cid{inst.commodities_.size()};
    for (auto& path : paths) {
      const PathId pid{inst.paths_.size()};
      inst.max_path_length_ = std::max(inst.max_path_length_, path.length());
      inst.paths_.push_back(std::move(path));
      inst.path_owner_.push_back(cid);
      commodity.paths.push_back(pid);
    }
    inst.max_paths_per_commodity_ =
        std::max(inst.max_paths_per_commodity_, commodity.paths.size());
    inst.commodities_.push_back(std::move(commodity));
  }

  for (const auto& fn : inst.latencies_) {
    inst.max_slope_ = std::max(inst.max_slope_, fn->max_slope(1.0));
  }
  for (const auto& path : inst.paths_) {
    double worst = 0.0;
    for (const EdgeId e : path.edges()) {
      worst += inst.latencies_[e.index()]->value(1.0);
    }
    inst.max_latency_ = std::max(inst.max_latency_, worst);
  }
  return inst;
}

}  // namespace staleflow
