// Wardrop routing instances: network + latencies + commodities + path sets.
//
// An instance fixes everything about the game except the flow: the directed
// multigraph, one latency function per edge, and k commodities (source,
// sink, demand, admissible path set P_i). Demands are normalised so that
// sum_i r_i = 1 as in Section 2.1 of the paper.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/ids.h"
#include "graph/path.h"
#include "latency/latency_function.h"

namespace staleflow {

/// One origin-destination demand. `paths` indexes into the instance-wide
/// path list; the set is contiguous by construction.
struct Commodity {
  VertexId source;
  VertexId sink;
  double demand = 0.0;
  std::vector<PathId> paths;
};

class InstanceBuilder;

/// Immutable Wardrop instance. Construct through InstanceBuilder.
///
/// The network parameters the paper's bounds depend on are precomputed:
///   * D        = max path length                    (max_path_length())
///   * beta     = max slope of any latency function  (max_slope())
///   * ell_max  = max possible path latency          (max_latency())
class Instance {
 public:
  const Graph& graph() const noexcept { return graph_; }

  std::size_t edge_count() const noexcept { return graph_.edge_count(); }
  std::size_t path_count() const noexcept { return paths_.size(); }
  std::size_t commodity_count() const noexcept { return commodities_.size(); }

  const LatencyFunction& latency(EdgeId e) const;
  const Path& path(PathId p) const;
  const Commodity& commodity(CommodityId c) const;

  /// Commodity that owns path `p`.
  CommodityId commodity_of(PathId p) const;

  std::span<const PathId> paths_of(CommodityId c) const {
    return commodity(c).paths;
  }

  /// D: maximum number of edges on any admissible path.
  std::size_t max_path_length() const noexcept { return max_path_length_; }

  /// beta: upper bound on l_e'(x) over all edges e and x in [0, 1].
  double max_slope() const noexcept { return max_slope_; }

  /// ell_max: upper bound on any path latency, max_P sum_{e in P} l_e(1).
  double max_latency() const noexcept { return max_latency_; }

  /// Largest per-commodity path count, max_i |P_i| (Theorem 6's m).
  std::size_t max_paths_per_commodity() const noexcept {
    return max_paths_per_commodity_;
  }

  /// The paper's safe update period bound T = 1/(4 * D * alpha * beta) from
  /// Lemma 4, for a given migration smoothness alpha. Returns +infinity when
  /// beta == 0 (latencies constant: any period is safe).
  double safe_update_period(double alpha) const;

  /// One-line summary for logs and bench headers.
  std::string describe() const;

 private:
  friend class InstanceBuilder;
  Instance() = default;

  Graph graph_;
  std::vector<LatencyPtr> latencies_;  // by EdgeId
  std::vector<Path> paths_;            // global list, grouped by commodity
  std::vector<CommodityId> path_owner_;
  std::vector<Commodity> commodities_;
  std::size_t max_path_length_ = 0;
  std::size_t max_paths_per_commodity_ = 0;
  double max_slope_ = 0.0;
  double max_latency_ = 0.0;
};

/// Builds an Instance step by step, then validates and freezes it.
///
/// Usage:
///   InstanceBuilder b{std::move(graph)};
///   b.set_latency(e0, affine(0.0, 1.0));
///   b.add_commodity(s, t, 1.0);               // auto-enumerated paths
///   Instance inst = std::move(b).build();
class InstanceBuilder {
 public:
  explicit InstanceBuilder(Graph graph);

  /// Assigns the latency function of edge `e` (must be set for every edge).
  InstanceBuilder& set_latency(EdgeId e, LatencyPtr fn);

  /// Adds a commodity whose path set is all simple source->sink paths.
  /// `demand` must be > 0 (demands are normalised to sum 1 at build()).
  InstanceBuilder& add_commodity(VertexId source, VertexId sink,
                                 double demand);

  /// Adds a commodity with an explicit path set (each path must run from
  /// `source` to `sink`).
  InstanceBuilder& add_commodity(VertexId source, VertexId sink,
                                 double demand,
                                 std::vector<std::vector<EdgeId>> paths);

  /// Validates (all latencies set, >= 1 commodity, every commodity has
  /// >= 1 path, contract check on each latency) and returns the instance.
  /// Throws std::logic_error / std::invalid_argument on violations.
  Instance build() &&;

 private:
  struct PendingCommodity {
    VertexId source;
    VertexId sink;
    double demand;
    std::vector<std::vector<EdgeId>> explicit_paths;  // empty => enumerate
  };

  Graph graph_;
  std::vector<LatencyPtr> latencies_;
  std::vector<PendingCommodity> pending_;
  bool consumed_ = false;
};

}  // namespace staleflow
