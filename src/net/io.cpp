#include "net/io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "latency/functions.h"

namespace staleflow {
namespace {

/// Full-precision double printing so round-trips are exact.
std::string num(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string latency_spec(const LatencyFunction& fn) {
  if (const auto* c = dynamic_cast<const ConstantLatency*>(&fn)) {
    return "constant " + num(c->constant_value());
  }
  if (const auto* a = dynamic_cast<const AffineLatency*>(&fn)) {
    return "affine " + num(a->offset()) + " " + num(a->slope());
  }
  if (const auto* m = dynamic_cast<const MonomialLatency*>(&fn)) {
    return "monomial " + num(m->coefficient()) + " " + num(m->degree());
  }
  if (const auto* p = dynamic_cast<const PolynomialLatency*>(&fn)) {
    std::string spec = "polynomial " + std::to_string(p->coefficients().size());
    for (const double c : p->coefficients()) spec += " " + num(c);
    return spec;
  }
  if (const auto* s = dynamic_cast<const ShiftedLinearLatency*>(&fn)) {
    return "shifted_linear " + num(s->slope()) + " " + num(s->threshold());
  }
  if (const auto* w = dynamic_cast<const PiecewiseLinearLatency*>(&fn)) {
    std::string spec = "pwl " + std::to_string(w->breakpoints().size());
    for (const auto& bp : w->breakpoints()) {
      spec += " " + num(bp.x) + " " + num(bp.y);
    }
    return spec;
  }
  if (const auto* b = dynamic_cast<const BprLatency*>(&fn)) {
    return "bpr " + num(b->free_flow_time()) + " " + num(b->alpha()) + " " +
           num(b->capacity()) + " " + num(b->power());
  }
  if (const auto* q = dynamic_cast<const MM1Latency*>(&fn)) {
    return "mm1 " + num(q->capacity());
  }
  throw std::invalid_argument(
      "serialize_instance: latency function '" + fn.describe() +
      "' is not expressible in the text format");
}

LatencyPtr parse_latency(std::istringstream& in, std::size_t line_no) {
  auto fail = [line_no](const std::string& why) -> std::invalid_argument {
    return std::invalid_argument("parse_instance: line " +
                                 std::to_string(line_no) + ": " + why);
  };
  std::string kind;
  if (!(in >> kind)) throw fail("missing latency spec");
  auto read = [&](double& out) {
    if (!(in >> out)) throw fail("missing latency parameter");
  };
  if (kind == "constant") {
    double c;
    read(c);
    return constant(c);
  }
  if (kind == "affine") {
    double a, b;
    read(a);
    read(b);
    return affine(a, b);
  }
  if (kind == "monomial") {
    double c, d;
    read(c);
    read(d);
    return monomial(c, d);
  }
  if (kind == "polynomial") {
    std::size_t k;
    if (!(in >> k)) throw fail("missing coefficient count");
    std::vector<double> coeffs(k);
    for (double& c : coeffs) read(c);
    return polynomial(std::move(coeffs));
  }
  if (kind == "shifted_linear") {
    double slope, threshold;
    read(slope);
    read(threshold);
    return shifted_linear(slope, threshold);
  }
  if (kind == "pwl") {
    std::size_t k;
    if (!(in >> k)) throw fail("missing breakpoint count");
    std::vector<PiecewiseLinearLatency::Breakpoint> points(k);
    for (auto& bp : points) {
      read(bp.x);
      read(bp.y);
    }
    return piecewise_linear(std::move(points));
  }
  if (kind == "bpr") {
    double t0, a, c, p;
    read(t0);
    read(a);
    read(c);
    read(p);
    return bpr(t0, a, c, p);
  }
  if (kind == "mm1") {
    double c;
    read(c);
    return mm1(c);
  }
  throw fail("unknown latency kind '" + kind + "'");
}

}  // namespace

std::string to_dot(const Instance& instance) {
  std::ostringstream os;
  os << "digraph staleflow {\n  rankdir=LR;\n";
  for (std::size_t v = 0; v < instance.graph().vertex_count(); ++v) {
    os << "  v" << v << " [shape=circle];\n";
  }
  for (std::size_t e = 0; e < instance.edge_count(); ++e) {
    const auto& edge = instance.graph().edge(EdgeId{e});
    os << "  v" << edge.from.value << " -> v" << edge.to.value
       << " [label=\"" << instance.latency(EdgeId{e}).describe() << "\"];\n";
  }
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    os << "  // commodity " << c << ": v" << commodity.source.value
       << " -> v" << commodity.sink.value << " demand "
       << commodity.demand << "\n";
  }
  os << "}\n";
  return os.str();
}

std::string serialize_instance(const Instance& instance) {
  std::ostringstream os;
  os << "# staleflow instance\n";
  os << "vertices " << instance.graph().vertex_count() << "\n";
  for (std::size_t e = 0; e < instance.edge_count(); ++e) {
    const auto& edge = instance.graph().edge(EdgeId{e});
    os << "edge " << edge.from.value << " " << edge.to.value << " "
       << latency_spec(instance.latency(EdgeId{e})) << "\n";
  }
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    const Commodity& commodity = instance.commodity(CommodityId{c});
    os << "commodity " << commodity.source.value << " "
       << commodity.sink.value << " " << num(commodity.demand) << "\n";
  }
  return os.str();
}

Instance parse_instance(std::istream& in) {
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_instance(buffer.str());
}

Instance parse_instance(const std::string& text) {
  // Two-pass parse: first build the graph (vertices + edges), then attach
  // latencies and commodities through the builder.
  std::istringstream first(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t vertex_count = 0;
  bool have_vertices = false;

  struct EdgeLine {
    std::size_t from, to;
    std::string spec;
    std::size_t line_no;
  };
  struct CommodityLine {
    std::size_t source, sink;
    double demand;
  };
  std::vector<EdgeLine> edge_lines;
  std::vector<CommodityLine> commodity_lines;

  auto fail = [&line_no](const std::string& why) -> std::invalid_argument {
    return std::invalid_argument("parse_instance: line " +
                                 std::to_string(line_no) + ": " + why);
  };

  while (std::getline(first, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive) || directive[0] == '#') continue;
    if (directive == "vertices") {
      if (have_vertices) throw fail("duplicate 'vertices' directive");
      if (!(ls >> vertex_count) || vertex_count == 0) {
        throw fail("'vertices' needs a positive count");
      }
      have_vertices = true;
    } else if (directive == "edge") {
      if (!have_vertices) throw fail("'vertices' must come first");
      EdgeLine e;
      e.line_no = line_no;
      if (!(ls >> e.from >> e.to)) throw fail("edge needs two endpoints");
      if (e.from >= vertex_count || e.to >= vertex_count) {
        throw fail("edge endpoint out of range");
      }
      std::getline(ls, e.spec);
      edge_lines.push_back(std::move(e));
    } else if (directive == "commodity") {
      if (!have_vertices) throw fail("'vertices' must come first");
      CommodityLine c;
      if (!(ls >> c.source >> c.sink >> c.demand)) {
        throw fail("commodity needs source, sink, demand");
      }
      if (c.source >= vertex_count || c.sink >= vertex_count) {
        throw fail("commodity endpoint out of range");
      }
      commodity_lines.push_back(c);
    } else {
      throw fail("unknown directive '" + directive + "'");
    }
  }
  if (!have_vertices) {
    throw std::invalid_argument("parse_instance: no 'vertices' directive");
  }

  Graph g(vertex_count);
  std::vector<EdgeId> ids;
  ids.reserve(edge_lines.size());
  for (const EdgeLine& e : edge_lines) {
    ids.push_back(g.add_edge(VertexId{e.from}, VertexId{e.to}));
  }
  InstanceBuilder builder(std::move(g));
  for (std::size_t i = 0; i < edge_lines.size(); ++i) {
    std::istringstream spec(edge_lines[i].spec);
    builder.set_latency(ids[i], parse_latency(spec, edge_lines[i].line_no));
  }
  for (const CommodityLine& c : commodity_lines) {
    builder.add_commodity(VertexId{c.source}, VertexId{c.sink}, c.demand);
  }
  return std::move(builder).build();
}

void save_instance(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_instance: cannot open " + path);
  out << serialize_instance(instance);
  if (!out) throw std::runtime_error("save_instance: write failed " + path);
}

Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_instance: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_instance(buffer.str());
}

}  // namespace staleflow
