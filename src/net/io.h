// Instance serialisation: Graphviz DOT export for inspection, and a
// line-based text format for saving/loading instances.
//
// Text format (one directive per line, '#' comments allowed):
//   vertices <n>
//   edge <from> <to> <latency-spec>
//   commodity <source> <sink> <demand>
// Latency specs mirror the factory functions:
//   constant <c>
//   affine <a> <b>
//   monomial <c> <d>
//   polynomial <k> <c0> ... <c_{k-1}>
//   shifted_linear <slope> <threshold>
//   pwl <k> <x0> <y0> ... <x_{k-1}> <y_{k-1}>
//   bpr <t0> <alpha> <capacity> <power>
//   mm1 <capacity>
// Commodities always use auto-enumerated path sets in this format.
#pragma once

#include <iosfwd>
#include <string>

#include "net/instance.h"

namespace staleflow {

/// Graphviz DOT rendering of the network with latency-function labels.
std::string to_dot(const Instance& instance);

/// Serialises an instance into the text format above. Round-trips with
/// parse_instance for all built-in latency families; throws
/// std::invalid_argument for latency functions the format cannot express
/// (e.g. user-defined classes).
std::string serialize_instance(const Instance& instance);

/// Parses the text format. Throws std::invalid_argument with a line
/// number on malformed input.
Instance parse_instance(std::istream& in);
Instance parse_instance(const std::string& text);

/// Convenience file wrappers (throw std::runtime_error on I/O failure).
void save_instance(const Instance& instance, const std::string& path);
Instance load_instance(const std::string& path);

}  // namespace staleflow
