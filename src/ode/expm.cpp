#include "ode/expm.h"

#include <cmath>
#include <stdexcept>

namespace staleflow {

Matrix expm(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("expm: matrix must be square");
  }
  const std::size_t n = a.rows();
  if (n == 0) return Matrix(0, 0);

  // Scale so ||A/2^s|| is small enough for the Padé(13) approximant.
  const double norm = a.inf_norm();
  int s = 0;
  if (norm > 5.371920351148152) {  // theta_13 from Higham (2005)
    s = static_cast<int>(
        std::ceil(std::log2(norm / 5.371920351148152)));
  }
  Matrix scaled = a;
  scaled *= std::pow(2.0, -s);

  // Padé(13) coefficients.
  static constexpr double b[] = {64764752532480000.0, 32382376266240000.0,
                                 7771770303897600.0,  1187353796428800.0,
                                 129060195264000.0,   10559470521600.0,
                                 670442572800.0,      33522128640.0,
                                 1323241920.0,        40840800.0,
                                 960960.0,            16380.0,
                                 182.0,               1.0};

  const Matrix ident = Matrix::identity(n);
  const Matrix a2 = scaled.multiply(scaled);
  const Matrix a4 = a2.multiply(a2);
  const Matrix a6 = a2.multiply(a4);

  // U = A * (A6*(b13*A6 + b11*A4 + b9*A2) + b7*A6 + b5*A4 + b3*A2 + b1*I)
  Matrix u_inner = a6 * b[13] + a4 * b[11] + a2 * b[9];
  u_inner = a6.multiply(u_inner);
  u_inner += a6 * b[7] + a4 * b[5] + a2 * b[3] + ident * b[1];
  const Matrix u = scaled.multiply(u_inner);

  // V = A6*(b12*A6 + b10*A4 + b8*A2) + b6*A6 + b4*A4 + b2*A2 + b0*I
  Matrix v = a6 * b[12] + a4 * b[10] + a2 * b[8];
  v = a6.multiply(v);
  v += a6 * b[6] + a4 * b[4] + a2 * b[2] + ident * b[0];

  // exp(A/2^s) ~= (V - U)^{-1} (V + U)
  Matrix result = (v - u).solve(v + u);

  for (int i = 0; i < s; ++i) result = result.multiply(result);
  return result;
}

}  // namespace staleflow
