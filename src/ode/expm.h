// Matrix exponential via scaling-and-squaring with Padé approximation.
//
// Used by the exact per-phase solver: within a bulletin-board phase the
// dynamics f' = M f has the solution f(t̂+τ) = expm(M τ) f(t̂).
#pragma once

#include "ode/matrix.h"

namespace staleflow {

/// exp(A) for a square matrix A (Padé(13) with scaling and squaring,
/// following Higham 2005 without the degree ladder — the matrices here are
/// small and well-behaved generator matrices).
Matrix expm(const Matrix& a);

}  // namespace staleflow
