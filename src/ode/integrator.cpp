#include "ode/integrator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace staleflow {
namespace {

void check_interval(double t0, double t1) {
  if (!(t1 >= t0)) {
    throw std::invalid_argument("Integrator: t1 must be >= t0");
  }
}

/// Number of fixed steps covering [t0, t1] with nominal size h. Guards
/// against an extra sliver step caused by accumulated round-off.
std::size_t fixed_step_count(double t0, double t1, double h) {
  const double span = t1 - t0;
  if (span <= 0.0) return 0;
  return static_cast<std::size_t>(std::ceil(span / h - 1e-9));
}

}  // namespace

ExplicitEuler::ExplicitEuler(double step_size) : step_size_(step_size) {
  if (!(step_size > 0.0)) {
    throw std::invalid_argument("ExplicitEuler: step_size must be > 0");
  }
}

OdeStats ExplicitEuler::integrate(const OdeRhs& rhs, double t0, double t1,
                                  std::vector<double>& state,
                                  const OdeObserver& observer) const {
  check_interval(t0, t1);
  OdeStats stats;
  const std::size_t n = state.size();
  std::vector<double> dydt(n);
  const std::size_t steps = fixed_step_count(t0, t1, step_size_);
  double t = t0;
  for (std::size_t s = 0; s < steps; ++s) {
    const double next = s + 1 == steps ? t1 : t0 + step_size_ * static_cast<double>(s + 1);
    const double h = next - t;
    rhs(t, state, dydt);
    ++stats.rhs_evaluations;
    for (std::size_t i = 0; i < n; ++i) state[i] += h * dydt[i];
    t = next;
    ++stats.steps_accepted;
    if (observer) observer(t, state);
  }
  return stats;
}

RungeKutta4::RungeKutta4(double step_size) : step_size_(step_size) {
  if (!(step_size > 0.0)) {
    throw std::invalid_argument("RungeKutta4: step_size must be > 0");
  }
}

OdeStats RungeKutta4::integrate(const OdeRhs& rhs, double t0, double t1,
                                std::vector<double>& state,
                                const OdeObserver& observer) const {
  check_interval(t0, t1);
  OdeStats stats;
  const std::size_t n = state.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  const std::size_t steps = fixed_step_count(t0, t1, step_size_);
  double t = t0;
  for (std::size_t s = 0; s < steps; ++s) {
    const double next = s + 1 == steps ? t1 : t0 + step_size_ * static_cast<double>(s + 1);
    const double h = next - t;
    rhs(t, state, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = state[i] + 0.5 * h * k1[i];
    rhs(t + 0.5 * h, tmp, k2);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = state[i] + 0.5 * h * k2[i];
    rhs(t + 0.5 * h, tmp, k3);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = state[i] + h * k3[i];
    rhs(t + h, tmp, k4);
    stats.rhs_evaluations += 4;
    for (std::size_t i = 0; i < n; ++i) {
      state[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    t = next;
    ++stats.steps_accepted;
    if (observer) observer(t, state);
  }
  return stats;
}

DormandPrince45::DormandPrince45(Options options) : options_(options) {
  if (!(options_.abs_tolerance > 0.0) || !(options_.rel_tolerance > 0.0)) {
    throw std::invalid_argument("DormandPrince45: tolerances must be > 0");
  }
  if (!(options_.initial_step > 0.0) || !(options_.min_step > 0.0)) {
    throw std::invalid_argument("DormandPrince45: steps must be > 0");
  }
}

OdeStats DormandPrince45::integrate(const OdeRhs& rhs, double t0, double t1,
                                    std::vector<double>& state,
                                    const OdeObserver& observer) const {
  check_interval(t0, t1);
  OdeStats stats;
  if (t0 == t1) return stats;
  const std::size_t n = state.size();

  // Dormand-Prince coefficients.
  static constexpr double c2 = 1.0 / 5, c3 = 3.0 / 10, c4 = 4.0 / 5,
                          c5 = 8.0 / 9;
  static constexpr double a21 = 1.0 / 5;
  static constexpr double a31 = 3.0 / 40, a32 = 9.0 / 40;
  static constexpr double a41 = 44.0 / 45, a42 = -56.0 / 15, a43 = 32.0 / 9;
  static constexpr double a51 = 19372.0 / 6561, a52 = -25360.0 / 2187,
                          a53 = 64448.0 / 6561, a54 = -212.0 / 729;
  static constexpr double a61 = 9017.0 / 3168, a62 = -355.0 / 33,
                          a63 = 46732.0 / 5247, a64 = 49.0 / 176,
                          a65 = -5103.0 / 18656;
  static constexpr double b1 = 35.0 / 384, b3 = 500.0 / 1113, b4 = 125.0 / 192,
                          b5 = -2187.0 / 6784, b6 = 11.0 / 84;
  // 4th-order embedded weights.
  static constexpr double e1 = 5179.0 / 57600, e3 = 7571.0 / 16695,
                          e4 = 393.0 / 640, e5 = -92097.0 / 339200,
                          e6 = 187.0 / 2100, e7 = 1.0 / 40;

  std::vector<double> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), k7(n), tmp(n),
      y5(n);
  double t = t0;
  double h = std::min(options_.initial_step, t1 - t0);
  if (options_.max_step > 0.0) h = std::min(h, options_.max_step);

  rhs(t, state, k1);  // FSAL seed
  ++stats.rhs_evaluations;

  while (t < t1) {
    h = std::min(h, t1 - t);

    for (std::size_t i = 0; i < n; ++i) tmp[i] = state[i] + h * a21 * k1[i];
    rhs(t + c2 * h, tmp, k2);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = state[i] + h * (a31 * k1[i] + a32 * k2[i]);
    }
    rhs(t + c3 * h, tmp, k3);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = state[i] + h * (a41 * k1[i] + a42 * k2[i] + a43 * k3[i]);
    }
    rhs(t + c4 * h, tmp, k4);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = state[i] +
               h * (a51 * k1[i] + a52 * k2[i] + a53 * k3[i] + a54 * k4[i]);
    }
    rhs(t + c5 * h, tmp, k5);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = state[i] + h * (a61 * k1[i] + a62 * k2[i] + a63 * k3[i] +
                               a64 * k4[i] + a65 * k5[i]);
    }
    rhs(t + h, tmp, k6);
    for (std::size_t i = 0; i < n; ++i) {
      y5[i] = state[i] + h * (b1 * k1[i] + b3 * k3[i] + b4 * k4[i] +
                              b5 * k5[i] + b6 * k6[i]);
    }
    rhs(t + h, y5, k7);
    stats.rhs_evaluations += 6;

    // Error estimate = |y5 - y4|, component-wise against mixed tolerance.
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double y4i = state[i] + h * (e1 * k1[i] + e3 * k3[i] + e4 * k4[i] +
                                         e5 * k5[i] + e6 * k6[i] + e7 * k7[i]);
      const double scale =
          options_.abs_tolerance +
          options_.rel_tolerance * std::max(std::abs(state[i]), std::abs(y5[i]));
      const double d = (y5[i] - y4i) / scale;
      err += d * d;
    }
    err = std::sqrt(err / static_cast<double>(n));

    if (err <= 1.0 || h <= options_.min_step) {
      t += h;
      state = y5;
      k1 = k7;  // FSAL
      ++stats.steps_accepted;
      if (observer) observer(t, state);
    } else {
      ++stats.steps_rejected;
    }

    // Standard step-size controller (order 5 => exponent 1/5).
    const double factor =
        0.9 * std::pow(1.0 / std::max(err, 1e-10), 0.2);
    h *= std::clamp(factor, 0.2, 5.0);
    h = std::max(h, options_.min_step);
    if (options_.max_step > 0.0) h = std::min(h, options_.max_step);
  }
  return stats;
}

}  // namespace staleflow
