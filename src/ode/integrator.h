// Initial value problem integrators for the fluid-limit dynamics.
//
// Three integrators are provided:
//   * ExplicitEuler     — reference implementation, first order.
//   * RungeKutta4       — the workhorse for fixed-step phase integration.
//   * DormandPrince45   — adaptive, used where the RHS stiffness varies
//                         (e.g. fresh-information nonlinear dynamics).
// All operate on flat state vectors; the dynamics layer maps flows onto
// those vectors.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace staleflow {

/// Right-hand side of an autonomous-in-structure ODE y' = g(t, y).
/// Writes the derivative into `dydt` (pre-sized to y.size()).
using OdeRhs =
    std::function<void(double t, std::span<const double> y,
                       std::span<double> dydt)>;

/// Observer invoked after every accepted step with (t, y).
using OdeObserver =
    std::function<void(double t, std::span<const double> y)>;

/// Statistics of one integrate() call.
struct OdeStats {
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected = 0;  // adaptive only
  std::size_t rhs_evaluations = 0;
};

/// Common interface. Implementations advance `state` from t0 to t1 in
/// place. Requires t1 >= t0; the observer (if any) is called after each
/// accepted step, including the final one, but not at t0.
class Integrator {
 public:
  virtual ~Integrator() = default;
  virtual OdeStats integrate(const OdeRhs& rhs, double t0, double t1,
                             std::vector<double>& state,
                             const OdeObserver& observer = nullptr) const = 0;
};

/// Fixed-step forward Euler.
class ExplicitEuler final : public Integrator {
 public:
  /// `step_size` > 0; the last step is shortened to land exactly on t1.
  explicit ExplicitEuler(double step_size);
  OdeStats integrate(const OdeRhs& rhs, double t0, double t1,
                     std::vector<double>& state,
                     const OdeObserver& observer = nullptr) const override;

 private:
  double step_size_;
};

/// Fixed-step classical Runge-Kutta of order 4.
class RungeKutta4 final : public Integrator {
 public:
  explicit RungeKutta4(double step_size);
  OdeStats integrate(const OdeRhs& rhs, double t0, double t1,
                     std::vector<double>& state,
                     const OdeObserver& observer = nullptr) const override;

 private:
  double step_size_;
};

/// Options for DormandPrince45 (separate type so it can be a default
/// argument — nested classes are incomplete inside their enclosing class).
struct DormandPrinceOptions {
  double abs_tolerance = 1e-9;
  double rel_tolerance = 1e-9;
  double initial_step = 1e-3;
  double min_step = 1e-12;
  double max_step = 0.0;  // 0 => no cap
};

/// Adaptive Dormand-Prince 5(4) with standard PI-free step control.
class DormandPrince45 final : public Integrator {
 public:
  using Options = DormandPrinceOptions;

  explicit DormandPrince45(Options options = {});
  OdeStats integrate(const OdeRhs& rhs, double t0, double t1,
                     std::vector<double>& state,
                     const OdeObserver& observer = nullptr) const override;

 private:
  Options options_;
};

}  // namespace staleflow
