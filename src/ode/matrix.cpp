#include "ode/matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace staleflow {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::multiply: shape mismatch");
  }
  Matrix result(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        result(i, j) += aik * other(k, j);
      }
    }
  }
  return result;
}

std::vector<double> Matrix::apply(std::span<const double> x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Matrix::apply: size mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

double Matrix::inf_norm() const noexcept {
  double best = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) row += std::abs((*this)(i, j));
    best = std::max(best, row);
  }
  return best;
}

Matrix Matrix::solve(const Matrix& rhs) const {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::solve: matrix must be square");
  }
  if (rhs.rows_ != rows_) {
    throw std::invalid_argument("Matrix::solve: rhs row count mismatch");
  }
  const std::size_t n = rows_;
  Matrix lu = *this;
  Matrix x = rhs;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double candidate = std::abs(lu(r, col));
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      throw std::domain_error("Matrix::solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(col, j), lu(pivot, j));
      for (std::size_t j = 0; j < x.cols_; ++j) {
        std::swap(x(col, j), x(pivot, j));
      }
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / lu(col, col);
      if (factor == 0.0) continue;
      lu(r, col) = 0.0;
      for (std::size_t j = col + 1; j < n; ++j) {
        lu(r, j) -= factor * lu(col, j);
      }
      for (std::size_t j = 0; j < x.cols_; ++j) {
        x(r, j) -= factor * x(col, j);
      }
    }
  }
  // Back substitution.
  for (std::size_t col = n; col > 0; --col) {
    const std::size_t r = col - 1;
    for (std::size_t j = 0; j < x.cols_; ++j) {
      double acc = x(r, j);
      for (std::size_t k = col; k < n; ++k) acc -= lu(r, k) * x(k, j);
      x(r, j) = acc / lu(r, r);
    }
  }
  return x;
}

}  // namespace staleflow
