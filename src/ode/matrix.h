// Small dense matrix support for the exact linear-phase solver.
//
// Within one bulletin-board phase the fluid dynamics is linear, f' = M f,
// so f(t̂ + τ) = expm(M τ) f(t̂). The matrices involved are |P| x |P| —
// path counts are modest — so a simple dense representation suffices.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace staleflow {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  std::span<const double> data() const noexcept { return data_; }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product; requires cols() == other.rows().
  Matrix multiply(const Matrix& other) const;

  /// Matrix-vector product; requires x.size() == cols().
  std::vector<double> apply(std::span<const double> x) const;

  /// Maximum absolute row sum (the induced infinity norm).
  double inf_norm() const noexcept;

  /// Solves A X = B for X via LU with partial pivoting (A is this matrix,
  /// must be square with rows() == B.rows()). Throws std::domain_error if
  /// singular to working precision.
  Matrix solve(const Matrix& rhs) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace staleflow
