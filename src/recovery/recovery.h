// Umbrella header for the crash-recovery subsystem (src/recovery/): the
// write-ahead epoch log's record framing (wal_format.h), append and scan
// sides (wal_writer.h / wal_reader.h), and the run-level protocol —
// manifest, cut/round/trailer payloads, recover_wal(), WalLog
// (run_log.h). The serving checkpoints the WAL persists are plain
// service-layer value types (service/checkpoint.h); see README.md
// ("Crash recovery & replay") for the on-disk format and the resume
// contract.
#pragma once

#include "recovery/run_log.h"
#include "recovery/wal_format.h"
#include "recovery/wal_reader.h"
#include "recovery/wal_writer.h"
