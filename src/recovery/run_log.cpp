#include "recovery/run_log.h"

#include <stdexcept>
#include <utility>

#include "recovery/wal_reader.h"
#include "service/telemetry.h"
#include "util/binio.h"
#include "util/fnv.h"

namespace staleflow::recovery {

// --------------------------------------------------------------------------
// Payload codecs
// --------------------------------------------------------------------------

std::string encode_run_header(const RunManifest& manifest) {
  binio::Writer w;
  w.u32(kWalVersion);
  w.u8(manifest.multi_tenant ? 1 : 0);
  w.u8(manifest.pipeline ? 1 : 0);  // v3
  w.str(manifest.faults);
  w.u32(static_cast<std::uint32_t>(manifest.tenants.size()));
  for (const TenantManifest& tenant : manifest.tenants) {
    w.str(tenant.name);
    w.str(tenant.scenario);
    w.str(tenant.policy);
    w.str(tenant.workload);
    const RouteServerOptions& o = tenant.options;
    w.f64(o.update_period);
    w.u64(o.epochs);
    w.u64(o.num_clients);
    w.u64(o.shards);
    w.u64(o.sub_batch_queries);
    w.u8(o.sub_batch_auto ? 1 : 0);
    w.u64(o.seed);
    w.u8(o.record_latency ? 1 : 0);
    w.u64(o.latency_sample_every);
    w.u64(tenant.weight);
  }
  return w.take();
}

RunManifest decode_run_header(std::string_view payload) {
  binio::Reader r(payload);
  const std::uint32_t version = r.u32();
  // A v3 reader still accepts v2 files: the only layout change is the
  // pipeline byte (absent in v2, meaning a strict-schedule run). Anything
  // else is a future format this build cannot decode — which is also how
  // a v2 reader treats a v3 header.
  if (version != 2 && version != kWalVersion) {
    throw std::runtime_error("WAL header: unknown payload version " +
                             std::to_string(version) +
                             " (this build reads 2.." +
                             std::to_string(kWalVersion) + ")");
  }
  RunManifest manifest;
  manifest.multi_tenant = r.u8() != 0;
  if (version >= 3) manifest.pipeline = r.u8() != 0;
  manifest.faults = r.str();
  const std::uint32_t count = r.u32();
  if (count == 0 || (!manifest.multi_tenant && count != 1)) {
    throw std::runtime_error("WAL header: bad tenant count");
  }
  manifest.tenants.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TenantManifest tenant;
    tenant.name = r.str();
    tenant.scenario = r.str();
    tenant.policy = r.str();
    tenant.workload = r.str();
    RouteServerOptions& o = tenant.options;
    o.update_period = r.f64();
    o.epochs = r.u64();
    o.num_clients = r.u64();
    o.shards = r.u64();
    o.sub_batch_queries = r.u64();
    o.sub_batch_auto = r.u8() != 0;
    o.seed = r.u64();
    o.record_latency = r.u8() != 0;
    o.latency_sample_every = r.u64();
    tenant.weight = r.u64();
    manifest.tenants.push_back(std::move(tenant));
  }
  if (!r.done()) {
    throw std::runtime_error("WAL header: trailing bytes in payload");
  }
  return manifest;
}

std::string encode_epoch_cut(std::uint32_t tenant, const EngineCheckpoint& cut,
                             std::uint64_t digest_so_far) {
  binio::Writer w;
  w.u32(tenant);
  const EpochSummary& s = cut.summary;
  w.u64(s.epoch);
  w.f64(s.start_time);
  w.f64(s.end_time);
  w.u64(s.queries);
  w.u64(s.migrations);
  w.f64(s.migration_rate);
  w.f64(s.wardrop_gap);
  w.f64(s.board_latency);
  w.f64(s.route_p50);
  w.f64(s.route_p99);
  w.f64(s.route_p999);
  w.f64(s.p50_us);
  w.f64(s.p99_us);
  w.f64(s.p999_us);
  w.f64(s.queries_per_second);
  for (const std::uint64_t word : cut.rng_state) w.u64(word);
  w.u64(cut.flow.size());
  for (const double f : cut.flow) w.f64(f);
  w.u64(cut.client_paths.size());
  for (const std::uint32_t p : cut.client_paths) w.u32(p);

  const LogHistogram& h = cut.route_hist;
  w.f64(h.min_value());
  w.f64(h.max_value());
  w.u32(h.sub_bucket_bits());
  std::uint64_t nonzero = 0;
  for (std::size_t b = 0; b < h.bucket_count(); ++b) {
    if (h.bucket_value(b) != 0) ++nonzero;
  }
  w.u64(nonzero);
  for (std::size_t b = 0; b < h.bucket_count(); ++b) {
    const std::uint64_t n = h.bucket_value(b);
    if (n == 0) continue;
    w.u64(b);
    w.u64(n);
  }
  if (h.empty()) {
    w.f64(0.0);
    w.f64(0.0);
    w.f64(0.0);
  } else {
    w.f64(h.min());
    w.f64(h.max());
    w.f64(h.sum());
  }
  w.u64(digest_so_far);
  return w.take();
}

CutRecord decode_epoch_cut(std::string_view payload) {
  binio::Reader r(payload);
  CutRecord record;
  record.tenant = r.u32();
  EpochSummary& s = record.cut.summary;
  s.epoch = r.u64();
  s.start_time = r.f64();
  s.end_time = r.f64();
  s.queries = r.u64();
  s.migrations = r.u64();
  s.migration_rate = r.f64();
  s.wardrop_gap = r.f64();
  s.board_latency = r.f64();
  s.route_p50 = r.f64();
  s.route_p99 = r.f64();
  s.route_p999 = r.f64();
  s.p50_us = r.f64();
  s.p99_us = r.f64();
  s.p999_us = r.f64();
  s.queries_per_second = r.f64();
  for (std::uint64_t& word : record.cut.rng_state) word = r.u64();
  const std::uint64_t paths = r.u64();
  record.cut.flow.reserve(paths);
  for (std::uint64_t i = 0; i < paths; ++i) record.cut.flow.push_back(r.f64());
  const std::uint64_t clients = r.u64();
  record.cut.client_paths.reserve(clients);
  for (std::uint64_t i = 0; i < clients; ++i) {
    record.cut.client_paths.push_back(r.u32());
  }

  const double hist_min_value = r.f64();
  const double hist_max_value = r.f64();
  const std::uint32_t hist_bits = r.u32();
  const std::uint64_t nonzero = r.u64();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  buckets.reserve(nonzero);
  for (std::uint64_t i = 0; i < nonzero; ++i) {
    const std::uint64_t bucket = r.u64();
    const std::uint64_t count = r.u64();
    buckets.emplace_back(bucket, count);
  }
  const double hist_min = r.f64();
  const double hist_max = r.f64();
  const double hist_sum = r.f64();
  try {
    record.cut.route_hist =
        LogHistogram::from_state(hist_min_value, hist_max_value, hist_bits,
                                 buckets, hist_min, hist_max, hist_sum);
  } catch (const std::invalid_argument& bad) {
    throw std::runtime_error(std::string("WAL cut: bad histogram state: ") +
                             bad.what());
  }
  record.digest_so_far = r.u64();
  if (!r.done()) {
    throw std::runtime_error("WAL cut: trailing bytes in payload");
  }
  return record;
}

std::string encode_round_mark(const RoundMark& mark) {
  binio::Writer w;
  w.u64(mark.rounds);
  w.u32(static_cast<std::uint32_t>(mark.credits.size()));
  for (const std::uint64_t credit : mark.credits) w.u64(credit);
  return w.take();
}

RoundMark decode_round_mark(std::string_view payload) {
  binio::Reader r(payload);
  RoundMark mark;
  mark.rounds = r.u64();
  const std::uint32_t count = r.u32();
  mark.credits.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) mark.credits.push_back(r.u64());
  if (!r.done()) {
    throw std::runtime_error("WAL round mark: trailing bytes in payload");
  }
  return mark;
}

std::string encode_trailer(std::span<const std::uint64_t> digests) {
  binio::Writer w;
  w.u32(static_cast<std::uint32_t>(digests.size()));
  for (const std::uint64_t digest : digests) w.u64(digest);
  return w.take();
}

std::vector<std::uint64_t> decode_trailer(std::string_view payload) {
  binio::Reader r(payload);
  const std::uint32_t count = r.u32();
  std::vector<std::uint64_t> digests;
  digests.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) digests.push_back(r.u64());
  if (!r.done()) {
    throw std::runtime_error("WAL trailer: trailing bytes in payload");
  }
  return digests;
}

// --------------------------------------------------------------------------
// recover_wal
// --------------------------------------------------------------------------

RecoveredRun recover_wal(const std::string& path) {
  const WalScan scan = scan_wal(path);
  if (scan.records.empty() ||
      scan.records.front().type != RecordType::kRunHeader) {
    throw std::runtime_error("recover_wal: '" + path +
                             "' has no run header — not a resumable WAL");
  }

  RecoveredRun run;
  run.manifest = decode_run_header(scan.records.front().payload);
  const std::size_t tenants = run.manifest.tenants.size();
  run.cuts.resize(tenants);
  run.cut_offsets.resize(tenants);
  run.digests.assign(tenants, fnv::kOffsetBasis);
  run.credits.assign(tenants, 0);
  run.truncated = scan.truncated;
  run.note = scan.note;
  run.valid_bytes = scan.records.front().end_offset;

  // Cuts stage between round marks; only a round mark commits them. The
  // scan stops at the first record that is structurally valid but
  // semantically impossible (bad tenant index, epoch gap, digest
  // mismatch, records after the trailer): like a checksum failure,
  // nothing after it can be trusted.
  struct StagedCut {
    CutRecord record;
    std::uint64_t offset = 0;  // where the cut's frame starts in the file
  };
  std::vector<StagedCut> staged;
  const auto stop = [&run, &staged](const std::string& why) {
    run.truncated = true;
    run.note = why;
    staged.clear();
  };

  for (std::size_t index = 1; index < scan.records.size(); ++index) {
    const WalRecord& record = scan.records[index];
    if (run.clean_shutdown) {
      stop("corrupt WAL: record after the clean-shutdown trailer");
      break;
    }
    try {
      switch (record.type) {
        case RecordType::kRunHeader:
          stop("corrupt WAL: duplicate run header");
          break;
        case RecordType::kEpochCut: {
          CutRecord cut = decode_epoch_cut(record.payload);
          if (cut.tenant >= tenants) {
            stop("corrupt WAL: cut for unknown tenant");
            break;
          }
          std::size_t expected = run.cuts[cut.tenant].size();
          std::uint64_t digest = run.digests[cut.tenant];
          for (const StagedCut& pending : staged) {
            if (pending.record.tenant == cut.tenant) {
              ++expected;
              digest = pending.record.digest_so_far;
            }
          }
          if (cut.cut.summary.epoch != expected) {
            stop("corrupt WAL: cut epochs not contiguous");
            break;
          }
          if (telemetry_digest_accumulate(digest, cut.cut.summary) !=
              cut.digest_so_far) {
            stop("corrupt WAL: cut digest cross-check failed");
            break;
          }
          // Frame start = end offset minus (length+type+checksum words and
          // the payload itself).
          const std::uint64_t frame_start =
              record.end_offset - (4 + 4 + 8) - record.payload.size();
          staged.push_back(StagedCut{std::move(cut), frame_start});
          break;
        }
        case RecordType::kRoundMark: {
          const RoundMark mark = decode_round_mark(record.payload);
          if (mark.credits.size() != tenants) {
            stop("corrupt WAL: round mark credit count mismatch");
            break;
          }
          if (mark.rounds != run.rounds + 1) {
            stop("corrupt WAL: round marks not contiguous");
            break;
          }
          for (StagedCut& pending : staged) {
            run.digests[pending.record.tenant] = pending.record.digest_so_far;
            run.cuts[pending.record.tenant].push_back(
                std::move(pending.record.cut));
            run.cut_offsets[pending.record.tenant].push_back(pending.offset);
          }
          staged.clear();
          run.rounds = mark.rounds;
          for (std::size_t i = 0; i < tenants; ++i) {
            run.credits[i] = static_cast<std::size_t>(mark.credits[i]);
          }
          run.valid_bytes = record.end_offset;
          break;
        }
        case RecordType::kTrailer: {
          if (!staged.empty()) {
            stop("corrupt WAL: trailer with uncommitted cuts");
            break;
          }
          const std::vector<std::uint64_t> digests =
              decode_trailer(record.payload);
          if (digests != run.digests) {
            stop("corrupt WAL: trailer digests do not match the run");
            break;
          }
          run.clean_shutdown = true;
          run.valid_bytes = record.end_offset;
          break;
        }
      }
    } catch (const std::runtime_error& bad) {
      stop(std::string("corrupt WAL: ") + bad.what());
      break;
    }
    if (run.truncated && run.note.rfind("corrupt WAL:", 0) == 0) break;
  }

  // Cuts whose round mark never made it to disk are the torn tail of a
  // mid-round crash: discarded, resume replays that round.
  if (!staged.empty()) {
    run.truncated = true;
    if (run.note.empty()) run.note = "uncommitted cuts without a round mark";
  }
  return run;
}

RegistryResume registry_resume(const RecoveredRun& run) {
  RegistryResume resume;
  resume.rounds = run.rounds;
  resume.credits = run.credits;
  resume.cuts.reserve(run.cuts.size());
  for (const std::vector<EngineCheckpoint>& cuts : run.cuts) {
    resume.cuts.emplace_back(cuts);
  }
  return resume;
}

// --------------------------------------------------------------------------
// WalLog
// --------------------------------------------------------------------------

WalLog::WalLog(const std::string& path, const RunManifest& manifest)
    : writer_(WalWriter::create(path)),
      digests_(manifest.tenants.size(), fnv::kOffsetBasis) {
  if (manifest.tenants.empty()) {
    throw std::invalid_argument("WalLog: manifest has no tenants");
  }
  writer_.append(RecordType::kRunHeader, encode_run_header(manifest));
}

WalLog::WalLog(const std::string& path, const RecoveredRun& recovered)
    : writer_(WalWriter::append_to(path, recovered.valid_bytes)),
      digests_(recovered.digests),
      rounds_(recovered.rounds) {
  if (recovered.clean_shutdown) {
    throw std::invalid_argument(
        "WalLog: run already completed cleanly — nothing to append");
  }
}

void WalLog::log_single_epoch(const EngineCheckpoint& cut) {
  const std::uint64_t digest =
      telemetry_digest_accumulate(digests_.at(0), cut.summary);
  writer_.append(RecordType::kEpochCut, encode_epoch_cut(0, cut, digest));
  digests_[0] = digest;
  RoundMark mark;
  mark.rounds = ++rounds_;
  mark.credits = {0};
  writer_.append(RecordType::kRoundMark, encode_round_mark(mark));
}

void WalLog::log_round(const RoundCheckpoint& round) {
  for (const auto& [tenant, cut] : round.cuts) {
    const std::uint64_t digest =
        telemetry_digest_accumulate(digests_.at(tenant), cut.summary);
    writer_.append(
        RecordType::kEpochCut,
        encode_epoch_cut(static_cast<std::uint32_t>(tenant), cut, digest));
    digests_[tenant] = digest;
  }
  RoundMark mark;
  mark.rounds = round.rounds;
  mark.credits.assign(round.credits.begin(), round.credits.end());
  writer_.append(RecordType::kRoundMark, encode_round_mark(mark));
  rounds_ = round.rounds;
}

void WalLog::finish() {
  writer_.append(RecordType::kTrailer, encode_trailer(digests_));
}

CutObserver WalLog::single_observer() {
  return [this](const EngineCheckpoint& cut) { log_single_epoch(cut); };
}

RoundCutObserver WalLog::round_observer() {
  return [this](const RoundCheckpoint& round) { log_round(round); };
}

}  // namespace staleflow::recovery
