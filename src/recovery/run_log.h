// Payload encodings and run-level protocol of the write-ahead epoch log.
//
// wal_format.h fixes the record *framing*; this header fixes what goes
// inside the records and what a well-formed WAL means:
//
//   kRunHeader   RunManifest — the run's complete configuration (per
//                tenant: scenario/policy/workload names + resolved
//                RouteServerOptions + weight), written exactly once,
//                first. `--resume <wal>` rebuilds the run from it and
//                takes no other configuration flags.
//   kEpochCut    one tenant's EngineCheckpoint plus that tenant's
//                digest-so-far (the incremental telemetry digest over
//                its epochs 0..e) as an end-to-end cross-check beyond
//                the per-record frame checksum.
//   kRoundMark   the commit point: cut records are STAGED until their
//                round mark. Recovery replays committed rounds only —
//                the resume truncation offset is the end of the last
//                round mark, so a crash mid-round loses that round's
//                cuts, never a committed one. A single-server run
//                writes the same protocol as a one-tenant registry
//                (round r = epoch r-1, credits = {0}), making the two
//                WALs comparable record for record.
//   kTrailer     clean shutdown: the final per-tenant digests. A WAL
//                without one is, by definition, a crash image.
//
// recover_wal() turns a (possibly torn) WAL file back into typed state:
// the manifest, every tenant's committed cut prefix, the scheduler
// round/credit state, and whether the run had already finished cleanly.
// WalLog is the write side the serving CLIs install as their
// cut/round observers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "recovery/wal_format.h"
#include "recovery/wal_writer.h"
#include "service/checkpoint.h"
#include "service/route_server.h"

namespace staleflow::recovery {

/// One tenant's (or the single server's) full configuration as logged in
/// the run header. `options.threads` and `options.executor` are runtime
/// knobs, not dynamics configuration — the determinism contract makes
/// them digest-neutral — so they are NOT serialized and a resumed run may
/// use any thread count.
struct TenantManifest {
  std::string name;      // empty for a plain single-server run
  std::string scenario;  // scenario registry key
  std::string policy;    // named-policy spec
  std::string workload;  // workload spec
  RouteServerOptions options;
  std::size_t weight = 1;
};

struct RunManifest {
  bool multi_tenant = false;
  /// Cross-epoch pipelining was on for this run (v3 headers; v2 files
  /// decode as false). Cut CONTENT is schedule-independent — the flag is
  /// logged so a resumed run re-serves with the crashed run's schedule
  /// instead of silently downgrading to strict, and so tooling knows
  /// committed cuts trail the crashed process's serving frontier by one
  /// epoch.
  bool pipeline = false;
  /// The run's `--faults` spec ("" = healthy). The SPEC is what the WAL
  /// stores — a resumed run re-materializes the schedule from it plus the
  /// logged (seed, epochs), reproducing the exact fault timing of the
  /// crashed run (the schedule is a pure function of that triple).
  std::string faults;
  std::vector<TenantManifest> tenants;  // exactly 1 when !multi_tenant
};

/// A decoded kEpochCut record.
struct CutRecord {
  std::uint32_t tenant = 0;
  EngineCheckpoint cut;
  std::uint64_t digest_so_far = 0;
};

/// A decoded kRoundMark record.
struct RoundMark {
  std::uint64_t rounds = 0;
  std::vector<std::uint64_t> credits;  // per tenant
};

// Payload codecs (exposed for tests; the framing checksum lives in
// wal_writer/wal_reader). Decoders throw std::runtime_error on a
// malformed or version-incompatible payload.
std::string encode_run_header(const RunManifest& manifest);
RunManifest decode_run_header(std::string_view payload);
std::string encode_epoch_cut(std::uint32_t tenant, const EngineCheckpoint& cut,
                             std::uint64_t digest_so_far);
CutRecord decode_epoch_cut(std::string_view payload);
std::string encode_round_mark(const RoundMark& mark);
RoundMark decode_round_mark(std::string_view payload);
std::string encode_trailer(std::span<const std::uint64_t> digests);
std::vector<std::uint64_t> decode_trailer(std::string_view payload);

/// Everything recover_wal() can re-establish from a WAL file.
struct RecoveredRun {
  RunManifest manifest;

  /// Per tenant (manifest order): the committed cut prefix, epochs 0..e
  /// in order. Empty = that tenant had not finished an epoch yet.
  std::vector<std::vector<EngineCheckpoint>> cuts;

  /// Parallel to `cuts`: the byte offset in the WAL file where each cut
  /// record's frame starts — lets offline tooling correlate a WAL cut
  /// with trace spans and seek straight to it.
  std::vector<std::vector<std::uint64_t>> cut_offsets;

  /// Per tenant: the incremental telemetry digest over its committed
  /// epochs (fnv offset basis when none).
  std::vector<std::uint64_t> digests;

  /// Scheduler state at the last committed round mark.
  std::size_t rounds = 0;
  std::vector<std::size_t> credits;  // per tenant

  /// True when the WAL ends with a matching trailer: the run completed
  /// and --resume has nothing to serve.
  bool clean_shutdown = false;

  /// True when bytes past valid_bytes were discarded (torn tail, corrupt
  /// record, or cuts staged without their round mark).
  bool truncated = false;
  /// Resume truncation offset: end of the last committed record.
  std::uint64_t valid_bytes = 0;
  /// Why the scan stopped early (empty when nothing was discarded).
  std::string note;

  /// The per-tenant epoch count still to serve (0 when clean_shutdown).
  std::size_t committed_epochs(std::size_t tenant) const {
    return cuts.at(tenant).size();
  }
};

/// Scans and decodes `path`. Throws std::runtime_error when the file is
/// missing, lacks the WAL magic, carries no (or a malformed) run header,
/// or uses an unknown payload version — those mean "not a resumable WAL",
/// as opposed to a torn tail, which is recovered from silently (see
/// RecoveredRun::truncated / note).
RecoveredRun recover_wal(const std::string& path);

/// View of a RecoveredRun in the shape TenantRegistry::run consumes. The
/// spans alias `run.cuts`; `run` must outlive the returned value's use.
RegistryResume registry_resume(const RecoveredRun& run);

/// The write side: owns the WalWriter and the round-mark protocol. The
/// serving CLIs install single_observer()/round_observer() as their
/// recovery hooks and call finish() after a completed run.
class WalLog {
 public:
  /// Fresh run: creates/truncates `path` and writes the run header.
  WalLog(const std::string& path, const RunManifest& manifest);

  /// Resumed run: amputates the uncommitted tail at
  /// `recovered.valid_bytes` and appends, continuing the digest and
  /// round counters where the committed prefix left off.
  WalLog(const std::string& path, const RecoveredRun& recovered);

  /// Single-server hook: logs the epoch's cut and immediately commits it
  /// with a one-tenant round mark (round e+1, credits {0}) — the exact
  /// records a one-tenant weight-1 registry would write.
  void log_single_epoch(const EngineCheckpoint& cut);

  /// Multi-tenant hook: logs every scheduled tenant's cut, then the
  /// committing round mark.
  void log_round(const RoundCheckpoint& round);

  /// Writes the clean-shutdown trailer (final per-tenant digests).
  void finish();

  CutObserver single_observer();
  RoundCutObserver round_observer();

  const std::string& path() const noexcept { return writer_.path(); }

 private:
  WalWriter writer_;
  std::vector<std::uint64_t> digests_;  // per tenant, committed-so-far
  std::uint64_t rounds_ = 0;
};

}  // namespace staleflow::recovery
