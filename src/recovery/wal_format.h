// The write-ahead epoch log's on-disk record format.
//
// A WAL file is an 8-byte magic ("SFWAL1\n\0") followed by a sequence of
// length-prefixed, checksummed records:
//
//   +----------------+----------------+~~~~~~~~~~~+------------------+
//   | payload length | record type    | payload   | FNV-1a checksum  |
//   | u32 LE         | u32 LE         | N bytes   | u64 LE           |
//   +----------------+----------------+~~~~~~~~~~~+------------------+
//
// The checksum covers the type word and the payload (util/fnv.h — the
// same FNV-1a the telemetry digests use), so a torn write, a short tail
// or a flipped bit fails verification and the scanner truncates the log
// at the last record that checks out; nothing after a bad record is ever
// trusted (a gap breaks the prefix property recovery depends on).
//
// Record types (payload encodings live in recovery/run_log.h):
//   kRunHeader  — exactly once, first: the run's full configuration
//                 (per-tenant scenario/policy/workload names + options),
//                 so `--resume <wal>` needs no other flags.
//   kEpochCut   — one tenant's EngineCheckpoint after a finished epoch
//                 (a single-server run is tenant 0).
//   kRoundMark  — closes a scheduler round: round counter + credit
//                 vector. Cut records only COMMIT at their round mark —
//                 recovery resumes from the last marked round boundary.
//   kTrailer    — clean shutdown: the final per-tenant digests. Absent
//                 after a crash, by definition.
#pragma once

#include <cstdint>
#include <string>

namespace staleflow::recovery {

/// First bytes of every WAL file. The trailing newline makes accidental
/// text-mode corruption detectable; the NUL terminates the human part.
inline constexpr char kWalMagic[8] = {'S', 'F', 'W', 'A', 'L', '1', '\n', 0};

/// Payload format version inside the run header. Bump when any payload
/// encoding changes; readers reject versions they don't know (a v3 reader
/// still accepts v2 files — the superseded layout decodes with defaults).
/// v2: the run header carries the --faults spec after the tenant flag.
/// v3: a pipeline flag follows the tenant flag. When set, the run served
///     with cross-epoch pipelining and its cuts were captured at the
///     one-epoch overlap boundary — committed cuts trail the crashed
///     process's serving frontier by one epoch, but their content (and
///     the record protocol) is identical to a strict run's, and a resume
///     re-serves with the logged schedule.
inline constexpr std::uint32_t kWalVersion = 3;

/// Corruption guard: a structurally valid record never exceeds this
/// payload size, so a garbage length field cannot drive a huge allocation.
inline constexpr std::uint32_t kMaxRecordPayload = 1u << 30;

enum class RecordType : std::uint32_t {
  kRunHeader = 1,
  kEpochCut = 2,
  kRoundMark = 3,
  kTrailer = 4,
};

/// One decoded-from-disk record. `end_offset` is the file offset just
/// past this record — the truncation point tests and resume use to treat
/// any prefix of a WAL as a crash image.
struct WalRecord {
  RecordType type = RecordType::kRunHeader;
  std::string payload;
  std::uint64_t end_offset = 0;
};

}  // namespace staleflow::recovery
