#include "recovery/wal_reader.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/binio.h"
#include "util/fnv.h"

namespace staleflow::recovery {

WalScan scan_wal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("scan_wal: cannot open '" + path + "'");
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw std::runtime_error("scan_wal: read failed on '" + path + "'");
  }
  if (contents.size() < sizeof(kWalMagic) ||
      std::memcmp(contents.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    throw std::runtime_error("scan_wal: '" + path +
                             "' is not a WAL (bad magic)");
  }

  WalScan scan;
  scan.valid_bytes = sizeof(kWalMagic);
  std::size_t offset = sizeof(kWalMagic);
  // Frame overhead around each payload: u32 length + u32 type + u64 sum.
  constexpr std::size_t kFrameBytes = 4 + 4 + 8;
  while (offset < contents.size()) {
    if (contents.size() - offset < kFrameBytes) {
      scan.truncated = true;
      scan.note = "torn tail: short record frame";
      break;
    }
    binio::Reader head(
        std::string_view(contents).substr(offset, 8));
    const std::uint32_t length = head.u32();
    const std::uint32_t type_word = head.u32();
    if (length > kMaxRecordPayload) {
      scan.truncated = true;
      scan.note = "corrupt record: impossible payload length";
      break;
    }
    if (contents.size() - offset - kFrameBytes < length) {
      scan.truncated = true;
      scan.note = "torn tail: payload shorter than its length field";
      break;
    }
    const std::string_view payload =
        std::string_view(contents).substr(offset + 8, length);
    std::uint64_t checksum = fnv::kOffsetBasis;
    fnv::hash_bytes(checksum, contents.data() + offset + 4, 4);
    fnv::hash_bytes(checksum, payload.data(), payload.size());
    binio::Reader foot(
        std::string_view(contents).substr(offset + 8 + length, 8));
    if (foot.u64() != checksum) {
      scan.truncated = true;
      scan.note = "corrupt record: checksum mismatch";
      break;
    }
    if (type_word < static_cast<std::uint32_t>(RecordType::kRunHeader) ||
        type_word > static_cast<std::uint32_t>(RecordType::kTrailer)) {
      scan.truncated = true;
      scan.note = "corrupt record: unknown record type";
      break;
    }
    offset += kFrameBytes + length;
    WalRecord record;
    record.type = static_cast<RecordType>(type_word);
    record.payload = std::string(payload);
    record.end_offset = offset;
    scan.records.push_back(std::move(record));
    scan.valid_bytes = offset;
  }
  if (!scan.truncated && offset != contents.size()) {
    scan.truncated = true;
    scan.note = "torn tail: trailing bytes after last record";
  }
  return scan;
}

}  // namespace staleflow::recovery
