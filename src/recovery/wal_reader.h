// Scan side of the write-ahead epoch log.
//
// scan_wal() reads a WAL file front to back, verifying each record's
// length and checksum, and returns every record that checks out. The
// scan stops — without throwing — at the first record that doesn't: a
// short tail (torn final write), an oversized or impossible length
// field, or a checksum mismatch (flipped bit). `valid_bytes` marks the
// end of the trusted prefix; resume truncates the file there before
// appending. Nothing past the first bad record is ever surfaced, even
// if later bytes happen to decode: a gap breaks the prefix property the
// recovery contract depends on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "recovery/wal_format.h"

namespace staleflow::recovery {

struct WalScan {
  std::vector<WalRecord> records;
  /// File offset just past the last verified record (or past the magic
  /// when no record verified). The resume truncation point.
  std::uint64_t valid_bytes = 0;
  /// True when bytes existed past valid_bytes that failed verification.
  bool truncated = false;
  /// Human-readable reason the scan stopped early; empty when the file
  /// ended exactly at a record boundary.
  std::string note;
};

/// Scans `path`. Throws std::runtime_error when the file cannot be
/// opened or does not start with the WAL magic — those are not torn
/// tails, they mean the path is not a WAL at all.
WalScan scan_wal(const std::string& path);

}  // namespace staleflow::recovery
