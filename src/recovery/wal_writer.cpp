#include "recovery/wal_writer.h"

#include <filesystem>
#include <system_error>

#include "trace/metrics.h"
#include "trace/recorder.h"
#include "util/binio.h"
#include "util/fnv.h"

namespace staleflow::recovery {

WalWriter WalWriter::create(const std::string& path) {
  WalWriter writer;
  writer.path_ = path;
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.out_) {
    throw std::runtime_error("WalWriter: cannot open '" + path +
                             "' for writing");
  }
  writer.out_.write(kWalMagic, sizeof(kWalMagic));
  writer.out_.flush();
  if (!writer.out_) {
    throw std::runtime_error("WalWriter: write failed on '" + path + "'");
  }
  return writer;
}

WalWriter WalWriter::append_to(const std::string& path,
                               std::uint64_t valid_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) {
    throw std::runtime_error("WalWriter: cannot truncate '" + path +
                             "' to its valid prefix: " + ec.message());
  }
  WalWriter writer;
  writer.path_ = path;
  writer.out_.open(path, std::ios::binary | std::ios::app);
  if (!writer.out_) {
    throw std::runtime_error("WalWriter: cannot open '" + path +
                             "' for appending");
  }
  return writer;
}

void WalWriter::append(RecordType type, std::string_view payload) {
  if (payload.size() > kMaxRecordPayload) {
    throw std::runtime_error("WalWriter: record payload too large");
  }
  // Frame bytes = u32 length + u32 type + payload + u64 checksum.
  const std::uint64_t frame_bytes = 4 + 4 + payload.size() + 8;
  static trace::Counter& records_counter =
      trace::MetricsRegistry::global().counter("wal.records");
  static trace::Counter& bytes_counter =
      trace::MetricsRegistry::global().counter("wal.bytes");
  records_counter.inc();
  bytes_counter.add(frame_bytes);
  trace::Span span(trace::EventKind::kWalAppend, /*tenant=*/0, /*epoch=*/0,
                   /*arg=*/static_cast<std::uint64_t>(type));
  span.value(frame_bytes);
  binio::Writer header;
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(static_cast<std::uint32_t>(type));

  // The checksum covers the type word and the payload — the same bytes
  // the reader verifies before trusting a record.
  std::uint64_t checksum = fnv::kOffsetBasis;
  fnv::hash_bytes(checksum, header.data().data() + 4, 4);
  fnv::hash_bytes(checksum, payload.data(), payload.size());

  binio::Writer footer;
  footer.u64(checksum);

  out_.write(header.data().data(),
             static_cast<std::streamsize>(header.data().size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out_.write(footer.data().data(),
             static_cast<std::streamsize>(footer.data().size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("WalWriter: write failed on '" + path_ + "'");
  }
}

}  // namespace staleflow::recovery
