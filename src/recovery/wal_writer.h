// Append side of the write-ahead epoch log.
//
// A WalWriter owns one open WAL file and appends checksummed records
// (wal_format.h). Every append flushes through the stdio/iostream buffer
// to the kernel, so a `kill -9` — the crash model the recovery tier is
// pinned against — loses at most the record being written, never a
// record that append() returned for. (Surviving power loss would need an
// fsync per cut; that is a policy knob for a later PR, not a format
// change.)
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

#include "recovery/wal_format.h"

namespace staleflow::recovery {

class WalWriter {
 public:
  /// Starts a fresh WAL at `path`, truncating any existing file, and
  /// writes the file magic. Throws std::runtime_error when the path
  /// cannot be opened for writing.
  static WalWriter create(const std::string& path);

  /// Reopens an existing WAL for appending after recovery: the file is
  /// first truncated to `valid_bytes` (the scanner's last-committed
  /// offset), amputating any torn or uncommitted tail, then opened at the
  /// end. Throws std::runtime_error when the file cannot be resized or
  /// opened.
  static WalWriter append_to(const std::string& path,
                             std::uint64_t valid_bytes);

  /// Appends one record (length + type + payload + FNV checksum) and
  /// flushes it to the kernel. Throws std::runtime_error on an oversized
  /// payload or a write failure.
  void append(RecordType type, std::string_view payload);

  const std::string& path() const noexcept { return path_; }

 private:
  WalWriter() = default;

  std::ofstream out_;
  std::string path_;
};

}  // namespace staleflow::recovery
