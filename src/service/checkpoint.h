// Checkpoint state of the serving engines — the cut points the recovery
// WAL persists.
//
// The determinism contract (route_server.h) makes crash recovery cheap:
// every epoch's outcome is a pure function of the configuration and the
// state at the previous phase boundary, so a checkpoint needs only that
// boundary state — the master RNG cursor, the folded flow, each client's
// current path, and the accumulated telemetry — never a log of individual
// mutations. An EngineCheckpoint is exactly that cut for one engine; a
// RoundCheckpoint adds the multi-tenant scheduler's credit state so a
// registry resumes at a scheduler-round boundary with every tenant's
// interleaving intact.
//
// These are plain service-layer value types: src/recovery/ serializes
// them into WAL records, the engines produce and consume them, and
// neither layer depends on the other's internals.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "service/telemetry.h"
#include "util/log_histogram.h"

namespace staleflow {

/// One engine's dynamics state at an epoch boundary: everything
/// EpochEngine needs to continue bit-identically after `summary.epoch`.
struct EngineCheckpoint {
  /// The finished epoch this cut closes (summary.epoch == e means epochs
  /// 0..e are done and the next served epoch is e + 1).
  EpochSummary summary;

  /// Master RNG cursor AFTER epoch e's splits — the stream every later
  /// epoch's workload and sub-batch streams derive from.
  std::array<std::uint64_t, 4> rng_state{};

  /// The folded master flow at the boundary (by path) — the exact flow
  /// the epoch-(e+1) board is posted from.
  std::vector<double> flow;

  /// Each client's current local path index (by client id).
  std::vector<std::uint32_t> client_paths;

  /// Epoch e's merged route-latency histogram; replaying cuts 0..e in
  /// order and merging these rebuilds the run distribution exactly.
  LogHistogram route_hist;
};

/// Called after every finished epoch with that epoch's cut (single-server
/// WAL hook). Capture cost — copying flow, client paths and the epoch
/// histogram — is paid only when a observer is installed.
using CutObserver = std::function<void(const EngineCheckpoint&)>;

/// One finished scheduler round of a TenantRegistry: the post-round
/// credit state plus the cut of every tenant that served an epoch this
/// round (registration order). Rounds where credits merely accrued carry
/// no cuts but still checkpoint the credit change.
struct RoundCheckpoint {
  std::size_t rounds = 0;                  // rounds executed so far
  std::vector<std::size_t> credits;        // per tenant, post-round
  std::vector<std::pair<std::size_t, EngineCheckpoint>> cuts;
};

/// Called after every scheduler round (multi-tenant WAL hook).
using RoundCutObserver = std::function<void(const RoundCheckpoint&)>;

/// Restored registry state handed to TenantRegistry::run: per-tenant cut
/// prefixes (epochs 0..e in order; empty = that tenant starts fresh) plus
/// the scheduler's round counter and credit vector at the matching round
/// boundary.
struct RegistryResume {
  std::size_t rounds = 0;
  std::vector<std::size_t> credits;                     // per tenant
  std::vector<std::span<const EngineCheckpoint>> cuts;  // per tenant
};

}  // namespace staleflow
