#include "service/epoch_engine.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/policy.h"
#include "equilibrium/metrics.h"
#include "exec/executor.h"
#include "faults/fault_plan.h"
#include "service/workload.h"
#include "trace/metrics.h"
#include "trace/recorder.h"
#include "util/stopwatch.h"

namespace staleflow {

EpochEngine::EpochEngine(const Instance& instance, const Policy& policy,
                         const WorkloadGenerator& workload,
                         SnapshotStore& store)
    : instance_(&instance),
      policy_(&policy),
      workload_(&workload),
      store_(&store) {}

void EpochEngine::begin(const FlowVector& initial,
                        const RouteServerOptions& options) {
  if (clients_ != nullptr) {
    throw std::logic_error("EpochEngine::begin: already begun");
  }
  if (!(options.update_period > 0.0)) {
    throw std::invalid_argument(
        "RouteServer::run: update period must be > 0");
  }
  if (options.epochs == 0) {
    throw std::invalid_argument("RouteServer::run: need at least one epoch");
  }
  if (options.shards == 0 || options.shards > options.num_clients) {
    throw std::invalid_argument(
        "RouteServer::run: shards must be in [1, num_clients]");
  }
  if (options.num_clients >
      std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "RouteServer::run: num_clients must fit RouteQuery::client "
        "(uint32)");
  }
  if (!options.sub_batch_auto && options.sub_batch_queries == 0) {
    throw std::invalid_argument(
        "RouteServer::run: sub_batch_queries must be >= 1");
  }
  if (!is_feasible(*instance_, initial.values(), 1e-7)) {
    throw std::invalid_argument("RouteServer::run: infeasible start");
  }
  if (options.record_latency && options.latency_sample_every == 0) {
    throw std::invalid_argument(
        "RouteServer::run: latency_sample_every must be >= 1");
  }

  options_ = options;
  // Pipelining is digest-neutral only when arrivals ignore LoadFeedback:
  // a feedback workload (closed-loop-lat) falls back to the strict
  // schedule, its arrivals need the previous epoch's summary. The
  // fallback is announced — once through the host's notice sink and as a
  // metrics counter — so a traced run records that the knob was ignored.
  // Library code never writes to stderr itself: a host without a sink
  // (sweep cells, tests) gets the counter only.
  pipelined_ = options.pipeline && !workload_->uses_feedback();
  if (options.pipeline && !pipelined_) {
    static trace::Counter& fallback_counter =
        trace::MetricsRegistry::global().counter("engine.pipeline_fallbacks");
    fallback_counter.inc();
    if (options_.notice) {
      options_.notice("note: pipeline disabled for feedback workload '" +
                      workload_->name() +
                      "' (arrivals need the previous epoch's summary); "
                      "serving the strict schedule");
    }
  }
  master_ = Rng(options.seed);
  clients_ = std::make_unique<Population>(*instance_, options.num_clients,
                                          initial.values());

  // Master flow: starts at the client fleet's empirical flow, advanced
  // only by ledger folds at phase boundaries.
  flow_.assign(clients_->empirical_flow().begin(),
               clients_->empirical_flow().end());
  ledger_ =
      std::make_unique<FlowLedger>(instance_->path_count(), options.shards);
  store_->publish(std::make_shared<BoardSnapshot>(*instance_, *policy_,
                                                  /*epoch=*/0, /*now=*/0.0,
                                                  flow_));

  // Shard s owns clients {s, s + shards, s + 2*shards, ...}.
  shard_clients_.resize(options.shards);
  for (std::size_t s = 0; s < options.shards; ++s) {
    shard_clients_[s] = options.num_clients / options.shards +
                        (s < options.num_clients % options.shards ? 1 : 0);
  }
  epochs_.reserve(options.epochs);
}

void EpochEngine::serve_sub_batch(EpochStage& stage, std::size_t b) {
  detail::SubBatchContext& sub = stage.ctx[b];
  const std::size_t s = sub.shard;
  const std::size_t shards = options_.shards;
  // Span over the whole batch, recorded from the worker thread that runs
  // it. arg packs (lane, shard, index): bits 48+ carry the executing
  // thread's encoded lane (0 = pre-lane trace, 1 = a non-worker thread,
  // k+2 = pool lane k — see ThreadPool::current_lane_code), bits 32-47
  // the shard, low bits the sub-batch index. A drop-telemetry fault
  // window silences the span for this epoch.
  std::optional<trace::Span> trace_span;
  if (!stage.trace_drop) {
    trace_span.emplace(
        trace::EventKind::kSubBatchSpan, trace_tenant_, stage.trace_epoch,
        (static_cast<std::uint64_t>(ThreadPool::current_lane_code()) << 48) |
            (static_cast<std::uint64_t>(s & 0xFFFF) << 32) |
            static_cast<std::uint64_t>(b & 0xFFFFFFFF));
    trace_span->value(sub.arrivals);
  }
  // Injected shard slowdown: burn wall clock on this worker before
  // serving. Wall-clock only — the dynamics below never see it.
  if (options_.faults != nullptr) {
    const std::uint64_t slow_us =
        options_.faults->slowdown_us(trace_tenant_, s, stage.trace_epoch);
    if (slow_us != 0) {
      static trace::Counter& slowdowns_counter =
          trace::MetricsRegistry::global().counter("faults.slowdowns");
      slowdowns_counter.inc();
      faults::busy_wait_us(slow_us);
    }
  }
  // The RCU read path: pin this epoch's board for the whole batch.
  const SnapshotPtr snap = store_->acquire();
  const BulletinBoard& board = snap->board();
  for (std::size_t q = 0; q < sub.arrivals; ++q) {
    const bool timed = options_.record_latency &&
                       q % options_.latency_sample_every == 0;
    const WallClock::time_point begin =
        timed ? WallClock::now() : WallClock::time_point{};

    const RouteQuery query{static_cast<std::uint32_t>(
        s + shards * (sub.client_begin + sub.rng.below(sub.client_count)))};
    const CommodityId c = clients_->commodity_of(query.client);
    const Commodity& commodity = instance_->commodity(c);

    // Step (1): sample a candidate from the precomputed CDF.
    const std::size_t sampled = sample_from_cdf(snap->cdf(c), sub.rng);

    // Step (2): migrate with probability mu(l_P, l_Q).
    const std::size_t current = clients_->local_path(query.client);
    std::size_t served_path = current;
    bool migrated = false;
    if (sampled != current) {
      const double l_current =
          board.path_latency()[commodity.paths[current].index()];
      const double l_sampled =
          board.path_latency()[commodity.paths[sampled].index()];
      const double mu =
          policy_->migration().probability(l_current, l_sampled);
      if (sub.rng.bernoulli(mu)) {
        migrated = true;
        served_path = sampled;
        const double moved = clients_->flow_of(query.client);
        ledger_->add(b, commodity.paths[current].index(), -moved);
        ledger_->add(b, commodity.paths[sampled].index(), +moved);
        clients_->reassign(query.client, sampled);
      }
    }
    ledger_->count_query(b, migrated);

    // The latency this query's client experiences on the board it was
    // routed against — a deterministic board value, not wall clock.
    sub.route_hist.record(
        board.path_latency()[commodity.paths[served_path].index()]);

    if (timed) {
      sub.wall_hist.record(1e6 * seconds_between(begin, WallClock::now()));
    }
  }
}

void EpochEngine::add_epoch(TaskGraph& graph) {
  if (clients_ == nullptr) {
    throw std::logic_error("EpochEngine::add_epoch: begin() first");
  }
  if (epoch_in_flight_) {
    throw std::logic_error(
        "EpochEngine::add_epoch: previous epoch not finished");
  }
  if (done()) {
    throw std::logic_error("EpochEngine::add_epoch: all epochs served");
  }
  epoch_in_flight_ = true;

  if (!pipelined_) {
    // Strict schedule: one epoch per graph, summary in the same graph
    // (after fold, overlapping the snapshot build), publish host-side in
    // finish_epoch. This is the reference node order the pipelined
    // schedule must reproduce value-for-value.
    const std::uint64_t e = epochs_done();
    EpochStage& stage = stages_[e % 2];
    const std::size_t fold =
        plan_epoch(graph, stage, e, kNone, /*publish_in_graph=*/false);
    add_summary_node(graph, stage, {fold});
    planned_ = e + 1;
    pending_finish_ = e;
    return;
  }

  // Pipelined schedule: the previous epoch's summary runs as a ROOT of
  // this graph, in parallel with this epoch's serve nodes; fold depends
  // on it (the summary reads the pre-fold master flow for its Wardrop
  // gap) and the publish moves in-graph after the CDF nodes. The two
  // in-flight epochs stage into alternating slots, so they share no
  // state. The final add_epoch (planned_ == epochs_total()) drains the
  // last deferred summary on its own.
  std::size_t summary_node = kNone;
  if (planned_ > epochs_done()) {
    EpochStage& prev = stages_[(planned_ - 1) % 2];
    // The overlap-spanning cut point: right here — host-side, no graph in
    // flight — epoch planned_-1 is fully served and folded and epoch
    // planned_'s mutations have not been planned, so the engine state IS
    // that epoch's boundary state. It is transient (the plan below splits
    // the master RNG), so snapshot it for the checkpoint() that becomes
    // answerable once the deferred summary drains.
    if (capture_cuts_) capture_pending_cut(prev);
    summary_node = add_summary_node(graph, prev, {});
    pending_finish_ = planned_ - 1;
  } else {
    pending_finish_ = kNone;
  }
  if (planned_ < epochs_total()) {
    const std::uint64_t e = planned_;
    plan_epoch(graph, stages_[e % 2], e, summary_node,
               /*publish_in_graph=*/true);
    planned_ = e + 1;
  }
}

std::size_t EpochEngine::plan_epoch(TaskGraph& graph, EpochStage& stage,
                                    std::uint64_t e,
                                    std::size_t extra_fold_dep,
                                    bool publish_in_graph) {
  const double T = options_.update_period;
  const std::size_t shards = options_.shards;
  stage.trace_epoch = e;
  if (trace::active()) stage.trace_begin_ns = trace::now_ns();

  // Derive this epoch's streams in canonical order: one for the
  // workload, then one per sub-batch in (shard, sub-batch) order.
  // Depends only on (seed, e) and the batch sizes — never on threads.
  Rng epoch_rng = master_.split();
  Rng arrivals_rng = epoch_rng.split();
  LoadFeedback feedback;
  if (!epochs_.empty()) {
    feedback.has_previous = true;
    feedback.route_p50 = epochs_.back().route_p50;
  }
  std::size_t total = workload_->arrivals(
      e, static_cast<double>(e) * T, T, feedback, arrivals_rng);

  // Fault windows for this (tenant, epoch). Brownout sheds arrivals
  // BEFORE the sub-batch plan is derived, so the shed run is simply a
  // different (still fully deterministic) load level: floor(total * shed)
  // queries are turned away at admission. drop-telemetry only sets the
  // emission gate; slowdowns are applied per sub-batch task.
  const faults::FaultSchedule* fault_plan = options_.faults;
  stage.trace_drop = fault_plan != nullptr &&
                     fault_plan->telemetry_dropped(trace_tenant_, e);
  std::size_t shed_queries = 0;
  if (fault_plan != nullptr) {
    const double shed = fault_plan->brownout_shed(trace_tenant_, e);
    if (shed > 0.0) {
      shed_queries = std::min(
          total, static_cast<std::size_t>(static_cast<double>(total) * shed));
      total -= shed_queries;
      static trace::Counter& shed_counter =
          trace::MetricsRegistry::global().counter("faults.shed_queries");
      shed_counter.add(shed_queries);
    }
    if (trace::active()) {
      // One kFaultSpan marker per engine-level fault active this epoch —
      // emitted even inside a drop-telemetry window, so the offline
      // analyzer can attribute the dark window (and any latency shift)
      // to its cause.
      for (const faults::ActiveFault& fault : fault_plan->faults()) {
        const faults::FaultKind kind = fault.clause.kind;
        if (kind != faults::FaultKind::kShardSlowdown &&
            kind != faults::FaultKind::kDropTelemetry &&
            kind != faults::FaultKind::kBrownout)
          continue;
        if (fault.clause.tenant != trace_tenant_ || !fault.covers(e)) continue;
        const std::uint64_t magnitude =
            kind == faults::FaultKind::kShardSlowdown ? fault.clause.slow_us
            : kind == faults::FaultKind::kBrownout    ? shed_queries
                                                      : 0;
        trace::instant(trace::EventKind::kFaultSpan, trace_tenant_, e,
                       static_cast<std::uint64_t>(kind), magnitude);
      }
    }
  }

  // The split threshold: fixed, or (auto mode) derived from this epoch's
  // total arrivals — either way a function of the configuration and the
  // deterministic arrival sequence only.
  const std::size_t target = options_.sub_batch_auto
                                 ? auto_sub_batch_target(total, shards)
                                 : options_.sub_batch_queries;

  // The deterministic sub-batch plan: a shard whose batch exceeds the
  // target splits into balanced sub-batches over disjoint client
  // slices. One sub-batch per shard minimum keeps the stream layout
  // aligned with the unsplit (PR-2/PR-3) dynamics when nothing splits.
  std::size_t planned = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t batch = total / shards + (s < total % shards ? 1 : 0);
    const std::size_t pieces =
        sub_batch_count(batch, target, shard_clients_[s]);
    if (stage.ctx.size() < planned + pieces) {
      stage.ctx.resize(planned + pieces);
    }
    for (std::size_t piece = 0; piece < pieces; ++piece) {
      detail::SubBatchContext& sub = stage.ctx[planned + piece];
      const SubRange slice = sub_range(shard_clients_[s], pieces, piece);
      sub.shard = s;
      sub.client_begin = slice.begin;
      sub.client_count = slice.count;
      sub.arrivals = sub_range(batch, pieces, piece).count;
      sub.rng = epoch_rng.split();
      sub.route_hist.reset();
      sub.wall_hist.reset();
    }
    planned += pieces;
  }
  stage.batches = planned;
  ledger_->ensure_slots(stage.batches);

  // The epoch task graph: serve -> fold -> next snapshot build. The
  // snapshot's board post and per-commodity CDF nodes overlap the summary
  // tail; everything after fold reads the folded flow, nothing writes
  // shared state concurrently — and nothing outside this engine at all,
  // so epochs of distinct engines coexist in one graph. Serve nodes carry
  // their shard id as the affinity key: every sub-batch of one shard runs
  // on the same worker lane (cache locality), which never changes what it
  // computes.
  stage.served = store_->acquire();
  stage.totals = FlowLedger::Totals{};
  stage.next.reset();
  stage.summary = EpochSummary{};
  EpochStage* slot = &stage;

  std::vector<TaskGraph::NodeId> serve_nodes;
  serve_nodes.reserve(stage.batches);
  for (std::size_t b = 0; b < stage.batches; ++b) {
    serve_nodes.push_back(
        graph.add([this, slot, b] { serve_sub_batch(*slot, b); }, {},
                  /*affinity=*/stage.ctx[b].shard));
  }
  std::vector<TaskGraph::NodeId> fold_deps = std::move(serve_nodes);
  if (extra_fold_dep != kNone) fold_deps.push_back(extra_fold_dep);
  const TaskGraph::NodeId fold = graph.add(
      [this, slot] {
        slot->totals = ledger_->fold_into(flow_, slot->batches);
      },
      std::span<const TaskGraph::NodeId>(fold_deps));
  const TaskGraph::NodeId post = graph.add(
      [this, slot, e, T] {
        slot->next = std::make_shared<BoardSnapshot>(
            BoardSnapshot::DeferCdf{}, *instance_, *policy_, e + 1,
            static_cast<double>(e + 1) * T, flow_);
      },
      {fold});
  std::vector<TaskGraph::NodeId> cdf_nodes;
  cdf_nodes.reserve(instance_->commodity_count());
  for (std::size_t c = 0; c < instance_->commodity_count(); ++c) {
    cdf_nodes.push_back(graph.add(
        [this, slot, c] { slot->next->build_cdf(CommodityId{c}); }, {post}));
  }
  if (publish_in_graph) {
    // The pipelined phase boundary: the board swap happens inside the
    // graph, as soon as the snapshot is complete — the NEXT epoch's graph
    // then serves against the fresh board while this epoch's summary is
    // still pending.
    if (cdf_nodes.empty()) cdf_nodes.push_back(post);
    graph.add(
        [this, slot] {
          store_->publish(std::move(slot->next));
          if (trace::active() && !slot->trace_drop) {
            trace::instant(trace::EventKind::kSnapshotPublish, trace_tenant_,
                           slot->trace_epoch + 1, /*arg=*/0, /*value=*/0);
          }
        },
        std::span<const TaskGraph::NodeId>(cdf_nodes));
  }
  return fold;
}

std::size_t EpochEngine::add_summary_node(
    TaskGraph& graph, EpochStage& stage,
    std::initializer_list<std::size_t> deps) {
  EpochStage* slot = &stage;
  return graph.add(
      [this, slot] {
        const std::uint64_t e = slot->trace_epoch;
        const double T = options_.update_period;
        slot->summary.epoch = e;
        slot->summary.start_time = static_cast<double>(e) * T;
        slot->summary.end_time = static_cast<double>(e + 1) * T;
        slot->summary.queries = slot->totals.queries;
        slot->summary.migrations = slot->totals.migrations;
        slot->summary.migration_rate =
            slot->totals.queries > 0
                ? static_cast<double>(slot->totals.migrations) /
                      static_cast<double>(slot->totals.queries)
                : 0.0;
        slot->summary.wardrop_gap = wardrop_gap(*instance_, flow_);
        double board_latency = 0.0;
        double board_volume = 0.0;
        for (std::size_t p = 0; p < instance_->path_count(); ++p) {
          board_latency += slot->served->board().path_flow()[p] *
                           slot->served->board().path_latency()[p];
          board_volume += slot->served->board().path_flow()[p];
        }
        slot->summary.board_latency =
            board_volume > 0.0 ? board_latency / board_volume : 0.0;

        // Merge per-sub-batch histograms in plan order (the canonical
        // order the determinism contract fixes) into this epoch's
        // distribution.
        slot->epoch_route.reset();
        for (std::size_t b = 0; b < slot->batches; ++b) {
          slot->epoch_route.merge(slot->ctx[b].route_hist);
        }
        if (!slot->epoch_route.empty()) {
          slot->summary.route_p50 = slot->epoch_route.quantile(0.5);
          slot->summary.route_p99 = slot->epoch_route.quantile(0.99);
          slot->summary.route_p999 = slot->epoch_route.quantile(0.999);
        }
        if (options_.record_latency) {
          slot->epoch_wall.reset();
          for (std::size_t b = 0; b < slot->batches; ++b) {
            slot->epoch_wall.merge(slot->ctx[b].wall_hist);
          }
          if (!slot->epoch_wall.empty()) {
            slot->summary.p50_us = slot->epoch_wall.quantile(0.5);
            slot->summary.p99_us = slot->epoch_wall.quantile(0.99);
            slot->summary.p999_us = slot->epoch_wall.quantile(0.999);
          }
        }
      },
      std::span<const std::size_t>(deps.begin(), deps.size()));
}

void EpochEngine::finish_epoch(double epoch_seconds,
                               const EpochObserver& observer) {
  if (!epoch_in_flight_) {
    throw std::logic_error("EpochEngine::finish_epoch: no epoch in flight");
  }
  epoch_in_flight_ = false;
  if (pending_finish_ == kNone) {
    // First pipelined graph: epoch 0 served but its summary is deferred
    // into the next graph — nothing to record yet.
    return;
  }
  EpochStage& stage = stages_[pending_finish_ % 2];
  pending_finish_ = kNone;

  // Phase boundary: the fold tail (summary) and the snapshot build
  // already ran inside the graph; the strict schedule publishes the
  // folded flow's board here, a pipelined one published in-graph.
  run_route_.merge(stage.epoch_route);
  if (options_.record_latency) {
    run_wall_us_.merge(stage.epoch_wall);
    stage.summary.queries_per_second =
        epoch_seconds > 0.0
            ? static_cast<double>(stage.totals.queries) / epoch_seconds
            : 0.0;
  }

  total_queries_ += stage.totals.queries;
  total_migrations_ += stage.totals.migrations;
  epochs_.push_back(stage.summary);
  if (observer) observer(stage.summary);

  if (!pipelined_) store_->publish(std::move(stage.next));
  stage.served.reset();

  static trace::Counter& epochs_counter =
      trace::MetricsRegistry::global().counter("engine.epochs");
  static trace::Counter& queries_counter =
      trace::MetricsRegistry::global().counter("engine.queries");
  static trace::Counter& migrations_counter =
      trace::MetricsRegistry::global().counter("engine.migrations");
  epochs_counter.inc();
  queries_counter.add(stage.totals.queries);
  migrations_counter.add(stage.totals.migrations);

  if (trace::active() && !stage.trace_drop) {
    if (!pipelined_) {
      // The board just swapped: epoch e+1 is now live for readers
      // (pipelined runs emit this from the in-graph publish node).
      trace::instant(trace::EventKind::kSnapshotPublish, trace_tenant_,
                     stage.trace_epoch + 1, /*arg=*/0, /*value=*/0);
    }
    trace::TraceEvent epoch_event;
    epoch_event.kind = trace::EventKind::kEpochSpan;
    epoch_event.tenant = trace_tenant_;
    epoch_event.epoch = stage.trace_epoch;
    epoch_event.arg = stage.batches;
    epoch_event.begin_ns = stage.trace_begin_ns;
    epoch_event.end_ns = trace::now_ns();
    epoch_event.value = stage.totals.queries;
    trace::emit(epoch_event);
  }
}

void EpochEngine::capture_pending_cut(EpochStage& stage) {
  stage.cut.rng_state = master_.state();
  stage.cut.flow = flow_;
  stage.cut.client_paths.clear();
  stage.cut.client_paths.reserve(clients_->size());
  for (std::size_t c = 0; c < clients_->size(); ++c) {
    stage.cut.client_paths.push_back(
        static_cast<std::uint32_t>(clients_->local_path(c)));
  }
  stage.cut.valid = true;
}

EngineCheckpoint EpochEngine::checkpoint() const {
  if (epoch_in_flight_ || epochs_.empty()) {
    throw std::logic_error(
        "EpochEngine::checkpoint: need a finished epoch and none in "
        "flight");
  }
  // The just-finished epoch's stage, still holding its parity slot.
  const EpochStage& stage = stages_[(epochs_.size() - 1) % 2];
  EngineCheckpoint cut;
  cut.summary = epochs_.back();
  if (pipelined_) {
    // The live engine state runs one epoch ahead of the last summarized
    // epoch; the boundary state this cut needs was captured by add_epoch
    // at the overlap boundary, before the next epoch was planned.
    if (!stage.cut.valid) {
      throw std::logic_error(
          "EpochEngine::checkpoint: pipelined cuts need "
          "set_cut_capture(true) before the epoch was planned");
    }
    cut.rng_state = stage.cut.rng_state;
    cut.flow = stage.cut.flow;
    cut.client_paths = stage.cut.client_paths;
  } else {
    cut.rng_state = master_.state();
    cut.flow = flow_;
    cut.client_paths.reserve(clients_->size());
    for (std::size_t c = 0; c < clients_->size(); ++c) {
      cut.client_paths.push_back(
          static_cast<std::uint32_t>(clients_->local_path(c)));
    }
  }
  cut.route_hist = stage.epoch_route;
  return cut;
}

void EpochEngine::restore(std::span<const EngineCheckpoint> cuts) {
  if (clients_ == nullptr) {
    throw std::logic_error("EpochEngine::restore: begin() first");
  }
  if (!epochs_.empty() || epoch_in_flight_) {
    throw std::logic_error(
        "EpochEngine::restore: engine has already served epochs");
  }
  if (cuts.empty()) return;
  if (cuts.size() > options_.epochs) {
    throw std::invalid_argument(
        "EpochEngine::restore: more cuts than the epoch budget");
  }
  const EngineCheckpoint& last = cuts.back();
  if (last.flow.size() != instance_->path_count()) {
    throw std::invalid_argument(
        "EpochEngine::restore: flow does not match the instance's path "
        "count");
  }
  if (last.client_paths.size() != clients_->size()) {
    throw std::invalid_argument(
        "EpochEngine::restore: client paths do not match num_clients");
  }

  for (std::size_t i = 0; i < cuts.size(); ++i) {
    const EngineCheckpoint& cut = cuts[i];
    if (cut.summary.epoch != i) {
      throw std::invalid_argument(
          "EpochEngine::restore: cuts are not the contiguous epochs "
          "0..n-1");
    }
    epochs_.push_back(cut.summary);
    total_queries_ += cut.summary.queries;
    total_migrations_ += cut.summary.migrations;
    run_route_.merge(cut.route_hist);
  }

  flow_ = last.flow;
  master_ = Rng::from_state(last.rng_state);
  for (std::size_t c = 0; c < clients_->size(); ++c) {
    const std::size_t path = last.client_paths[c];
    const Commodity& commodity =
        instance_->commodity(clients_->commodity_of(c));
    if (path >= commodity.paths.size()) {
      throw std::invalid_argument(
          "EpochEngine::restore: client path out of its commodity's "
          "range");
    }
    clients_->reassign(c, path);
  }

  // The plan frontier resumes at the restored epoch count — there is no
  // deferred summary to drain (every restored epoch is fully recorded).
  planned_ = epochs_.size();

  // Re-publish the board the checkpointed process was serving against:
  // the epoch-n post of the restored flow — the same bits finish_epoch
  // published, because the flow doubles round-tripped exactly.
  const auto n = static_cast<std::uint64_t>(cuts.size());
  store_->publish(std::make_shared<BoardSnapshot>(
      *instance_, *policy_, n,
      static_cast<double>(n) * options_.update_period, flow_));
}

RouteServerResult EpochEngine::finish(double wall_seconds) {
  if (clients_ == nullptr || epoch_in_flight_ || epochs_.empty()) {
    throw std::logic_error(
        "EpochEngine::finish: run at least one epoch to completion first");
  }
  RouteServerResult result{FlowVector(*instance_, std::move(flow_))};
  result.epochs = std::move(epochs_);
  result.total_queries = total_queries_;
  result.total_migrations = total_migrations_;
  result.final_gap = result.epochs.back().wardrop_gap;
  result.route_latency = run_route_;
  if (options_.record_latency) {
    result.wall_latency_us = run_wall_us_;
    result.wall_seconds = wall_seconds;
    result.queries_per_second =
        result.wall_seconds > 0.0
            ? static_cast<double>(result.total_queries) / result.wall_seconds
            : 0.0;
    if (!result.wall_latency_us.empty()) {
      result.p50_us = result.wall_latency_us.quantile(0.5);
      result.p99_us = result.wall_latency_us.quantile(0.99);
      result.p999_us = result.wall_latency_us.quantile(0.999);
    }
  }
  return result;
}

}  // namespace staleflow
