// The per-epoch serving pipeline of one route-service instance, factored
// out of RouteServer so a host can drive epochs one at a time.
//
// An EpochEngine owns everything one serving instance mutates — its
// client Population, master flow, sharded FlowLedger, sub-batch contexts,
// RNG streams and accumulating result — and borrows the SnapshotStore it
// publishes to. The host drives the epoch cycle explicitly:
//
//   EpochEngine engine(instance, policy, workload, store);
//   engine.begin(initial, options);
//   while (!engine.done()) {
//     TaskGraph graph;
//     engine.add_epoch(graph);        // plan + append this epoch's nodes
//     executor.run(graph);            // serve -> fold -> {snapshot, summary}
//     engine.finish_epoch(seconds, observer);  // merge, record, publish
//   }
//   RouteServerResult result = engine.finish(wall_seconds);
//
// RouteServer::run is exactly this loop over one engine. TenantRegistry
// runs MANY engines by appending several tenants' epochs to ONE combined
// graph per scheduler round: the engines share no mutable state (each
// node touches only its own engine), so co-scheduled tenants execute on
// one shared Executor while every tenant's dynamics stay byte-identical
// to a solo run — the multi-tenant isolation contract.
//
// Determinism: add_epoch derives this epoch's RNG streams and sub-batch
// plan host-side, in canonical order, before any node is dispatched
// (see route_server.h for the full contract). Nothing an engine computes
// depends on which threads run its nodes or on what other engines' nodes
// are interleaved with them.
//
// Cross-epoch pipelining (options.pipeline, non-feedback workloads only):
// the engine defers epoch e's summary/telemetry node into the NEXT
// add_epoch's graph, where it runs as a root in parallel with epoch
// e+1's serve nodes — the snapshot publish moves in-graph (after the CDF
// nodes), so epoch e+1 starts serving the fresh board while e's telemetry
// tail is still merging histograms. fold(e+1) depends on summary(e)
// (summary reads the pre-fold master flow for its Wardrop gap) and the
// two epochs stage into alternating slots, so nothing is shared between
// overlapping epochs. The host protocol is unchanged — the same
// while (!done()) { add_epoch; run; finish_epoch } loop simply runs
// epochs+1 iterations (the last one drains the final summary). Every
// value is derived from the same streams in the same order as the strict
// schedule, so digests are byte-identical with pipelining on or off.
//
// Pipelining composes with the recovery WAL via overlap-spanning cuts:
// with set_cut_capture(true), a pipelined add_epoch snapshots the
// boundary state of the epoch it is about to defer (RNG cursor, flow,
// client paths — captured host-side, when no graph is in flight) into
// that stage's PendingCut; checkpoint() hands the cut out one graph
// later, once the deferred summary has drained. Cuts therefore trail the
// serving frontier by exactly one epoch, but their CONTENT is identical
// to the strict schedule's — restore() works unchanged, and the first
// pipelined add_epoch after a resume primes the double-buffer exactly as
// a fresh begin() does.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

#include "agents/population.h"
#include "net/flow.h"
#include "service/checkpoint.h"
#include "service/ledger.h"
#include "service/route_server.h"
#include "service/snapshot.h"
#include "util/log_histogram.h"
#include "util/rng.h"

namespace staleflow {

class TaskGraph;

namespace detail {
/// Everything one serving task needs for an epoch: which shard it belongs
/// to, its contiguous slice of that shard's client list, its arrival
/// quota, its own Rng stream and its latency histograms. Sub-batches
/// never touch each other's context; the alignment keeps neighbouring
/// contexts off the same cache line (the rng state is written on every
/// query).
struct alignas(64) SubBatchContext {
  std::size_t shard = 0;
  std::size_t client_begin = 0;  // offset into the shard's client list
  std::size_t client_count = 0;
  std::size_t arrivals = 0;
  Rng rng{0};
  LogHistogram route_hist;  // board latency of the served path (exact)
  LogHistogram wall_hist;   // per-query service time in us (wall clock)
};
}  // namespace detail

class EpochEngine {
 public:
  /// The instance, policy, workload and store must outlive the engine.
  EpochEngine(const Instance& instance, const Policy& policy,
              const WorkloadGenerator& workload, SnapshotStore& store);

  /// Validates the options (the RouteServer::run contract: positive
  /// period, at least one epoch, shards in [1, num_clients], feasible
  /// start, ...; `threads` and `executor` are ignored — the host supplies
  /// execution) and publishes the epoch-0 snapshot. Must be called
  /// exactly once, before any epoch.
  void begin(const FlowVector& initial, const RouteServerOptions& options);

  std::size_t epochs_total() const noexcept { return options_.epochs; }
  std::size_t epochs_done() const noexcept { return epochs_.size(); }
  bool done() const noexcept { return epochs_done() >= epochs_total(); }

  /// True when cross-epoch pipelining is active: options.pipeline was set
  /// AND the workload is feedback-free (a closed-loop-lat tenant silently
  /// runs the strict schedule — its arrivals need the previous summary).
  bool pipelined() const noexcept { return pipelined_; }

  /// Plans the next epoch (workload arrivals, the deterministic sub-batch
  /// plan, one Rng stream per sub-batch in canonical order) and appends
  /// its serve -> fold -> {board post + per-commodity CDF nodes, summary}
  /// pipeline to `graph`. Serve nodes carry their shard id as the graph
  /// affinity key, so same-shard sub-batches land on the same worker lane
  /// (locality placement — wall clock only, never values). In pipelined
  /// mode the graph instead holds the PREVIOUS epoch's deferred summary
  /// (as a root) plus this epoch's serve/fold/snapshot/publish nodes; the
  /// final call appends only the last summary. The appended nodes touch
  /// only this engine, so several engines may append to the same graph.
  /// Exactly one graph may be in flight per engine: add_epoch / run /
  /// finish_epoch, in order.
  void add_epoch(TaskGraph& graph);

  /// Completes the epoch whose summary node ran in the last add_epoch's
  /// graph (the graph must have run): merges that epoch's histograms into
  /// the run result, records the summary (calling `observer` if set),
  /// and — strict schedule only — publishes the next snapshot (pipelined
  /// runs publish in-graph; the first pipelined call completes nothing).
  /// `epoch_seconds` is the wall-clock the host measured for the graph
  /// (used for queries_per_second when latency recording is on; a
  /// multi-tenant host passes the whole round's wall time, so per-epoch
  /// qps then reads "queries per round-second").
  void finish_epoch(double epoch_seconds, const EpochObserver& observer);

  /// Finalizes and returns the run result (final flow and gap, wall-clock
  /// aggregates from `wall_seconds`). The engine is spent afterwards.
  RouteServerResult finish(double wall_seconds);

  /// Tells the engine whether a host observer will ask for checkpoint()s.
  /// A pipelined engine's boundary state is transient — by the time epoch
  /// e's summary exists the engine has already planned (and possibly
  /// folded) epoch e+1 — so with capture on, add_epoch snapshots the
  /// PendingCut (RNG cursor, flow, client paths) at the overlap boundary
  /// before planning further. Off by default: un-logged pipelined runs
  /// pay nothing. Strict engines ignore the flag (their boundary state is
  /// live whenever checkpoint() may be called). Set before the first
  /// add_epoch.
  void set_cut_capture(bool capture) noexcept { capture_cuts_ = capture; }

  /// Snapshot of the dynamics state at the last finished epoch's boundary
  /// — the recovery WAL's cut record. Requires at least one finished
  /// epoch and no epoch in flight. Strict engines read the live state; a
  /// pipelined engine returns the PendingCut its add_epoch captured at
  /// the one-epoch overlap boundary (requires set_cut_capture(true)
  /// before the epoch was planned, else throws) — same bytes, one graph
  /// later. Restoring the returned cut (plus its predecessors) into a
  /// fresh engine continues the run bit-identically, under either
  /// schedule.
  EngineCheckpoint checkpoint() const;

  /// Tags this engine's trace events with a tenant id (a TenantRegistry
  /// passes the tenant index; solo servers stay 0). Pure telemetry
  /// labelling — never read by the dynamics.
  void set_trace_tenant(std::uint32_t tenant) noexcept {
    trace_tenant_ = tenant;
  }

  /// Restores a run prefix: `cuts` must be the checkpoints of epochs
  /// 0..n-1 in order (contiguous summary.epoch values). Must be called
  /// after begin() and before any epoch is served; publishes the epoch-n
  /// board so serving continues exactly where the checkpointed run stood.
  /// Throws std::invalid_argument on non-contiguous cuts, more cuts than
  /// the epoch budget, or state that does not fit this configuration
  /// (wrong path count, client count, or an out-of-range client path).
  /// Wall-clock telemetry is not restored — it is not replayable state —
  /// so resumed runs report wall figures for the new process only.
  void restore(std::span<const EngineCheckpoint> cuts);

 private:
  /// Everything one in-flight epoch stages: its sub-batch contexts, the
  /// snapshot it served against, the fold totals, the board it builds and
  /// its telemetry accumulators. Two slots alternate by epoch parity so a
  /// pipelined run can overlap epoch e+1's serving with epoch e's summary
  /// without sharing a byte; the strict schedule uses the same slots one
  /// at a time. The trace fields are wall-clock labelling only —
  /// trace_drop is true while a drop-telemetry fault window covers the
  /// epoch (the engine then emits no spans; the kFaultSpan marker itself
  /// still fires).
  /// A pipelined epoch's checkpointable boundary state, captured by
  /// add_epoch at the instant this stage's epoch is the engine frontier
  /// (post-fold, post-serve, pre-plan of the next epoch) and handed out
  /// by checkpoint() one graph later, once the summary has drained. The
  /// strict schedule never fills one — its boundary state is still live
  /// when checkpoint() runs.
  struct PendingCut {
    std::array<std::uint64_t, 4> rng_state{};
    std::vector<double> flow;
    std::vector<std::uint32_t> client_paths;
    bool valid = false;
  };

  struct EpochStage {
    std::vector<detail::SubBatchContext> ctx;  // high-water pool
    std::size_t batches = 0;  // sub-batches planned for this epoch
    SnapshotPtr served;       // the board this epoch served against
    FlowLedger::Totals totals;
    std::shared_ptr<BoardSnapshot> next;
    EpochSummary summary;
    LogHistogram epoch_route;  // this epoch's merged route latencies
    LogHistogram epoch_wall;   // this epoch's merged service times (us)
    PendingCut cut;            // pipelined: boundary state for the WAL
    std::uint64_t trace_epoch = 0;
    std::uint64_t trace_begin_ns = 0;
    bool trace_drop = false;
  };

  /// "No epoch" sentinel for pending_finish_.
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// Plans epoch `e` into `stage` and appends its serve -> fold -> post ->
  /// CDF nodes; `extra_fold_dep` (a summary node, pipelined mode) is added
  /// to fold's dependencies when not kNone; with `publish_in_graph` a
  /// final node publishes the built snapshot after the CDFs. Returns the
  /// fold node's id.
  std::size_t plan_epoch(TaskGraph& graph, EpochStage& stage,
                         std::uint64_t e, std::size_t extra_fold_dep,
                         bool publish_in_graph);
  /// Appends `stage`'s summary/telemetry node with the given deps.
  std::size_t add_summary_node(TaskGraph& graph, EpochStage& stage,
                               std::initializer_list<std::size_t> deps);
  void serve_sub_batch(EpochStage& stage, std::size_t b);
  /// Copies the engine's current boundary state (RNG cursor, flow, client
  /// paths) into `stage`'s PendingCut. Only meaningful when called from a
  /// pipelined add_epoch, host-side, with no graph in flight.
  void capture_pending_cut(EpochStage& stage);

  const Instance* instance_;
  const Policy* policy_;
  const WorkloadGenerator* workload_;
  SnapshotStore* store_;

  RouteServerOptions options_;
  Rng master_{0};
  std::unique_ptr<Population> clients_;
  std::vector<double> flow_;
  std::unique_ptr<FlowLedger> ledger_;
  std::vector<std::size_t> shard_clients_;  // clients per logical shard

  EpochStage stages_[2];  // epoch e stages in stages_[e % 2]
  bool epoch_in_flight_ = false;
  bool pipelined_ = false;
  bool capture_cuts_ = false;  // pipelined: snapshot PendingCuts for the WAL
  std::size_t planned_ = 0;         // epochs planned so far (plan frontier)
  std::size_t pending_finish_ = kNone;  // epoch the next finish_epoch records

  std::uint32_t trace_tenant_ = 0;

  // Accumulating run outcome (assembled into a RouteServerResult by
  // finish(); FlowVector has no default state, so the pieces live here).
  std::vector<EpochSummary> epochs_;
  std::size_t total_queries_ = 0;
  std::size_t total_migrations_ = 0;
  LogHistogram run_route_;
  LogHistogram run_wall_us_;
};

}  // namespace staleflow
