// The per-epoch serving pipeline of one route-service instance, factored
// out of RouteServer so a host can drive epochs one at a time.
//
// An EpochEngine owns everything one serving instance mutates — its
// client Population, master flow, sharded FlowLedger, sub-batch contexts,
// RNG streams and accumulating result — and borrows the SnapshotStore it
// publishes to. The host drives the epoch cycle explicitly:
//
//   EpochEngine engine(instance, policy, workload, store);
//   engine.begin(initial, options);
//   while (!engine.done()) {
//     TaskGraph graph;
//     engine.add_epoch(graph);        // plan + append this epoch's nodes
//     executor.run(graph);            // serve -> fold -> {snapshot, summary}
//     engine.finish_epoch(seconds, observer);  // merge, record, publish
//   }
//   RouteServerResult result = engine.finish(wall_seconds);
//
// RouteServer::run is exactly this loop over one engine. TenantRegistry
// runs MANY engines by appending several tenants' epochs to ONE combined
// graph per scheduler round: the engines share no mutable state (each
// node touches only its own engine), so co-scheduled tenants execute on
// one shared Executor while every tenant's dynamics stay byte-identical
// to a solo run — the multi-tenant isolation contract.
//
// Determinism: add_epoch derives this epoch's RNG streams and sub-batch
// plan host-side, in canonical order, before any node is dispatched
// (see route_server.h for the full contract). Nothing an engine computes
// depends on which threads run its nodes or on what other engines' nodes
// are interleaved with them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "agents/population.h"
#include "net/flow.h"
#include "service/checkpoint.h"
#include "service/ledger.h"
#include "service/route_server.h"
#include "service/snapshot.h"
#include "util/log_histogram.h"
#include "util/rng.h"

namespace staleflow {

class TaskGraph;

namespace detail {
/// Everything one serving task needs for an epoch: which shard it belongs
/// to, its contiguous slice of that shard's client list, its arrival
/// quota, its own Rng stream and its latency histograms. Sub-batches
/// never touch each other's context; the alignment keeps neighbouring
/// contexts off the same cache line (the rng state is written on every
/// query).
struct alignas(64) SubBatchContext {
  std::size_t shard = 0;
  std::size_t client_begin = 0;  // offset into the shard's client list
  std::size_t client_count = 0;
  std::size_t arrivals = 0;
  Rng rng{0};
  LogHistogram route_hist;  // board latency of the served path (exact)
  LogHistogram wall_hist;   // per-query service time in us (wall clock)
};
}  // namespace detail

class EpochEngine {
 public:
  /// The instance, policy, workload and store must outlive the engine.
  EpochEngine(const Instance& instance, const Policy& policy,
              const WorkloadGenerator& workload, SnapshotStore& store);

  /// Validates the options (the RouteServer::run contract: positive
  /// period, at least one epoch, shards in [1, num_clients], feasible
  /// start, ...; `threads` and `executor` are ignored — the host supplies
  /// execution) and publishes the epoch-0 snapshot. Must be called
  /// exactly once, before any epoch.
  void begin(const FlowVector& initial, const RouteServerOptions& options);

  std::size_t epochs_total() const noexcept { return options_.epochs; }
  std::size_t epochs_done() const noexcept { return epochs_.size(); }
  bool done() const noexcept { return epochs_done() >= epochs_total(); }

  /// Plans the next epoch (workload arrivals, the deterministic sub-batch
  /// plan, one Rng stream per sub-batch in canonical order) and appends
  /// its serve -> fold -> {board post + per-commodity CDF nodes, summary}
  /// pipeline to `graph`. The appended nodes touch only this engine, so
  /// several engines may append to the same graph. Exactly one epoch may
  /// be in flight per engine: add_epoch / run / finish_epoch, in order.
  void add_epoch(TaskGraph& graph);

  /// Completes the epoch added by the last add_epoch (the graph must have
  /// run): merges the epoch's histograms into the run result, records the
  /// summary (calling `observer` if set), and publishes the next
  /// snapshot. `epoch_seconds` is the wall-clock the host measured for
  /// the epoch's graph (used for queries_per_second when latency
  /// recording is on; a multi-tenant host passes the whole round's wall
  /// time, so per-epoch qps then reads "queries per round-second").
  void finish_epoch(double epoch_seconds, const EpochObserver& observer);

  /// Finalizes and returns the run result (final flow and gap, wall-clock
  /// aggregates from `wall_seconds`). The engine is spent afterwards.
  RouteServerResult finish(double wall_seconds);

  /// Snapshot of the dynamics state at the current epoch boundary — the
  /// recovery WAL's cut record. Requires at least one finished epoch and
  /// no epoch in flight. Restoring the returned cut (plus its
  /// predecessors) into a fresh engine continues the run bit-identically.
  EngineCheckpoint checkpoint() const;

  /// Tags this engine's trace events with a tenant id (a TenantRegistry
  /// passes the tenant index; solo servers stay 0). Pure telemetry
  /// labelling — never read by the dynamics.
  void set_trace_tenant(std::uint32_t tenant) noexcept {
    trace_tenant_ = tenant;
  }

  /// Restores a run prefix: `cuts` must be the checkpoints of epochs
  /// 0..n-1 in order (contiguous summary.epoch values). Must be called
  /// after begin() and before any epoch is served; publishes the epoch-n
  /// board so serving continues exactly where the checkpointed run stood.
  /// Throws std::invalid_argument on non-contiguous cuts, more cuts than
  /// the epoch budget, or state that does not fit this configuration
  /// (wrong path count, client count, or an out-of-range client path).
  /// Wall-clock telemetry is not restored — it is not replayable state —
  /// so resumed runs report wall figures for the new process only.
  void restore(std::span<const EngineCheckpoint> cuts);

 private:
  void serve_sub_batch(std::size_t b);

  const Instance* instance_;
  const Policy* policy_;
  const WorkloadGenerator* workload_;
  SnapshotStore* store_;

  RouteServerOptions options_;
  Rng master_{0};
  std::unique_ptr<Population> clients_;
  std::vector<double> flow_;
  std::unique_ptr<FlowLedger> ledger_;
  std::vector<std::size_t> shard_clients_;  // clients per logical shard

  std::vector<detail::SubBatchContext> ctx_;  // per-epoch high-water pool
  std::size_t batches_ = 0;   // sub-batches planned for the epoch in flight
  bool epoch_in_flight_ = false;

  // Trace labelling for the epoch in flight — wall-clock telemetry only,
  // strictly outside the digest contract. trace_drop_ is true while a
  // drop-telemetry fault window covers the epoch in flight: the engine
  // then emits no spans (the kFaultSpan marker itself still fires).
  std::uint32_t trace_tenant_ = 0;
  std::uint64_t trace_epoch_ = 0;
  std::uint64_t trace_epoch_begin_ns_ = 0;
  bool trace_drop_ = false;

  // Staging for the epoch in flight (written by graph nodes).
  SnapshotPtr served_;
  FlowLedger::Totals totals_;
  std::shared_ptr<BoardSnapshot> next_;
  EpochSummary summary_;
  LogHistogram epoch_route_;  // this epoch's merged route latencies
  LogHistogram epoch_wall_;   // this epoch's merged service times (us)

  // Accumulating run outcome (assembled into a RouteServerResult by
  // finish(); FlowVector has no default state, so the pieces live here).
  std::vector<EpochSummary> epochs_;
  std::size_t total_queries_ = 0;
  std::size_t total_migrations_ = 0;
  LogHistogram run_route_;
  LogHistogram run_wall_us_;
};

}  // namespace staleflow
