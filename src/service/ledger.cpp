#include "service/ledger.h"

#include <cassert>
#include <stdexcept>

namespace staleflow {

namespace {
constexpr std::size_t kDoublesPerLine = 64 / sizeof(double);
}

FlowLedger::FlowLedger(std::size_t path_count, std::size_t slots)
    : path_count_(path_count),
      stride_((path_count + kDoublesPerLine - 1) / kDoublesPerLine *
              kDoublesPerLine),
      counters_(slots) {
  if (slots == 0) {
    throw std::invalid_argument("FlowLedger: need at least one slot");
  }
  delta_.assign(slots * stride_, 0.0);
}

void FlowLedger::ensure_slots(std::size_t slots) {
  if (slots <= counters_.size()) return;
  counters_.resize(slots);
  delta_.resize(slots * stride_, 0.0);
}

FlowLedger::Totals FlowLedger::fold_into(std::span<double> flow,
                                         std::size_t active_slots) noexcept {
  assert(active_slots <= counters_.size());
  Totals totals;
  for (std::size_t s = 0; s < active_slots; ++s) {
    double* block = delta_.data() + s * stride_;
    for (std::size_t p = 0; p < path_count_; ++p) {
      flow[p] += block[p];
      block[p] = 0.0;
    }
    totals.queries += counters_[s].queries;
    totals.migrations += counters_[s].migrations;
    counters_[s].queries = 0;
    counters_[s].migrations = 0;
  }
  return totals;
}

}  // namespace staleflow
