// Sharded flow accounting for the query pipeline.
//
// Workers never touch a shared flow vector on the hot path: every serving
// slot (one logical shard, or one sub-batch of a shard once the executor
// splits skewed batches) accumulates its own flow deltas and query
// counters in private, cache-line-separated storage, and the epoch thread
// folds all slots into the master flow at the phase boundary — the folded
// flow is what the next bulletin-board post() sees, closing the
// served-traffic -> next-board loop. Folding walks slots in index order,
// so the result is independent of how slots were scheduled onto threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace staleflow {

class FlowLedger {
 public:
  /// `path_count` entries per slot; each slot's delta block is padded to
  /// a cache-line multiple so concurrent slots never false-share.
  FlowLedger(std::size_t path_count, std::size_t slots);

  std::size_t slots() const noexcept { return counters_.size(); }

  /// Grows the ledger to at least `slots` zeroed slots (no-op when already
  /// large enough). NOT thread-safe: call between epochs, never while
  /// serving tasks are writing. The epoch sub-batch plan sizes the ledger
  /// here, so the slot count follows the high-water mark instead of
  /// reallocating every epoch.
  void ensure_slots(std::size_t slots);

  /// Records that `delta` flow moved onto `path` in slot `s`. Safe to
  /// call concurrently for distinct slots.
  void add(std::size_t s, std::size_t path, double delta) noexcept {
    delta_[s * stride_ + path] += delta;
  }

  /// Counts one answered query (and optionally one migration) in slot `s`.
  void count_query(std::size_t s, bool migrated) noexcept {
    ++counters_[s].queries;
    counters_[s].migrations += migrated ? 1 : 0;
  }

  struct Totals {
    std::size_t queries = 0;
    std::size_t migrations = 0;
  };

  /// Folds the first `active_slots` slots' deltas into `flow` (slot-index
  /// order — the canonical fold the determinism contract fixes), returns
  /// the summed counters, and resets those slots for the next epoch.
  /// Requires active_slots <= slots().
  Totals fold_into(std::span<double> flow, std::size_t active_slots) noexcept;

  /// Folds every slot.
  Totals fold_into(std::span<double> flow) noexcept {
    return fold_into(flow, counters_.size());
  }

 private:
  std::size_t path_count_;
  std::size_t stride_;  // path_count_ rounded up to a cache-line multiple
  std::vector<double> delta_;  // slots * stride_

  struct alignas(64) Counters {
    std::uint64_t queries = 0;
    std::uint64_t migrations = 0;
  };
  std::vector<Counters> counters_;
};

}  // namespace staleflow
