// Sharded flow accounting for the query pipeline.
//
// Workers never touch a shared flow vector on the hot path: every shard
// accumulates its own flow deltas and query counters in private,
// cache-line-separated storage, and the epoch thread folds all shards into
// the master flow at the phase boundary — the folded flow is what the next
// bulletin-board post() sees, closing the served-traffic -> next-board
// loop. Folding walks shards in index order, so the result is independent
// of how shards were scheduled onto threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace staleflow {

class FlowLedger {
 public:
  /// `path_count` entries per shard; each shard's delta block is padded to
  /// a cache-line multiple so concurrent shards never false-share.
  FlowLedger(std::size_t path_count, std::size_t shards);

  std::size_t shards() const noexcept { return counters_.size(); }

  /// Records that `delta` flow moved onto `path` in shard `s`. Safe to
  /// call concurrently for distinct shards.
  void add(std::size_t s, std::size_t path, double delta) noexcept {
    delta_[s * stride_ + path] += delta;
  }

  /// Counts one answered query (and optionally one migration) in shard `s`.
  void count_query(std::size_t s, bool migrated) noexcept {
    ++counters_[s].queries;
    counters_[s].migrations += migrated ? 1 : 0;
  }

  struct Totals {
    std::size_t queries = 0;
    std::size_t migrations = 0;
  };

  /// Folds every shard's deltas into `flow` (shard-index order), returns
  /// the summed counters, and resets the ledger for the next epoch.
  Totals fold_into(std::span<double> flow) noexcept;

 private:
  std::size_t path_count_;
  std::size_t stride_;  // path_count_ rounded up to a cache-line multiple
  std::vector<double> delta_;  // shards * stride_

  struct alignas(64) Counters {
    std::uint64_t queries = 0;
    std::uint64_t migrations = 0;
  };
  std::vector<Counters> counters_;
};

}  // namespace staleflow
