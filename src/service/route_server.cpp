#include "service/route_server.h"

#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "agents/population.h"
#include "equilibrium/metrics.h"
#include "service/ledger.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace staleflow {
namespace {

using Clock = std::chrono::steady_clock;

/// Everything one logical shard needs for an epoch: its own Rng stream,
/// its arrival quota and its latency histograms. Shards never touch each
/// other's context; the alignment keeps neighbouring contexts off the
/// same cache line (the rng state is written on every query).
struct alignas(64) ShardContext {
  Rng rng{0};
  std::size_t arrivals = 0;
  LogHistogram route_hist;  // board latency of the served path (exact)
  LogHistogram wall_hist;   // per-query service time in us (wall clock)
};

double seconds_between(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

RouteServer::RouteServer(const Instance& instance, const Policy& policy,
                         const WorkloadGenerator& workload)
    : instance_(&instance), policy_(&policy), workload_(&workload) {}

RouteServerResult RouteServer::run(const FlowVector& initial,
                                   const RouteServerOptions& options,
                                   const EpochObserver& observer) {
  if (!(options.update_period > 0.0)) {
    throw std::invalid_argument(
        "RouteServer::run: update period must be > 0");
  }
  if (options.epochs == 0) {
    throw std::invalid_argument("RouteServer::run: need at least one epoch");
  }
  if (options.shards == 0 || options.shards > options.num_clients) {
    throw std::invalid_argument(
        "RouteServer::run: shards must be in [1, num_clients]");
  }
  if (options.num_clients >
      std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "RouteServer::run: num_clients must fit RouteQuery::client "
        "(uint32)");
  }
  if (!is_feasible(*instance_, initial.values(), 1e-7)) {
    throw std::invalid_argument("RouteServer::run: infeasible start");
  }
  if (options.record_latency && options.latency_sample_every == 0) {
    throw std::invalid_argument(
        "RouteServer::run: latency_sample_every must be >= 1");
  }

  const double T = options.update_period;
  const std::size_t shards = options.shards;
  Population clients(*instance_, options.num_clients, initial.values());

  // Master flow: starts at the client fleet's empirical flow, advanced
  // only by ledger folds at phase boundaries.
  std::vector<double> flow(clients.empirical_flow().begin(),
                           clients.empirical_flow().end());
  FlowLedger ledger(instance_->path_count(), shards);
  store_.publish(std::make_shared<BoardSnapshot>(*instance_, *policy_,
                                                 /*epoch=*/0, /*now=*/0.0,
                                                 flow));

  // Shard s owns clients {s, s + shards, s + 2*shards, ...}.
  std::vector<std::size_t> shard_clients(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_clients[s] = options.num_clients / shards +
                       (s < options.num_clients % shards ? 1 : 0);
  }

  std::vector<ShardContext> ctx(shards);
  std::unique_ptr<ThreadPool> pool;
  if (options.threads != 1) {
    pool = std::make_unique<ThreadPool>(options.threads);
  }

  const auto serve_shard = [&](std::size_t s) {
    ShardContext& shard = ctx[s];
    const std::size_t population = shard_clients[s];
    // The RCU read path: pin this epoch's board for the whole batch.
    const SnapshotPtr snap = store_.acquire();
    const BulletinBoard& board = snap->board();
    for (std::size_t q = 0; q < shard.arrivals; ++q) {
      const bool timed = options.record_latency &&
                         q % options.latency_sample_every == 0;
      const Clock::time_point begin =
          timed ? Clock::now() : Clock::time_point{};

      const RouteQuery query{static_cast<std::uint32_t>(
          s + shards * shard.rng.below(population))};
      const CommodityId c = clients.commodity_of(query.client);
      const Commodity& commodity = instance_->commodity(c);

      // Step (1): sample a candidate from the precomputed CDF.
      const std::size_t sampled = sample_from_cdf(snap->cdf(c), shard.rng);

      // Step (2): migrate with probability mu(l_P, l_Q).
      const std::size_t current = clients.local_path(query.client);
      std::size_t served_path = current;
      bool migrated = false;
      if (sampled != current) {
        const double l_current =
            board.path_latency()[commodity.paths[current].index()];
        const double l_sampled =
            board.path_latency()[commodity.paths[sampled].index()];
        const double mu =
            policy_->migration().probability(l_current, l_sampled);
        if (shard.rng.bernoulli(mu)) {
          migrated = true;
          served_path = sampled;
          const double moved = clients.flow_of(query.client);
          ledger.add(s, commodity.paths[current].index(), -moved);
          ledger.add(s, commodity.paths[sampled].index(), +moved);
          clients.reassign(query.client, sampled);
        }
      }
      ledger.count_query(s, migrated);

      // The latency this query's client experiences on the board it was
      // routed against — a deterministic board value, not wall clock.
      shard.route_hist.record(
          board.path_latency()[commodity.paths[served_path].index()]);

      if (timed) {
        shard.wall_hist.record(1e6 * seconds_between(begin, Clock::now()));
      }
    }
  };

  RouteServerResult result{FlowVector(*instance_)};
  result.epochs.reserve(options.epochs);
  LogHistogram epoch_route;    // this epoch's merged route latencies
  LogHistogram epoch_wall;     // this epoch's merged service times (us)
  Rng master(options.seed);

  const Clock::time_point run_begin = Clock::now();
  for (std::uint64_t e = 0; e < options.epochs; ++e) {
    // Derive this epoch's streams in canonical order: one for the
    // workload, then one per shard. Depends only on (seed, e, s).
    Rng epoch_rng = master.split();
    Rng arrivals_rng = epoch_rng.split();
    const std::size_t total = workload_->arrivals(
        e, static_cast<double>(e) * T, T, arrivals_rng);
    for (std::size_t s = 0; s < shards; ++s) {
      ctx[s].rng = epoch_rng.split();
      ctx[s].arrivals = total / shards + (s < total % shards ? 1 : 0);
      ctx[s].route_hist.reset();
      ctx[s].wall_hist.reset();
    }

    const Clock::time_point epoch_begin = Clock::now();
    if (pool == nullptr) {
      for (std::size_t s = 0; s < shards; ++s) serve_shard(s);
    } else {
      for (std::size_t s = 0; s < shards; ++s) {
        pool->submit([&serve_shard, s] { serve_shard(s); });
      }
      pool->wait_idle();
    }
    const double epoch_seconds =
        seconds_between(epoch_begin, Clock::now());

    // Phase boundary: fold served traffic into the master flow and
    // publish the next board from it.
    const SnapshotPtr served = store_.acquire();
    const FlowLedger::Totals totals = ledger.fold_into(flow);

    EpochSummary summary;
    summary.epoch = e;
    summary.start_time = static_cast<double>(e) * T;
    summary.end_time = static_cast<double>(e + 1) * T;
    summary.queries = totals.queries;
    summary.migrations = totals.migrations;
    summary.migration_rate =
        totals.queries > 0 ? static_cast<double>(totals.migrations) /
                                 static_cast<double>(totals.queries)
                           : 0.0;
    summary.wardrop_gap = wardrop_gap(*instance_, flow);
    double board_latency = 0.0;
    double board_volume = 0.0;
    for (std::size_t p = 0; p < instance_->path_count(); ++p) {
      board_latency +=
          served->board().path_flow()[p] * served->board().path_latency()[p];
      board_volume += served->board().path_flow()[p];
    }
    summary.board_latency =
        board_volume > 0.0 ? board_latency / board_volume : 0.0;

    // Merge per-shard histograms in shard order (the canonical order the
    // determinism contract fixes) into this epoch's distribution, then
    // fold the epoch into the run-level distribution.
    epoch_route.reset();
    for (const ShardContext& shard : ctx) {
      epoch_route.merge(shard.route_hist);
    }
    if (!epoch_route.empty()) {
      summary.route_p50 = epoch_route.quantile(0.5);
      summary.route_p99 = epoch_route.quantile(0.99);
      summary.route_p999 = epoch_route.quantile(0.999);
    }
    result.route_latency.merge(epoch_route);

    if (options.record_latency) {
      epoch_wall.reset();
      for (const ShardContext& shard : ctx) {
        epoch_wall.merge(shard.wall_hist);
      }
      if (!epoch_wall.empty()) {
        summary.p50_us = epoch_wall.quantile(0.5);
        summary.p99_us = epoch_wall.quantile(0.99);
        summary.p999_us = epoch_wall.quantile(0.999);
      }
      result.wall_latency_us.merge(epoch_wall);
      summary.queries_per_second =
          epoch_seconds > 0.0
              ? static_cast<double>(totals.queries) / epoch_seconds
              : 0.0;
    }

    result.total_queries += totals.queries;
    result.total_migrations += totals.migrations;
    result.epochs.push_back(summary);
    if (observer) observer(summary);

    store_.publish(std::make_shared<BoardSnapshot>(
        *instance_, *policy_, e + 1, static_cast<double>(e + 1) * T, flow));
  }

  result.final_gap = result.epochs.back().wardrop_gap;
  result.final_flow = FlowVector(*instance_, std::move(flow));
  if (options.record_latency) {
    result.wall_seconds = seconds_between(run_begin, Clock::now());
    result.queries_per_second =
        result.wall_seconds > 0.0
            ? static_cast<double>(result.total_queries) / result.wall_seconds
            : 0.0;
    if (!result.wall_latency_us.empty()) {
      result.p50_us = result.wall_latency_us.quantile(0.5);
      result.p99_us = result.wall_latency_us.quantile(0.99);
      result.p999_us = result.wall_latency_us.quantile(0.999);
    }
  }
  return result;
}

}  // namespace staleflow
