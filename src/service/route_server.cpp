#include "service/route_server.h"

#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "agents/population.h"
#include "equilibrium/metrics.h"
#include "exec/executor.h"
#include "service/ledger.h"
#include "util/rng.h"

namespace staleflow {
namespace {

using Clock = std::chrono::steady_clock;

/// Everything one serving task needs for an epoch: which shard it belongs
/// to, its contiguous slice of that shard's client list, its arrival
/// quota, its own Rng stream and its latency histograms. Sub-batches
/// never touch each other's context; the alignment keeps neighbouring
/// contexts off the same cache line (the rng state is written on every
/// query).
struct alignas(64) SubBatchContext {
  std::size_t shard = 0;
  std::size_t client_begin = 0;  // offset into the shard's client list
  std::size_t client_count = 0;
  std::size_t arrivals = 0;
  Rng rng{0};
  LogHistogram route_hist;  // board latency of the served path (exact)
  LogHistogram wall_hist;   // per-query service time in us (wall clock)
};

double seconds_between(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

RouteServer::RouteServer(const Instance& instance, const Policy& policy,
                         const WorkloadGenerator& workload)
    : instance_(&instance), policy_(&policy), workload_(&workload) {}

RouteServerResult RouteServer::run(const FlowVector& initial,
                                   const RouteServerOptions& options,
                                   const EpochObserver& observer) {
  if (!(options.update_period > 0.0)) {
    throw std::invalid_argument(
        "RouteServer::run: update period must be > 0");
  }
  if (options.epochs == 0) {
    throw std::invalid_argument("RouteServer::run: need at least one epoch");
  }
  if (options.shards == 0 || options.shards > options.num_clients) {
    throw std::invalid_argument(
        "RouteServer::run: shards must be in [1, num_clients]");
  }
  if (options.num_clients >
      std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "RouteServer::run: num_clients must fit RouteQuery::client "
        "(uint32)");
  }
  if (options.sub_batch_queries == 0) {
    throw std::invalid_argument(
        "RouteServer::run: sub_batch_queries must be >= 1");
  }
  if (!is_feasible(*instance_, initial.values(), 1e-7)) {
    throw std::invalid_argument("RouteServer::run: infeasible start");
  }
  if (options.record_latency && options.latency_sample_every == 0) {
    throw std::invalid_argument(
        "RouteServer::run: latency_sample_every must be >= 1");
  }

  const double T = options.update_period;
  const std::size_t shards = options.shards;
  Population clients(*instance_, options.num_clients, initial.values());

  // Master flow: starts at the client fleet's empirical flow, advanced
  // only by ledger folds at phase boundaries.
  std::vector<double> flow(clients.empirical_flow().begin(),
                           clients.empirical_flow().end());
  FlowLedger ledger(instance_->path_count(), shards);
  store_.publish(std::make_shared<BoardSnapshot>(*instance_, *policy_,
                                                 /*epoch=*/0, /*now=*/0.0,
                                                 flow));

  // Shard s owns clients {s, s + shards, s + 2*shards, ...}.
  std::vector<std::size_t> shard_clients(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_clients[s] = options.num_clients / shards +
                       (s < options.num_clients % shards ? 1 : 0);
  }

  // The execution layer: borrowed from the caller (shared-pool mode, e.g.
  // inside a sweep) or owned for this run.
  std::unique_ptr<Executor> owned_executor;
  Executor* exec = options.executor;
  if (exec == nullptr) {
    owned_executor = std::make_unique<Executor>(options.threads);
    exec = owned_executor.get();
  }

  std::vector<SubBatchContext> ctx;  // grows to the per-epoch high-water
  const auto serve_sub_batch = [&](std::size_t b) {
    SubBatchContext& sub = ctx[b];
    const std::size_t s = sub.shard;
    // The RCU read path: pin this epoch's board for the whole batch.
    const SnapshotPtr snap = store_.acquire();
    const BulletinBoard& board = snap->board();
    for (std::size_t q = 0; q < sub.arrivals; ++q) {
      const bool timed = options.record_latency &&
                         q % options.latency_sample_every == 0;
      const Clock::time_point begin =
          timed ? Clock::now() : Clock::time_point{};

      const RouteQuery query{static_cast<std::uint32_t>(
          s + shards * (sub.client_begin + sub.rng.below(sub.client_count)))};
      const CommodityId c = clients.commodity_of(query.client);
      const Commodity& commodity = instance_->commodity(c);

      // Step (1): sample a candidate from the precomputed CDF.
      const std::size_t sampled = sample_from_cdf(snap->cdf(c), sub.rng);

      // Step (2): migrate with probability mu(l_P, l_Q).
      const std::size_t current = clients.local_path(query.client);
      std::size_t served_path = current;
      bool migrated = false;
      if (sampled != current) {
        const double l_current =
            board.path_latency()[commodity.paths[current].index()];
        const double l_sampled =
            board.path_latency()[commodity.paths[sampled].index()];
        const double mu =
            policy_->migration().probability(l_current, l_sampled);
        if (sub.rng.bernoulli(mu)) {
          migrated = true;
          served_path = sampled;
          const double moved = clients.flow_of(query.client);
          ledger.add(b, commodity.paths[current].index(), -moved);
          ledger.add(b, commodity.paths[sampled].index(), +moved);
          clients.reassign(query.client, sampled);
        }
      }
      ledger.count_query(b, migrated);

      // The latency this query's client experiences on the board it was
      // routed against — a deterministic board value, not wall clock.
      sub.route_hist.record(
          board.path_latency()[commodity.paths[served_path].index()]);

      if (timed) {
        sub.wall_hist.record(1e6 * seconds_between(begin, Clock::now()));
      }
    }
  };

  RouteServerResult result{FlowVector(*instance_)};
  result.epochs.reserve(options.epochs);
  LogHistogram epoch_route;    // this epoch's merged route latencies
  LogHistogram epoch_wall;     // this epoch's merged service times (us)
  Rng master(options.seed);

  const Clock::time_point run_begin = Clock::now();
  for (std::uint64_t e = 0; e < options.epochs; ++e) {
    // Derive this epoch's streams in canonical order: one for the
    // workload, then one per sub-batch in (shard, sub-batch) order.
    // Depends only on (seed, e) and the batch sizes — never on threads.
    Rng epoch_rng = master.split();
    Rng arrivals_rng = epoch_rng.split();
    LoadFeedback feedback;
    if (!result.epochs.empty()) {
      feedback.has_previous = true;
      feedback.route_p50 = result.epochs.back().route_p50;
    }
    const std::size_t total = workload_->arrivals(
        e, static_cast<double>(e) * T, T, feedback, arrivals_rng);

    // The deterministic sub-batch plan: a shard whose batch exceeds the
    // target splits into balanced sub-batches over disjoint client
    // slices. One sub-batch per shard minimum keeps the stream layout
    // aligned with the unsplit (PR-2/PR-3) dynamics when nothing splits.
    std::size_t planned = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t batch = total / shards + (s < total % shards ? 1 : 0);
      const std::size_t pieces = sub_batch_count(
          batch, options.sub_batch_queries, shard_clients[s]);
      if (ctx.size() < planned + pieces) ctx.resize(planned + pieces);
      for (std::size_t piece = 0; piece < pieces; ++piece) {
        SubBatchContext& sub = ctx[planned + piece];
        const SubRange slice = sub_range(shard_clients[s], pieces, piece);
        sub.shard = s;
        sub.client_begin = slice.begin;
        sub.client_count = slice.count;
        sub.arrivals = sub_range(batch, pieces, piece).count;
        sub.rng = epoch_rng.split();
        sub.route_hist.reset();
        sub.wall_hist.reset();
      }
      planned += pieces;
    }
    const std::size_t batches = planned;
    ledger.ensure_slots(batches);

    // The epoch task graph: serve -> fold -> {next snapshot build,
    // telemetry summary}. The snapshot's board post and per-commodity CDF
    // nodes overlap the summary tail; everything after fold reads the
    // folded flow, nothing writes shared state concurrently.
    const SnapshotPtr served = store_.acquire();
    FlowLedger::Totals totals;
    std::shared_ptr<BoardSnapshot> next;
    EpochSummary summary;

    TaskGraph graph;
    std::vector<TaskGraph::NodeId> serve_nodes;
    serve_nodes.reserve(batches);
    for (std::size_t b = 0; b < batches; ++b) {
      serve_nodes.push_back(graph.add([&serve_sub_batch, b] {
        serve_sub_batch(b);
      }));
    }
    const TaskGraph::NodeId fold = graph.add(
        [&] { totals = ledger.fold_into(flow, batches); },
        std::span<const TaskGraph::NodeId>(serve_nodes));
    const TaskGraph::NodeId post = graph.add(
        [&] {
          next = std::make_shared<BoardSnapshot>(
              BoardSnapshot::DeferCdf{}, *instance_, *policy_, e + 1,
              static_cast<double>(e + 1) * T, flow);
        },
        {fold});
    for (std::size_t c = 0; c < instance_->commodity_count(); ++c) {
      graph.add([&next, c] { next->build_cdf(CommodityId{c}); }, {post});
    }
    graph.add(
        [&] {
          summary.epoch = e;
          summary.start_time = static_cast<double>(e) * T;
          summary.end_time = static_cast<double>(e + 1) * T;
          summary.queries = totals.queries;
          summary.migrations = totals.migrations;
          summary.migration_rate =
              totals.queries > 0 ? static_cast<double>(totals.migrations) /
                                       static_cast<double>(totals.queries)
                                 : 0.0;
          summary.wardrop_gap = wardrop_gap(*instance_, flow);
          double board_latency = 0.0;
          double board_volume = 0.0;
          for (std::size_t p = 0; p < instance_->path_count(); ++p) {
            board_latency += served->board().path_flow()[p] *
                             served->board().path_latency()[p];
            board_volume += served->board().path_flow()[p];
          }
          summary.board_latency =
              board_volume > 0.0 ? board_latency / board_volume : 0.0;

          // Merge per-sub-batch histograms in plan order (the canonical
          // order the determinism contract fixes) into this epoch's
          // distribution.
          epoch_route.reset();
          for (std::size_t b = 0; b < batches; ++b) {
            epoch_route.merge(ctx[b].route_hist);
          }
          if (!epoch_route.empty()) {
            summary.route_p50 = epoch_route.quantile(0.5);
            summary.route_p99 = epoch_route.quantile(0.99);
            summary.route_p999 = epoch_route.quantile(0.999);
          }
          if (options.record_latency) {
            epoch_wall.reset();
            for (std::size_t b = 0; b < batches; ++b) {
              epoch_wall.merge(ctx[b].wall_hist);
            }
            if (!epoch_wall.empty()) {
              summary.p50_us = epoch_wall.quantile(0.5);
              summary.p99_us = epoch_wall.quantile(0.99);
              summary.p999_us = epoch_wall.quantile(0.999);
            }
          }
        },
        {fold});

    const Clock::time_point epoch_begin = Clock::now();
    exec->run(graph);
    const double epoch_seconds =
        seconds_between(epoch_begin, Clock::now());

    // Phase boundary: the folded flow is published as the next board; the
    // fold tail (summary) and the snapshot build already ran inside the
    // graph.
    result.route_latency.merge(epoch_route);
    if (options.record_latency) {
      result.wall_latency_us.merge(epoch_wall);
      summary.queries_per_second =
          epoch_seconds > 0.0
              ? static_cast<double>(totals.queries) / epoch_seconds
              : 0.0;
    }

    result.total_queries += totals.queries;
    result.total_migrations += totals.migrations;
    result.epochs.push_back(summary);
    if (observer) observer(summary);

    store_.publish(std::move(next));
  }

  result.final_gap = result.epochs.back().wardrop_gap;
  result.final_flow = FlowVector(*instance_, std::move(flow));
  if (options.record_latency) {
    result.wall_seconds = seconds_between(run_begin, Clock::now());
    result.queries_per_second =
        result.wall_seconds > 0.0
            ? static_cast<double>(result.total_queries) / result.wall_seconds
            : 0.0;
    if (!result.wall_latency_us.empty()) {
      result.p50_us = result.wall_latency_us.quantile(0.5);
      result.p99_us = result.wall_latency_us.quantile(0.99);
      result.p999_us = result.wall_latency_us.quantile(0.999);
    }
  }
  return result;
}

}  // namespace staleflow
