#include "service/route_server.h"

#include <memory>
#include <stdexcept>

#include "exec/executor.h"
#include "faults/fault_plan.h"
#include "service/epoch_engine.h"
#include "util/stopwatch.h"

namespace staleflow {

RouteServer::RouteServer(const Instance& instance, const Policy& policy,
                         const WorkloadGenerator& workload)
    : instance_(&instance), policy_(&policy), workload_(&workload) {}

RouteServerResult RouteServer::run(const FlowVector& initial,
                                   const RouteServerOptions& options,
                                   const EpochObserver& observer,
                                   const CutObserver& cuts,
                                   std::span<const EngineCheckpoint> resume) {
  // The per-epoch pipeline lives in EpochEngine (shared with the
  // multi-tenant registry); a solo run is one engine driven to exhaustion
  // on its own (or a borrowed) executor. A pipelined engine can serve the
  // cut observer too — it captures each epoch's boundary state at the
  // overlap boundary and hands the cut out one graph later.
  EpochEngine engine(*instance_, *policy_, *workload_, store_);
  engine.begin(initial, options);
  engine.set_cut_capture(static_cast<bool>(cuts));
  engine.restore(resume);

  // The execution layer: borrowed from the caller (shared-pool mode, e.g.
  // inside a sweep) or owned for this run.
  std::unique_ptr<Executor> owned_executor;
  Executor* exec = options.executor;
  if (exec == nullptr) {
    owned_executor = std::make_unique<Executor>(options.threads, options.pin);
    // Worker-stall faults apply to the executor this run owns; a borrowed
    // executor's host (sweep runner, tenant CLI) wires its own.
    owned_executor->set_fault_schedule(options.faults);
    exec = owned_executor.get();
  }

  const Stopwatch run_watch;
  while (!engine.done()) {
    TaskGraph graph;
    engine.add_epoch(graph);
    const Stopwatch epoch_watch;
    exec->run(graph);
    const std::size_t recorded = engine.epochs_done();
    engine.finish_epoch(epoch_watch.seconds(), observer);
    // A cut exists only when an epoch actually closed — a pipelined run's
    // priming graph records nothing (its first summary is still deferred).
    if (cuts && engine.epochs_done() > recorded) cuts(engine.checkpoint());
    // The crash point fires AFTER the cut observer so the WAL holds
    // exactly the epochs a resumed run must replay — and only on an
    // iteration that actually committed one, mirroring the cut gate
    // above. crash_after is stateless and a resumed run re-materializes
    // the same --faults spec, so without the progress gate a pipelined
    // resume's priming iteration (which closes no epoch) would
    // re-evaluate the clause at the restored count and re-crash every
    // resume at the same commit point, forever.
    if (options.faults != nullptr && engine.epochs_done() > recorded &&
        options.faults->crash_after(engine.epochs_done()))
      faults::crash_process(engine.epochs_done());
  }
  return engine.finish(run_watch.seconds());
}

}  // namespace staleflow
