// The online stale-routing engine: the paper's bulletin-board dynamics
// run as a service.
//
// A RouteServer owns a client Population, an epoch-swapped SnapshotStore
// and a sharded FlowLedger. Each epoch of length T it answers a batch of
// RouteQuery requests against the *current* (stale) snapshot — sample a
// candidate path with the policy's precomputed CDF, migrate with
// probability mu(l_P, l_Q) — while per-shard accumulators record the flow
// movement. At the phase boundary the shards are folded into the master
// flow and the next BoardSnapshot is published from it, so served traffic
// IS the flow that determines the next board, exactly Eq. (3)'s loop.
//
// Determinism contract (mirrors the sweep engine): clients are
// partitioned over a FIXED number of logical shards (client % shards);
// each epoch the execution layer pre-computes a deterministic sub-batch
// plan — every shard's query batch splits into ceil(arrivals /
// sub_batch_queries) sub-batches (clamped to the shard's client count),
// each owning a contiguous slice of the shard's client list — and derives
// one Rng per sub-batch by walking (shard, sub-batch) order with
// Rng::split(). Split points depend only on batch sizes, NEVER on thread
// count or scheduling; sub-batches share no mutable state (per-sub-batch
// ledger slots, disjoint client slices); folding and histogram merging
// walk the canonical plan order. Every dynamics outcome is therefore
// bit-identical for any worker-thread count — only the wall-clock
// telemetry differs. With the default sub_batch_queries, batches below
// the split threshold reproduce the PR-2/PR-3 per-shard dynamics exactly.
//
// Epochs are pipelined as a task graph (src/exec/): serve nodes feed a
// fold node, which feeds BOTH the next snapshot's build (board post, then
// one CDF node per commodity) and the telemetry summary node, so the
// snapshot build overlaps the summary tail instead of serializing after
// it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/policy.h"
#include "net/flow.h"
#include "net/instance.h"
#include "service/checkpoint.h"
#include "service/snapshot.h"
#include "service/telemetry.h"
#include "service/workload.h"
#include "util/log_histogram.h"

namespace staleflow {

class Executor;

namespace faults {
class FaultSchedule;
}

/// One routing request: client `client` asks which path to use next.
struct RouteQuery {
  std::uint32_t client = 0;
};

struct RouteServerOptions {
  /// Bulletin-board period T. Must be > 0 (the service boundary enforces
  /// the same contract as the simulators).
  double update_period = 0.1;
  std::size_t epochs = 100;

  /// Virtual client fleet size (>= commodities; each carries
  /// demand_i / N_i flow, as in the finite-population simulator).
  std::size_t num_clients = 10'000;

  /// Logical shards the clients are partitioned over. Part of the
  /// determinism contract — results depend on the shard count, never on
  /// `threads`. Must satisfy 1 <= shards <= num_clients.
  std::size_t shards = 16;

  /// Worker threads serving sub-batches; 0 = hardware concurrency, 1 =
  /// inline. Ignored when `executor` is set.
  std::size_t threads = 1;

  /// Borrowed execution layer to serve on (e.g. the sweep runner's, so a
  /// kService sweep cell parallelizes on the shared pool instead of
  /// spawning a nested one). nullptr = the server builds its own from
  /// `threads`. Never owned; must outlive run().
  Executor* executor = nullptr;

  /// Maximum queries one serving task handles: a shard whose epoch batch
  /// exceeds this splits into ceil(batch / sub_batch_queries) sub-batches
  /// (clamped to the shard's client count). Part of the determinism
  /// contract — the split depends on this value and the batch size only,
  /// never on threads — so changing it changes the dynamics digest, like
  /// changing `shards`. Must be >= 1 (ignored when sub_batch_auto is on).
  std::size_t sub_batch_queries = 16384;

  /// Adaptive split ("--sub-batch auto"): derive each epoch's split
  /// threshold from that epoch's total arrivals via
  /// auto_sub_batch_target(), keeping the task count stable across load
  /// levels. Still scheduling-independent (a function of the
  /// deterministic arrival sequence only), so 1-vs-N-thread runs stay
  /// byte-identical — but a different dynamics configuration than any
  /// fixed sub_batch_queries, with its own digest.
  bool sub_batch_auto = false;

  /// Cross-epoch pipelining: overlap epoch e+1's serving with epoch e's
  /// summary/telemetry tail. A runtime knob like `threads` — digests and
  /// dynamics are byte-identical either way. Composes with the
  /// checkpoint/WAL path (`cuts`): the engine captures each epoch's
  /// boundary state at the one-epoch overlap boundary and emits the cut
  /// one graph behind the serving frontier, with content identical to the
  /// strict schedule's. The v3 WAL run header records the flag (not in
  /// the per-tenant options payload) so a resumed run re-serves with the
  /// same schedule instead of silently downgrading to strict.
  /// Auto-disabled for feedback workloads (closed-loop-lat reads the
  /// previous epoch's summary) — announced through the `notice` sink and
  /// an `engine.pipeline_fallbacks` counter bump, never silently.
  bool pipeline = false;

  /// Pin worker lane i to CPU core i where available (silently a no-op
  /// otherwise). Runtime-only wall-clock placement, never semantics;
  /// ignored when `executor` is set (the borrowed executor's owner
  /// decides).
  bool pin = false;

  std::uint64_t seed = 1;

  /// Materialized fault schedule (src/faults/), nullptr = healthy world.
  /// A runtime pointer like `executor` — never serialized into the WAL
  /// header (the `--faults` SPEC is; resume re-materializes from it).
  /// Brownout windows deterministically shed this server's arrivals
  /// (digest-changing, for this tenant only); slowdown / stall /
  /// drop-telemetry windows burn wall clock or suppress traces and are
  /// digest-neutral; a crash clause _Exit(137)s the process right after
  /// the matching commit point. Must outlive run().
  const faults::FaultSchedule* faults = nullptr;

  /// Sink for the engine's rare one-line human-facing notices (today:
  /// the pipeline-to-strict fallback for a feedback workload). Library
  /// code never writes to stderr itself — the host decides where notices
  /// go (the CLIs print them unless --quiet; embedders like the sweep
  /// runner and tests stay silent by default). nullptr = drop the text;
  /// the metrics counters tick either way. A runtime hook like
  /// `executor` — never serialized into the WAL.
  std::function<void(const std::string&)> notice = nullptr;

  /// Record wall-clock per-query service time into per-shard
  /// LogHistograms. Off = deterministic replay mode: all telemetry fields
  /// are reproducible bit-for-bit.
  bool record_latency = true;
  /// Time every k-th query of a shard (the clock reads are the cost; the
  /// histogram itself stores nothing per sample).
  std::size_t latency_sample_every = 32;
};

struct RouteServerResult {
  FlowVector final_flow;
  std::vector<EpochSummary> epochs;
  std::size_t total_queries = 0;
  std::size_t total_migrations = 0;
  double final_gap = 0.0;

  /// Deterministic route-latency distribution of the whole run: the board
  /// latency of the path each query's client was routed on, merged over
  /// every shard and epoch in canonical order. Mergeable further (e.g.
  /// across sweep cells) because every server uses the same default
  /// histogram configuration.
  LogHistogram route_latency;

  // Wall-clock (non-deterministic; zero / empty in replay mode).
  LogHistogram wall_latency_us;  // per-query service time, merged over run
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
  double p50_us = 0.0;  // quantiles of wall_latency_us
  double p99_us = 0.0;
  double p999_us = 0.0;
};

/// Called at every phase boundary with the finished epoch's summary.
using EpochObserver = std::function<void(const EpochSummary&)>;

class RouteServer {
 public:
  /// The instance, policy and workload must outlive the server.
  RouteServer(const Instance& instance, const Policy& policy,
              const WorkloadGenerator& workload);

  /// Serves `options.epochs` epochs starting from the feasible flow
  /// `initial`. Throws std::invalid_argument on a non-positive update
  /// period, zero epochs, a shard/client mismatch or an infeasible start.
  ///
  /// Recovery hooks: `cuts`, when set, is called after every finished
  /// epoch with that epoch's EngineCheckpoint (the WAL write path);
  /// `resume`, when nonempty, must be the checkpoints of epochs 0..n-1 of
  /// an identically configured run — the server restores them and serves
  /// only the remaining epochs, and the result (telemetry digest, final
  /// flow, route histogram) is byte-identical to the uninterrupted run.
  RouteServerResult run(const FlowVector& initial,
                        const RouteServerOptions& options,
                        const EpochObserver& observer = nullptr,
                        const CutObserver& cuts = nullptr,
                        std::span<const EngineCheckpoint> resume = {});

  /// Read side: the currently published snapshot (nullptr before the
  /// first epoch of a run). Safe to call concurrently with run() — this
  /// is the RCU read path external query threads would use.
  SnapshotPtr snapshot() const noexcept { return store_.acquire(); }

 private:
  const Instance* instance_;
  const Policy* policy_;
  const WorkloadGenerator* workload_;
  SnapshotStore store_;
};

}  // namespace staleflow
