// Umbrella header for the online routing service engine (src/service/):
// epoch-swapped bulletin-board snapshots, sharded flow accounting, the
// RouteServer query pipeline, workload generators and per-epoch
// telemetry. See README.md ("The route service engine") for the
// architecture sketch.
#pragma once

#include "service/checkpoint.h"
#include "service/epoch_engine.h"
#include "service/ledger.h"
#include "service/route_server.h"
#include "service/snapshot.h"
#include "service/telemetry.h"
#include "service/tenant.h"
#include "service/workload.h"
