#include "service/snapshot.h"

namespace staleflow {

BoardSnapshot::BoardSnapshot(DeferCdf, const Instance& instance,
                             const Policy& policy, std::uint64_t epoch,
                             double now, std::span<const double> path_flow)
    : instance_(&instance),
      policy_(&policy),
      epoch_(epoch),
      board_(instance),
      cdf_(instance.commodity_count()) {
  board_.post(now, path_flow);
}

BoardSnapshot::BoardSnapshot(const Instance& instance, const Policy& policy,
                             std::uint64_t epoch, double now,
                             std::span<const double> path_flow)
    : BoardSnapshot(DeferCdf{}, instance, policy, epoch, now, path_flow) {
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    build_cdf(CommodityId{c});
  }
}

void BoardSnapshot::build_cdf(CommodityId c) {
  sampling_cdf(*policy_, *instance_, instance_->commodity(c),
               board_.path_flow(), board_.path_latency(), cdf_[c.index()]);
}

}  // namespace staleflow
