#include "service/snapshot.h"

namespace staleflow {

BoardSnapshot::BoardSnapshot(const Instance& instance, const Policy& policy,
                             std::uint64_t epoch, double now,
                             std::span<const double> path_flow)
    : epoch_(epoch), board_(instance), cdf_(instance.commodity_count()) {
  board_.post(now, path_flow);
  for (std::size_t c = 0; c < instance.commodity_count(); ++c) {
    sampling_cdf(policy, instance, instance.commodity(CommodityId{c}),
                 board_.path_flow(), board_.path_latency(), cdf_[c]);
  }
}

}  // namespace staleflow
