// Epoch-swapped bulletin boards: the read side of the route service.
//
// The paper's bulletin board is rebuilt once per period T and frozen in
// between — exactly the shape of a production routing snapshot. A
// BoardSnapshot wraps one frozen BulletinBoard together with everything a
// query needs precomputed (per-commodity sampling CDFs, one binary search
// per query), and the SnapshotStore swaps snapshots RCU-style: readers
// acquire() a shared_ptr without ever taking a lock, writers publish() the
// next epoch and the old board dies when its last reader drops it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/bulletin_board.h"
#include "core/policy.h"
#include "net/instance.h"

namespace staleflow {

/// One immutable, epoch-stamped board. Safe to read from any number of
/// threads once fully constructed (i.e. after every CDF is built).
class BoardSnapshot {
 public:
  /// Tag selecting the two-phase build used by the pipelined epoch loop.
  struct DeferCdf {};

  /// Posts `path_flow` at time `now` and precomputes the sampling CDF of
  /// `policy` for every commodity.
  BoardSnapshot(const Instance& instance, const Policy& policy,
                std::uint64_t epoch, double now,
                std::span<const double> path_flow);

  /// Two-phase build for the execution layer: posts the board and sizes
  /// the CDF table but leaves every commodity's CDF empty. The owner must
  /// call build_cdf() for every commodity before publishing — distinct
  /// commodities may be built concurrently (they write disjoint rows),
  /// which is how the epoch task graph parallelizes the snapshot build.
  BoardSnapshot(DeferCdf, const Instance& instance, const Policy& policy,
                std::uint64_t epoch, double now,
                std::span<const double> path_flow);

  /// Fills commodity `c`'s sampling CDF from the posted board. Safe to
  /// call concurrently for distinct commodities; must not race readers
  /// (call before the snapshot is published).
  void build_cdf(CommodityId c);

  std::uint64_t epoch() const noexcept { return epoch_; }
  const BulletinBoard& board() const noexcept { return board_; }

  /// Cumulative sampling distribution over commodity `c`'s local path
  /// list (see sampling_cdf() in core/policy.h).
  std::span<const double> cdf(CommodityId c) const {
    return cdf_[c.index()];
  }

 private:
  const Instance* instance_;
  const Policy* policy_;
  std::uint64_t epoch_;
  BulletinBoard board_;
  std::vector<std::vector<double>> cdf_;  // by commodity
};

using SnapshotPtr = std::shared_ptr<const BoardSnapshot>;

/// Atomically swappable current-snapshot holder. acquire() and publish()
/// may race freely; a reader keeps its snapshot alive for as long as it
/// holds the pointer, so queries never observe a half-updated board.
class SnapshotStore {
 public:
  /// Current snapshot, or nullptr before the first publish().
  SnapshotPtr acquire() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  void publish(SnapshotPtr next) noexcept {
    current_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::atomic<SnapshotPtr> current_;
};

}  // namespace staleflow
