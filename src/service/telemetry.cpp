#include "service/telemetry.h"

#include <cstring>
#include <sstream>
#include <vector>

#include "util/csv.h"

namespace staleflow {
namespace {

std::string fmt(double value) {
  std::ostringstream out;
  out.precision(17);  // round-trips any double exactly
  out << value;
  return out.str();
}

void hash_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;  // FNV-1a prime
  }
}

void hash_double(std::uint64_t& h, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  hash_bytes(h, &bits, sizeof(bits));
}

}  // namespace

void write_epoch_csv(const std::string& path,
                     std::span<const EpochSummary> epochs,
                     bool include_timing) {
  std::vector<std::string> header = {"epoch",      "start",
                                     "end",        "queries",
                                     "migrations", "migration_rate",
                                     "wardrop_gap", "board_latency"};
  if (include_timing) {
    header.insert(header.end(), {"p50_us", "p99_us", "qps"});
  }
  CsvWriter csv(path, header);
  for (const EpochSummary& e : epochs) {
    std::vector<std::string> row = {
        std::to_string(e.epoch),      fmt(e.start_time),
        fmt(e.end_time),              std::to_string(e.queries),
        std::to_string(e.migrations), fmt(e.migration_rate),
        fmt(e.wardrop_gap),           fmt(e.board_latency)};
    if (include_timing) {
      row.push_back(fmt(e.p50_us));
      row.push_back(fmt(e.p99_us));
      row.push_back(fmt(e.queries_per_second));
    }
    csv.add_row(row);
  }
}

std::uint64_t telemetry_digest(std::span<const EpochSummary> epochs) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (const EpochSummary& e : epochs) {
    hash_bytes(h, &e.epoch, sizeof(e.epoch));
    std::uint64_t queries = e.queries;
    std::uint64_t migrations = e.migrations;
    hash_bytes(h, &queries, sizeof(queries));
    hash_bytes(h, &migrations, sizeof(migrations));
    hash_double(h, e.wardrop_gap);
    hash_double(h, e.board_latency);
  }
  return h;
}

}  // namespace staleflow
