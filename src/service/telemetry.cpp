#include "service/telemetry.h"

#include <sstream>
#include <vector>

#include "util/csv.h"
#include "util/fnv.h"

namespace staleflow {
namespace {

std::string fmt(double value) {
  std::ostringstream out;
  out.precision(17);  // round-trips any double exactly
  out << value;
  return out.str();
}

}  // namespace

void write_epoch_csv(const std::string& path,
                     std::span<const EpochSummary> epochs,
                     bool include_timing) {
  std::vector<std::string> header = {"epoch",      "start",
                                     "end",        "queries",
                                     "migrations", "migration_rate",
                                     "wardrop_gap", "board_latency",
                                     "route_p50",  "route_p99",
                                     "route_p999"};
  if (include_timing) {
    header.insert(header.end(), {"p50_us", "p99_us", "p999_us", "qps"});
  }
  CsvWriter csv(path, header);
  for (const EpochSummary& e : epochs) {
    std::vector<std::string> row = {
        std::to_string(e.epoch),      fmt(e.start_time),
        fmt(e.end_time),              std::to_string(e.queries),
        std::to_string(e.migrations), fmt(e.migration_rate),
        fmt(e.wardrop_gap),           fmt(e.board_latency),
        fmt(e.route_p50),             fmt(e.route_p99),
        fmt(e.route_p999)};
    if (include_timing) {
      row.push_back(fmt(e.p50_us));
      row.push_back(fmt(e.p99_us));
      row.push_back(fmt(e.p999_us));
      row.push_back(fmt(e.queries_per_second));
    }
    csv.add_row(row);
  }
}

std::uint64_t telemetry_digest(std::span<const EpochSummary> epochs) {
  std::uint64_t h = fnv::kOffsetBasis;
  for (const EpochSummary& e : epochs) {
    h = telemetry_digest_accumulate(h, e);
  }
  return h;
}

std::uint64_t telemetry_digest_accumulate(std::uint64_t h,
                                          const EpochSummary& e) {
  fnv::hash_u64(h, e.epoch);
  fnv::hash_u64(h, e.queries);
  fnv::hash_u64(h, e.migrations);
  fnv::hash_double(h, e.wardrop_gap);
  fnv::hash_double(h, e.board_latency);
  fnv::hash_double(h, e.route_p50);
  fnv::hash_double(h, e.route_p99);
  fnv::hash_double(h, e.route_p999);
  return h;
}

}  // namespace staleflow
