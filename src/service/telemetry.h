// Per-epoch live telemetry of the route service.
//
// Every epoch produces one EpochSummary. The fields split into two
// classes: *deterministic* outcomes of the dynamics (queries, migrations,
// Wardrop gap, board latency, and the route-latency quantiles extracted
// from the epoch's merged LogHistogram — functions of seed and
// configuration only) and *wall-clock* figures (query service-time
// quantiles, throughput) that vary run to run. The CSV writer can
// restrict itself to the deterministic columns so replay runs diff
// byte-for-byte regardless of worker-thread count, and the digest pins
// those columns for golden tests.
//
// Latency distributions are log-bucket histograms (util/log_histogram.h),
// not sampled vectors: per-shard recordings merge exactly into per-epoch
// and per-run distributions, and quantiles are extracted from counts —
// mergeable across shards, epochs, and (in the sweep engine) whole cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace staleflow {

struct EpochSummary {
  std::uint64_t epoch = 0;     // board epoch that served these queries
  double start_time = 0.0;     // epoch * T
  double end_time = 0.0;

  // Deterministic outcome of the dynamics.
  std::size_t queries = 0;
  std::size_t migrations = 0;
  double migration_rate = 0.0;  // migrations / queries (0 when idle)
  double wardrop_gap = 0.0;     // gap of the folded flow at the boundary
  double board_latency = 0.0;   // flow-weighted avg latency on the board

  // Route-latency quantiles: the board latency of the path each query's
  // client is routed on after its decision, over the epoch's merged
  // per-shard histograms. Deterministic (board values, not wall clock);
  // zero when the epoch served no queries.
  double route_p50 = 0.0;
  double route_p99 = 0.0;
  double route_p999 = 0.0;

  // Wall-clock figures; zeroed when latency recording is off. Quantiles
  // come from the epoch's merged service-time histogram.
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double queries_per_second = 0.0;
};

/// Writes one row per epoch. With include_timing == false only the
/// deterministic columns are emitted — the replay-diff format.
void write_epoch_csv(const std::string& path,
                     std::span<const EpochSummary> epochs,
                     bool include_timing);

/// FNV-1a digest over the deterministic fields of every epoch (bit
/// patterns of the doubles, not their decimal rendering), including the
/// route-latency quantiles. The CI smoke test pins this value for a fixed
/// configuration.
std::uint64_t telemetry_digest(std::span<const EpochSummary> epochs);

/// Folds one epoch's deterministic fields into a running FNV state:
/// telemetry_digest(epochs) == the fold of all epochs in order, starting
/// from fnv::kOffsetBasis. The recovery WAL keeps its digest-so-far field
/// this way, without rescanning the run every epoch.
std::uint64_t telemetry_digest_accumulate(std::uint64_t h,
                                          const EpochSummary& epoch);

}  // namespace staleflow
