#include "service/tenant.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "exec/executor.h"
#include "faults/fault_plan.h"
#include "service/epoch_engine.h"
#include "trace/metrics.h"
#include "trace/recorder.h"
#include "util/stopwatch.h"

namespace staleflow {
namespace {

bool legal_tenant_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::size_t MultiTenantResult::total_queries() const noexcept {
  std::size_t total = 0;
  for (const TenantResult& tenant : tenants) {
    total += tenant.server.total_queries;
  }
  return total;
}

std::size_t MultiTenantResult::total_epochs() const noexcept {
  std::size_t total = 0;
  for (const TenantResult& tenant : tenants) {
    total += tenant.server.epochs.size();
  }
  return total;
}

void TenantRegistry::add(const std::string& name, const Instance& instance,
                         const Policy& policy,
                         const WorkloadGenerator& workload,
                         const TenantOptions& options) {
  if (!legal_tenant_name(name)) {
    throw std::invalid_argument(
        "TenantRegistry::add: tenant name must be non-empty [A-Za-z0-9_-]+"
        ", got '" + name + "'");
  }
  for (const Tenant& tenant : tenants_) {
    if (tenant.name == name) {
      throw std::invalid_argument("TenantRegistry::add: duplicate tenant '" +
                                  name + "'");
    }
  }
  if (options.weight == 0) {
    throw std::invalid_argument(
        "TenantRegistry::add: weight must be >= 1 (tenant '" + name + "')");
  }
  Tenant tenant;
  tenant.name = name;
  tenant.instance = &instance;
  tenant.policy = &policy;
  tenant.workload = &workload;
  tenant.options = options;
  tenant.store = std::make_unique<SnapshotStore>();
  tenants_.push_back(std::move(tenant));
}

const std::string& TenantRegistry::name(std::size_t tenant) const {
  if (tenant >= tenants_.size()) {
    throw std::out_of_range("TenantRegistry::name: no such tenant");
  }
  return tenants_[tenant].name;
}

SnapshotPtr TenantRegistry::snapshot(std::size_t tenant) const {
  if (tenant >= tenants_.size()) {
    throw std::out_of_range("TenantRegistry::snapshot: no such tenant");
  }
  return tenants_[tenant].store->acquire();
}

MultiTenantResult TenantRegistry::run(Executor& executor,
                                      const TenantObserver& observer,
                                      const RoundCutObserver& rounds,
                                      const RegistryResume* resume) {
  if (tenants_.empty()) {
    throw std::invalid_argument("TenantRegistry::run: no tenants registered");
  }
  if (resume != nullptr &&
      ((!resume->credits.empty() &&
        resume->credits.size() != tenants_.size()) ||
       (!resume->cuts.empty() && resume->cuts.size() != tenants_.size()))) {
    throw std::invalid_argument(
        "TenantRegistry::run: resume state does not match the tenant "
        "count");
  }

  // Spin up one engine per tenant. begin() validates each tenant's
  // options before ANY tenant serves, so a bad tenant fails the run
  // up front instead of mid-multiplex.
  std::vector<std::unique_ptr<EpochEngine>> engines;
  engines.reserve(tenants_.size());
  std::size_t max_weight = 1;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& tenant = tenants_[i];
    engines.push_back(std::make_unique<EpochEngine>(
        *tenant.instance, *tenant.policy, *tenant.workload, *tenant.store));
    engines.back()->set_trace_tenant(static_cast<std::uint32_t>(i));
    engines.back()->begin(FlowVector::uniform(*tenant.instance),
                          tenant.options.server);
    // Pipelined engines must snapshot their overlap-boundary state for
    // the round cuts; capture is free for strict engines.
    engines.back()->set_cut_capture(static_cast<bool>(rounds));
    if (resume != nullptr && !resume->cuts.empty()) {
      engines.back()->restore(resume->cuts[i]);
    }
    max_weight = std::max(max_weight, tenant.options.weight);
  }

  // Weighted round-robin over epochs. Credits are a pure function of the
  // weights and the tenants' epoch budgets: the round schedule — and with
  // it every tenant's interleaving — is deterministic, though no tenant's
  // *outcome* depends on it (isolation contract). A resumed run picks the
  // credit vector up at the checkpointed round boundary. Under the
  // strict schedule the remaining rounds are exactly the ones the
  // uninterrupted run would have executed. Under --pipeline they are
  // NOT: a round mark's credits include credit already spent on overlap
  // epochs that were served but not yet drained (no cut committed for
  // them in that round), so a resumed pipelined tenant restarts one
  // epoch behind a credit state that says the epoch was paid for,
  // shifting its remaining interleaving relative to the uninterrupted
  // run. Digests still match ONLY because of the isolation contract —
  // per-tenant outcomes are independent of round interleaving. A
  // scheduler change that lets one tenant's dynamics observe another's
  // progress (or the round number) would silently break pipelined
  // resume; the pipelined multi-tenant resume tests pin this.
  MultiTenantResult result;
  std::vector<std::size_t> credits(tenants_.size(), 0);
  if (resume != nullptr && !resume->credits.empty()) {
    credits = resume->credits;
  }
  if (resume != nullptr) result.rounds = resume->rounds;
  std::vector<std::size_t> scheduled;
  std::vector<std::size_t> drained;  // scheduled tenants that closed an epoch
  // Crash-fault lookup: the registry crashes on ROUND commit points, so
  // any tenant's schedule (they share one --faults spec in the CLI; the
  // first non-null pointer wins) drives the whole host's crash clause.
  const faults::FaultSchedule* fault_plan = nullptr;
  for (const Tenant& tenant : tenants_) {
    if (tenant.options.server.faults != nullptr) {
      fault_plan = tenant.options.server.faults;
      break;
    }
  }
  const Stopwatch run_watch;
  for (;;) {
    scheduled.clear();
    drained.clear();
    for (std::size_t i = 0; i < engines.size(); ++i) {
      if (engines[i]->done()) continue;
      credits[i] += tenants_[i].options.weight;
      if (credits[i] >= max_weight) {
        credits[i] -= max_weight;
        scheduled.push_back(i);
      }
    }
    const bool all_done = std::all_of(
        engines.begin(), engines.end(),
        [](const std::unique_ptr<EpochEngine>& e) { return e->done(); });
    if (all_done) break;
    ++result.rounds;
    static trace::Counter& rounds_counter =
        trace::MetricsRegistry::global().counter("registry.rounds");
    rounds_counter.inc();
    if (!scheduled.empty()) {
      trace::Span round_span(trace::EventKind::kSchedulerRound,
                             /*tenant=*/0, /*epoch=*/0,
                             /*arg=*/scheduled.size());
      round_span.value(result.rounds);
      // One combined graph: one epoch per scheduled tenant. The engines'
      // nodes share no mutable state, so the pool interleaves tenants
      // freely — this is where co-tenancy actually overlaps work.
      TaskGraph graph;
      for (const std::size_t i : scheduled) {
        engines[i]->add_epoch(graph);
      }
      const Stopwatch round_watch;
      executor.run(graph);
      const double round_seconds = round_watch.seconds();
      for (const std::size_t i : scheduled) {
        EpochObserver epoch_observer;
        if (observer) {
          epoch_observer = [&observer, i](const EpochSummary& summary) {
            observer(i, summary);
          };
        }
        const std::size_t recorded = engines[i]->epochs_done();
        engines[i]->finish_epoch(round_seconds, epoch_observer);
        if (engines[i]->epochs_done() > recorded) drained.push_back(i);
      }
    }
    if (rounds) {
      // The round's WAL cut: even a credits-only round is checkpointed —
      // the credit vector changed, and resume must restart from exactly
      // this boundary. A round commits cuts only for tenants whose
      // overlap has drained (an epoch actually closed): a pipelined
      // tenant's priming round contributes no cut, and its cuts
      // thereafter trail its serving frontier by one epoch.
      RoundCheckpoint cut;
      cut.rounds = result.rounds;
      cut.credits = credits;
      cut.cuts.reserve(drained.size());
      for (const std::size_t i : drained) {
        cut.cuts.emplace_back(i, engines[i]->checkpoint());
      }
      rounds(cut);
    }
    // The crash point fires AFTER the round's cut observer, mirroring the
    // solo server: the WAL holds exactly the committed rounds.
    if (fault_plan != nullptr && fault_plan->crash_after(result.rounds)) {
      faults::crash_process(result.rounds);
    }
  }
  result.wall_seconds = run_watch.seconds();

  result.tenants.reserve(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    result.tenants.push_back(
        {tenants_[i].name, engines[i]->finish(result.wall_seconds)});
  }
  return result;
}

// --------------------------------------------------------------------------
// --tenants grammar
// --------------------------------------------------------------------------

namespace {

constexpr const char* kTenantKeys =
    "scenario, policy, workload, clients, shards, epochs, period, seed, "
    "weight, sub-batch";

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("--tenants: " + what +
                              " (keys: " + kTenantKeys + ")");
}

std::uint64_t parse_spec_count(const std::string& value,
                               const std::string& key) {
  if (value.empty() || value.find_first_not_of("0123456789") !=
                           std::string::npos) {
    bad_spec("bad value for " + key + ": '" + value + "'");
  }
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    bad_spec("bad value for " + key + ": '" + value + "'");
  }
}

double parse_spec_number(const std::string& value, const std::string& key) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    bad_spec("bad value for " + key + ": '" + value + "'");
  }
}

/// Splits the field list on ',' re-joining items that carry no '=' onto
/// the previous value, so workload=bursty:40000,2000,3,2 survives intact.
std::vector<std::pair<std::string, std::string>> split_fields(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = std::min(text.find(',', start), text.size());
    const std::string item = text.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      if (fields.empty()) {
        bad_spec("expected key=value, got '" + item + "'");
      }
      fields.back().second += ',' + item;  // value continuation
      continue;
    }
    fields.emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return fields;
}

TenantSpec parse_one_tenant(const std::string& text) {
  TenantSpec spec;
  const std::size_t colon = text.find(':');
  spec.name = text.substr(0, colon);
  if (!legal_tenant_name(spec.name)) {
    bad_spec("tenant name must be non-empty [A-Za-z0-9_-]+, got '" +
             spec.name + "'");
  }
  if (colon == std::string::npos) return spec;

  for (const auto& [key, value] : split_fields(text.substr(colon + 1))) {
    if (value.empty()) bad_spec("empty value for " + key);
    if (key == "scenario") {
      spec.scenario = value;
    } else if (key == "policy") {
      spec.policy = value;
    } else if (key == "workload") {
      spec.workload = value;
    } else if (key == "clients") {
      spec.clients = parse_spec_count(value, key);
    } else if (key == "shards") {
      spec.shards = parse_spec_count(value, key);
    } else if (key == "epochs") {
      spec.epochs = parse_spec_count(value, key);
    } else if (key == "period") {
      spec.period = parse_spec_number(value, key);
    } else if (key == "seed") {
      spec.seed = parse_spec_count(value, key);
    } else if (key == "weight") {
      spec.weight = parse_spec_count(value, key);
    } else if (key == "sub-batch") {
      if (value == "auto") {
        spec.sub_batch_auto = true;
        spec.sub_batch.reset();
      } else {
        spec.sub_batch = parse_spec_count(value, key);
        spec.sub_batch_auto = false;
      }
    } else {
      bad_spec("unknown key '" + key + "'");
    }
  }
  return spec;
}

}  // namespace

std::vector<TenantSpec> parse_tenant_specs(const std::string& text) {
  std::vector<TenantSpec> specs;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t semi = std::min(text.find(';', start), text.size());
    const std::string item = text.substr(start, semi - start);
    start = semi + 1;
    if (item.empty()) continue;
    specs.push_back(parse_one_tenant(item));
  }
  if (specs.empty()) {
    bad_spec("no tenants in spec (grammar: "
             "<name>[:key=value,...][;<name>...])");
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      if (specs[i].name == specs[j].name) {
        bad_spec("duplicate tenant name '" + specs[i].name + "'");
      }
    }
  }
  return specs;
}

}  // namespace staleflow
