// Multi-tenant serving: many independent route-service instances
// multiplexed onto ONE shared executor.
//
// The paper's bulletin board is one shared stale view serving many
// selfish clients; a production host runs MANY such boards — independent
// tenants, each with its own scenario, policy, workload, client fleet,
// snapshot store and telemetry stream — on one worker pool. TenantRegistry
// is that host. Each tenant is an EpochEngine; a scheduler round builds
// one combined TaskGraph holding one epoch per scheduled tenant (the
// engines share no mutable state, so their serve/fold/snapshot nodes
// interleave freely on the pool) and runs it on the caller's Executor.
//
// Scheduling is weighted round-robin over epochs: per round every
// unfinished tenant accrues `weight` credits and runs one epoch when its
// credits reach the registry's maximum weight — so a weight-w tenant
// serves w epochs for every max_weight rounds, and tenants of different
// sizes make proportional progress. All weights 1 (the default) is plain
// round-robin. The schedule is a pure function of the weights and epoch
// budgets — never of threads or timing.
//
// Isolation contract (pinned by tests/tenant_test.cpp, `ctest -L
// tenant`): a tenant's deterministic telemetry — its per-epoch FNV digest,
// final flow, route-latency histogram — is byte-identical whether the
// tenant runs alone, co-scheduled with any mix of other tenants, or on
// any worker-thread count. Co-tenancy and parallelism change wall-clock
// figures only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.h"
#include "net/instance.h"
#include "service/checkpoint.h"
#include "service/route_server.h"
#include "service/snapshot.h"
#include "service/workload.h"

namespace staleflow {

class Executor;

struct TenantOptions {
  /// The tenant's serving configuration (epochs, clients, shards, seed,
  /// sub-batch, latency recording, ...). `threads` and `executor` are
  /// ignored: the registry serves every tenant on the executor handed to
  /// run().
  RouteServerOptions server;

  /// Relative epoch rate: the tenant serves `weight` epochs for every
  /// `max weight in the registry` scheduler rounds. Must be >= 1.
  std::size_t weight = 1;
};

/// One tenant's finished run, in registration order.
struct TenantResult {
  std::string name;
  RouteServerResult server;
};

struct MultiTenantResult {
  std::vector<TenantResult> tenants;  // registration order
  std::size_t rounds = 0;             // scheduler rounds executed
  double wall_seconds = 0.0;          // whole multiplexed run

  std::size_t total_queries() const noexcept;
  std::size_t total_epochs() const noexcept;
};

/// Called at every finished epoch with the tenant's registration index
/// and the epoch's summary. Invoked on the driving thread, between
/// scheduler rounds, in registration order within a round.
using TenantObserver =
    std::function<void(std::size_t tenant, const EpochSummary&)>;

class TenantRegistry {
 public:
  /// Registers a tenant. The instance, policy and workload must outlive
  /// the registry. Throws std::invalid_argument on an empty or duplicate
  /// name (names label result rows and per-tenant output files; they must
  /// be [A-Za-z0-9_-]+) or a zero weight. Server options are validated at
  /// run() (the RouteServer::run contract).
  void add(const std::string& name, const Instance& instance,
           const Policy& policy, const WorkloadGenerator& workload,
           const TenantOptions& options);

  std::size_t size() const noexcept { return tenants_.size(); }
  const std::string& name(std::size_t tenant) const;

  /// RCU read path of tenant `tenant`'s current board: nullptr before its
  /// first epoch, then the latest published snapshot. Safe to call
  /// concurrently with run().
  SnapshotPtr snapshot(std::size_t tenant) const;

  /// Serves every tenant's full epoch budget, multiplexed on `executor`
  /// (each tenant starting from the uniform split of its instance).
  /// Throws std::invalid_argument when the registry is empty or a
  /// tenant's options are invalid. May be called again for a fresh run
  /// (each run rebuilds every tenant's state from scratch).
  ///
  /// Recovery hooks: `rounds`, when set, is called after every scheduler
  /// round with the post-round credit state and the cut of every tenant
  /// that served an epoch (the multi-tenant WAL write path). `resume`,
  /// when set, restores every tenant's cut prefix and the scheduler's
  /// round/credit state from a matching round boundary before serving —
  /// the remaining rounds replay exactly, so every tenant's deterministic
  /// telemetry is byte-identical to the uninterrupted run. resume->cuts
  /// and resume->credits must be empty or have one entry per tenant.
  MultiTenantResult run(Executor& executor,
                        const TenantObserver& observer = nullptr,
                        const RoundCutObserver& rounds = nullptr,
                        const RegistryResume* resume = nullptr);

 private:
  struct Tenant {
    std::string name;
    const Instance* instance = nullptr;
    const Policy* policy = nullptr;
    const WorkloadGenerator* workload = nullptr;
    TenantOptions options;
    std::unique_ptr<SnapshotStore> store;  // stable address across runs
  };
  std::vector<Tenant> tenants_;
};

// --------------------------------------------------------------------------
// --tenants command-line grammar
// --------------------------------------------------------------------------

/// One tenant's textual configuration from a `--tenants` flag. Every
/// field but the name is optional; unset fields inherit the host tool's
/// top-level flags.
struct TenantSpec {
  std::string name;
  std::string scenario;  // empty = inherit
  std::string policy;    // empty = inherit
  std::string workload;  // empty = inherit
  std::optional<std::size_t> clients;
  std::optional<std::size_t> shards;
  std::optional<std::size_t> epochs;
  std::optional<double> period;
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> weight;
  std::optional<std::size_t> sub_batch;  // unset and !sub_batch_auto = inherit
  bool sub_batch_auto = false;
};

/// Parses a `--tenants` value: semicolon-separated tenant specs
///   <name>[:key=value[,key=value...]]
/// with keys scenario, policy, workload, clients, shards, epochs, period,
/// seed, weight, sub-batch (a count or "auto"). Values may themselves
/// contain commas (e.g. workload=bursty:40000,2000,3,2): an item without
/// '=' continues the previous value. Repeated keys: the last one wins.
/// Throws std::invalid_argument (listing the key catalogue or the
/// offending item) on an empty spec list, an empty/illegal/duplicate
/// name, an unknown key, or a malformed value — name resolution
/// (scenario/policy/workload catalogues) is the caller's job.
std::vector<TenantSpec> parse_tenant_specs(const std::string& text);

}  // namespace staleflow
