#include "service/workload.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace staleflow {
namespace {

class PoissonWorkload final : public WorkloadGenerator {
 public:
  explicit PoissonWorkload(double rate) : rate_(rate) {}

  std::size_t arrivals(std::uint64_t, double, double period,
                       const LoadFeedback&, Rng& rng) const override {
    return poisson_draw(rate_ * period, rng);
  }

  std::string name() const override {
    std::ostringstream out;
    out << "poisson:" << rate_;
    return out.str();
  }

 private:
  double rate_;
};

class BurstyWorkload final : public WorkloadGenerator {
 public:
  BurstyWorkload(double rate_on, double rate_off, std::uint64_t on_epochs,
                 std::uint64_t off_epochs)
      : rate_on_(rate_on),
        rate_off_(rate_off),
        on_epochs_(on_epochs),
        off_epochs_(off_epochs) {}

  std::size_t arrivals(std::uint64_t epoch, double, double period,
                       const LoadFeedback&, Rng& rng) const override {
    const std::uint64_t cycle = epoch % (on_epochs_ + off_epochs_);
    const double rate = cycle < on_epochs_ ? rate_on_ : rate_off_;
    return poisson_draw(rate * period, rng);
  }

  std::string name() const override {
    std::ostringstream out;
    out << "bursty:" << rate_on_ << ',' << rate_off_ << ',' << on_epochs_
        << ',' << off_epochs_;
    return out.str();
  }

 private:
  double rate_on_;
  double rate_off_;
  std::uint64_t on_epochs_;
  std::uint64_t off_epochs_;
};

class DiurnalWorkload final : public WorkloadGenerator {
 public:
  DiurnalWorkload(double base_rate, double amplitude, double day_length)
      : base_(base_rate), amplitude_(amplitude), day_(day_length) {}

  std::size_t arrivals(std::uint64_t, double start, double period,
                       const LoadFeedback&, Rng& rng) const override {
    // Rate at the epoch midpoint; epochs are short against a day.
    const double t = start + 0.5 * period;
    const double rate =
        base_ * (1.0 + amplitude_ *
                           std::sin(2.0 * std::numbers::pi * t / day_));
    return poisson_draw(std::max(rate, 0.0) * period, rng);
  }

  std::string name() const override {
    std::ostringstream out;
    out << "diurnal:" << base_ << ',' << amplitude_ << ',' << day_;
    return out.str();
  }

 private:
  double base_;
  double amplitude_;
  double day_;
};

class ClosedLoopWorkload final : public WorkloadGenerator {
 public:
  explicit ClosedLoopWorkload(std::size_t queries_per_epoch)
      : queries_(queries_per_epoch) {}

  std::size_t arrivals(std::uint64_t, double, double, const LoadFeedback&,
                       Rng&) const override {
    return queries_;
  }

  std::string name() const override {
    std::ostringstream out;
    out << "closed-loop:" << queries_;
    return out.str();
  }

 private:
  std::size_t queries_;
};

class ClosedLoopLatencyWorkload final : public WorkloadGenerator {
 public:
  ClosedLoopLatencyWorkload(std::size_t clients, double think_time)
      : clients_(clients), think_(think_time) {}

  std::size_t arrivals(std::uint64_t, double, double period,
                       const LoadFeedback& feedback, Rng&) const override {
    // One client cycle = think + the latency the service actually served
    // last epoch; the fleet fits clients * period / cycle queries into
    // the epoch. Deterministic: route_p50 is a board value, not wall
    // clock, so the whole feedback loop replays bit-for-bit.
    const double cycle =
        think_ + (feedback.has_previous ? feedback.route_p50 : 0.0);
    return static_cast<std::size_t>(static_cast<double>(clients_) * period /
                                    cycle);
  }

  std::string name() const override {
    std::ostringstream out;
    out << "closed-loop-lat:" << clients_ << ',' << think_;
    return out.str();
  }

  bool uses_feedback() const override { return true; }

 private:
  std::size_t clients_;
  double think_;
};

[[noreturn]] void bad_workload(const std::string& spec,
                               const std::string& why) {
  throw std::invalid_argument(
      "make_workload: " + why + " in '" + spec +
      "' (have: poisson:<rate>, bursty:<on>,<off>,<on_epochs>,<off_epochs>, "
      "diurnal:<base>,<amplitude>,<day>, closed-loop:<n>, "
      "closed-loop-lat:<clients>,<think>)");
}

double integral_or_die(const std::string& spec, double value,
                       const std::string& what) {
  if (value != std::floor(value)) {
    bad_workload(spec, what + " must be an integer");
  }
  return value;
}

std::vector<double> parse_numbers(const std::string& spec,
                                  const std::string& text,
                                  std::size_t expect) {
  std::vector<double> out;
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    try {
      std::size_t used = 0;
      out.push_back(std::stod(item, &used));
      if (used != item.size()) throw std::invalid_argument(item);
    } catch (const std::exception&) {
      bad_workload(spec, "bad number '" + item + "'");
    }
  }
  if (out.size() != expect) bad_workload(spec, "wrong parameter count");
  return out;
}

}  // namespace

std::size_t poisson_draw(double mean, Rng& rng) {
  if (!(mean > 0.0)) return 0;
  if (mean > 64.0) {
    const double draw = rng.normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::size_t>(std::llround(draw));
  }
  // Knuth: multiply uniforms until the product drops below exp(-mean).
  const double limit = std::exp(-mean);
  std::size_t count = 0;
  double product = rng.uniform();
  while (product > limit) {
    ++count;
    product *= rng.uniform();
  }
  return count;
}

WorkloadPtr poisson_workload(double rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("poisson_workload: rate must be > 0");
  }
  return std::make_unique<PoissonWorkload>(rate);
}

WorkloadPtr bursty_workload(double rate_on, double rate_off,
                            std::uint64_t on_epochs,
                            std::uint64_t off_epochs) {
  if (!(rate_on >= 0.0) || !(rate_off >= 0.0)) {
    throw std::invalid_argument("bursty_workload: rates must be >= 0");
  }
  if (on_epochs + off_epochs == 0) {
    throw std::invalid_argument("bursty_workload: empty cycle");
  }
  return std::make_unique<BurstyWorkload>(rate_on, rate_off, on_epochs,
                                          off_epochs);
}

WorkloadPtr diurnal_workload(double base_rate, double amplitude,
                             double day_length) {
  if (!(base_rate > 0.0) || !(day_length > 0.0) || amplitude < 0.0) {
    throw std::invalid_argument(
        "diurnal_workload: need base > 0, day > 0, amplitude >= 0");
  }
  return std::make_unique<DiurnalWorkload>(base_rate, amplitude, day_length);
}

WorkloadPtr closed_loop_workload(std::size_t queries_per_epoch) {
  return std::make_unique<ClosedLoopWorkload>(queries_per_epoch);
}

WorkloadPtr closed_loop_latency_workload(std::size_t clients,
                                         double think_time) {
  if (!(think_time > 0.0)) {
    throw std::invalid_argument(
        "closed_loop_latency_workload: think_time must be > 0 (the first "
        "epoch has no served latency to pace on)");
  }
  return std::make_unique<ClosedLoopLatencyWorkload>(clients, think_time);
}

WorkloadPtr make_workload(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  const std::string tail =
      colon == std::string::npos ? "" : spec.substr(colon + 1);

  if (head == "poisson") {
    const std::vector<double> p = parse_numbers(spec, tail, 1);
    if (!(p[0] > 0.0)) bad_workload(spec, "rate must be > 0");
    return poisson_workload(p[0]);
  }
  if (head == "bursty") {
    const std::vector<double> p = parse_numbers(spec, tail, 4);
    if (p[0] < 0.0 || p[1] < 0.0 || p[2] < 0.0 || p[3] < 0.0) {
      bad_workload(spec, "negative parameter");
    }
    integral_or_die(spec, p[2], "on_epochs");
    integral_or_die(spec, p[3], "off_epochs");
    return bursty_workload(p[0], p[1], static_cast<std::uint64_t>(p[2]),
                           static_cast<std::uint64_t>(p[3]));
  }
  if (head == "diurnal") {
    const std::vector<double> p = parse_numbers(spec, tail, 3);
    return diurnal_workload(p[0], p[1], p[2]);
  }
  if (head == "closed-loop") {
    const std::vector<double> p = parse_numbers(spec, tail, 1);
    if (p[0] < 0.0) bad_workload(spec, "negative count");
    integral_or_die(spec, p[0], "queries per epoch");
    return closed_loop_workload(static_cast<std::size_t>(p[0]));
  }
  if (head == "closed-loop-lat") {
    const std::vector<double> p = parse_numbers(spec, tail, 2);
    if (p[0] < 0.0) bad_workload(spec, "negative client count");
    integral_or_die(spec, p[0], "clients");
    if (!(p[1] > 0.0)) bad_workload(spec, "think time must be > 0");
    return closed_loop_latency_workload(static_cast<std::size_t>(p[0]), p[1]);
  }
  bad_workload(spec, "unknown workload '" + head + "'");
}

}  // namespace staleflow
