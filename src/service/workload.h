// Workload generators: the offered load of the route service.
//
// A generator decides how many route queries arrive in each epoch of
// length T. Open-loop shapes (Poisson, bursty on/off, diurnal ramp) model
// traffic that does not react to the service; the closed-loop shapes
// model a fixed client fleet — either issuing a constant batch per epoch,
// or (closed-loop-lat) pacing itself on the latency the service actually
// served in the previous epoch, the deterministic back-pressure loop. All
// draws come from the Rng handed in, and the latency feedback is a
// deterministic summary of the previous epoch, so a fixed seed replays
// the exact arrival sequence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.h"

namespace staleflow {

/// Deterministic feedback a generator may react to: the served-latency
/// summary of the previous epoch. Everything in here is a function of
/// seed and configuration only (board values, never wall clock), so
/// closed-loop generators stay inside the replay contract.
struct LoadFeedback {
  bool has_previous = false;  // false for the first epoch of a run
  double route_p50 = 0.0;     // previous epoch's median served latency
};

class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// Number of queries arriving in the epoch [start, start + period).
  /// `feedback` describes the previous epoch (has_previous == false on
  /// the first); open-loop generators ignore it.
  virtual std::size_t arrivals(std::uint64_t epoch, double start,
                               double period, const LoadFeedback& feedback,
                               Rng& rng) const = 0;

  virtual std::string name() const = 0;

  /// True when arrivals() actually reads `feedback` (the closed-loop-lat
  /// back-pressure shape). Cross-epoch pipelining is only digest-safe for
  /// non-feedback workloads — epoch e+1's arrivals must not depend on
  /// epoch e's summary — so EpochEngine auto-disables `--pipeline` when
  /// this returns true.
  virtual bool uses_feedback() const { return false; }
};

using WorkloadPtr = std::unique_ptr<const WorkloadGenerator>;

/// Open-loop Poisson arrivals at a constant rate (queries per unit time).
WorkloadPtr poisson_workload(double rate);

/// On/off bursts: `on_epochs` epochs at `rate_on`, then `off_epochs` at
/// `rate_off`, repeating. Arrivals are Poisson at the phase's rate.
WorkloadPtr bursty_workload(double rate_on, double rate_off,
                            std::uint64_t on_epochs,
                            std::uint64_t off_epochs);

/// Diurnal ramp: Poisson arrivals at rate
/// base * (1 + amplitude * sin(2*pi * t / day)), clamped at 0.
WorkloadPtr diurnal_workload(double base_rate, double amplitude,
                             double day_length);

/// Closed loop: a fixed client fleet issues exactly `queries_per_epoch`
/// queries every epoch (zero think-time variance, no latency feedback).
WorkloadPtr closed_loop_workload(std::size_t queries_per_epoch);

/// Latency-fed closed loop: `clients` clients cycle "issue a query, think,
/// repeat", where one cycle costs think_time plus the latency the service
/// served in the previous epoch (its route_p50 — latency IS time in the
/// Wardrop model). Arrivals in an epoch of length T are therefore
///   floor(clients * T / (think_time + l_prev)),
/// with l_prev = 0 for the first epoch. Congestion raises served latency,
/// which lowers the offered load — deterministic user back-pressure.
/// Requires clients >= 0 and think_time > 0.
WorkloadPtr closed_loop_latency_workload(std::size_t clients,
                                         double think_time);

/// Parses a workload spec:
///   "poisson:<rate>"
///   "bursty:<rate_on>,<rate_off>,<on_epochs>,<off_epochs>"
///   "diurnal:<base>,<amplitude>,<day_length>"
///   "closed-loop:<n>"
///   "closed-loop-lat:<clients>,<think_time>"
/// Throws std::invalid_argument listing the grammar on a bad spec.
WorkloadPtr make_workload(const std::string& spec);

/// Poisson variate with the given mean: Knuth's product method for small
/// means, a clamped normal approximation above 64 (exact distribution
/// tails are irrelevant at that size; determinism is what matters).
std::size_t poisson_draw(double mean, Rng& rng);

}  // namespace staleflow
