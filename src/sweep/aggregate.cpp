#include "sweep/aggregate.h"

#include <iomanip>
#include <sstream>

#include "util/csv.h"
#include "util/fnv.h"

namespace staleflow {
namespace {

GroupSummary& group_for(std::vector<GroupSummary>& groups,
                        const CellResult& cell) {
  for (GroupSummary& group : groups) {
    if (group.scenario == cell.cell.scenario &&
        group.policy == cell.cell.policy) {
      return group;
    }
  }
  GroupSummary fresh;
  fresh.scenario = cell.cell.scenario;
  fresh.policy = cell.cell.policy;
  groups.push_back(std::move(fresh));
  return groups.back();
}

/// Mean rendered as "-" for empty accumulators (e.g. no converged cells).
std::string fmt_mean(const RunningStats& stats, int precision = 4) {
  return stats.empty() ? "-" : fmt(stats.mean(), precision);
}

/// Histogram quantile rendered with round-trip precision, "" when empty —
/// the CSV convention for not-applicable numeric columns.
std::string fmt_quantile(const LogHistogram& histogram, double q) {
  return histogram.empty() ? "" : fmt_exact(histogram.quantile(q));
}

}  // namespace

std::vector<GroupSummary> summarise(const SweepResult& result) {
  std::vector<GroupSummary> groups;
  for (const CellResult& cell : result.cells) {
    GroupSummary& group = group_for(groups, cell);
    ++group.cells;
    if (!cell.ok) {
      ++group.errors;
      continue;
    }
    if (cell.converged) {
      ++group.converged;
      group.time_to_converge.add(cell.time_to_converge);
    }
    if (cell.settled) ++group.settled;
    if (cell.period_two) ++group.period_two;
    group.final_gap.add(cell.final_gap);
    group.final_potential.add(cell.final_potential);
    group.oscillation.add(cell.oscillation_amplitude);

    if (result.simulator == SimulatorKind::kService) {
      group.queries += cell.queries;
      group.migrations += cell.migrations;
      group.migration_rate.add(cell.migration_rate);
      group.latency.merge(cell.latency);
    }
  }
  return groups;
}

Table summary_table(std::span<const GroupSummary> groups) {
  Table table({"scenario", "policy", "cells", "conv", "err", "mean gap",
               "mean phi", "mean t_conv", "mean osc", "settled", "p2",
               "mean mig", "p99 lat"});
  for (const GroupSummary& group : groups) {
    table.add_row({group.scenario, group.policy, fmt_int((long long)group.cells),
                   fmt_int((long long)group.converged),
                   fmt_int((long long)group.errors),
                   group.final_gap.empty() ? "-"
                                           : fmt_sci(group.final_gap.mean()),
                   fmt_mean(group.final_potential),
                   fmt_mean(group.time_to_converge),
                   group.oscillation.empty()
                       ? "-"
                       : fmt_sci(group.oscillation.mean()),
                   fmt_int((long long)group.settled),
                   fmt_int((long long)group.period_two),
                   fmt_mean(group.migration_rate),
                   group.latency.empty()
                       ? "-"
                       : fmt(group.latency.quantile(0.99), 4)});
  }
  return table;
}

std::string fmt_exact(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

void write_cells_csv(const std::string& path, const SweepResult& result) {
  CsvWriter csv(path,
                {"index", "scenario", "policy", "update_period", "replica",
                 "workload", "shards", "tenants", "faults", "ok", "paths",
                 "commodities", "phases", "final_time", "converged",
                 "time_to_converge", "final_gap", "final_potential",
                 "oscillation_amplitude", "settled", "period_two",
                 "queries", "migrations", "migration_rate", "latency_p50",
                 "latency_p99", "latency_p999", "error"});
  for (const CellResult& cell : result.cells) {
    csv.add_row({fmt_int((long long)cell.cell.index), cell.cell.scenario,
                 cell.cell.policy, fmt_exact(cell.cell.update_period),
                 fmt_int((long long)cell.cell.replica), cell.cell.workload,
                 fmt_int((long long)cell.cell.shards),
                 fmt_int((long long)cell.cell.tenants), cell.cell.faults,
                 fmt_bool(cell.ok),
                 fmt_int((long long)cell.paths),
                 fmt_int((long long)cell.commodities),
                 fmt_int((long long)cell.phases), fmt_exact(cell.final_time),
                 fmt_bool(cell.converged),
                 cell.converged ? fmt_exact(cell.time_to_converge) : "",
                 fmt_exact(cell.final_gap), fmt_exact(cell.final_potential),
                 fmt_exact(cell.oscillation_amplitude),
                 fmt_bool(cell.settled), fmt_bool(cell.period_two),
                 fmt_int((long long)cell.queries),
                 fmt_int((long long)cell.migrations),
                 fmt_exact(cell.migration_rate),
                 fmt_quantile(cell.latency, 0.5),
                 fmt_quantile(cell.latency, 0.99),
                 fmt_quantile(cell.latency, 0.999), cell.error});
  }
  csv.close();
}

void write_summary_csv(const std::string& path,
                       std::span<const GroupSummary> groups) {
  CsvWriter csv(path, {"scenario", "policy", "cells", "errors", "converged",
                       "settled", "period_two", "mean_final_gap",
                       "max_final_gap", "mean_final_potential",
                       "mean_time_to_converge", "mean_oscillation",
                       "queries", "migrations", "mean_migration_rate",
                       "latency_p50", "latency_p99", "latency_p999"});
  for (const GroupSummary& group : groups) {
    csv.add_row({group.scenario, group.policy,
                 fmt_int((long long)group.cells),
                 fmt_int((long long)group.errors),
                 fmt_int((long long)group.converged),
                 fmt_int((long long)group.settled),
                 fmt_int((long long)group.period_two),
                 group.final_gap.empty() ? ""
                                         : fmt_exact(group.final_gap.mean()),
                 group.final_gap.empty() ? ""
                                         : fmt_exact(group.final_gap.max()),
                 group.final_potential.empty()
                     ? ""
                     : fmt_exact(group.final_potential.mean()),
                 group.time_to_converge.empty()
                     ? ""
                     : fmt_exact(group.time_to_converge.mean()),
                 group.oscillation.empty()
                     ? ""
                     : fmt_exact(group.oscillation.mean()),
                 fmt_int((long long)group.queries),
                 fmt_int((long long)group.migrations),
                 group.migration_rate.empty()
                     ? ""
                     : fmt_exact(group.migration_rate.mean()),
                 fmt_quantile(group.latency, 0.5),
                 fmt_quantile(group.latency, 0.99),
                 fmt_quantile(group.latency, 0.999)});
  }
  csv.close();
}

void write_hist_csv(const std::string& path, const SweepResult& result) {
  CsvWriter csv(path, {"index", "scenario", "policy", "update_period",
                       "replica", "workload", "shards", "tenants", "faults",
                       "bucket", "lower", "upper", "count", "cumulative"});
  for (const CellResult& cell : result.cells) {
    if (cell.latency.empty()) continue;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < cell.latency.bucket_count(); ++b) {
      const std::uint64_t count = cell.latency.bucket_value(b);
      if (count == 0) continue;  // occupied buckets only: CDFs, not zeros
      cumulative += count;
      csv.add_row({fmt_int((long long)cell.cell.index), cell.cell.scenario,
                   cell.cell.policy, fmt_exact(cell.cell.update_period),
                   fmt_int((long long)cell.cell.replica), cell.cell.workload,
                   fmt_int((long long)cell.cell.shards),
                   fmt_int((long long)cell.cell.tenants), cell.cell.faults,
                   fmt_int((long long)b), fmt_exact(cell.latency.bucket_lower(b)),
                   fmt_exact(cell.latency.bucket_upper(b)),
                   fmt_int((long long)count), fmt_int((long long)cumulative)});
    }
  }
  csv.close();
}

std::uint64_t cells_digest(const SweepResult& result) {
  std::uint64_t h = fnv::kOffsetBasis;
  for (const CellResult& cell : result.cells) {
    fnv::hash_u64(h, cell.cell.index);
    fnv::hash_string(h, cell.cell.scenario);
    fnv::hash_string(h, cell.cell.policy);
    fnv::hash_double(h, cell.cell.update_period);
    fnv::hash_u64(h, cell.cell.replica);
    fnv::hash_string(h, cell.cell.workload);
    fnv::hash_u64(h, cell.cell.shards);
    fnv::hash_u64(h, cell.cell.tenants);
    // Gated so healthy sweeps keep their pre-fault-axis digests; a chaos
    // sweep hashes the spec so a silently dropped fault axis cannot pin.
    if (!cell.cell.faults.empty()) fnv::hash_string(h, cell.cell.faults);
    fnv::hash_u64(h, cell.ok ? 1 : 0);
    fnv::hash_u64(h, cell.paths);
    fnv::hash_u64(h, cell.commodities);
    fnv::hash_u64(h, cell.phases);
    fnv::hash_double(h, cell.final_time);
    fnv::hash_u64(h, cell.converged ? 1 : 0);
    fnv::hash_double(h, cell.converged ? cell.time_to_converge : 0.0);
    fnv::hash_double(h, cell.final_gap);
    fnv::hash_double(h, cell.final_potential);
    fnv::hash_double(h, cell.oscillation_amplitude);
    fnv::hash_u64(h, cell.queries);
    fnv::hash_u64(h, cell.migrations);
    fnv::hash_double(h, cell.migration_rate);
    if (!cell.latency.empty()) {
      fnv::hash_u64(h, cell.latency.count());
      fnv::hash_double(h, cell.latency.quantile(0.5));
      fnv::hash_double(h, cell.latency.quantile(0.99));
      fnv::hash_double(h, cell.latency.quantile(0.999));
    }
  }
  return h;
}

}  // namespace staleflow
