// Aggregation of sweep results: scenario x policy group summaries, the
// paper-style summary table, and CSV export.
//
// CSV output is part of the determinism contract: cells are emitted in
// canonical order with fixed maximum-precision number formatting and no
// timing columns, so two sweeps with the same spec and seed produce
// byte-identical files regardless of thread count.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sweep/runner.h"
#include "util/statistics.h"
#include "util/table.h"

namespace staleflow {

/// Accumulated metrics of all cells sharing a scenario x policy pair
/// (periods and replicas pooled).
struct GroupSummary {
  std::string scenario;
  std::string policy;
  std::size_t cells = 0;
  std::size_t errors = 0;      // cells with ok == false
  std::size_t converged = 0;
  std::size_t settled = 0;
  std::size_t period_two = 0;
  RunningStats final_gap;          // over ok cells
  RunningStats final_potential;    // over ok cells
  RunningStats time_to_converge;   // over converged cells only
  RunningStats oscillation;        // step amplitude over ok cells
};

/// Groups cells by scenario x policy, in order of first appearance (which
/// for a spec expansion is scenario-major, then policy).
std::vector<GroupSummary> summarise(const SweepResult& result);

/// Renders the scenario x policy summary in the repo's bench table style.
Table summary_table(std::span<const GroupSummary> groups);

/// Writes one row per cell (canonical order, no timing columns).
void write_cells_csv(const std::string& path, const SweepResult& result);

/// Writes one row per scenario x policy group.
void write_summary_csv(const std::string& path,
                       std::span<const GroupSummary> groups);

/// Round-trip double formatting (17 significant digits) used by the CSVs;
/// exposed for tests asserting byte-identical output.
std::string fmt_exact(double value);

}  // namespace staleflow
