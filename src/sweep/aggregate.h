// Aggregation of sweep results: scenario x policy group summaries, the
// paper-style summary table, CSV export, and the FNV digest golden tests
// pin.
//
// CSV output is part of the determinism contract: cells are emitted in
// canonical order with fixed maximum-precision number formatting and no
// timing columns, so two sweeps with the same spec and seed produce
// byte-identical files regardless of thread count. Service-cell latency
// quantiles come from each cell's merged LogHistogram (exact, mergeable),
// and groups pool those histograms across cells — the capacity-planning
// aggregation path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sweep/runner.h"
#include "util/log_histogram.h"
#include "util/statistics.h"
#include "util/table.h"

namespace staleflow {

/// Accumulated metrics of all cells sharing a scenario x policy pair
/// (periods, workloads, shard counts and replicas pooled).
struct GroupSummary {
  std::string scenario;
  std::string policy;
  std::size_t cells = 0;
  std::size_t errors = 0;      // cells with ok == false
  std::size_t converged = 0;
  std::size_t settled = 0;
  std::size_t period_two = 0;
  RunningStats final_gap;          // over ok cells
  RunningStats final_potential;    // over ok cells
  RunningStats time_to_converge;   // over converged cells only
  RunningStats oscillation;        // step amplitude over ok cells

  // Service cells only (zero / empty otherwise).
  std::size_t queries = 0;
  std::size_t migrations = 0;
  RunningStats migration_rate;  // per-cell rates over ok service cells
  LogHistogram latency;         // cells' route-latency histograms, merged
};

/// Groups cells by scenario x policy, in order of first appearance (which
/// for a spec expansion is scenario-major, then policy).
std::vector<GroupSummary> summarise(const SweepResult& result);

/// Renders the scenario x policy summary in the repo's bench table style.
Table summary_table(std::span<const GroupSummary> groups);

/// Writes one row per cell (canonical order, no timing columns).
void write_cells_csv(const std::string& path, const SweepResult& result);

/// Writes one row per scenario x policy group.
void write_summary_csv(const std::string& path,
                       std::span<const GroupSummary> groups);

/// Writes every occupied latency-histogram bucket of every service cell:
/// one row per (cell, bucket) with the bucket bounds, its count and the
/// cumulative count up to and including it — everything a notebook needs
/// to draw the full latency CDF of each cell (not just three quantiles).
/// Cells without latency data (non-service simulators, zero queries) are
/// skipped. Deterministic: canonical cell order, exact bucket geometry,
/// round-trip number formatting.
void write_hist_csv(const std::string& path, const SweepResult& result);

/// FNV-1a digest over every cell's deterministic outcome (strings as
/// bytes, doubles as bit patterns — not their decimal rendering).
/// Thread-count independent by the sweep determinism contract; golden
/// tests and the CI smoke pin it for fixed specs.
std::uint64_t cells_digest(const SweepResult& result);

/// Round-trip double formatting (17 significant digits) used by the CSVs;
/// exposed for tests asserting byte-identical output.
std::string fmt_exact(double value);

}  // namespace staleflow
