#include "sweep/runner.h"

#include <chrono>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "agents/agent_simulator.h"
#include "analysis/oscillation.h"
#include "analysis/trajectory.h"
#include "core/fluid_simulator.h"
#include "core/round_simulator.h"
#include "equilibrium/metrics.h"
#include "equilibrium/potential.h"
#include "faults/fault_plan.h"
#include "net/flow.h"
#include "exec/executor.h"
#include "service/route_server.h"
#include "service/tenant.h"
#include "service/workload.h"

namespace staleflow {
namespace {

/// Fills the tail-behaviour fields from the recorder's flow snapshots.
void analyse_tail(const TrajectoryRecorder& recorder, CellResult& out) {
  const auto& flows = recorder.flows();
  if (flows.size() < 4) return;  // too short to classify
  const OscillationReport report = analyse_oscillation(flows);
  out.oscillation_amplitude = report.step_amplitude;
  out.settled = report.settled;
  out.period_two = report.period_two;
}

void run_fluid(const Instance& instance, const Policy& policy,
               const ExperimentSpec& spec, CellResult& out) {
  SimulationOptions options;
  options.update_period = out.cell.update_period;
  options.horizon = spec.horizon;
  options.stop_gap = spec.stop_gap;

  TrajectoryOptions record;
  record.store_flows = true;
  TrajectoryRecorder recorder(instance, record);

  const FluidSimulator simulator(instance, policy);
  const SimulationResult result =
      simulator.run(FlowVector::uniform(instance), options,
                    recorder.observer());

  out.phases = result.phases;
  out.final_time = result.final_time;
  out.final_gap = result.final_gap;
  out.final_potential = result.final_potential;
  out.converged = result.stopped_by_gap ||
                  (spec.stop_gap > 0.0 && result.final_gap <= spec.stop_gap);
  if (out.converged) {
    const auto when = recorder.time_to_gap(spec.stop_gap);
    out.time_to_converge = when ? *when : result.final_time;
  }
  analyse_tail(recorder, out);
}

void run_round(const Instance& instance, const Policy& policy,
               const ExperimentSpec& spec, CellResult& out) {
  RoundSimOptions options;
  options.activation_probability = spec.activation_probability;
  options.rounds_per_update = static_cast<std::size_t>(std::max(
      1.0, std::round(out.cell.update_period / spec.round_length)));
  options.total_rounds = static_cast<std::size_t>(
      std::max(1.0, std::round(spec.horizon / spec.round_length)));
  options.stop_gap = spec.stop_gap;

  TrajectoryOptions record;
  record.store_flows = true;
  TrajectoryRecorder recorder(instance, record);
  // Adapt the round observer to the phase observer the recorder expects;
  // a round of the map represents `round_length` units of fluid time.
  const PhaseObserver phase_observer = recorder.observer();
  const RoundObserver observer = [&](const RoundInfo& info) {
    PhaseInfo phase;
    phase.index = info.round;
    phase.start_time = spec.round_length * static_cast<double>(info.round);
    phase.end_time = spec.round_length * static_cast<double>(info.round + 1);
    phase.flow_before = info.flow_before;
    phase.flow_after = info.flow_after;
    phase_observer(phase);
  };

  const RoundSimulator simulator(instance, policy);
  const RoundSimResult result =
      simulator.run(FlowVector::uniform(instance), options, observer);

  out.phases = result.rounds;
  out.final_time = spec.round_length * static_cast<double>(result.rounds);
  out.final_gap = result.final_gap;
  out.final_potential = result.final_potential;
  out.converged = result.stopped_by_gap ||
                  (spec.stop_gap > 0.0 && result.final_gap <= spec.stop_gap);
  if (out.converged) {
    const auto when = recorder.time_to_gap(spec.stop_gap);
    out.time_to_converge = when ? *when : out.final_time;
  }
  analyse_tail(recorder, out);
}

void run_agent(const Instance& instance, const Policy& policy,
               const ExperimentSpec& spec, Rng& sim_rng, CellResult& out) {
  AgentSimOptions options;
  options.num_agents = spec.num_agents;
  options.update_period = out.cell.update_period;
  options.horizon = spec.horizon;
  options.seed = sim_rng();

  TrajectoryOptions record;
  record.store_flows = true;
  TrajectoryRecorder recorder(instance, record);

  const AgentSimulator simulator(instance, policy);
  const AgentSimResult result =
      simulator.run(FlowVector::uniform(instance), options,
                    recorder.observer());

  out.phases = result.phases;
  out.final_time = result.final_time;
  out.final_gap = wardrop_gap(instance, result.final_flow.values());
  out.final_potential = potential(instance, result.final_flow.values());
  out.converged = spec.stop_gap > 0.0 && out.final_gap <= spec.stop_gap;
  if (out.converged) {
    const auto when = recorder.time_to_gap(spec.stop_gap);
    out.time_to_converge = when ? *when : result.final_time;
  }
  analyse_tail(recorder, out);
}

void run_service(const Instance& instance, const Policy& policy,
                 const ExperimentSpec& spec, Rng& sim_rng,
                 Executor& executor, CellResult& out) {
  const WorkloadPtr workload = make_workload(out.cell.workload);

  RouteServerOptions options;
  options.update_period = out.cell.update_period;
  options.epochs = static_cast<std::size_t>(
      std::max(1.0, std::round(spec.horizon / out.cell.update_period)));
  options.num_clients = spec.num_clients;
  options.shards = out.cell.shards;
  // The cell serves on the sweep's own executor: in-cell sub-batch and
  // snapshot-build tasks interleave with other cells on the one shared
  // pool (no nested pools, no oversubscription), and the service
  // determinism contract keeps the outcome independent of who runs what.
  options.executor = &executor;
  options.sub_batch_queries = spec.sub_batch_queries;
  options.sub_batch_auto = spec.sub_batch_auto;
  options.record_latency = false;  // replay mode: fully deterministic

  // Seeds first, THEN the fault schedule: the schedule is derived from
  // the first tenant's seed, and drawing all seeds up front keeps the
  // sim_rng walk identical to the pre-faults runner (same cell, same
  // seeds, healthy or not).
  const std::size_t tenants = std::max<std::size_t>(1, out.cell.tenants);
  std::vector<std::uint64_t> seeds(tenants);
  for (std::uint64_t& seed : seeds) seed = sim_rng();

  faults::FaultSchedule fault_schedule;
  if (!out.cell.faults.empty() && out.cell.faults != "none") {
    fault_schedule = faults::FaultSchedule::materialize(
        faults::parse_fault_plan(out.cell.faults), seeds.front(),
        options.epochs);
    options.faults = &fault_schedule;
  }

  if (tenants == 1) {
    options.seed = seeds.front();
    RouteServer server(instance, policy, *workload);
    const RouteServerResult result =
        server.run(FlowVector::uniform(instance), options);

    out.phases = result.epochs.size();
    out.final_time =
        out.cell.update_period * static_cast<double>(result.epochs.size());
    out.final_gap = result.final_gap;
    out.final_potential = potential(instance, result.final_flow.values());
    out.converged = spec.stop_gap > 0.0 && out.final_gap <= spec.stop_gap;
    if (out.converged) {
      // First epoch boundary at which the folded flow reached the gap.
      for (const EpochSummary& epoch : result.epochs) {
        if (epoch.wardrop_gap <= spec.stop_gap) {
          out.time_to_converge = epoch.end_time;
          break;
        }
      }
    }
    out.queries = result.total_queries;
    out.migrations = result.total_migrations;
    out.migration_rate =
        result.total_queries > 0
            ? static_cast<double>(result.total_migrations) /
                  static_cast<double>(result.total_queries)
            : 0.0;
    out.latency = result.route_latency;
    return;
  }

  // Co-tenancy cell: N replicas of the configuration (per-tenant seeds
  // split from the cell stream in tenant order) multiplexed on the shared
  // executor. The aggregate reports the host's view: queries/migrations
  // and the latency histogram pool over tenants, the gap is the WORST
  // tenant's, convergence means EVERY tenant converged (time = the last
  // tenant's crossing), and the potential is the tenant mean.
  TenantRegistry registry;
  options.executor = nullptr;  // the registry serves on `executor` directly
  for (std::size_t t = 0; t < tenants; ++t) {
    TenantOptions tenant;
    tenant.server = options;
    tenant.server.seed = seeds[t];
    registry.add("t" + std::to_string(t), instance, policy, *workload,
                 tenant);
  }
  const MultiTenantResult multi = registry.run(executor);

  out.phases = multi.total_epochs();
  out.final_time = out.cell.update_period *
                   static_cast<double>(
                       multi.tenants.front().server.epochs.size());
  out.converged = spec.stop_gap > 0.0;
  double potential_sum = 0.0;
  for (const TenantResult& tenant : multi.tenants) {
    const RouteServerResult& result = tenant.server;
    out.final_gap = std::max(out.final_gap, result.final_gap);
    potential_sum += potential(instance, result.final_flow.values());
    out.queries += result.total_queries;
    out.migrations += result.total_migrations;
    out.latency.merge(result.route_latency);

    bool tenant_converged = false;
    if (spec.stop_gap > 0.0) {
      for (const EpochSummary& epoch : result.epochs) {
        if (epoch.wardrop_gap <= spec.stop_gap) {
          out.time_to_converge =
              std::max(out.time_to_converge, epoch.end_time);
          tenant_converged = true;
          break;
        }
      }
    }
    out.converged = out.converged && tenant_converged &&
                    result.final_gap <= spec.stop_gap;
  }
  if (!out.converged) out.time_to_converge = 0.0;
  out.final_potential =
      potential_sum / static_cast<double>(multi.tenants.size());
  out.migration_rate =
      out.queries > 0 ? static_cast<double>(out.migrations) /
                            static_cast<double>(out.queries)
                      : 0.0;
}

CellResult run_cell(const Scenario& scenario, const PolicySpec& policy_spec,
                    const ExperimentSpec& spec, Executor& executor,
                    CellSpec cell, Rng rng) {
  CellResult out;
  out.cell = std::move(cell);
  try {
    // Fixed stream layout per cell: one child for instance generation, one
    // for simulator randomness. Splitting both up front keeps the layout
    // stable if one consumer is skipped.
    Rng instance_rng = rng.split();
    Rng sim_rng = rng.split();

    const Instance instance = scenario.make(instance_rng);
    out.paths = instance.path_count();
    out.commodities = instance.commodity_count();
    const Policy policy =
        policy_spec.make(instance, out.cell.update_period);

    switch (spec.simulator) {
      case SimulatorKind::kFluid:
        run_fluid(instance, policy, spec, out);
        break;
      case SimulatorKind::kRound:
        run_round(instance, policy, spec, out);
        break;
      case SimulatorKind::kAgent:
        run_agent(instance, policy, spec, sim_rng, out);
        break;
      case SimulatorKind::kService:
        run_service(instance, policy, spec, sim_rng, executor, out);
        break;
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  return out;
}

}  // namespace

SweepRunner::SweepRunner() : registry_(ScenarioRegistry::builtin()) {}

SweepRunner::SweepRunner(ScenarioRegistry registry)
    : registry_(std::move(registry)) {}

SweepResult SweepRunner::run(const ExperimentSpec& spec, std::size_t threads,
                             const SweepProgress& progress) const {
  Executor executor(threads);
  return run(spec, executor, progress);
}

SweepResult SweepRunner::run(const ExperimentSpec& spec, Executor& executor,
                             const SweepProgress& progress) const {
  const std::vector<CellSpec> cells = expand(spec, registry_);

  std::unordered_map<std::string, const PolicySpec*> policies;
  for (const PolicySpec& policy : spec.policies) {
    policies.emplace(policy.name, &policy);
  }

  // Derive every cell's RNG stream by walking the canonical order. This is
  // the determinism linchpin: streams depend only on (base_seed, index),
  // never on which thread runs the cell or when.
  Rng master(spec.base_seed);
  std::vector<Rng> streams;
  streams.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    streams.push_back(master.split());
  }

  SweepResult result;
  result.simulator = spec.simulator;
  result.cells.resize(cells.size());

  std::size_t done = 0;
  std::mutex progress_mutex;

  const auto start = std::chrono::steady_clock::now();
  executor.parallel_for(cells.size(), [&](std::size_t i) {
    const CellSpec& cell = cells[i];
    result.cells[i] = run_cell(registry_.at(cell.scenario),
                               *policies.at(cell.policy), spec, executor,
                               cell, streams[i]);
    if (progress) {
      // Count under the same lock as the callback so completion counts
      // arrive in order (the final (total, total) call really is last).
      const std::lock_guard<std::mutex> lock(progress_mutex);
      progress(++done, cells.size());
    }
  });
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace staleflow
