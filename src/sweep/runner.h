// The sweep executor: expands an ExperimentSpec and runs its cells on the
// shared execution layer (src/exec/).
//
// Determinism contract: every cell gets its own Rng stream, derived by
// walking the canonical cell order with Rng::split() *before* any cell is
// dispatched. Cells share nothing mutable (the simulators are const and
// keep all run state local), so the result vector is bit-identical for any
// thread count — `sweep --threads 1` and `--threads 64` produce the same
// CSV byte for byte. kService cells hand the sweep's own Executor down to
// their RouteServer, so in-cell parallelism (sub-batch serving, pipelined
// snapshot builds) runs on the same pool as the cell grid instead of
// spawning nested pools — one pool, no oversubscription, same bits.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "sweep/scenario.h"
#include "sweep/spec.h"
#include "util/log_histogram.h"

namespace staleflow {

/// Everything recorded about one executed cell.
struct CellResult {
  CellSpec cell;

  /// False if the cell threw; `error` holds the message and every metric
  /// below is left at its default.
  bool ok = true;
  std::string error;

  // Instance shape (useful when scenarios are randomised per replica).
  std::size_t paths = 0;
  std::size_t commodities = 0;

  // Outcome.
  std::size_t phases = 0;       // phases (fluid/agent) or rounds (round)
  double final_time = 0.0;      // simulated time reached
  bool converged = false;       // gap <= spec.stop_gap by the end
  double time_to_converge = 0;  // first recorded time with gap <= stop_gap;
                                // meaningful only when converged
  double final_gap = 0.0;       // Wardrop gap at the final flow
  double final_potential = 0.0;

  // Tail behaviour (analysis/oscillation over recorded phase flows).
  double oscillation_amplitude = 0.0;  // max step between consecutive phases
  bool settled = false;
  bool period_two = false;

  // Service outcome (simulator == kService only; defaults elsewhere).
  // A co-tenancy cell (cell.tenants > 1) aggregates over its tenants:
  // queries/migrations/latency pool, phases sums every tenant's epochs,
  // final_gap is the worst tenant's, converged requires every tenant,
  // time_to_converge is the last tenant's crossing, and final_potential
  // is the tenant mean.
  std::size_t queries = 0;
  std::size_t migrations = 0;
  double migration_rate = 0.0;  // migrations / queries over the whole run
  /// Deterministic per-query route-latency distribution of the cell
  /// (board latency of the served path), mergeable across cells — all
  /// cells share the default LogHistogram configuration.
  LogHistogram latency;
};

/// A finished sweep: per-cell results in canonical cell order.
struct SweepResult {
  SimulatorKind simulator = SimulatorKind::kFluid;
  std::vector<CellResult> cells;
  double wall_seconds = 0.0;  // wall-clock of the whole run (not per cell)

  double cells_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(cells.size()) / wall_seconds
               : 0.0;
  }
};

/// Called after each finished cell with (cells done, cells total). Invoked
/// from worker threads under a lock; keep it cheap.
using SweepProgress = std::function<void(std::size_t, std::size_t)>;

/// Expands and executes ExperimentSpecs against a scenario registry.
class SweepRunner {
 public:
  /// Uses the built-in scenario catalogue.
  SweepRunner();
  explicit SweepRunner(ScenarioRegistry registry);

  const ScenarioRegistry& registry() const noexcept { return registry_; }

  /// Runs every cell of the spec on `threads` workers (1 = inline on the
  /// calling thread; 0 = hardware concurrency). A cell that throws is
  /// recorded as ok = false rather than aborting the sweep. Throws on an
  /// invalid spec (see expand()).
  SweepResult run(const ExperimentSpec& spec, std::size_t threads = 1,
                  const SweepProgress& progress = nullptr) const;

  /// Same, on a caller-owned Executor — the shared-pool form: cells run
  /// as executor tasks, and kService cells reuse the same executor for
  /// their in-cell parallelism.
  SweepResult run(const ExperimentSpec& spec, Executor& executor,
                  const SweepProgress& progress = nullptr) const;

 private:
  ScenarioRegistry registry_;
};

}  // namespace staleflow
