#include "sweep/scenario.h"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "net/generators.h"

namespace staleflow {

ScenarioRegistry ScenarioRegistry::builtin() {
  ScenarioRegistry registry;
  registry.add({"two-link-pulse",
                "Section 3.2 oscillation instance, beta = 4",
                [](Rng&) { return two_link_pulse(4.0); }});
  registry.add({"braess",
                "Braess network with the paradox shortcut",
                [](Rng&) { return braess(true); }});
  registry.add({"braess-no-shortcut",
                "Braess network without the shortcut edge",
                [](Rng&) { return braess(false); }});
  registry.add({"chained-braess-2",
                "two Braess gadgets in series (9 paths)",
                [](Rng&) { return chained_braess(2); }});
  registry.add({"uniform-links-8",
                "8 identical affine parallel links l(x) = 0.5 + x",
                [](Rng&) { return uniform_parallel_links(8, 0.5, 1.0); }});
  registry.add({"random-links-8",
                "8 affine parallel links, random offsets/slopes",
                [](Rng& rng) { return random_parallel_links(8, rng); }});
  registry.add({"random-links-32",
                "32 affine parallel links, random offsets/slopes",
                [](Rng& rng) { return random_parallel_links(32, rng); }});
  registry.add({"grid-3x3",
                "3x3 directed grid, random affine latencies",
                [](Rng& rng) { return grid(3, 3, rng); }});
  registry.add({"layered-4x3",
                "layered DAG: 4 layers of width 3, fanout 2",
                [](Rng& rng) { return layered_dag(4, 3, 2, rng); }});
  registry.add({"series-parallel-3",
                "recursive series-parallel network of depth 3",
                [](Rng& rng) { return series_parallel(3, rng); }});
  registry.add({"shared-bottleneck",
                "two commodities sharing a congestible middle edge",
                [](Rng&) { return shared_bottleneck(); }});
  registry.add({"multicommodity-grid-3x3",
                "3x3 grid with 2 border-pair commodities",
                [](Rng& rng) { return multicommodity_grid(3, 3, 2, rng); }});
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty()) {
    throw std::invalid_argument("ScenarioRegistry::add: empty name");
  }
  if (!scenario.make) {
    throw std::invalid_argument("ScenarioRegistry::add: null factory for '" +
                                scenario.name + "'");
  }
  if (contains(scenario.name)) {
    throw std::invalid_argument("ScenarioRegistry::add: duplicate name '" +
                                scenario.name + "'");
  }
  scenarios_.push_back(std::move(scenario));
}

bool ScenarioRegistry::contains(const std::string& name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return true;
  }
  return false;
}

const Scenario& ScenarioRegistry::at(const std::string& name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return s;
  }
  std::ostringstream message;
  message << "ScenarioRegistry: unknown scenario '" << name << "' (have:";
  for (const Scenario& s : scenarios_) message << ' ' << s.name;
  message << ')';
  throw std::out_of_range(message.str());
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const Scenario& s : scenarios_) out.push_back(s.name);
  return out;
}

}  // namespace staleflow
