// Named scenario registry: the sweep engine's catalogue of instances.
//
// A scenario is a named, deterministic recipe for an Instance. Randomised
// families (random parallel links, grids, layered DAGs) draw from the Rng
// handed in, so the same scenario + rng state always yields the same
// instance — which is what lets sweep cells be replayed bit-identically.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/instance.h"
#include "util/rng.h"

namespace staleflow {

/// A named instance recipe. `make` must be a pure function of the rng
/// state (no other hidden inputs), so identical seeds reproduce the
/// instance exactly.
struct Scenario {
  std::string name;
  std::string description;
  std::function<Instance(Rng&)> make;
};

/// Lookup table of scenarios, keyed by name.
class ScenarioRegistry {
 public:
  /// The standard catalogue wrapping net/generators.h: the paper's
  /// two-link pulse, Braess variants, parallel-link families, grids,
  /// layered DAGs, series-parallel networks and multi-commodity
  /// instances. See builtin_scenarios() for the full list.
  static ScenarioRegistry builtin();

  /// Registers a scenario. Throws std::invalid_argument on an empty name,
  /// a null factory, or a duplicate name.
  void add(Scenario scenario);

  bool contains(const std::string& name) const;

  /// Throws std::out_of_range with a helpful message for unknown names.
  const Scenario& at(const std::string& name) const;

  /// Registered names in registration order.
  std::vector<std::string> names() const;

  std::size_t size() const noexcept { return scenarios_.size(); }

 private:
  std::vector<Scenario> scenarios_;  // registration order; linear lookup
};

}  // namespace staleflow
