#include "sweep/spec.h"

#include <stdexcept>

#include "faults/fault_plan.h"
#include "service/workload.h"

namespace staleflow {
namespace {

/// Parses the numeric parameter of a "name:value" policy spec.
double parse_parameter(const std::string& spec, std::size_t colon) {
  const std::string value = spec.substr(colon + 1);
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("named_policy: bad parameter in '" + spec +
                                "'");
  }
}

}  // namespace

PolicySpec named_policy(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string head = spec.substr(0, colon);

  // Parameter-less policies must not silently swallow a ":value" suffix —
  // the full spec string labels every result row, so running "replicator"
  // under the name "replicator:2" would mis-attribute the data.
  const auto reject_parameter = [&] {
    if (colon != std::string::npos) {
      throw std::invalid_argument("named_policy: '" + head +
                                  "' takes no parameter (got '" + spec +
                                  "')");
    }
  };

  if (head == "replicator") {
    reject_parameter();
    return {spec, [](const Instance& instance, double) {
              return make_replicator_policy(instance);
            }};
  }
  if (head == "uniform-linear") {
    reject_parameter();
    return {spec, [](const Instance& instance, double) {
              return make_uniform_linear_policy(instance);
            }};
  }
  if (head == "alpha") {
    if (colon == std::string::npos) {
      throw std::invalid_argument("named_policy: 'alpha' needs a parameter, "
                                  "e.g. 'alpha:0.5'");
    }
    const double alpha = parse_parameter(spec, colon);
    if (!(alpha > 0.0)) {
      throw std::invalid_argument("named_policy: alpha must be > 0");
    }
    return {spec,
            [alpha](const Instance&, double) { return make_alpha_policy(alpha); }};
  }
  if (head == "logit") {
    if (colon == std::string::npos) {
      throw std::invalid_argument("named_policy: 'logit' needs a parameter, "
                                  "e.g. 'logit:10'");
    }
    const double c = parse_parameter(spec, colon);
    return {spec, [c](const Instance& instance, double) {
              return make_logit_policy(instance, c);
            }};
  }
  if (head == "naive") {
    reject_parameter();
    return {spec, [](const Instance&, double) {
              return make_naive_better_response_policy();
            }};
  }
  if (head == "relative-slack") {
    const double shift =
        colon == std::string::npos ? 0.0 : parse_parameter(spec, colon);
    if (shift < 0.0) {
      throw std::invalid_argument("named_policy: shift must be >= 0");
    }
    return {spec, [shift](const Instance&, double) {
              return make_relative_slack_policy(shift);
            }};
  }
  if (head == "safe") {
    reject_parameter();
    return {spec, [](const Instance& instance, double update_period) {
              return make_safe_policy(instance, update_period);
            }};
  }
  throw std::invalid_argument("named_policy: unknown policy '" + spec +
                              "' (have: replicator, uniform-linear, alpha:<a>, "
                              "logit:<c>, naive, relative-slack[:<s>], safe)");
}

SimulatorKind parse_simulator_kind(const std::string& name) {
  if (name == "fluid") return SimulatorKind::kFluid;
  if (name == "round") return SimulatorKind::kRound;
  if (name == "agent") return SimulatorKind::kAgent;
  if (name == "service") return SimulatorKind::kService;
  throw std::invalid_argument(
      "parse_simulator_kind: unknown simulator '" + name +
      "' (have: fluid, round, agent, service)");
}

std::string to_string(SimulatorKind kind) {
  switch (kind) {
    case SimulatorKind::kFluid: return "fluid";
    case SimulatorKind::kRound: return "round";
    case SimulatorKind::kAgent: return "agent";
    case SimulatorKind::kService: return "service";
  }
  throw std::logic_error("to_string: unknown SimulatorKind");
}

std::size_t cell_count(const ExperimentSpec& spec) {
  std::size_t count = spec.scenarios.size() * spec.policies.size() *
                      spec.update_periods.size() * spec.replicas;
  if (spec.simulator == SimulatorKind::kService) {
    count *= spec.workloads.size() * spec.shard_counts.size() *
             std::max<std::size_t>(1, spec.tenant_counts.size()) *
             std::max<std::size_t>(1, spec.fault_specs.size());
  }
  return count;
}

std::vector<CellSpec> expand(const ExperimentSpec& spec,
                             const ScenarioRegistry& registry) {
  if (spec.scenarios.empty()) {
    throw std::invalid_argument("expand: no scenarios");
  }
  if (spec.policies.empty()) {
    throw std::invalid_argument("expand: no policies");
  }
  if (spec.update_periods.empty()) {
    throw std::invalid_argument("expand: no update periods");
  }
  if (spec.replicas == 0) {
    throw std::invalid_argument("expand: replicas must be >= 1");
  }
  for (std::size_t i = 0; i < spec.policies.size(); ++i) {
    if (!spec.policies[i].make) {
      throw std::invalid_argument("expand: null policy factory '" +
                                  spec.policies[i].name + "'");
    }
    for (std::size_t j = i + 1; j < spec.policies.size(); ++j) {
      if (spec.policies[i].name == spec.policies[j].name) {
        throw std::invalid_argument("expand: duplicate policy '" +
                                    spec.policies[i].name + "'");
      }
    }
  }
  for (std::size_t i = 0; i < spec.scenarios.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.scenarios.size(); ++j) {
      if (spec.scenarios[i] == spec.scenarios[j]) {
        throw std::invalid_argument("expand: duplicate scenario '" +
                                    spec.scenarios[i] + "'");
      }
    }
  }
  for (const double period : spec.update_periods) {
    if (!(period > 0.0)) {
      throw std::invalid_argument("expand: update periods must be > 0");
    }
  }
  if (!(spec.horizon > 0.0)) {
    throw std::invalid_argument("expand: horizon must be > 0");
  }
  for (const std::string& name : spec.scenarios) {
    registry.at(name);  // throws std::out_of_range on unknown names
  }

  const bool service = spec.simulator == SimulatorKind::kService;
  if (!service && (!spec.workloads.empty() || !spec.shard_counts.empty() ||
                   !spec.tenant_counts.empty() || !spec.fault_specs.empty())) {
    throw std::invalid_argument(
        "expand: workload/shard/tenant/fault axes require the service "
        "simulator (--simulator service)");
  }
  if (service) {
    if (spec.workloads.empty()) {
      throw std::invalid_argument(
          "expand: the service simulator needs at least one workload "
          "(e.g. poisson:<rate>, closed-loop:<n>)");
    }
    if (spec.shard_counts.empty()) {
      throw std::invalid_argument(
          "expand: the service simulator needs at least one shard count");
    }
    for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
      make_workload(spec.workloads[i]);  // typos fail here, not mid-sweep
      for (std::size_t j = i + 1; j < spec.workloads.size(); ++j) {
        if (spec.workloads[i] == spec.workloads[j]) {
          throw std::invalid_argument("expand: duplicate workload '" +
                                      spec.workloads[i] + "'");
        }
      }
    }
    for (std::size_t i = 0; i < spec.shard_counts.size(); ++i) {
      if (spec.shard_counts[i] == 0) {
        throw std::invalid_argument(
            "expand: shard counts must be >= 1 (a cell cannot serve over "
            "zero shards)");
      }
      if (spec.shard_counts[i] > spec.num_clients) {
        throw std::invalid_argument(
            "expand: shard counts must be <= num_clients");
      }
      for (std::size_t j = i + 1; j < spec.shard_counts.size(); ++j) {
        if (spec.shard_counts[i] == spec.shard_counts[j]) {
          throw std::invalid_argument("expand: duplicate shard count");
        }
      }
    }
    for (std::size_t i = 0; i < spec.tenant_counts.size(); ++i) {
      if (spec.tenant_counts[i] == 0) {
        throw std::invalid_argument(
            "expand: tenant counts must be >= 1 (a cell cannot co-schedule "
            "zero tenants)");
      }
      for (std::size_t j = i + 1; j < spec.tenant_counts.size(); ++j) {
        if (spec.tenant_counts[i] == spec.tenant_counts[j]) {
          throw std::invalid_argument("expand: duplicate tenant count");
        }
      }
    }
    for (std::size_t i = 0; i < spec.fault_specs.size(); ++i) {
      // Typos fail here, not mid-sweep; and per-cell chaos must stay
      // per-cell — a crash clause kills the whole sweep process, a
      // worker-stall clause perturbs the SHARED pool every other cell is
      // running on, so both are rejected as sweep axes.
      const faults::FaultPlan plan =
          faults::parse_fault_plan(spec.fault_specs[i]);
      for (const faults::FaultClause& clause : plan.clauses) {
        if (clause.kind == faults::FaultKind::kCrash ||
            clause.kind == faults::FaultKind::kWorkerStall) {
          throw std::invalid_argument(
              "expand: crash/stall clauses are not sweepable (crash kills "
              "the sweep process, stall perturbs the shared pool); use "
              "route_server_cli --faults for those");
        }
      }
      for (std::size_t j = i + 1; j < spec.fault_specs.size(); ++j) {
        if (spec.fault_specs[i] == spec.fault_specs[j]) {
          throw std::invalid_argument("expand: duplicate fault spec '" +
                                      spec.fault_specs[i] + "'");
        }
      }
    }
    if (spec.num_clients == 0) {
      throw std::invalid_argument("expand: num_clients must be >= 1");
    }
    if (!spec.sub_batch_auto && spec.sub_batch_queries == 0) {
      throw std::invalid_argument(
          "expand: sub_batch_queries must be >= 1 (it is a dynamics "
          "parameter, not a parallelism knob)");
    }
  }

  // The service axes collapse to a single sentinel iteration for the
  // other simulators, keeping one expansion loop (and one canonical
  // order) for every simulator kind. An omitted tenant axis means plain
  // single-tenant cells.
  const std::vector<std::string> workloads =
      service ? spec.workloads : std::vector<std::string>{""};
  const std::vector<std::size_t> shard_counts =
      service ? spec.shard_counts : std::vector<std::size_t>{0};
  const std::vector<std::size_t> tenant_counts =
      !service ? std::vector<std::size_t>{0}
               : (spec.tenant_counts.empty() ? std::vector<std::size_t>{1}
                                             : spec.tenant_counts);
  const std::vector<std::string> fault_specs =
      !service ? std::vector<std::string>{""}
               : (spec.fault_specs.empty() ? std::vector<std::string>{""}
                                           : spec.fault_specs);

  std::vector<CellSpec> cells;
  cells.reserve(cell_count(spec));
  for (const std::string& scenario : spec.scenarios) {
    for (const PolicySpec& policy : spec.policies) {
      for (const double period : spec.update_periods) {
        for (const std::string& workload : workloads) {
          for (const std::size_t shards : shard_counts) {
            for (const std::size_t tenants : tenant_counts) {
              for (const std::string& fault_spec : fault_specs) {
                for (std::size_t replica = 0; replica < spec.replicas;
                     ++replica) {
                  CellSpec cell;
                  cell.index = cells.size();
                  cell.scenario = scenario;
                  cell.policy = policy.name;
                  cell.update_period = period;
                  cell.replica = replica;
                  cell.workload = workload;
                  cell.shards = shards;
                  cell.tenants = tenants;
                  cell.faults = fault_spec;
                  cells.push_back(std::move(cell));
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

}  // namespace staleflow
