// Declarative experiment specification and its expansion into cells.
//
// An ExperimentSpec names WHAT to run — scenarios x policies x staleness
// periods x seed replicas, under one of the four simulators (with the
// service simulator adding workload x shard-count axes) — and expand()
// turns it into the flat, deterministically ordered list of cells the
// runner executes. Cell order is part of the determinism contract:
// per-cell RNG streams are derived by walking this order, so results never
// depend on thread count or scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/policy.h"
#include "net/instance.h"
#include "sweep/scenario.h"

namespace staleflow {

/// A named policy recipe. The factory receives the instance and the cell's
/// bulletin-board period T (some policies, e.g. the Corollary 5 "safe"
/// policy, are derived from both).
struct PolicySpec {
  std::string name;
  std::function<Policy(const Instance&, double update_period)> make;
};

/// Builds a PolicySpec from a compact textual form:
///   "replicator"            proportional + linear(l_max)      (Theorem 7)
///   "uniform-linear"        uniform + linear(l_max)           (Theorem 6)
///   "alpha:<a>"             uniform + min(1, a * gain)        (Corollary 5)
///   "logit:<c>"             smoothed best response, parameter c
///   "naive"                 uniform + better response (oscillates)
///   "relative-slack[:<s>]"  proportional + relative slack, shift s [0]
///   "safe"                  most aggressive provably convergent policy
///                           for the cell's T (Corollary 5 inverted)
/// Throws std::invalid_argument on an unknown name or a bad parameter.
PolicySpec named_policy(const std::string& spec);

/// Which simulator executes a cell.
enum class SimulatorKind {
  kFluid,   // fluid-limit ODE (Eq. (3)); the paper's main object
  kRound,   // synchronous-rounds expected-flow map
  kAgent,   // finite-population stochastic (Gillespie) simulator
  kService  // the online RouteServer epoch pipeline (src/service/)
};

/// Parses "fluid" / "round" / "agent" / "service"; throws
/// std::invalid_argument listing the catalogue.
SimulatorKind parse_simulator_kind(const std::string& name);
std::string to_string(SimulatorKind kind);

/// The full declarative sweep: the cartesian product
/// scenarios x policies x update_periods x replicas — times
/// workloads x shard_counts when the simulator is kService.
struct ExperimentSpec {
  std::vector<std::string> scenarios;  // ScenarioRegistry names
  std::vector<PolicySpec> policies;
  std::vector<double> update_periods;  // bulletin-board periods T (> 0)
  std::size_t replicas = 1;            // independent seeds per combination
  std::uint64_t base_seed = 1;         // root of every cell's RNG stream

  SimulatorKind simulator = SimulatorKind::kFluid;
  double horizon = 50.0;     // simulated time (fluid/agent/service)
  double stop_gap = 1e-6;    // convergence threshold (0 disables early stop)

  // Round-simulator knobs (used when simulator == kRound). The period T is
  // mapped to rounds_per_update = max(1, round(T / round_length)).
  double activation_probability = 0.1;
  double round_length = 0.01;  // simulated time one round represents

  // Agent-simulator knob (used when simulator == kAgent).
  std::size_t num_agents = 10'000;

  // Service-simulator axes and knobs (simulator == kService only; expand()
  // rejects them under any other simulator so a mis-addressed axis fails
  // loudly instead of being silently ignored). Each cell serves
  // max(1, round(horizon / T)) epochs of its workload over `shard_counts`
  // logical shards on the sweep's shared Executor — in-cell sub-batch and
  // snapshot-build tasks interleave with other cells on the one pool, and
  // cell outcomes are thread-count independent by the service determinism
  // contract.
  std::vector<std::string> workloads;     // make_workload() specs (axis)
  std::vector<std::size_t> shard_counts;  // logical shards (axis, all > 0)
  // Tenant counts (axis, all >= 1; empty = {1}): a cell with tenants = N
  // runs N replicas of its configuration co-scheduled on the sweep's
  // shared executor via TenantRegistry (per-tenant seeds split from the
  // cell stream in tenant order) — capacity planning over co-tenancy.
  // N = 1 is the plain single-server cell.
  std::vector<std::size_t> tenant_counts;
  // Fault-plan specs (axis, empty = {healthy}): each cell materializes
  // its spec against the cell's own seed (src/faults/), so chaos cells
  // stay bit-identical across thread counts like healthy ones. "none" is
  // the explicit healthy point (so a sweep can compare faulted vs not).
  // expand() rejects crash/stall clauses here: a crash kills the whole
  // sweep process, and worker stalls only perturb the shared pool's wall
  // clock — neither is a per-cell dynamics axis.
  std::vector<std::string> fault_specs;
  std::size_t num_clients = 2'000;        // virtual client fleet per cell
  // Serving sub-batch split threshold handed to every cell's RouteServer
  // (see RouteServerOptions::sub_batch_queries). Part of the dynamics
  // configuration, like shard_counts — not a parallelism knob.
  std::size_t sub_batch_queries = 16'384;
  // Adaptive per-epoch split threshold instead of the fixed one (see
  // RouteServerOptions::sub_batch_auto); sub_batch_queries is then
  // ignored.
  bool sub_batch_auto = false;
};

/// One executable cell of the sweep grid.
struct CellSpec {
  std::size_t index = 0;  // position in expansion order
  std::string scenario;
  std::string policy;
  double update_period = 0.0;
  std::size_t replica = 0;

  // Service axes; empty / 0 for non-service cells.
  std::string workload;
  std::size_t shards = 0;
  std::size_t tenants = 0;  // co-scheduled tenant replicas (1 = solo cell)
  std::string faults;       // fault-plan spec ("" / "none" = healthy)
};

/// Number of cells the spec expands to.
std::size_t cell_count(const ExperimentSpec& spec);

/// Expands the cartesian product in the canonical order: scenario-major,
/// then policy, then period, then workload, then shard count, then
/// tenant count, then fault spec, then replica (the service axes collapse to one
/// iteration for the other simulators). Validates the spec (non-empty
/// axes, positive periods, resolvable scenario names, parseable
/// workloads, non-zero shard and tenant counts, service axes only under
/// kService) and throws std::invalid_argument / std::out_of_range on
/// violations.
std::vector<CellSpec> expand(const ExperimentSpec& spec,
                             const ScenarioRegistry& registry);

}  // namespace staleflow
