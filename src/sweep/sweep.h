// Umbrella header for the experiment-sweep subsystem.
//
// Declare an ExperimentSpec (scenarios x policies x periods x replicas),
// hand it to SweepRunner::run with a thread count, aggregate with
// summarise() / write_cells_csv(). Results are bit-identical for any
// thread count; see runner.h for the determinism contract.
#pragma once

#include "sweep/aggregate.h"
#include "sweep/runner.h"
#include "sweep/scenario.h"
#include "sweep/spec.h"
