#include "trace/metrics.h"

namespace staleflow::trace {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      return entry.counter;
    }
  }
  entries_.emplace_back();
  entries_.back().name = std::string(name);
  return entries_.back().counter;
}

std::vector<CounterSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSample> out;
  out.reserve(entries_.size());
  std::uint32_t id = 0;
  for (const Entry& entry : entries_) {
    CounterSample sample;
    sample.id = id++;
    sample.name = entry.name;
    sample.value = entry.counter.load();
    out.push_back(std::move(sample));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace staleflow::trace
