// Named monotonic counters for the always-on metrics plane.
//
// Registration (name → Counter&) takes a mutex once per call site; the
// increments themselves are single relaxed atomic adds, cheap enough for
// per-task hot paths. Call sites cache the Counter& in a function-local
// static so steady state is one atomic add, zero lookups:
//
//   static auto& tasks = MetricsRegistry::global().counter("pool.tasks");
//   tasks.inc();
//
// Counters are process-global and always on; the trace recorder samples
// the registry periodically into kCounterDefs/kCounterBatch records, so
// the offline analyzer sees named time series without the serving code
// knowing whether a trace is being written. Counter values are wall-run
// telemetry and never feed the deterministic digest.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace staleflow::trace {

/// One monotonic counter. Lives in a std::deque inside the registry so
/// its address is stable for the life of the process — call sites keep
/// raw references.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  std::uint64_t load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A sampled (id, name, value) triple; ids are dense registration order.
struct CounterSample {
  std::uint32_t id = 0;
  std::string name;
  std::uint64_t value = 0;
};

class MetricsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first
  /// use. The reference stays valid forever.
  Counter& counter(std::string_view name);

  /// Point-in-time values of every registered counter, in id order.
  std::vector<CounterSample> snapshot() const;

  /// The process-wide registry all built-in hooks use.
  static MetricsRegistry& global();

 private:
  struct Entry {
    std::string name;
    Counter counter;
  };

  mutable std::mutex mu_;
  std::deque<Entry> entries_;
};

}  // namespace staleflow::trace
