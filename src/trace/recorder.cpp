#include "trace/recorder.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "trace/metrics.h"
#include "trace/trace_ring.h"
#include "util/binio.h"

namespace staleflow::trace {

namespace {

struct Recorder {
  std::string path;
  std::ofstream out;

  // Ring registry: producers append under rings_mu, the drainer copies
  // the list under it. The rings themselves are lock-free.
  std::mutex rings_mu;
  std::vector<std::shared_ptr<TraceRing>> rings;

  // Serializes flush passes (periodic drainer vs. the final drain in
  // stop) and guards the file + bookkeeping below.
  std::mutex flush_mu;
  std::uint64_t events_written = 0;
  std::uint32_t counters_defined = 0;

  std::thread drainer;
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  bool stopping = false;
};

std::atomic<Recorder*> g_recorder{nullptr};
// Bumped on every start/stop; thread-local slots cache it so a slot from
// a previous recording session is never reused against a new recorder.
std::atomic<std::uint64_t> g_generation{0};
std::mutex g_lifecycle_mu;

struct ThreadSlot {
  std::shared_ptr<TraceRing> ring;
  std::uint64_t generation = 0;
};

ThreadSlot& tls_slot() noexcept {
  thread_local ThreadSlot slot;
  return slot;
}

void flush_once(Recorder& rec) {
  std::lock_guard<std::mutex> flush_lock(rec.flush_mu);

  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> rings_lock(rec.rings_mu);
    rings = rec.rings;
  }

  std::vector<TraceEvent> scratch;
  for (std::size_t worker = 0; worker < rings.size(); ++worker) {
    scratch.clear();
    rings[worker]->drain(scratch);
    if (scratch.empty()) continue;
    binio::Writer payload;
    payload.u32(static_cast<std::uint32_t>(worker));
    payload.u64(scratch.size());
    for (const TraceEvent& event : scratch) {
      encode_event(payload, event);
    }
    append_record(rec.out, TraceRecordType::kEventBatch, payload.data());
    rec.events_written += scratch.size();
  }

  const std::vector<CounterSample> samples =
      MetricsRegistry::global().snapshot();
  if (samples.size() > rec.counters_defined) {
    binio::Writer defs;
    defs.u64(samples.size() - rec.counters_defined);
    for (std::size_t i = rec.counters_defined; i < samples.size(); ++i) {
      defs.u32(samples[i].id);
      defs.str(samples[i].name);
    }
    append_record(rec.out, TraceRecordType::kCounterDefs, defs.data());
    rec.counters_defined = static_cast<std::uint32_t>(samples.size());
  }
  if (!samples.empty()) {
    binio::Writer batch;
    batch.u64(now_ns());
    batch.u64(samples.size());
    for (const CounterSample& sample : samples) {
      batch.u32(sample.id);
      batch.u64(sample.value);
    }
    append_record(rec.out, TraceRecordType::kCounterBatch, batch.data());
  }

  rec.out.flush();
}

void drainer_loop(Recorder& rec) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(rec.stop_mu);
      rec.stop_cv.wait_for(lock, std::chrono::milliseconds(kFlushPeriodMs),
                           [&] { return rec.stopping; });
      if (rec.stopping) return;  // stop() runs the final drain itself
    }
    flush_once(rec);
  }
}

/// Slow path of emit: give this thread a ring under the current
/// recorder. Returns false when recording ended in the meantime.
bool register_thread(ThreadSlot& slot, std::uint64_t generation) noexcept {
  try {
    std::lock_guard<std::mutex> lock(g_lifecycle_mu);
    Recorder* rec = g_recorder.load(std::memory_order_acquire);
    if (rec == nullptr ||
        g_generation.load(std::memory_order_acquire) != generation) {
      return false;
    }
    auto ring = std::make_shared<TraceRing>();
    {
      std::lock_guard<std::mutex> rings_lock(rec->rings_mu);
      rec->rings.push_back(ring);
    }
    slot.ring = std::move(ring);
    slot.generation = generation;
    return true;
  } catch (...) {
    return false;  // telemetry must never take down a serving thread
  }
}

}  // namespace

std::uint64_t now_ns() noexcept {
  static const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - base)
          .count());
}

bool active() noexcept {
  return g_recorder.load(std::memory_order_relaxed) != nullptr;
}

void start(const std::string& path, std::string_view producer) {
  std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  if (g_recorder.load(std::memory_order_acquire) != nullptr) {
    throw std::runtime_error("trace: recorder already running");
  }
  now_ns();  // pin the clock base before any worker races the init

  auto rec = std::make_unique<Recorder>();
  rec->path = path;
  rec->out.open(path, std::ios::binary | std::ios::trunc);
  if (!rec->out) {
    throw std::runtime_error("trace: cannot open '" + path +
                             "' for writing");
  }
  rec->out.write(kTraceMagic, sizeof(kTraceMagic));

  binio::Writer header;
  header.u32(kTraceVersion);
  header.str(producer);
  append_record(rec->out, TraceRecordType::kTraceHeader, header.data());
  rec->out.flush();
  if (!rec->out) {
    throw std::runtime_error("trace: write failed on '" + path + "'");
  }

  Recorder* raw = rec.release();
  raw->drainer = std::thread([raw] { drainer_loop(*raw); });
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  g_recorder.store(raw, std::memory_order_release);
}

void stop() {
  std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  Recorder* rec = g_recorder.exchange(nullptr, std::memory_order_acq_rel);
  if (rec == nullptr) return;
  // Invalidate cached thread slots before tearing anything down; a
  // thread mid-emit at worst pushes into its own still-owned ring.
  g_generation.fetch_add(1, std::memory_order_acq_rel);

  {
    std::lock_guard<std::mutex> stop_lock(rec->stop_mu);
    rec->stopping = true;
  }
  rec->stop_cv.notify_all();
  rec->drainer.join();

  flush_once(*rec);

  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> rings_lock(rec->rings_mu);
    for (const auto& ring : rec->rings) {
      dropped += ring->dropped();
    }
  }
  binio::Writer trailer;
  trailer.u64(rec->events_written);
  trailer.u64(dropped);
  append_record(rec->out, TraceRecordType::kTraceTrailer, trailer.data());
  rec->out.flush();
  delete rec;
}

void emit(const TraceEvent& event) noexcept {
  if (g_recorder.load(std::memory_order_acquire) == nullptr) return;
  ThreadSlot& slot = tls_slot();
  const std::uint64_t generation =
      g_generation.load(std::memory_order_acquire);
  if (slot.generation != generation || !slot.ring) {
    if (!register_thread(slot, generation)) return;
  }
  slot.ring->try_push(event);
}

void instant(EventKind kind, std::uint32_t tenant, std::uint64_t epoch,
             std::uint64_t arg, std::uint64_t value) noexcept {
  if (!active()) return;
  TraceEvent event;
  event.kind = kind;
  event.tenant = tenant;
  event.epoch = epoch;
  event.arg = arg;
  event.begin_ns = now_ns();
  event.end_ns = event.begin_ns;
  event.value = value;
  emit(event);
}

}  // namespace staleflow::trace
