// The global trace recorder: hot-path emit API + background drainer.
//
// Lifecycle: trace::start(path) installs a process-global recorder and
// spawns a drainer thread; trace::stop() final-drains every ring, writes
// the trailer, and tears the recorder down. Between the two, any thread
// that calls emit()/Span gets a private lock-free TraceRing on first use
// (registered with the drainer under a mutex, once per thread per
// recording session) and then records with no locks and no syscalls.
//
// Cost when NOT recording — the always-on case this design optimizes
// for — is one relaxed atomic load and a predicted branch per hook, so
// the hooks stay compiled into production paths unconditionally.
//
// Thread-identity handoff across sessions uses a generation number: the
// thread-local slot caches (ring, generation) and re-registers when the
// global generation moves. A thread racing emit() against stop() at
// worst writes into its own still-alive-but-orphaned ring (the slot
// holds shared ownership), losing those events but never touching freed
// memory.
//
// Determinism contract: the recorder reads the monotonic clock and
// writes rings/files. It never touches RNG streams, arrival plans, or
// any dynamics state — which is why digest-with-tracing must and does
// equal digest-without (pinned by tests/trace_test.cpp and CI).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "trace/trace_format.h"

namespace staleflow::trace {

/// Nanoseconds on the process-local monotonic clock (steady_clock since
/// a fixed per-process base). The one clock shared by trace spans and
/// bench timing (bench::Timer) so offline quantiles and bench numbers
/// are directly comparable.
std::uint64_t now_ns() noexcept;

/// True while a recorder is installed. One relaxed load.
bool active() noexcept;

/// Installs the global recorder writing to `path` (truncates) and
/// starts the drainer. `producer` is a free-form description stored in
/// the trace header. Throws std::runtime_error if the file can't be
/// opened or a recorder is already running.
void start(const std::string& path, std::string_view producer);

/// Stops and uninstalls the recorder: joins the drainer, drains every
/// ring one final time, samples counters once more, writes the trailer,
/// and closes the file. No-op when not recording.
void stop();

/// Records one completed event. No-op when not recording.
void emit(const TraceEvent& event) noexcept;

/// Records an instantaneous event (begin == end == now).
void instant(EventKind kind, std::uint32_t tenant, std::uint64_t epoch,
             std::uint64_t arg, std::uint64_t value) noexcept;

/// RAII span: stamps begin on construction, end on destruction, then
/// emits. When not recording, construction is the one-load fast path
/// and the destructor does nothing.
class Span {
 public:
  Span(EventKind kind, std::uint32_t tenant, std::uint64_t epoch,
       std::uint64_t arg = 0) noexcept
      : live_(active()) {
    if (!live_) return;
    event_.kind = kind;
    event_.tenant = tenant;
    event_.epoch = epoch;
    event_.arg = arg;
    event_.begin_ns = now_ns();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Sets the span's value field (e.g. queries served) before it ends.
  void value(std::uint64_t value) noexcept { event_.value = value; }

  ~Span() {
    if (!live_) return;
    event_.end_ns = now_ns();
    emit(event_);
  }

 private:
  TraceEvent event_{};
  bool live_;
};

/// Drainer wake-up period. Short enough that a crash loses at most a few
/// milliseconds of telemetry; long enough to amortize the file writes.
inline constexpr std::uint64_t kFlushPeriodMs = 5;

}  // namespace staleflow::trace
