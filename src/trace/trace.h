// Umbrella header for the observability plane: metrics registry,
// per-worker event rings, the global recorder, and offline decoding.
//
// Quickstart (always-on hooks are already in the serving stack):
//
//   staleflow::trace::start("run.trace", "my_tool");
//   ... serve epochs ...
//   staleflow::trace::stop();
//   // offline: tools/trace_dump_cli info|csv|summary run.trace
#pragma once

#include "trace/metrics.h"
#include "trace/recorder.h"
#include "trace/trace_format.h"
#include "trace/trace_reader.h"
#include "trace/trace_ring.h"
