#include "trace/trace_format.h"

#include <ostream>
#include <stdexcept>

#include "util/fnv.h"

namespace staleflow::trace {

std::string_view event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kEpochSpan:
      return "epoch";
    case EventKind::kSubBatchSpan:
      return "sub_batch";
    case EventKind::kSnapshotPublish:
      return "snapshot_publish";
    case EventKind::kSchedulerRound:
      return "scheduler_round";
    case EventKind::kGraphSpan:
      return "graph";
    case EventKind::kWalAppend:
      return "wal_append";
    case EventKind::kFaultSpan:
      return "fault";
  }
  return "unknown";
}

void encode_event(binio::Writer& writer, const TraceEvent& event) {
  writer.u8(static_cast<std::uint8_t>(
      static_cast<std::uint16_t>(event.kind) & 0xFF));
  writer.u8(static_cast<std::uint8_t>(
      static_cast<std::uint16_t>(event.kind) >> 8));
  writer.u32(event.tenant);
  writer.u64(event.epoch);
  writer.u64(event.arg);
  writer.u64(event.begin_ns);
  writer.u64(event.end_ns);
  writer.u64(event.value);
}

TraceEvent decode_event(binio::Reader& reader) {
  TraceEvent event;
  const std::uint16_t lo = reader.u8();
  const std::uint16_t hi = reader.u8();
  event.kind =
      static_cast<EventKind>(static_cast<std::uint16_t>(lo | (hi << 8)));
  event.tenant = reader.u32();
  event.epoch = reader.u64();
  event.arg = reader.u64();
  event.begin_ns = reader.u64();
  event.end_ns = reader.u64();
  event.value = reader.u64();
  return event;
}

void append_record(std::ostream& out, TraceRecordType type,
                   std::string_view payload) {
  if (payload.size() > kMaxTracePayload) {
    throw std::runtime_error("trace: record payload too large");
  }
  binio::Writer header;
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(static_cast<std::uint32_t>(type));

  // Checksum covers the type word and the payload — identical discipline
  // to the recovery WAL, verified by scan_trace before a record is
  // trusted.
  std::uint64_t checksum = fnv::kOffsetBasis;
  fnv::hash_bytes(checksum, header.data().data() + 4, 4);
  fnv::hash_bytes(checksum, payload.data(), payload.size());

  binio::Writer footer;
  footer.u64(checksum);

  out.write(header.data().data(),
            static_cast<std::streamsize>(header.data().size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.write(footer.data().data(),
            static_cast<std::streamsize>(footer.data().size()));
}

}  // namespace staleflow::trace
