// The always-on binary telemetry trace's on-disk format.
//
// A trace file is an 8-byte magic ("SFTRC1\n\0") followed by a sequence
// of length-prefixed, checksummed records — the exact framing discipline
// of the recovery WAL (recovery/wal_format.h):
//
//   +----------------+----------------+~~~~~~~~~~~+------------------+
//   | payload length | record type    | payload   | FNV-1a checksum  |
//   | u32 LE         | u32 LE         | N bytes   | u64 LE           |
//   +----------------+----------------+~~~~~~~~~~~+------------------+
//
// The checksum covers the type word and the payload, so a torn final
// write (the recorder is killed mid-flush) or a flipped bit fails
// verification and the offline scanner truncates the trace at the last
// record that checks out — a trace is ALWAYS analyzable up to the crash.
//
// Record types:
//   kTraceHeader   — exactly once, first: format version + a free-form
//                    producer string (tool name / run description).
//   kEventBatch    — one worker ring's drained events: the worker id and
//                    a run of fixed-format TraceEvents (encode_event).
//   kCounterDefs   — (id, name) definitions for metrics-registry
//                    counters, written before the first sample of each id.
//   kCounterBatch  — one sampling pass over the registry: a timestamp and
//                    (id, value) pairs for every defined counter.
//   kTraceTrailer  — clean recorder shutdown: totals (events written /
//                    dropped). Absent after a crash, by definition.
//
// Everything inside payloads uses util/binio.h explicit little-endian
// packing, so a trace written on one host decodes on any other.
//
// Timestamps are nanoseconds on the process-local monotonic clock
// (trace::now_ns()). They order and measure spans WITHIN one trace file;
// they are wall-clock telemetry and stay strictly OUTSIDE the
// deterministic digest contract — a run traced and untraced produces
// byte-identical dynamics digests (pinned by tests/trace_test.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "util/binio.h"

namespace staleflow::trace {

/// First bytes of every trace file. Same hygiene as the WAL magic: the
/// newline makes text-mode corruption detectable, the NUL ends the
/// human-readable part.
inline constexpr char kTraceMagic[8] = {'S', 'F', 'T', 'R', 'C', '1',
                                        '\n', 0};

/// Payload format version carried in the trace header. Bump when any
/// payload encoding changes; readers reject versions they don't know.
inline constexpr std::uint32_t kTraceVersion = 1;

/// Corruption guard: a garbage length field must not drive a huge
/// allocation during the offline scan.
inline constexpr std::uint32_t kMaxTracePayload = 1u << 30;

enum class TraceRecordType : std::uint32_t {
  kTraceHeader = 1,
  kEventBatch = 2,
  kCounterDefs = 3,
  kCounterBatch = 4,
  kTraceTrailer = 5,
};

/// What a span (or instant: begin == end) measures. Values are part of
/// the on-disk format — append, never renumber.
enum class EventKind : std::uint16_t {
  /// One engine epoch, plan through publish. tenant = registry index
  /// (0 for a solo server), epoch = board epoch, value = queries served.
  kEpochSpan = 1,
  /// One serving sub-batch task. arg packs
  /// (lane_code << 48) | ((shard & 0xFFFF) << 32) | sub-batch index
  /// within the epoch plan; value = the sub-batch's arrival quota. The
  /// lane code names the execution lane the span ran on: 0 = unknown
  /// (traces written before lanes existed), 1 = a non-pool thread (the
  /// caller helping while it waits), k+2 = worker lane k — so a locality
  /// trace shows directly whether same-shard sub-batches stuck to their
  /// lane. Recorded from the worker thread that ran the task, so the
  /// enclosing event batch's worker id attributes it.
  kSubBatchSpan = 2,
  /// The RCU snapshot publish at a phase boundary (instant).
  kSnapshotPublish = 3,
  /// One multi-tenant scheduler round: combined graph build + run +
  /// finish. arg = number of tenants scheduled, value = round number.
  kSchedulerRound = 4,
  /// One Executor::run over a task graph; value = node count.
  kGraphSpan = 5,
  /// One WAL record append (write + flush to the kernel). arg = the WAL
  /// record type word, value = bytes appended including framing.
  kWalAppend = 6,
  /// One injected fault firing (instant). arg = the faults::FaultKind
  /// value; value = magnitude (queries shed for a brownout, busy-wait us
  /// for a slowdown, stall ms for a worker stall, 0 otherwise). Emitted
  /// even inside a drop-telemetry window — the marker is what tells the
  /// offline analyzer WHY that window is dark.
  kFaultSpan = 7,
};

/// Stable short names for CSV columns / summary rows.
std::string_view event_kind_name(EventKind kind) noexcept;

/// One fixed-format trace event. Encoded as exactly kEventBytes:
/// u16 kind, u32 tenant, u64 epoch, u64 arg, u64 begin_ns, u64 end_ns,
/// u64 value — all little-endian.
struct TraceEvent {
  EventKind kind = EventKind::kEpochSpan;
  std::uint32_t tenant = 0;
  std::uint64_t epoch = 0;
  std::uint64_t arg = 0;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t value = 0;
};

inline constexpr std::size_t kEventBytes = 2 + 4 + 8 * 5;

/// One decoded-from-disk record; `end_offset` is the file offset just
/// past it (the truncation point the torn-tail tests pin).
struct TraceRecord {
  TraceRecordType type = TraceRecordType::kTraceHeader;
  std::string payload;
  std::uint64_t end_offset = 0;
};

/// Appends one event in the fixed kEventBytes layout.
void encode_event(binio::Writer& writer, const TraceEvent& event);

/// Reads one event back; throws std::runtime_error on underrun (the
/// scanner already rejected corrupt frames, so this only fires on a
/// malformed payload inside a valid frame).
TraceEvent decode_event(binio::Reader& reader);

/// Writes one framed record (length, type, payload, FNV-1a checksum) to
/// `out`. Shared by the recorder's drainer and the corruption tests that
/// hand-build trace files.
void append_record(std::ostream& out, TraceRecordType type,
                   std::string_view payload);

}  // namespace staleflow::trace
