#include "trace/trace_reader.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/binio.h"
#include "util/fnv.h"

namespace staleflow::trace {

TraceScan scan_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("scan_trace: cannot open '" + path + "'");
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw std::runtime_error("scan_trace: read failed on '" + path + "'");
  }
  if (contents.size() < sizeof(kTraceMagic) ||
      std::memcmp(contents.data(), kTraceMagic, sizeof(kTraceMagic)) != 0) {
    throw std::runtime_error("scan_trace: '" + path +
                             "' is not a trace (bad magic)");
  }

  TraceScan scan;
  scan.valid_bytes = sizeof(kTraceMagic);
  std::size_t offset = sizeof(kTraceMagic);
  // Frame overhead around each payload: u32 length + u32 type + u64 sum.
  constexpr std::size_t kFrameBytes = 4 + 4 + 8;
  while (offset < contents.size()) {
    if (contents.size() - offset < kFrameBytes) {
      scan.truncated = true;
      scan.note = "torn tail: short record frame";
      break;
    }
    binio::Reader head(std::string_view(contents).substr(offset, 8));
    const std::uint32_t length = head.u32();
    const std::uint32_t type_word = head.u32();
    if (length > kMaxTracePayload) {
      scan.truncated = true;
      scan.note = "corrupt record: impossible payload length";
      break;
    }
    if (contents.size() - offset - kFrameBytes < length) {
      scan.truncated = true;
      scan.note = "torn tail: payload shorter than its length field";
      break;
    }
    const std::string_view payload =
        std::string_view(contents).substr(offset + 8, length);
    std::uint64_t checksum = fnv::kOffsetBasis;
    fnv::hash_bytes(checksum, contents.data() + offset + 4, 4);
    fnv::hash_bytes(checksum, payload.data(), payload.size());
    binio::Reader foot(
        std::string_view(contents).substr(offset + 8 + length, 8));
    if (foot.u64() != checksum) {
      scan.truncated = true;
      scan.note = "corrupt record: checksum mismatch";
      break;
    }
    if (type_word <
            static_cast<std::uint32_t>(TraceRecordType::kTraceHeader) ||
        type_word >
            static_cast<std::uint32_t>(TraceRecordType::kTraceTrailer)) {
      scan.truncated = true;
      scan.note = "corrupt record: unknown record type";
      break;
    }
    offset += kFrameBytes + length;
    TraceRecord record;
    record.type = static_cast<TraceRecordType>(type_word);
    record.payload = std::string(payload);
    record.end_offset = offset;
    scan.records.push_back(std::move(record));
    scan.valid_bytes = offset;
  }
  if (!scan.truncated && offset != contents.size()) {
    scan.truncated = true;
    scan.note = "torn tail: trailing bytes after last record";
  }
  return scan;
}

LoadedTrace load_trace(const std::string& path) {
  const TraceScan scan = scan_trace(path);
  LoadedTrace trace;
  trace.truncated = scan.truncated;
  trace.valid_bytes = scan.valid_bytes;
  trace.note = scan.note;

  bool saw_header = false;
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    const TraceRecord& record = scan.records[i];
    try {
      binio::Reader reader(record.payload);
      switch (record.type) {
        case TraceRecordType::kTraceHeader: {
          if (saw_header) {
            throw std::runtime_error("duplicate trace header");
          }
          trace.version = reader.u32();
          if (trace.version != kTraceVersion) {
            throw std::runtime_error("unknown trace version");
          }
          trace.producer = reader.str();
          saw_header = true;
          break;
        }
        case TraceRecordType::kEventBatch: {
          const std::uint32_t worker = reader.u32();
          const std::uint64_t count = reader.u64();
          for (std::uint64_t k = 0; k < count; ++k) {
            LoadedEvent loaded;
            loaded.worker = worker;
            loaded.event = decode_event(reader);
            trace.events.push_back(loaded);
          }
          break;
        }
        case TraceRecordType::kCounterDefs: {
          const std::uint64_t count = reader.u64();
          for (std::uint64_t k = 0; k < count; ++k) {
            const std::uint32_t id = reader.u32();
            std::string name = reader.str();
            if (id != trace.counter_names.size()) {
              throw std::runtime_error("non-dense counter ids");
            }
            trace.counter_names.push_back(std::move(name));
          }
          break;
        }
        case TraceRecordType::kCounterBatch: {
          CounterBatch batch;
          batch.time_ns = reader.u64();
          const std::uint64_t count = reader.u64();
          for (std::uint64_t k = 0; k < count; ++k) {
            const std::uint32_t id = reader.u32();
            const std::uint64_t value = reader.u64();
            if (id >= trace.counter_names.size()) {
              throw std::runtime_error("counter sample before its def");
            }
            batch.values.emplace_back(id, value);
          }
          trace.counter_batches.push_back(std::move(batch));
          break;
        }
        case TraceRecordType::kTraceTrailer: {
          trace.trailer_events = reader.u64();
          trace.trailer_dropped = reader.u64();
          trace.clean_shutdown = true;
          break;
        }
      }
      if (!saw_header) {
        throw std::runtime_error("first record is not the trace header");
      }
    } catch (const std::exception& err) {
      // A checksum-valid frame with an undecodable payload: stop
      // trusting the file here, keep everything before it.
      trace.truncated = true;
      trace.valid_bytes =
          i == 0 ? sizeof(kTraceMagic) : scan.records[i - 1].end_offset;
      trace.note = std::string("corrupt payload: ") + err.what();
      trace.clean_shutdown = false;
      break;
    }
  }
  if (!saw_header && !trace.truncated) {
    trace.truncated = true;
    trace.note = "empty trace: no header record";
  }
  return trace;
}

}  // namespace staleflow::trace
