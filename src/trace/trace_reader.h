// Offline trace decoding: frame scan (torn-tail tolerant) and full load.
//
// scan_trace mirrors recovery's scan_wal exactly: trust the longest
// prefix of records whose length, checksum, and type all verify, mark
// the scan truncated at the first record that doesn't, and report the
// byte count of the trusted prefix. A trace torn mid-flush by a crash
// is therefore analyzable up to the last completed drain.
//
// load_trace decodes the trusted records into typed data: timestamped
// events with worker attribution, counter definitions + sampled time
// series, and the trailer totals (when the recorder shut down cleanly).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_format.h"

namespace staleflow::trace {

struct TraceScan {
  std::vector<TraceRecord> records;
  /// Magic + every verified record; what a repair would truncate to.
  std::uint64_t valid_bytes = 0;
  bool truncated = false;
  /// Why the scan stopped early, when it did.
  std::string note;
};

/// Scans `path`, verifying frame lengths, checksums, and record types.
/// Throws std::runtime_error only for I/O failure or bad magic; framing
/// corruption is reported via `truncated`/`note`, never thrown.
TraceScan scan_trace(const std::string& path);

/// One event plus the id of the worker ring it was drained from.
struct LoadedEvent {
  std::uint32_t worker = 0;
  TraceEvent event;
};

/// One sampling pass over the metrics registry.
struct CounterBatch {
  std::uint64_t time_ns = 0;
  /// (counter id, value) pairs, in id order.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> values;
};

struct LoadedTrace {
  std::uint32_t version = 0;
  std::string producer;
  /// Events in file (drain) order; within one worker this is also
  /// emission order.
  std::vector<LoadedEvent> events;
  /// Counter id -> name, dense in registration order.
  std::vector<std::string> counter_names;
  std::vector<CounterBatch> counter_batches;
  /// Trailer totals; only meaningful when clean_shutdown is true.
  bool clean_shutdown = false;
  std::uint64_t trailer_events = 0;
  std::uint64_t trailer_dropped = 0;
  bool truncated = false;
  std::uint64_t valid_bytes = 0;
  std::string note;
};

/// Scans and decodes `path`. A payload that fails to decode inside a
/// checksum-valid frame marks the trace truncated at that record (same
/// trust-the-prefix posture as the scan).
LoadedTrace load_trace(const std::string& path);

}  // namespace staleflow::trace
