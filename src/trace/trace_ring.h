// Per-worker lock-free event ring: the hot-path half of the trace plane.
//
// Each recording thread owns exactly one ring (single producer); the
// background drainer is the only consumer (single consumer). That SPSC
// shape means both sides get away with two atomics and acquire/release
// ordering — no CAS loops, no locks, no syscalls on the hot path.
//
// The ring NEVER blocks the producer: when the drainer falls behind and
// the ring fills, try_push drops the event and bumps a dropped counter
// that the recorder reports in the trace trailer. Losing telemetry under
// overload is the correct trade for a serving thread — the alternative
// (stalling a sub-batch to wait for the telemetry plane) would make the
// observer perturb the observed.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace_format.h"

namespace staleflow::trace {

/// Fixed-capacity single-producer / single-consumer ring of TraceEvents.
class TraceRing {
 public:
  /// Masked indexing needs a power-of-two capacity; any other request is
  /// rounded UP to the next power of two (never down — a caller asking
  /// for N slots gets at least N). 0 is treated as 1.
  explicit TraceRing(std::size_t capacity = kDefaultCapacity)
      : buf_(std::bit_ceil(std::max<std::size_t>(1, capacity))),
        mask_(buf_.size() - 1) {}

  /// Actual slot count (the rounded-up power of two).
  std::size_t capacity() const noexcept { return buf_.size(); }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Producer side. Returns false (and counts the drop) when full.
  bool try_push(const TraceEvent& event) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    buf_[static_cast<std::size_t>(head) & mask_] = event;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends every currently-visible event to `out` and
  /// advances the tail. Returns the number drained.
  std::size_t drain(std::vector<TraceEvent>& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    for (std::uint64_t i = tail; i != head; ++i) {
      out.push_back(buf_[static_cast<std::size_t>(i) & mask_]);
    }
    tail_.store(head, std::memory_order_release);
    return static_cast<std::size_t>(head - tail);
  }

  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kDefaultCapacity = 1u << 14;

 private:
  std::vector<TraceEvent> buf_;
  std::size_t mask_;
  // Producer and consumer cursors on separate cache lines so a serving
  // thread's push never contends with the drainer's tail updates.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace staleflow::trace
