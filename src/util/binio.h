// Byte-level serialization for the recovery WAL (and any other binary
// persistence): explicit little-endian packing of fixed-width integers,
// IEEE-754 bit patterns for doubles, and length-prefixed strings.
//
// Everything is encoded byte-by-byte — never by memcpy of a struct — so
// the wire format is identical on every platform and compiler, which is
// what lets a WAL written on one host resume on another and lets tests
// pin record bytes. Doubles travel as their exact bit pattern: a value
// decoded from a WAL is the *same double*, bit for bit, the writer had,
// the property the resume-bit-identically contract rests on.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace staleflow::binio {

/// Appends fixed-width fields to a growing byte buffer.
class Writer {
 public:
  void u8(std::uint8_t value) { buf_.push_back(static_cast<char>(value)); }

  void u32(std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      buf_.push_back(static_cast<char>((value >> shift) & 0xFF));
    }
  }

  void u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      buf_.push_back(static_cast<char>((value >> shift) & 0xFF));
    }
  }

  /// Exact bit pattern — round-trips any double, including -0.0 and the
  /// results of platform-specific libm calls.
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

  /// u64 length prefix + raw bytes.
  void str(std::string_view value) {
    u64(value.size());
    buf_.append(value.data(), value.size());
  }

  const std::string& data() const noexcept { return buf_; }
  std::string take() noexcept { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Reads fields back in write order. Underrun (a truncated or corrupt
/// payload) throws std::runtime_error rather than reading garbage — the
/// recovery scanner treats that as a torn record.
class Reader {
 public:
  explicit Reader(std::string_view data) noexcept : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(need(1)[0]); }

  std::uint32_t u32() {
    const std::string_view bytes = need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[i]))
               << (8 * i);
    }
    return value;
  }

  std::uint64_t u64() {
    const std::string_view bytes = need(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes[i]))
               << (8 * i);
    }
    return value;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint64_t size = u64();
    if (size > remaining()) {
      throw std::runtime_error("binio: truncated payload (string)");
    }
    return std::string(need(static_cast<std::size_t>(size)));
  }

  std::size_t remaining() const noexcept { return data_.size() - offset_; }
  bool done() const noexcept { return remaining() == 0; }

 private:
  std::string_view need(std::size_t size) {
    if (size > remaining()) {
      throw std::runtime_error("binio: truncated payload");
    }
    const std::string_view bytes = data_.substr(offset_, size);
    offset_ += size;
    return bytes;
  }

  std::string_view data_;
  std::size_t offset_ = 0;
};

}  // namespace staleflow::binio
