#include "util/csv.h"

#include <stdexcept>

namespace staleflow {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  if (header.empty()) {
    throw std::invalid_argument("CsvWriter: header must be non-empty");
  }
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter::add_row: wrong column count");
  }
  write_row(cells);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace staleflow
