// Minimal CSV emission for exporting bench data (e.g. for plotting).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace staleflow {

/// Writes rows to a CSV file with RFC-4180 quoting of cells that need it.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends a data row; must match the header's column count.
  void add_row(const std::vector<std::string>& cells);

  /// Flushes and closes. Called automatically by the destructor.
  void close();

 private:
  void write_row(const std::vector<std::string>& cells);
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace staleflow
