// FNV-1a hashing helpers shared by the deterministic digests (service
// telemetry, sweep cells). Doubles hash by bit pattern, never by decimal
// rendering, so a digest pins the exact instruction-level outcome of a
// run; strings hash length-prefixed so field boundaries cannot alias.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace staleflow::fnv {

inline constexpr std::uint64_t kOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kPrime = 0x100000001B3ULL;

inline void hash_bytes(std::uint64_t& h, const void* data,
                       std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kPrime;
  }
}

inline void hash_u64(std::uint64_t& h, std::uint64_t value) noexcept {
  hash_bytes(h, &value, sizeof(value));
}

inline void hash_double(std::uint64_t& h, double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  hash_u64(h, bits);
}

inline void hash_string(std::uint64_t& h, const std::string& value) noexcept {
  hash_u64(h, value.size());
  hash_bytes(h, value.data(), value.size());
}

}  // namespace staleflow::fnv
