#include "util/log_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace staleflow {
namespace {

/// Raw bucket index of a non-negative finite double: its bit pattern
/// shifted so that each power-of-two octave contributes 2^bits linear
/// sub-buckets. Positive IEEE-754 doubles order exactly like their bit
/// patterns, so this is a monotone, exact, libm-free bucketing.
std::uint64_t raw_index(double value, unsigned sub_bucket_bits) noexcept {
  return std::bit_cast<std::uint64_t>(value) >> (52 - sub_bucket_bits);
}

double value_of_raw(std::uint64_t raw, unsigned sub_bucket_bits) noexcept {
  return std::bit_cast<double>(raw << (52 - sub_bucket_bits));
}

}  // namespace

LogHistogram::LogHistogram(double min_value, double max_value,
                           unsigned sub_bucket_bits)
    : min_value_(min_value),
      max_value_(max_value),
      sub_bucket_bits_(sub_bucket_bits) {
  if (!(min_value > 0.0) || !std::isfinite(min_value) ||
      !(max_value > min_value) || !std::isfinite(max_value)) {
    throw std::invalid_argument(
        "LogHistogram: need 0 < min_value < max_value, both finite");
  }
  if (sub_bucket_bits > 20) {
    throw std::invalid_argument("LogHistogram: sub_bucket_bits must be <= 20");
  }
  lo_raw_ = raw_index(min_value, sub_bucket_bits_);
  hi_raw_ = raw_index(max_value, sub_bucket_bits_);
  if (lo_raw_ == 0) {
    // Would fuse the underflow bucket with the first regular one and break
    // the bucket_lower/bucket_index round-trip.
    throw std::invalid_argument("LogHistogram: min_value too small");
  }
  // counts_ stays unallocated until the first record()/merge: a histogram
  // member on a result struct that never sees a sample (non-service sweep
  // cells) costs nothing.
}

void LogHistogram::ensure_counts() {
  if (counts_.empty()) counts_.assign(bucket_count(), 0);
}

void LogHistogram::record(double value, std::uint64_t count) {
  if (!(value >= 0.0) || !std::isfinite(value)) {
    throw std::invalid_argument(
        "LogHistogram::record: value must be finite and >= 0");
  }
  if (count == 0) return;
  ensure_counts();
  counts_[bucket_index(value)] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * static_cast<double>(count);
}

bool LogHistogram::same_config(const LogHistogram& other) const noexcept {
  return min_value_ == other.min_value_ && max_value_ == other.max_value_ &&
         sub_bucket_bits_ == other.sub_bucket_bits_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (!same_config(other)) {
    throw std::invalid_argument(
        "LogHistogram::merge: configuration mismatch");
  }
  if (other.count_ == 0) return;
  ensure_counts();  // other.count_ > 0 implies other.counts_ is allocated
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double LogHistogram::min() const {
  if (count_ == 0) throw std::logic_error("LogHistogram::min: empty");
  return min_;
}

double LogHistogram::max() const {
  if (count_ == 0) throw std::logic_error("LogHistogram::max: empty");
  return max_;
}

double LogHistogram::mean() const {
  if (count_ == 0) throw std::logic_error("LogHistogram::mean: empty");
  return sum_ / static_cast<double>(count_);
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) {
    throw std::invalid_argument("LogHistogram::quantile: empty histogram");
  }
  if (!(q >= 0.0) || !(q <= 1.0)) {
    throw std::invalid_argument("LogHistogram::quantile: q not in [0,1]");
  }
  // Endpoints are the exact recorded extremes, not a bucket midpoint —
  // the same endpoint contract as sorted_quantile.
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Rank of the requested order statistic, 1-based.
  const double scaled = q * static_cast<double>(count_);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(scaled)));

  std::uint64_t seen = 0;
  std::size_t bucket = counts_.size() - 1;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      bucket = b;
      break;
    }
  }

  double representative;
  if (bucket == 0) {
    representative = min_;  // underflow: below the tracked range
  } else if (bucket + 1 == counts_.size()) {
    representative = max_;  // overflow: above the tracked range
  } else {
    const double lo = bucket_lower(bucket);
    const double hi = bucket_upper(bucket);
    representative = lo + (hi - lo) / 2.0;
  }
  return std::clamp(representative, min_, max_);
}

std::size_t LogHistogram::bucket_index(double value) const {
  // Normalise -0.0: its sign-bit pattern would otherwise order above
  // every positive value and land the smallest possible sample in the
  // overflow bucket.
  if (value == 0.0) return 0;  // zero is always below min_value (> 0)
  const std::uint64_t raw = raw_index(value, sub_bucket_bits_);
  if (raw < lo_raw_) return 0;
  if (raw > hi_raw_) return bucket_count() - 1;
  return static_cast<std::size_t>(raw - lo_raw_) + 1;
}

double LogHistogram::bucket_lower(std::size_t b) const {
  if (b >= bucket_count()) {
    throw std::out_of_range("LogHistogram::bucket_lower: bad bucket");
  }
  if (b == 0) return 0.0;
  return value_of_raw(lo_raw_ + (b - 1), sub_bucket_bits_);
}

double LogHistogram::bucket_upper(std::size_t b) const {
  if (b >= bucket_count()) {
    throw std::out_of_range("LogHistogram::bucket_upper: bad bucket");
  }
  if (b + 1 == bucket_count()) {
    return std::numeric_limits<double>::infinity();
  }
  return bucket_lower(b + 1);
}

std::uint64_t LogHistogram::bucket_value(std::size_t b) const {
  if (b >= bucket_count()) {
    throw std::out_of_range("LogHistogram::bucket_value: bad bucket");
  }
  return counts_.empty() ? 0 : counts_[b];
}

LogHistogram LogHistogram::from_state(
    double min_value, double max_value, unsigned sub_bucket_bits,
    std::span<const std::pair<std::uint64_t, std::uint64_t>> buckets,
    double min, double max, double sum) {
  LogHistogram hist(min_value, max_value, sub_bucket_bits);
  if (buckets.empty()) return hist;
  hist.ensure_counts();
  for (const auto& [bucket, count] : buckets) {
    if (bucket >= hist.bucket_count()) {
      throw std::invalid_argument(
          "LogHistogram::from_state: bucket index out of range");
    }
    if (count == 0 || hist.counts_[bucket] != 0) {
      throw std::invalid_argument(
          "LogHistogram::from_state: zero or repeated bucket entry");
    }
    hist.counts_[bucket] = count;
    hist.count_ += count;
  }
  if (!(min <= max)) {
    throw std::invalid_argument("LogHistogram::from_state: min > max");
  }
  hist.min_ = min;
  hist.max_ = max;
  hist.sum_ = sum;
  return hist;
}

bool operator==(const LogHistogram& a, const LogHistogram& b) {
  if (!a.same_config(b) || a.count_ != b.count_ || a.sum_ != b.sum_) {
    return false;
  }
  // Two empty histograms are equal whether or not their bucket arrays
  // have been (lazily) allocated yet.
  if (a.count_ == 0) return true;
  return a.min_ == b.min_ && a.max_ == b.max_ && a.counts_ == b.counts_;
}

}  // namespace staleflow
