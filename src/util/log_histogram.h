// Fixed-bucket logarithmic latency histograms (HdrHistogram-style, no
// dependencies).
//
// A LogHistogram records non-negative doubles into buckets whose
// boundaries are spaced logarithmically: each power-of-two octave is cut
// into 2^sub_bucket_bits linear sub-buckets, so the relative bucket width
// is at most 2^-sub_bucket_bits everywhere in the tracked range. Bucket
// indices are computed by integer arithmetic on the IEEE-754 bit pattern
// (positive doubles order like their bits), never through log()/exp(), so
// bucketing is exact, platform-stable and byte-reproducible — the
// property the service digest and the sweep CSV contract rely on.
//
// Histograms with the same configuration merge by adding counts; merging
// is commutative and associative, which is what lets per-shard recordings
// combine into per-epoch distributions, epochs into runs, and sweep cells
// into capacity-table rows without ever storing raw samples. Quantiles
// are extracted exactly from the counts: the returned value is the
// midpoint of the bucket holding the requested rank (clamped to the
// recorded min/max, so quantile(0) and quantile(1) are the exact
// extremes), hence within one bucket width of the true sorted-sample
// quantile.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace staleflow {

class LogHistogram {
 public:
  /// Tracks values in [min_value, max_value] with 2^sub_bucket_bits
  /// linear sub-buckets per octave (default 32: <= 3.2% relative bucket
  /// width). Values below/above the range land in dedicated underflow /
  /// overflow buckets and are still counted (and still drive the exact
  /// min/max). Requires 0 < min_value < max_value, both finite, and
  /// sub_bucket_bits in [0, 20]; throws std::invalid_argument otherwise.
  explicit LogHistogram(double min_value = 1e-9, double max_value = 1e9,
                        unsigned sub_bucket_bits = 5);

  /// Records one (or `count`) occurrences of `value`. Negative, NaN and
  /// infinite values are rejected with std::invalid_argument (a latency
  /// can be zero but never negative or undefined).
  void record(double value, std::uint64_t count = 1);

  /// Adds `other`'s counts into this histogram. Both must share the exact
  /// same configuration (min, max, sub_bucket_bits); throws
  /// std::invalid_argument on a mismatch.
  void merge(const LogHistogram& other);

  /// Drops every recorded value, keeping the configuration (no
  /// reallocation — for per-epoch reuse in serving loops).
  void reset() noexcept;

  /// Total number of recorded values.
  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Exact smallest / largest recorded value. Requires count() > 0.
  double min() const;
  double max() const;

  /// Sum of recorded values, accumulated in recording order (0 if empty).
  double sum() const noexcept { return sum_; }
  /// sum() / count(). Requires count() > 0.
  double mean() const;

  /// The q-quantile, q in [0, 1]. quantile(0) == min() and
  /// quantile(1) == max() exactly (the recorded extremes, as in
  /// sorted_quantile); an interior q returns the midpoint of the bucket
  /// containing rank ceil(q * count), clamped to [min(), max()], hence
  /// within one bucket width of the sorted-sample quantile. Requires
  /// count() > 0 and q in [0, 1]; throws std::invalid_argument otherwise.
  double quantile(double q) const;

  // ---- bucket geometry (exposed for tests and exports) ----

  /// Number of buckets, including the underflow (first) and overflow
  /// (last) buckets. Pure geometry — defined whether or not anything has
  /// been recorded (the bucket array itself is allocated lazily on first
  /// record/merge, so unused histogram members cost nothing).
  std::size_t bucket_count() const noexcept {
    return static_cast<std::size_t>(hi_raw_ - lo_raw_) + 3;
  }

  /// Bucket that `value` (>= 0, finite) falls into.
  std::size_t bucket_index(double value) const;

  /// Inclusive lower bound of bucket b: the smallest value mapping to it
  /// (0 for the underflow bucket). Requires b < bucket_count().
  double bucket_lower(std::size_t b) const;

  /// Exclusive upper bound of bucket b (+infinity for the overflow
  /// bucket). Requires b < bucket_count().
  double bucket_upper(std::size_t b) const;

  /// Count recorded in bucket b. Requires b < bucket_count().
  std::uint64_t bucket_value(std::size_t b) const;

  double min_value() const noexcept { return min_value_; }
  double max_value() const noexcept { return max_value_; }
  unsigned sub_bucket_bits() const noexcept { return sub_bucket_bits_; }

  // ---- checkpoint/restore (the recovery WAL path) ----

  /// Rebuilds a histogram from previously exported state: the
  /// configuration, the nonzero (bucket index, count) pairs, and the
  /// exact min/max/sum the accessors reported. The result compares
  /// operator==-equal to the original — bucket counts, count, min, max
  /// and sum restored bit-for-bit — so merges and quantiles continue
  /// exactly. `min`/`max`/`sum` are ignored when `buckets` is empty (an
  /// empty histogram has no extremes). Throws std::invalid_argument on a
  /// bad configuration, an out-of-range or repeated bucket index, a zero
  /// per-bucket count, or (when nonempty) min > max.
  static LogHistogram from_state(
      double min_value, double max_value, unsigned sub_bucket_bits,
      std::span<const std::pair<std::uint64_t, std::uint64_t>> buckets,
      double min, double max, double sum);

  /// True when both histograms have the same configuration AND the same
  /// counts, min, max and sum — i.e. they are observationally identical.
  friend bool operator==(const LogHistogram& a, const LogHistogram& b);

 private:
  bool same_config(const LogHistogram& other) const noexcept;
  void ensure_counts();

  double min_value_ = 0.0;
  double max_value_ = 0.0;
  unsigned sub_bucket_bits_ = 0;
  std::uint64_t lo_raw_ = 0;  // raw bit-index of the first regular bucket
  std::uint64_t hi_raw_ = 0;  // raw bit-index of the last regular bucket

  std::vector<std::uint64_t> counts_;  // [underflow, regular..., overflow]
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace staleflow
