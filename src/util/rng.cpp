#include "util/rng.h"

#include <cmath>
#include <limits>
#include <numbers>

namespace staleflow {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // Avoid the (astronomically unlikely) all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::below: n must be positive");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
  const auto width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(width));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("Rng::exponential: rate must be > 0");
  }
  double u = uniform();
  // uniform() can return exactly 0; log(0) would be -inf.
  while (u == 0.0) u = uniform();
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("Rng::weighted_index: negative weight");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument(
        "Rng::weighted_index: weights must have positive sum");
  }
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: return the last positive-weight index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept {
  return Rng{(*this)()};
}

Rng Rng::from_state(const std::array<std::uint64_t, 4>& state) {
  if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0) {
    throw std::invalid_argument(
        "Rng::from_state: all-zero state is not a valid xoshiro256** "
        "cursor");
  }
  Rng rng;
  rng.state_ = state;
  return rng;
}

}  // namespace staleflow
