// Deterministic pseudo-random number generation for simulations.
//
// All randomness in staleflow flows through Rng so that every simulation,
// test, and benchmark is reproducible from a single 64-bit seed. The
// generator is xoshiro256** (Blackman & Vigna), which is fast, has a
// 256-bit state, and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace staleflow {

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// plugged into <random> distributions, but also offers the convenience
/// draws the simulators need directly.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponential variate with the given rate (> 0).
  double exponential(double rate);

  /// Standard normal variate (Box-Muller, no caching for determinism).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight; negatives are an error.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  /// Derives an independent child generator (for per-agent streams).
  Rng split() noexcept;

  /// The full 256-bit generator state — the cursor a checkpoint stores so
  /// a restored stream continues exactly where this one stands (every
  /// future draw and split() identical). Round-trips through from_state().
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }

  /// Rebuilds a generator at a previously exported cursor. Throws
  /// std::invalid_argument on the all-zero state (unreachable from any
  /// seeded generator: xoshiro256** never enters it, and the constructor
  /// avoids it), so a zeroed/corrupt checkpoint fails loudly instead of
  /// producing a degenerate stream.
  static Rng from_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace staleflow
