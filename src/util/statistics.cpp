#include "util/statistics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace staleflow {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  if (count_ == 0) throw std::logic_error("RunningStats::mean: no samples");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) {
    throw std::logic_error("RunningStats::variance: need >= 2 samples");
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (count_ == 0) throw std::logic_error("RunningStats::min: no samples");
  return min_;
}

double RunningStats::max() const {
  if (count_ == 0) throw std::logic_error("RunningStats::max: no samples");
  return max_;
}

double quantile(std::span<const double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("quantile: empty input");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_quantile(sorted, q);
}

double sorted_quantile(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument("sorted_quantile: empty input");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("sorted_quantile: q not in [0,1]");
  }
  // Endpoints and singletons return the sample itself, bypassing the
  // interpolation arithmetic: `x * (1 - frac) + y * frac` is not exactly x
  // at frac == 0 when y is infinite (0 * inf == NaN), and the extreme
  // quantiles should round-trip the extreme samples bit-for-bit.
  if (sorted.size() == 1 || q == 0.0) return sorted.front();
  if (q == 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  RunningStats rs;
  for (const double x : samples) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.count() > 1 ? rs.stddev() : 0.0;
  s.min = rs.min();
  s.max = rs.max();
  s.median = quantile(samples, 0.5);
  s.p05 = quantile(samples, 0.05);
  s.p95 = quantile(samples, 0.95);
  return s;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("fit_line: size mismatch");
  }
  if (xs.size() < 2) throw std::invalid_argument("fit_line: need >= 2 points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw std::invalid_argument("fit_line: constant xs");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

PowerFit fit_power(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (!(xs[i] > 0.0) || !(ys[i] > 0.0)) {
      throw std::invalid_argument("fit_power: inputs must be positive");
    }
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  const LinearFit lf = fit_line(lx, ly);
  return PowerFit{std::exp(lf.intercept), lf.slope, lf.r_squared};
}

}  // namespace staleflow
