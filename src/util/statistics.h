// Streaming and batch statistics used by the analysis layer and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace staleflow {

/// Numerically stable streaming mean/variance (Welford's algorithm),
/// plus running min/max. Suitable for very long time series where storing
/// all samples is wasteful.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel combine).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Mean of the samples. Requires count() > 0.
  double mean() const;
  /// Unbiased sample variance. Requires count() > 1.
  double variance() const;
  /// sqrt(variance()). Requires count() > 1.
  double stddev() const;
  /// Requires count() > 0.
  double min() const;
  /// Requires count() > 0.
  double max() const;
  /// Sum of all samples (0 when empty).
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
};

/// Computes a Summary. Returns a zeroed Summary for an empty input.
Summary summarize(std::span<const double> samples);

/// Linear-interpolation quantile, q in [0, 1]. Requires non-empty input
/// (throws std::invalid_argument on an empty span or q outside [0, 1]).
double quantile(std::span<const double> samples, double q);

/// Same, for input that is already sorted ascending — no copy, no re-sort.
/// Use when reading several quantiles off one sample set. Edge cases are
/// exact: q == 0 returns the first sample, q == 1 the last, and a
/// single-sample input returns that sample for every q.
double sorted_quantile(std::span<const double> sorted, double q);

/// Ordinary least squares fit y = a + b*x. Returns {a, b, r2}.
/// Requires xs.size() == ys.size() >= 2 and non-constant xs.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Fits y = c * x^p via log-log OLS. Requires all inputs strictly positive.
struct PowerFit {
  double coefficient = 0.0;
  double exponent = 0.0;
  double r_squared = 0.0;
};
PowerFit fit_power(std::span<const double> xs, std::span<const double> ys);

}  // namespace staleflow
