// Wall-clock helpers shared by the serving layer (route server, epoch
// engine, tenant registry): one monotonic clock alias and the
// duration-in-seconds conversion every epoch/run measurement uses.
#pragma once

#include <chrono>

namespace staleflow {

using WallClock = std::chrono::steady_clock;

inline double seconds_between(WallClock::time_point begin,
                              WallClock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace staleflow
