// Wall-clock helpers shared by the serving layer (route server, epoch
// engine, tenant registry), the benches (bench/bench_common.h), and the
// trace plane: one monotonic clock alias, the duration-in-seconds
// conversion every epoch/run measurement uses, and a Stopwatch for the
// begin/elapsed idiom. Everything times against the same steady_clock
// the trace recorder stamps spans with, so bench numbers and offline
// trace quantiles are directly comparable.
#pragma once

#include <chrono>

namespace staleflow {

using WallClock = std::chrono::steady_clock;

inline double seconds_between(WallClock::time_point begin,
                              WallClock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// The one begin/elapsed timing idiom: starts on construction, reads
/// without stopping, restarts for loop reuse. Wall-clock telemetry only —
/// never feeds the deterministic digest.
class Stopwatch {
 public:
  Stopwatch() : begin_(WallClock::now()) {}

  double seconds() const { return seconds_between(begin_, WallClock::now()); }
  void restart() { begin_ = WallClock::now(); }

 private:
  WallClock::time_point begin_;
};

}  // namespace staleflow
