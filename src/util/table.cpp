#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace staleflow {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong number of cells");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  emit_row(headers_);
  std::vector<std::string> rule(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule[c] = std::string(widths[c], '-');
  }
  emit_row(rule);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_sci(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_int(long long value) { return std::to_string(value); }

std::string fmt_bool(bool value) { return value ? "yes" : "no"; }

}  // namespace staleflow
