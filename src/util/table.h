// Plain-text table printing for benchmark output.
//
// Benches print paper-style tables to stdout; this keeps the formatting in
// one place so every experiment's output looks the same.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace staleflow {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class Table {
 public:
  /// Creates a table with the given column headers (must be non-empty).
  explicit Table(std::vector<std::string> headers);

  /// Appends a row. Must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

  /// Renders with a header rule, e.g.
  ///   T        amplitude   predicted
  ///   -------  ----------  ----------
  ///   0.1000   0.024900    0.024979
  std::string to_string() const;

  /// Writes to_string() to the stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers used when filling tables.
std::string fmt(double value, int precision = 6);
std::string fmt_sci(double value, int precision = 3);
std::string fmt_int(long long value);
std::string fmt_bool(bool value);

}  // namespace staleflow
