#include "util/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "trace/metrics.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace staleflow {
namespace {

/// Encoded lane of this thread (see ThreadPool::current_lane_code):
/// defaults to 1 (not a pool worker); worker threads overwrite it once.
thread_local std::size_t t_lane_code = 1;

/// Best-effort OS pinning of the calling thread to `core`. A no-op on
/// non-Linux platforms, when the core does not exist, or when the kernel
/// refuses — pinning may only ever change wall clock.
void pin_to_core(std::size_t core) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0 || core >= hw || core >= CPU_SETSIZE) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

trace::Counter& local_hits_counter() {
  static trace::Counter& counter =
      trace::MetricsRegistry::global().counter("pool.local_hits");
  return counter;
}

trace::Counter& steals_counter() {
  static trace::Counter& counter =
      trace::MetricsRegistry::global().counter("pool.steals");
  return counter;
}

}  // namespace

/// Shared state of one batch: how many of its tasks are still queued or
/// running, and the first exception any of them raised. Guarded by the
/// pool mutex (tokens are cheap; a dedicated mutex per token would buy
/// nothing — every transition already happens under the pool lock).
class ThreadPool::Completion {
 public:
  std::size_t pending = 0;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t threads, bool pin) : pin_(pin) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  lanes_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  if (first_error_) {
    // The error was never collected by wait_idle(); swallowing it here
    // would hide a real failure behind a clean exit.
    try {
      std::rethrow_exception(first_error_);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "ThreadPool: task failed with uncollected exception: %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr,
                   "ThreadPool: task failed with uncollected exception\n");
    }
    std::terminate();
  }
}

std::size_t ThreadPool::current_lane_code() noexcept { return t_lane_code; }

ThreadPool::CompletionToken ThreadPool::make_token() {
  return std::make_shared<Completion>();
}

void ThreadPool::submit(std::function<void()> task,
                        const CompletionToken& token) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (token) ++token->pending;
    queue_.push_back(Entry{std::move(task), token});
    ++queued_;
  }
  work_available_.notify_all();
}

void ThreadPool::submit(std::function<void()> task,
                        const CompletionToken& token, std::size_t lane) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (token) ++token->pending;
    lanes_[lane % lanes_.size()].push_back(Entry{std::move(task), token});
    ++queued_;
  }
  work_available_.notify_all();
}

bool ThreadPool::token_queued_locked(const CompletionToken& token) const {
  const auto match = [&](const Entry& e) { return e.token == token; };
  if (std::any_of(queue_.begin(), queue_.end(), match)) return true;
  for (const std::deque<Entry>& lane : lanes_) {
    if (std::any_of(lane.begin(), lane.end(), match)) return true;
  }
  return false;
}

void ThreadPool::wait(const CompletionToken& token) {
  if (token == nullptr) {
    throw std::invalid_argument("ThreadPool::wait: null completion token");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  const auto match = [&](const Entry& e) { return e.token == token; };
  for (;;) {
    if (token->pending == 0) break;
    // Help with our own batch first: pop the oldest queued task of this
    // token and run it here. Tasks of other tokens are left to the
    // workers (and to their own waiters) — running an arbitrary task
    // while it may itself block on us is how nested pools deadlock.
    // Shared queue before lane deques: unplaced work (graph fold /
    // snapshot / summary nodes) is the natural helper diet; a lane task
    // taken here is a steal — legal, counted, and the reason progress
    // never depends on the lane's owner being free.
    Entry entry;
    bool found = false;
    bool from_lane = false;
    auto it = std::find_if(queue_.begin(), queue_.end(), match);
    if (it != queue_.end()) {
      entry = std::move(*it);
      queue_.erase(it);
      found = true;
    } else {
      for (std::deque<Entry>& lane : lanes_) {
        auto lane_it = std::find_if(lane.begin(), lane.end(), match);
        if (lane_it != lane.end()) {
          entry = std::move(*lane_it);
          lane.erase(lane_it);
          found = true;
          from_lane = true;
          break;
        }
      }
    }
    if (found) {
      --queued_;
      ++active_;
      lock.unlock();
      if (from_lane) steals_counter().inc();
      run_entry(std::move(entry));
      lock.lock();
      continue;
    }
    // Nothing of ours queued: the rest of the batch is running on other
    // threads. Sleep until a completion (or new work of ours) shows up.
    work_available_.wait(lock, [&] {
      return token->pending == 0 || token_queued_locked(token);
    });
  }
  if (token->error) {
    const std::exception_ptr error = std::exchange(token->error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queued_ == 0 && active_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::run_entry(Entry entry) {
  static trace::Counter& tasks_counter =
      trace::MetricsRegistry::global().counter("pool.tasks");
  tasks_counter.inc();
  std::exception_ptr error;
  try {
    entry.task();
  } catch (...) {
    error = std::current_exception();
  }
  finish(entry.token, error);
}

void ThreadPool::finish(const CompletionToken& token,
                        std::exception_ptr error) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --active_;
    if (token) {
      if (error && !token->error) token->error = error;
      --token->pending;
    } else if (error && !first_error_) {
      first_error_ = error;
    }
    if (queued_ == 0 && active_ == 0) idle_.notify_all();
  }
  // Completions wake both idle workers and helping waiters; the predicate
  // re-check keeps the broadcast cheap to tolerate.
  work_available_.notify_all();
}

void ThreadPool::worker_loop(std::size_t lane) {
  t_lane_code = lane + 2;
  if (pin_) pin_to_core(lane);
  for (;;) {
    Entry entry;
    bool local = false;
    bool stolen = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || queued_ > 0; });
      if (queued_ == 0) return;  // stopping_ and drained
      // Own lane first (placement pays off here), then the shared FIFO,
      // then — only when idle otherwise — steal the newest task from
      // another lane's back (the owner drains its front, so contention
      // for the same entry is minimal).
      if (!lanes_[lane].empty()) {
        entry = std::move(lanes_[lane].front());
        lanes_[lane].pop_front();
        local = true;
      } else if (!queue_.empty()) {
        entry = std::move(queue_.front());
        queue_.pop_front();
      } else {
        for (std::size_t offset = 1; offset < lanes_.size(); ++offset) {
          std::deque<Entry>& victim = lanes_[(lane + offset) % lanes_.size()];
          if (victim.empty()) continue;
          entry = std::move(victim.back());
          victim.pop_back();
          stolen = true;
          break;
        }
      }
      --queued_;
      ++active_;
    }
    if (local) {
      local_hits_counter().inc();
    } else if (stolen) {
      steals_counter().inc();
    }
    run_entry(std::move(entry));
  }
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, count == 0 ? std::size_t{1} : count));
  const ThreadPool::CompletionToken token = pool.make_token();
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); }, token);
  }
  pool.wait(token);
}

}  // namespace staleflow
