#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace staleflow {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, count == 0 ? std::size_t{1} : count));
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace staleflow
