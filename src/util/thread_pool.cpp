#include "util/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "trace/metrics.h"

namespace staleflow {

/// Shared state of one batch: how many of its tasks are still queued or
/// running, and the first exception any of them raised. Guarded by the
/// pool mutex (tokens are cheap; a dedicated mutex per token would buy
/// nothing — every transition already happens under the pool lock).
class ThreadPool::Completion {
 public:
  std::size_t pending = 0;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  if (first_error_) {
    // The error was never collected by wait_idle(); swallowing it here
    // would hide a real failure behind a clean exit.
    try {
      std::rethrow_exception(first_error_);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "ThreadPool: task failed with uncollected exception: %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr,
                   "ThreadPool: task failed with uncollected exception\n");
    }
    std::terminate();
  }
}

ThreadPool::CompletionToken ThreadPool::make_token() {
  return std::make_shared<Completion>();
}

void ThreadPool::submit(std::function<void()> task,
                        const CompletionToken& token) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (token) ++token->pending;
    queue_.push_back(Entry{std::move(task), token});
  }
  work_available_.notify_all();
}

void ThreadPool::wait(const CompletionToken& token) {
  if (token == nullptr) {
    throw std::invalid_argument("ThreadPool::wait: null completion token");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (token->pending == 0) break;
    // Help with our own batch first: pop the oldest queued task of this
    // token and run it here. Tasks of other tokens are left to the
    // workers (and to their own waiters) — running an arbitrary task
    // while it may itself block on us is how nested pools deadlock.
    auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Entry& e) {
      return e.token == token;
    });
    if (it != queue_.end()) {
      Entry entry = std::move(*it);
      queue_.erase(it);
      ++active_;
      lock.unlock();
      run_entry(std::move(entry));
      lock.lock();
      continue;
    }
    // Nothing of ours queued: the rest of the batch is running on other
    // threads. Sleep until a completion (or new work of ours) shows up.
    work_available_.wait(lock, [&] {
      return token->pending == 0 ||
             std::any_of(queue_.begin(), queue_.end(),
                         [&](const Entry& e) { return e.token == token; });
    });
  }
  if (token->error) {
    const std::exception_ptr error = std::exchange(token->error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::run_entry(Entry entry) {
  static trace::Counter& tasks_counter =
      trace::MetricsRegistry::global().counter("pool.tasks");
  tasks_counter.inc();
  std::exception_ptr error;
  try {
    entry.task();
  } catch (...) {
    error = std::current_exception();
  }
  finish(entry.token, error);
}

void ThreadPool::finish(const CompletionToken& token,
                        std::exception_ptr error) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --active_;
    if (token) {
      if (error && !token->error) token->error = error;
      --token->pending;
    } else if (error && !first_error_) {
      first_error_ = error;
    }
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }
  // Completions wake both idle workers and helping waiters; the predicate
  // re-check keeps the broadcast cheap to tolerate.
  work_available_.notify_all();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      entry = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    run_entry(std::move(entry));
  }
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, count == 0 ? std::size_t{1} : count));
  const ThreadPool::CompletionToken token = pool.make_token();
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); }, token);
  }
  pool.wait(token);
}

}  // namespace staleflow
