// A fixed-size worker pool with a FIFO work queue and completion tokens.
//
// This pool is the single place multi-threading lives: the execution layer
// (src/exec/) builds its Executor/TaskGraph on top of it, and everything
// above that (sweep runner, route server, benches, tools) stays free of
// raw thread management. Determinism discipline: tasks must never share
// mutable state and must not draw from a shared RNG — anything random is
// derived *before* submission (see SweepRunner / RouteServer), so results
// are independent of scheduling order.
//
// Completion tokens group tasks so a caller can wait for its own batch
// instead of whole-pool idleness. wait(token) *helps*: while the token is
// pending, the waiting thread drains queued tasks of that token itself.
// That makes nested submission safe — a task running on a worker may
// submit sub-tasks to the same pool and wait for them without deadlock,
// which is how sweep cells use inner parallelism on the shared pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace staleflow {

/// Fixed pool of worker threads draining a FIFO queue of tasks.
///
/// submit() is thread-safe. Errors follow two contracts:
///  - token-tracked tasks: the first exception of the batch is captured in
///    the token and rethrown from wait(token);
///  - untracked tasks: the first exception is captured and rethrown from
///    wait_idle(). If it is never consumed, the destructor does NOT
///    swallow it: it reports the error on stderr and terminates — losing
///    a task failure silently is never an acceptable outcome.
class ThreadPool {
 public:
  /// Completion state of one batch of tasks. Opaque: create with
  /// make_token(), pass to submit(), settle with wait().
  class Completion;
  using CompletionToken = std::shared_ptr<Completion>;

  /// Spawns `threads` workers; 0 picks std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue, then joins all workers. Terminates (after printing
  /// the message) if an untracked task failed and wait_idle() never
  /// collected the exception.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// A fresh, empty completion token.
  CompletionToken make_token();

  /// Enqueues a task. Tasks are picked up FIFO by whichever worker frees
  /// up first; completion order is unspecified. A non-null `token` ties
  /// the task to that batch for wait().
  void submit(std::function<void()> task,
              const CompletionToken& token = nullptr);

  /// Blocks until every task submitted under `token` has finished, then
  /// rethrows the first exception any of them raised. While waiting, runs
  /// queued tasks of the same token on the calling thread (safe to call
  /// from inside a pool task — the nested batch drains without consuming
  /// an extra worker).
  void wait(const CompletionToken& token);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any untracked task raised since the
  /// last call.
  void wait_idle();

 private:
  struct Entry {
    std::function<void()> task;
    CompletionToken token;
  };

  void worker_loop();
  void run_entry(Entry entry);
  void finish(const CompletionToken& token, std::exception_ptr error);

  std::vector<std::thread> workers_;
  std::deque<Entry> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [0, count) across `threads` workers and waits for
/// completion. threads == 0 picks hardware concurrency; threads == 1 runs
/// inline on the calling thread (no pool); exceptions propagate either
/// way (first one wins).
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace staleflow
