// A fixed-size worker pool with per-lane local deques, a shared FIFO
// queue and completion tokens.
//
// This pool is the single place multi-threading lives: the execution layer
// (src/exec/) builds its Executor/TaskGraph on top of it, and everything
// above that (sweep runner, route server, benches, tools) stays free of
// raw thread management. Determinism discipline: tasks must never share
// mutable state and must not draw from a shared RNG — anything random is
// derived *before* submission (see SweepRunner / RouteServer), so results
// are independent of scheduling order.
//
// Locality: every worker owns a local deque (its "lane"). submit() with a
// lane routes a task to that worker, so tasks that touch the same state
// (same-shard sub-batches) keep hitting the same caches. A worker drains
// its own lane first, then the shared queue, and STEALS from another lane
// only when both are empty — placement is a wall-clock optimization, never
// a correctness mechanism (any thread may legally run any task), which is
// why it cannot perturb the determinism contract. pool.local_hits /
// pool.steals counters make the placement's effectiveness a measured
// number (trace_dump_cli summary).
//
// Completion tokens group tasks so a caller can wait for its own batch
// instead of whole-pool idleness. wait(token) *helps*: while the token is
// pending, the waiting thread drains queued tasks of that token itself
// (shared queue first, then any lane — so progress is guaranteed even
// when every worker is held, e.g. by an injected stall window). That
// makes nested submission safe — a task running on a worker may submit
// sub-tasks to the same pool and wait for them without deadlock, which is
// how sweep cells use inner parallelism on the shared pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace staleflow {

/// Fixed pool of worker threads draining per-lane deques plus a shared
/// FIFO queue.
///
/// submit() is thread-safe. Errors follow two contracts:
///  - token-tracked tasks: the first exception of the batch is captured in
///    the token and rethrown from wait(token);
///  - untracked tasks: the first exception is captured and rethrown from
///    wait_idle(). If it is never consumed, the destructor does NOT
///    swallow it: it reports the error on stderr and terminates — losing
///    a task failure silently is never an acceptable outcome.
class ThreadPool {
 public:
  /// Completion state of one batch of tasks. Opaque: create with
  /// make_token(), pass to submit(), settle with wait().
  class Completion;
  using CompletionToken = std::shared_ptr<Completion>;

  /// Spawns `threads` workers; 0 picks std::thread::hardware_concurrency()
  /// (at least 1). With `pin`, worker lane i is pinned to CPU core i where
  /// the platform supports it and a core i exists — silently a no-op
  /// otherwise (pinning is wall-clock placement, never semantics).
  explicit ThreadPool(std::size_t threads = 0, bool pin = false);

  /// Drains the queues, then joins all workers. Terminates (after printing
  /// the message) if an untracked task failed and wait_idle() never
  /// collected the exception.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// A fresh, empty completion token.
  CompletionToken make_token();

  /// Enqueues a task on the shared queue. Tasks are picked up FIFO by
  /// whichever worker frees up first; completion order is unspecified. A
  /// non-null `token` ties the task to that batch for wait().
  void submit(std::function<void()> task,
              const CompletionToken& token = nullptr);

  /// Enqueues a task on worker lane `lane % size()`'s local deque: that
  /// worker runs it unless it is busy and another idle thread (a stealing
  /// worker or a helping waiter) gets there first. Placement is advisory —
  /// it changes which cache the task's state is warm in, never the
  /// task's result.
  void submit(std::function<void()> task, const CompletionToken& token,
              std::size_t lane);

  /// Blocks until every task submitted under `token` has finished, then
  /// rethrows the first exception any of them raised. While waiting, runs
  /// queued tasks of the same token on the calling thread — shared queue
  /// first, then lane deques (counted as steals) — so a nested batch
  /// drains without consuming an extra worker and progress never depends
  /// on a worker being free.
  void wait(const CompletionToken& token);

  /// Blocks until every queue is empty and every worker is idle, then
  /// rethrows the first exception any untracked task raised since the
  /// last call.
  void wait_idle();

  /// Encoded lane of the calling thread, for trace labelling: 1 on any
  /// thread that is not a pool worker (the submitting/helping caller),
  /// lane + 2 on pool worker `lane`. 0 never occurs — it is reserved for
  /// "unknown" in traces recorded before lanes existed.
  static std::size_t current_lane_code() noexcept;

 private:
  struct Entry {
    std::function<void()> task;
    CompletionToken token;
  };

  void worker_loop(std::size_t lane);
  void run_entry(Entry entry);
  void finish(const CompletionToken& token, std::exception_ptr error);
  bool token_queued_locked(const CompletionToken& token) const;

  std::vector<std::thread> workers_;
  std::deque<Entry> queue_;               // unplaced tasks, FIFO
  std::vector<std::deque<Entry>> lanes_;  // one local deque per worker
  std::size_t queued_ = 0;                // entries across queue_ + lanes_
  bool pin_ = false;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [0, count) across `threads` workers and waits for
/// completion. threads == 0 picks hardware concurrency; threads == 1 runs
/// inline on the calling thread (no pool); exceptions propagate either
/// way (first one wins).
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace staleflow
