// A fixed-size worker pool with a FIFO work queue.
//
// The sweep engine executes thousands of independent simulation cells; this
// pool is the single place multi-threading lives so everything above it
// (sweep runner, benches, tools) stays free of raw thread management.
// Determinism discipline: tasks must never share mutable state and must not
// draw from a shared RNG — anything random is derived *before* submission
// (see SweepRunner), so results are independent of scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace staleflow {

/// Fixed pool of worker threads draining a FIFO queue of tasks.
///
/// submit() is thread-safe. If a task throws, the first exception is
/// captured and rethrown from wait_idle() (or swallowed by the destructor
/// if wait_idle() is never called); subsequent tasks still run.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Tasks are picked up FIFO by whichever worker frees
  /// up first; completion order is unspecified.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any task raised since the last call.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [0, count) across `threads` workers and waits for
/// completion. threads == 0 picks hardware concurrency; threads == 1 runs
/// inline on the calling thread (no pool); exceptions propagate either
/// way (first one wins).
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace staleflow
