// Tests for the finite-population agent simulator and its agreement with
// the fluid limit.
#include <gtest/gtest.h>

#include <cmath>

#include "agents/agent_simulator.h"
#include "core/fluid_simulator.h"
#include "equilibrium/metrics.h"
#include "latency/functions.h"
#include "net/generators.h"

namespace staleflow {
namespace {

Instance pigou() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, constant(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

TEST(AgentSimulator, PreservesFeasibility) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const AgentSimulator sim(inst, policy);
  AgentSimOptions options;
  options.num_agents = 500;
  options.update_period = 0.2;
  options.horizon = 5.0;
  options.seed = 42;
  const AgentSimResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_TRUE(is_feasible(inst, result.final_flow.values(), 1e-9));
  EXPECT_GT(result.activations, 0u);
  EXPECT_GE(result.activations, result.migrations);
}

TEST(AgentSimulator, DeterministicGivenSeed) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const AgentSimulator sim(inst, policy);
  AgentSimOptions options;
  options.num_agents = 300;
  options.update_period = 0.25;
  options.horizon = 4.0;
  options.seed = 7;
  const AgentSimResult a = sim.run(FlowVector::uniform(inst), options);
  const AgentSimResult b = sim.run(FlowVector::uniform(inst), options);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.migrations, b.migrations);
  for (std::size_t p = 0; p < inst.path_count(); ++p) {
    EXPECT_DOUBLE_EQ(a.final_flow[PathId{p}], b.final_flow[PathId{p}]);
  }
}

TEST(AgentSimulator, MovesTowardsEquilibrium) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const AgentSimulator sim(inst, policy);
  AgentSimOptions options;
  options.num_agents = 5'000;
  options.update_period = 0.1;
  options.horizon = 30.0;
  options.seed = 3;
  const AgentSimResult result = sim.run(FlowVector::uniform(inst), options);
  // Equilibrium is all flow on the linear link.
  EXPECT_GT(result.final_flow[PathId{0}], 0.9);
}

TEST(AgentSimulator, ApproachesFluidTrajectoryAsNGrows) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const double T = 0.25;
  const double horizon = 4.0;

  // Fluid reference.
  const FluidSimulator fluid(inst, policy);
  SimulationOptions fluid_options;
  fluid_options.update_period = T;
  fluid_options.horizon = horizon;
  fluid_options.method = IntegrationMethod::kExact;
  const SimulationResult reference =
      fluid.run(FlowVector::uniform(inst), fluid_options);

  const AgentSimulator agents(inst, policy);
  double prev_error = 0.0;
  std::size_t idx = 0;
  for (const std::size_t n : {200u, 20'000u}) {
    AgentSimOptions options;
    options.num_agents = n;
    options.update_period = T;
    options.horizon = horizon;
    options.seed = 11;
    const AgentSimResult result = agents.run(FlowVector::uniform(inst), options);
    const double error =
        std::abs(result.final_flow[PathId{0}] - reference.final_flow[PathId{0}]);
    if (idx++ > 0) {
      EXPECT_LT(error, prev_error)
          << "more agents should track the fluid limit better";
    }
    prev_error = error;
  }
  // With 20k agents the discrepancy should be small.
  EXPECT_LT(prev_error, 0.02);
}

TEST(AgentSimulator, ObserverFiresOncePerPhase) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const AgentSimulator sim(inst, policy);
  AgentSimOptions options;
  options.num_agents = 100;
  options.update_period = 0.5;
  options.horizon = 5.0;
  options.seed = 1;
  std::size_t phases = 0;
  double last_end = 0.0;
  sim.run(FlowVector::uniform(inst), options,
          [&](const PhaseInfo& info) {
            ++phases;
            EXPECT_GT(info.end_time, last_end);
            last_end = info.end_time;
            EXPECT_TRUE(is_feasible(inst, info.flow_after, 1e-9));
          });
  EXPECT_GE(phases, 9u);
  EXPECT_LE(phases, 10u);
}

TEST(AgentSimulator, MultiCommodityAllocation) {
  const Instance inst = shared_bottleneck(0.3);
  const Policy policy = make_uniform_linear_policy(inst);
  const AgentSimulator sim(inst, policy);
  AgentSimOptions options;
  options.num_agents = 1'000;
  options.update_period = 0.2;
  options.horizon = 3.0;
  options.seed = 9;
  const AgentSimResult result = sim.run(FlowVector::uniform(inst), options);
  // Per-commodity demand is conserved exactly.
  for (std::size_t c = 0; c < inst.commodity_count(); ++c) {
    const Commodity& commodity = inst.commodity(CommodityId{c});
    double total = 0.0;
    for (const PathId p : commodity.paths) total += result.final_flow[p];
    EXPECT_NEAR(total, commodity.demand, 1e-12);
  }
}

TEST(AgentSimulator, RejectsBadOptions) {
  const Instance inst = shared_bottleneck(0.5);
  const Policy policy = make_uniform_linear_policy(inst);
  const AgentSimulator sim(inst, policy);
  AgentSimOptions options;
  options.num_agents = 1;  // fewer agents than commodities
  EXPECT_THROW(sim.run(FlowVector::uniform(inst), options),
               std::invalid_argument);
  AgentSimOptions bad_period;
  bad_period.update_period = 0.0;
  EXPECT_THROW(sim.run(FlowVector::uniform(inst), bad_period),
               std::invalid_argument);
}

TEST(AgentSimulator, RegretShrinksWithConvergence) {
  // No-regret connection ([1,5] in the paper's related work): as the
  // population converges, the average sustained latency approaches the
  // best fixed path in hindsight.
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const AgentSimulator sim(inst, policy);

  AgentSimOptions short_run;
  short_run.num_agents = 5'000;
  short_run.update_period = 0.25;
  short_run.horizon = 3.0;
  short_run.seed = 5;
  const AgentSimResult early = sim.run(FlowVector::uniform(inst), short_run);

  AgentSimOptions long_run = short_run;
  long_run.horizon = 60.0;
  const AgentSimResult late = sim.run(FlowVector::uniform(inst), long_run);

  EXPECT_GE(early.average_regret, -1e-9);
  EXPECT_GE(late.average_regret, -1e-9);
  EXPECT_LT(late.average_regret, early.average_regret);
  EXPECT_LT(late.average_regret, 0.05);
  // Experienced latency approaches the equilibrium latency 1 from below
  // (the transient rides the cheap link while it is still uncongested).
  EXPECT_GT(late.average_experienced_latency, 0.5);
  EXPECT_LE(late.average_experienced_latency, 1.0 + 1e-9);
}

TEST(AgentSimulator, HindsightNeverBeatsExperiencedByDefinition) {
  const Instance inst = shared_bottleneck(0.5);
  const Policy policy = make_replicator_policy(inst, 0.1);
  const AgentSimulator sim(inst, policy);
  AgentSimOptions options;
  options.num_agents = 2'000;
  options.update_period = 0.2;
  options.horizon = 10.0;
  options.seed = 31;
  const AgentSimResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_LE(result.hindsight_best_latency,
            result.average_experienced_latency + 1e-9);
  EXPECT_NEAR(result.average_regret,
              result.average_experienced_latency -
                  result.hindsight_best_latency,
              1e-12);
}

TEST(AgentSimulator, BetterResponsePolicyAlsoRuns) {
  // The discrete simulator accepts non-smooth policies too (they are the
  // interesting misbehaving case).
  const Instance inst = two_link_pulse(4.0);
  const Policy policy = make_naive_better_response_policy();
  const AgentSimulator sim(inst, policy);
  AgentSimOptions options;
  options.num_agents = 2'000;
  options.update_period = 0.5;
  options.horizon = 10.0;
  options.seed = 23;
  const AgentSimResult result = sim.run(FlowVector(inst, {0.7, 0.3}), options);
  EXPECT_TRUE(is_feasible(inst, result.final_flow.values(), 1e-9));
  EXPECT_GT(result.migrations, 0u);
}

}  // namespace
}  // namespace staleflow
