// Tests for the analysis module: trajectory recording, oscillation
// detection, round classification and per-phase accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/accounting.h"
#include "analysis/oscillation.h"
#include "analysis/round_counter.h"
#include "analysis/trajectory.h"
#include "core/best_response.h"
#include "core/fluid_simulator.h"
#include "latency/functions.h"
#include "net/generators.h"

namespace staleflow {
namespace {

Instance pigou() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, constant(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

TEST(TrajectoryRecorder, RecordsEveryPhase) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  TrajectoryRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = 0.5;
  options.horizon = 5.0;
  sim.run(FlowVector::uniform(inst), options, recorder.observer());
  ASSERT_EQ(recorder.samples().size(), 10u);
  for (std::size_t i = 1; i < recorder.samples().size(); ++i) {
    EXPECT_GT(recorder.samples()[i].time, recorder.samples()[i - 1].time);
  }
  // The gap shrinks along the run.
  EXPECT_LT(recorder.samples().back().gap, recorder.samples().front().gap);
}

TEST(TrajectoryRecorder, StrideSkipsPhases) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  TrajectoryRecorder::Options rec_options;
  rec_options.stride = 3;
  TrajectoryRecorder recorder(inst, rec_options);
  SimulationOptions options;
  options.update_period = 0.5;
  options.horizon = 5.0;
  sim.run(FlowVector::uniform(inst), options, recorder.observer());
  EXPECT_EQ(recorder.samples().size(), 4u);  // phases 0, 3, 6, 9
}

TEST(TrajectoryRecorder, StoresFlowsWhenAsked) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  TrajectoryRecorder::Options rec_options;
  rec_options.store_flows = true;
  TrajectoryRecorder recorder(inst, rec_options);
  SimulationOptions options;
  options.update_period = 0.5;
  options.horizon = 2.0;
  sim.run(FlowVector::uniform(inst), options, recorder.observer());
  ASSERT_EQ(recorder.flows().size(), 4u);
  EXPECT_EQ(recorder.flows()[0].size(), inst.path_count());
}

TEST(TrajectoryRecorder, TimeToGap) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  TrajectoryRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = 0.25;
  options.horizon = 100.0;
  sim.run(FlowVector::uniform(inst), options, recorder.observer());
  const auto hit = recorder.time_to_gap(1e-3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_GT(*hit, 0.0);
  EXPECT_FALSE(recorder.time_to_gap(-1.0).has_value());
}

TEST(AnalyseOscillation, DetectsSettledSeries) {
  std::vector<std::vector<double>> flows(10, std::vector<double>{0.5, 0.5});
  const OscillationReport report = analyse_oscillation(flows);
  EXPECT_TRUE(report.settled);
  EXPECT_FALSE(report.period_two);
  EXPECT_DOUBLE_EQ(report.step_amplitude, 0.0);
}

TEST(AnalyseOscillation, DetectsPeriodTwo) {
  std::vector<std::vector<double>> flows;
  for (int i = 0; i < 12; ++i) {
    flows.push_back(i % 2 == 0 ? std::vector<double>{0.7, 0.3}
                               : std::vector<double>{0.3, 0.7});
  }
  const OscillationReport report = analyse_oscillation(flows);
  EXPECT_FALSE(report.settled);
  EXPECT_TRUE(report.period_two);
  EXPECT_NEAR(report.step_amplitude, 0.4, 1e-12);
  EXPECT_NEAR(report.period2_residual, 0.0, 1e-12);
}

TEST(AnalyseOscillation, ChaoticSeriesIsNeither) {
  std::vector<std::vector<double>> flows;
  double x = 0.2;
  for (int i = 0; i < 20; ++i) {
    x = 3.9 * x * (1.0 - x);  // logistic map
    flows.push_back({x, 1.0 - x});
  }
  const OscillationReport report = analyse_oscillation(flows);
  EXPECT_FALSE(report.settled);
  EXPECT_FALSE(report.period_two);
}

TEST(AnalyseOscillation, RejectsTinySeries) {
  std::vector<std::vector<double>> flows(3, std::vector<double>{1.0});
  EXPECT_THROW(analyse_oscillation(flows), std::invalid_argument);
}

TEST(TailAmplitude, PeakToPeak) {
  const std::vector<double> series{5.0, 1.0, 2.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(tail_amplitude(series, 3), 2.0);   // {2,4,3}
  EXPECT_DOUBLE_EQ(tail_amplitude(series, 100), 4.0); // clamped to all
  EXPECT_THROW(tail_amplitude({}, 2), std::invalid_argument);
}

TEST(RoundCounter, CountsBadRoundsOnOscillator) {
  // Best response on the pulse instance never reaches an approximate
  // equilibrium with tight delta/eps: every round is bad.
  const Instance inst = two_link_pulse(4.0);
  const BestResponseSimulator sim(inst);
  const double T = 0.5;
  const double f1 = 1.0 / (std::exp(-T) + 1.0);
  RoundCounter counter(inst, RoundCounter::Mode::kStrict, 0.05, 0.25);
  BestResponseOptions options;
  options.update_period = T;
  options.horizon = 10.0;
  sim.run(FlowVector(inst, {f1, 1.0 - f1}), options, counter.observer());
  EXPECT_EQ(counter.total_rounds(), 20u);
  EXPECT_EQ(counter.bad_rounds(), counter.total_rounds());
}

TEST(RoundCounter, SmoothPolicyHasFinitelyManyBadRounds) {
  const Instance inst = two_link_pulse(4.0);
  const Policy policy = make_uniform_linear_policy(inst);
  const double T = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);
  RoundCounter counter(inst, RoundCounter::Mode::kStrict, 0.05, 0.1);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 300.0;
  sim.run(FlowVector(inst, {0.95, 0.05}), options, counter.observer());
  EXPECT_GT(counter.total_rounds(), counter.bad_rounds());
  // Once good, stays good: the last bad round is early in the run.
  EXPECT_LT(counter.last_bad_round(), counter.total_rounds() / 2);
}

TEST(RoundCounter, WeakModeIsNeverStricter) {
  const Instance inst = two_link_pulse(4.0);
  const Policy policy = make_uniform_linear_policy(inst);
  const double T = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);
  RoundCounter strict(inst, RoundCounter::Mode::kStrict, 0.05, 0.1);
  RoundCounter weak(inst, RoundCounter::Mode::kWeak, 0.05, 0.1);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 100.0;
  const PhaseObserver strict_obs = strict.observer();
  const PhaseObserver weak_obs = weak.observer();
  sim.run(FlowVector(inst, {0.9, 0.1}), options,
          [&](const PhaseInfo& info) {
            strict_obs(info);
            weak_obs(info);
          });
  EXPECT_LE(weak.bad_rounds(), strict.bad_rounds());
}

TEST(RoundCounter, RejectsBadParameters) {
  const Instance inst = pigou();
  EXPECT_THROW(RoundCounter(inst, RoundCounter::Mode::kStrict, 0.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW(RoundCounter(inst, RoundCounter::Mode::kWeak, 0.1, 0.0),
               std::invalid_argument);
}

TEST(AccountingRecorder, IdentityHoldsOnEveryPhase) {
  const Instance inst = braess(true);
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  AccountingRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = 0.05;
  options.horizon = 5.0;
  sim.run(FlowVector::uniform(inst), options, recorder.observer());
  EXPECT_EQ(recorder.records().size(), 100u);
  EXPECT_LT(recorder.max_identity_residual(), 1e-12);
}

TEST(AccountingRecorder, DetectsViolationsAtHugeT) {
  // With a naive policy and a long period the potential can rise; the
  // recorder must notice (Lemma 4's premise is violated).
  const Instance inst = two_link_pulse(16.0);
  const Policy policy = make_naive_better_response_policy();
  const FluidSimulator sim(inst, policy);
  AccountingRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = 2.0;
  options.horizon = 40.0;
  sim.run(FlowVector(inst, {0.95, 0.05}), options, recorder.observer());
  EXPECT_GT(recorder.lemma4_violations(), 0u);
  EXPECT_GT(recorder.max_delta_phi(), 0.0);
}

}  // namespace
}  // namespace staleflow
