// Negative-path tests for the shared CLI flag-parsing helpers
// (tools/cli_common.h): the numeric edge cases a quoting accident or a
// stray shell expansion can produce — inf/nan spellings, out-of-range
// literals, embedded whitespace, partial parses — must all be usage
// errors (exit 2 with the grammar in hand), never silently-accepted
// values. Companion to the fault-plane hardening sweep.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cli_common.h"

namespace staleflow {
namespace {

TEST(ParseNumber, AcceptsOrdinaryFiniteValues) {
  EXPECT_DOUBLE_EQ(cli::parse_number("0.25", "--t"), 0.25);
  EXPECT_DOUBLE_EQ(cli::parse_number("-3", "--t"), -3.0);
  EXPECT_DOUBLE_EQ(cli::parse_number("1e3", "--t"), 1000.0);
  EXPECT_DOUBLE_EQ(cli::parse_number(".5", "--t"), 0.5);
}

TEST(ParseNumber, RejectsNonFiniteSpellingsAndOverflow) {
  // std::stod happily parses every one of these; the tools must not.
  const std::vector<std::string> bad = {"inf",  "INF", "+inf", "-inf",
                                        "infinity", "nan", "NaN", "nan(0)",
                                        "1e999", "-1e999"};
  for (const std::string& text : bad) {
    EXPECT_THROW(cli::parse_number(text, "--t"), cli::UsageError) << text;
  }
}

TEST(ParseNumber, RejectsWhitespaceAndPartialParses) {
  const std::vector<std::string> bad = {" 5",  "\t5", "\n5", "5 ",
                                        "5\t", "1.5x", "x1.5", "", " ",
                                        "--", "1,5"};
  for (const std::string& text : bad) {
    EXPECT_THROW(cli::parse_number(text, "--t"), cli::UsageError) << text;
  }
}

TEST(ParseInteger, RejectsWhitespaceOverflowAndPartialParses) {
  EXPECT_EQ(cli::parse_integer("-7", "--n"), -7);
  const std::vector<std::string> bad = {
      " 5", "5 ", "", "4x", "0x10", "1.5",
      "99999999999999999999",   // > INT64_MAX: out_of_range, not a wrap
      "-99999999999999999999",
  };
  for (const std::string& text : bad) {
    EXPECT_THROW(cli::parse_integer(text, "--n"), cli::UsageError) << text;
  }
}

TEST(ParseCount, RejectsNegativesInsteadOfWrapping) {
  EXPECT_EQ(cli::parse_count("0", "--n"), 0u);
  EXPECT_EQ(cli::parse_count("42", "--n"), 42u);
  EXPECT_THROW(cli::parse_count("-1", "--n"), cli::UsageError);
  EXPECT_THROW(cli::parse_count(" 1", "--n"), cli::UsageError);
}

TEST(SafeRate, NeverDividesByZeroOrReportsInf) {
  // A first progress tick can land inside the clock's resolution: the
  // rate must read "none yet", not inf/nan.
  EXPECT_DOUBLE_EQ(cli::safe_rate(100.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(cli::safe_rate(100.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(cli::safe_rate(100.0, 1e-9), 0.0);
  EXPECT_DOUBLE_EQ(cli::safe_rate(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(cli::safe_rate(100.0, 2.0), 50.0);
  EXPECT_DOUBLE_EQ(cli::safe_rate(0.0, 2.0), 0.0);
}

}  // namespace
}  // namespace staleflow
