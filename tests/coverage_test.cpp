// Focused coverage tests for paths that the main suites only exercise
// indirectly: per-pair migrated volumes, multi-column linear solves,
// renormalisation across commodities, describe() surfaces, and the less
// common option combinations of the simulators.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "latency/quadrature.h"
#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

Instance pigou() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, constant(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

// ------------------------------------------------------- migrated volumes

TEST(MigratedVolumes, ConsistentWithPhaseTransition) {
  // Flow conservation: f_P(tau) - f_P(0) = sum_Q (Delta f_QP - Delta f_PQ).
  const Instance inst = braess(true);
  const Policy policy = make_uniform_linear_policy(inst);
  BulletinBoard board(inst);
  const FlowVector start =
      FlowVector::concentrated(inst, std::vector<std::size_t>{0});
  board.post(0.0, start.values());
  const PhaseRates rates(inst, policy, board);

  const double tau = 0.2;
  const std::vector<double> end = rates.transition(tau).apply(start.values());
  const Matrix volumes = rates.migrated_volumes(start.values(), tau);

  const std::size_t n = inst.path_count();
  for (std::size_t p = 0; p < n; ++p) {
    double net = 0.0;
    for (std::size_t q = 0; q < n; ++q) {
      net += volumes(q, p) - volumes(p, q);
    }
    EXPECT_NEAR(end[p] - start.values()[p], net, 1e-12) << "path " << p;
  }
}

TEST(MigratedVolumes, PairwiseGainsSumToVirtualGain) {
  // sum_PQ Delta f_PQ * (l̂_Q - l̂_P) must equal Eq. (8)'s V(f̂, f).
  const Instance inst = two_link_pulse(4.0);
  const Policy policy = make_uniform_linear_policy(inst);
  BulletinBoard board(inst);
  const std::vector<double> start{0.85, 0.15};
  board.post(0.0, start);
  const PhaseRates rates(inst, policy, board);

  const double tau = 0.1;
  const std::vector<double> end = rates.transition(tau).apply(start);
  const Matrix volumes = rates.migrated_volumes(start, tau);

  double v_pairwise = 0.0;
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t q = 0; q < 2; ++q) {
      v_pairwise += volumes(p, q) *
                    (board.path_latency()[q] - board.path_latency()[p]);
    }
  }
  EXPECT_NEAR(v_pairwise, virtual_gain(inst, start, end), 1e-13);
}

TEST(MigratedVolumes, NonNegativeAndSelfishOnly) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  BulletinBoard board(inst);
  const std::vector<double> start{0.2, 0.8};
  board.post(0.0, start);
  const PhaseRates rates(inst, policy, board);
  const Matrix volumes = rates.migrated_volumes(start, 0.5);
  // Path 1 (constant 1) is worse than path 0 (latency 0.2): only 1 -> 0
  // migration happens.
  EXPECT_GT(volumes(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(volumes(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(volumes(0, 0), 0.0);
  EXPECT_THROW(rates.migrated_volumes(start, -1.0), std::invalid_argument);
  const std::vector<double> wrong{0.5};
  EXPECT_THROW(rates.migrated_volumes(wrong, 0.1), std::invalid_argument);
}

// --------------------------------------------------------------- matrices

TEST(Matrix, MultiColumnSolve) {
  Matrix a(3, 3);
  a(0, 0) = 2.0; a(0, 1) = 1.0; a(0, 2) = 0.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0; a(1, 2) = 1.0;
  a(2, 0) = 0.0; a(2, 1) = 1.0; a(2, 2) = 4.0;
  const Matrix inverse = a.solve(Matrix::identity(3));
  const Matrix product = a.multiply(inverse);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(product(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Expm, EmptyMatrix) {
  const Matrix e = expm(Matrix(0, 0));
  EXPECT_EQ(e.rows(), 0u);
}

TEST(DormandPrince45, RespectsMaxStep) {
  DormandPrince45::Options opts;
  opts.max_step = 0.01;
  std::vector<double> y{1.0};
  const OdeRhs decay = [](double, std::span<const double> y_in,
                          std::span<double> dydt) { dydt[0] = -y_in[0]; };
  const OdeStats stats = DormandPrince45(opts).integrate(decay, 0.0, 1.0, y);
  EXPECT_GE(stats.steps_accepted, 100u);  // forced small steps
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-9);
}

// ------------------------------------------------------------------ flows

TEST(Renormalise, MultiCommodityBlocksIndependent) {
  const Instance inst = shared_bottleneck(0.25);
  std::vector<double> f(inst.path_count(), 0.0);
  // Perturb each commodity's block differently.
  const Commodity& c0 = inst.commodity(CommodityId{0});
  const Commodity& c1 = inst.commodity(CommodityId{1});
  f[c0.paths[0].index()] = 0.4;   // should scale down to 0.25 total
  f[c1.paths[0].index()] = 0.3;   // should scale up to 0.75 total
  f[c1.paths[1].index()] = 0.1;
  renormalise(inst, f);
  double t0 = 0.0, t1 = 0.0;
  for (const PathId p : c0.paths) t0 += f[p.index()];
  for (const PathId p : c1.paths) t1 += f[p.index()];
  EXPECT_NEAR(t0, 0.25, 1e-12);
  EXPECT_NEAR(t1, 0.75, 1e-12);
  // Within-block ratios preserved.
  EXPECT_NEAR(f[c1.paths[0].index()] / f[c1.paths[1].index()], 3.0, 1e-12);
}

TEST(Describe, SurfacesAreInformative) {
  const Instance inst = braess(true);
  EXPECT_NE(inst.graph().describe().find("Graph(V=4"), std::string::npos);
  const Path& path = inst.path(PathId{0});
  EXPECT_NE(path.describe(inst.graph()).find("v0"), std::string::npos);
  const Policy policy = make_safe_policy(inst, 0.5);
  EXPECT_NE(policy.name().find("alpha-capped"), std::string::npos);
}

// ------------------------------------------------------------- simulators

TEST(FluidSimulator, EulerMethodAgreesOnShortHorizon) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  SimulationOptions rk4;
  rk4.update_period = 0.1;
  rk4.horizon = 2.0;
  SimulationOptions euler = rk4;
  euler.method = IntegrationMethod::kEuler;
  euler.step_size = 1e-4;
  const SimulationResult a = sim.run(FlowVector::uniform(inst), rk4);
  const SimulationResult b = sim.run(FlowVector::uniform(inst), euler);
  EXPECT_NEAR(a.final_flow[PathId{0}], b.final_flow[PathId{0}], 1e-5);
}

TEST(FluidSimulator, RenormaliseOffStillFeasibleForExactMethod) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = 0.25;
  options.horizon = 10.0;
  options.method = IntegrationMethod::kExact;
  options.renormalise = false;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);
  // The exact phase map is stochastic, so feasibility holds without help.
  EXPECT_TRUE(is_feasible(inst, result.final_flow.values(), 1e-9));
}

TEST(RoundCounter, LastBadSemantics) {
  const Instance inst = pigou();
  RoundCounter counter(inst, RoundCounter::Mode::kStrict, 0.1, 0.05);
  const PhaseObserver obs = counter.observer();
  auto fire = [&](std::size_t index, std::span<const double> before) {
    PhaseInfo info;
    info.index = index;
    info.flow_before = before;
    info.flow_after = before;
    obs(info);
  };
  const std::vector<double> bad{0.5, 0.5};   // gap 0.5 > delta
  const std::vector<double> good{1.0, 0.0};  // equilibrium
  fire(0, bad);
  fire(1, good);
  fire(2, bad);
  fire(3, good);
  EXPECT_EQ(counter.total_rounds(), 4u);
  EXPECT_EQ(counter.bad_rounds(), 2u);
  EXPECT_EQ(counter.last_bad_round(), 2u);
}

TEST(BestResponseSimulator, StopGapShortCircuits) {
  const Instance inst = pigou();
  const BestResponseSimulator sim(inst);
  BestResponseOptions options;
  options.update_period = 0.5;
  options.horizon = 1'000.0;
  options.stop_gap = 1e-6;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_TRUE(result.stopped_by_gap);
  EXPECT_LT(result.final_time, 1'000.0);
}

// ----------------------------------------------------------------- social

TEST(SocialOptimum, BraessOptimumAvoidsShortcutOveruse) {
  const Instance inst = braess(true);
  const SocialOptimumResult opt = solve_social_optimum(inst);
  EXPECT_TRUE(opt.converged);
  EXPECT_NEAR(opt.social_cost, 1.5, 1e-4);  // optimum = no-shortcut split
}

TEST(PriceOfAnarchy, MonotoneInPigouDegree) {
  double previous = 1.0;
  for (const double d : {1.0, 2.0, 4.0}) {
    Graph g(2);
    const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
    const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
    InstanceBuilder b(std::move(g));
    b.set_latency(e1, monomial(1.0, d));
    b.set_latency(e2, constant(1.0));
    b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
    const Instance inst = std::move(b).build();
    const double ratio = price_of_anarchy(inst).ratio;
    EXPECT_GT(ratio, previous);
    previous = ratio;
  }
}

// ------------------------------------------------------------------ misc

TEST(Quadrature, MatchesClosedFormsAcrossFamilies) {
  std::vector<LatencyPtr> fns;
  fns.push_back(bpr(1.0, 0.3, 0.5, 3.0));
  fns.push_back(mm1(1.2));
  fns.push_back(polynomial({0.2, 0.1, 0.4}));
  for (const auto& fn : fns) {
    for (double x : {0.3, 0.7, 1.0}) {
      const double numeric = integrate(
          [&fn](double u) { return fn->value(u); }, 0.0, x, 1e-12);
      EXPECT_NEAR(numeric, fn->integral(x), 1e-9) << fn->describe();
    }
  }
}

TEST(InstanceDescribe, SafePeriodConsistentWithPolicyFactories) {
  Rng rng(12);
  const Instance inst = grid(3, 3, rng);
  const Policy linear_policy = make_uniform_linear_policy(inst);
  const double t1 = inst.safe_update_period(*linear_policy.smoothness());
  // make_safe_policy at exactly t1 must produce alpha equal to the
  // linear rule's alpha (both sides of the same formula).
  const Policy inverse = make_safe_policy(inst, t1);
  EXPECT_NEAR(*inverse.smoothness(), *linear_policy.smoothness(), 1e-12);
}

}  // namespace
}  // namespace staleflow
