// Tests for the fluid dynamics layer: phase generator structure, exact
// expm transitions vs numerical integration, fresh-information dynamics,
// and the replicator identity.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/bulletin_board.h"
#include "core/dynamics.h"
#include "core/policy.h"
#include "equilibrium/frank_wolfe.h"
#include "latency/functions.h"
#include "net/generators.h"
#include "ode/integrator.h"
#include "util/rng.h"

namespace staleflow {
namespace {

Instance pigou() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, constant(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

TEST(PhaseRates, GeneratorColumnsSumToZero) {
  const Instance inst = braess(true);
  const Policy policy = make_uniform_linear_policy(inst);
  BulletinBoard board(inst);
  const FlowVector f = FlowVector::uniform(inst);
  board.post(0.0, f.values());
  const PhaseRates rates(inst, policy, board);
  const Matrix& g = rates.generator();
  for (std::size_t col = 0; col < g.cols(); ++col) {
    double sum = 0.0;
    for (std::size_t row = 0; row < g.rows(); ++row) {
      sum += g(row, col);
      if (row != col) {
        EXPECT_GE(g(row, col), 0.0);
      }
    }
    EXPECT_NEAR(sum, 0.0, 1e-14);
  }
}

TEST(PhaseRates, ZeroAtWardropEquilibrium) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  BulletinBoard board(inst);
  const std::vector<double> eq{1.0, 0.0};
  board.post(0.0, eq);
  const PhaseRates rates(inst, policy, board);
  std::vector<double> dfdt(2);
  rates.rhs(eq, dfdt);
  EXPECT_NEAR(dfdt[0], 0.0, 1e-14);
  EXPECT_NEAR(dfdt[1], 0.0, 1e-14);
}

TEST(PhaseRates, RequiresPostedBoard) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const BulletinBoard board(inst);
  EXPECT_THROW(PhaseRates(inst, policy, board), std::logic_error);
}

TEST(PhaseRates, RhsConservesCommodityMass) {
  const Instance inst = shared_bottleneck(0.4);
  const Policy policy = make_replicator_policy(inst, 0.05);
  BulletinBoard board(inst);
  Rng rng(5);
  std::vector<double> f(inst.path_count());
  for (auto& v : f) v = rng.uniform();
  renormalise(inst, f);
  board.post(0.0, f);
  const PhaseRates rates(inst, policy, board);
  std::vector<double> dfdt(f.size());
  rates.rhs(f, dfdt);
  for (std::size_t c = 0; c < inst.commodity_count(); ++c) {
    double total = 0.0;
    for (const PathId p : inst.commodity(CommodityId{c}).paths) {
      total += dfdt[p.index()];
    }
    EXPECT_NEAR(total, 0.0, 1e-14);
  }
}

TEST(PhaseRates, ExactTransitionMatchesRk4) {
  const Instance inst = braess(true);
  const Policy policy = make_uniform_linear_policy(inst);
  BulletinBoard board(inst);
  const FlowVector start = FlowVector::uniform(inst);
  board.post(0.0, start.values());
  const PhaseRates rates(inst, policy, board);

  const double tau = 0.37;
  const std::vector<double> via_expm =
      rates.transition(tau).apply(start.values());

  std::vector<double> via_rk4(start.values().begin(), start.values().end());
  const OdeRhs rhs = [&rates](double, std::span<const double> y,
                              std::span<double> dydt) { rates.rhs(y, dydt); };
  RungeKutta4(1e-4).integrate(rhs, 0.0, tau, via_rk4);

  for (std::size_t p = 0; p < via_expm.size(); ++p) {
    EXPECT_NEAR(via_expm[p], via_rk4[p], 1e-10);
  }
}

TEST(PhaseRates, TransitionPreservesFeasibility) {
  const Instance inst = two_link_pulse(4.0);
  const Policy policy = make_uniform_linear_policy(inst);
  BulletinBoard board(inst);
  const std::vector<double> start{0.9, 0.1};
  board.post(0.0, start);
  const PhaseRates rates(inst, policy, board);
  const std::vector<double> end = rates.transition(2.0).apply(start);
  EXPECT_TRUE(is_feasible(inst, end, 1e-12));
  EXPECT_THROW(rates.transition(-1.0), std::invalid_argument);
}

TEST(FreshDynamics, ConservesMassAndDecreasesPotential) {
  const Instance inst = braess(true);
  const Policy policy = make_uniform_linear_policy(inst);
  const FreshDynamics dynamics(inst, policy);
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> f(inst.path_count());
    for (auto& v : f) v = rng.uniform();
    renormalise(inst, f);
    std::vector<double> dfdt(f.size());
    dynamics.rhs(f, dfdt);
    EXPECT_NEAR(std::accumulate(dfdt.begin(), dfdt.end(), 0.0), 0.0, 1e-14);
    // d/dt Phi = sum_P f'_P l_P <= 0 for selfish policies (Theorem 2).
    const std::vector<double> latency = path_latencies(inst, f);
    double phi_dot = 0.0;
    for (std::size_t p = 0; p < f.size(); ++p) {
      phi_dot += dfdt[p] * latency[p];
    }
    EXPECT_LE(phi_dot, 1e-14);
  }
}

TEST(FreshDynamics, ZeroOnlyAtEquilibrium) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FreshDynamics dynamics(inst, policy);
  std::vector<double> dfdt(2);

  const std::vector<double> eq{1.0, 0.0};
  dynamics.rhs(eq, dfdt);
  EXPECT_NEAR(dfdt[0], 0.0, 1e-14);

  const std::vector<double> off{0.5, 0.5};
  dynamics.rhs(off, dfdt);
  EXPECT_GT(dfdt[0], 0.0);  // flow moves towards the cheaper link
  EXPECT_LT(dfdt[1], 0.0);
}

TEST(FreshDynamics, ReplicatorIdentity) {
  // For proportional sampling + linear migration on one commodity with
  // r = 1 the fluid ODE reduces to the replicator equation
  //   f'_P = f_P * (L - l_P) / l_max.
  const Instance inst = uniform_parallel_links(4, 0.25, 1.0);
  const Policy policy = make_replicator_policy(inst);
  const FreshDynamics dynamics(inst, policy);
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> f(4);
    for (auto& v : f) v = rng.uniform(0.05, 1.0);
    renormalise(inst, f);
    std::vector<double> dfdt(4);
    dynamics.rhs(f, dfdt);
    const FlowEvaluation eval = evaluate(inst, f);
    for (std::size_t p = 0; p < 4; ++p) {
      const double expected = f[p] *
                              (eval.average_latency - eval.path_latency[p]) /
                              inst.max_latency();
      EXPECT_NEAR(dfdt[p], expected, 1e-12);
    }
  }
}

TEST(FreshDynamics, SizeMismatchThrows) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FreshDynamics dynamics(inst, policy);
  std::vector<double> f{0.5, 0.5};
  std::vector<double> wrong(3);
  EXPECT_THROW(dynamics.rhs(f, wrong), std::invalid_argument);
}

TEST(BulletinBoard, StoresSnapshot) {
  const Instance inst = pigou();
  BulletinBoard board(inst);
  EXPECT_FALSE(board.has_data());
  const std::vector<double> f{0.25, 0.75};
  board.post(1.5, f);
  EXPECT_TRUE(board.has_data());
  EXPECT_DOUBLE_EQ(board.posted_at(), 1.5);
  EXPECT_DOUBLE_EQ(board.path_flow()[0], 0.25);
  EXPECT_DOUBLE_EQ(board.path_latency()[0], 0.25);  // l = x
  EXPECT_DOUBLE_EQ(board.path_latency()[1], 1.0);
  EXPECT_DOUBLE_EQ(board.edge_latency()[1], 1.0);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(board.post(2.0, wrong), std::invalid_argument);
}

TEST(BulletinBoard, StaleValuesPersistWithinPhase) {
  // The board keeps the posted values even if the true flow moves on.
  const Instance inst = pigou();
  BulletinBoard board(inst);
  board.post(0.0, std::vector<double>{0.5, 0.5});
  const double frozen = board.path_latency()[0];
  // ... the live flow changes, but nothing is re-posted:
  EXPECT_DOUBLE_EQ(board.path_latency()[0], frozen);
  board.post(1.0, std::vector<double>{0.9, 0.1});
  EXPECT_NE(board.path_latency()[0], frozen);
}

class GeneratorSweep : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSweep, PhaseGeneratorIsAlwaysAValidRateMatrix) {
  // Property: whatever the (feasible) board flow, the per-phase generator
  // has non-negative off-diagonals and zero column sums.
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Instance inst = random_parallel_links(5, rng);
  const Policy policy = make_replicator_policy(inst, 0.1);
  BulletinBoard board(inst);
  std::vector<double> f(inst.path_count());
  for (auto& v : f) v = rng.uniform();
  renormalise(inst, f);
  board.post(0.0, f);
  const PhaseRates rates(inst, policy, board);
  const Matrix& g = rates.generator();
  for (std::size_t col = 0; col < g.cols(); ++col) {
    double sum = 0.0;
    for (std::size_t row = 0; row < g.rows(); ++row) {
      sum += g(row, col);
      if (row != col) {
        EXPECT_GE(g(row, col), 0.0);
      }
    }
    EXPECT_NEAR(sum, 0.0, 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace staleflow
