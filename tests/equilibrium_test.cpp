// Tests for the equilibrium module: potential computation, the Lemma 3
// accounting identity, approximate equilibrium metrics, and Frank-Wolfe
// against hand-computable Wardrop equilibria.
#include <gtest/gtest.h>

#include <cmath>

#include "equilibrium/frank_wolfe.h"
#include "equilibrium/metrics.h"
#include "equilibrium/potential.h"
#include "latency/functions.h"
#include "net/generators.h"
#include "util/rng.h"

namespace staleflow {
namespace {

/// Pigou's example: l1(x) = x, l2(x) = 1. Wardrop equilibrium: all flow on
/// link 1 (f = (1, 0)), equilibrium latency 1, Phi* = 1/2.
Instance pigou() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, constant(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

/// Two affine links l1 = x, l2 = 0.5 + x. Equilibrium: f = (0.75, 0.25),
/// both latencies 0.75.
Instance two_affine_links() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, affine(0.5, 1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

TEST(Potential, ClosedFormOnPigou) {
  const Instance inst = pigou();
  // Phi(f) = f1^2/2 + f2.
  EXPECT_DOUBLE_EQ(potential(inst, std::vector<double>{1.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(potential(inst, std::vector<double>{0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(potential(inst, std::vector<double>{0.5, 0.5}),
                   0.125 + 0.5);
}

TEST(Potential, FromEdgeFlowsMatchesPathVersion) {
  const Instance inst = braess(true);
  const FlowVector f = FlowVector::uniform(inst);
  const double via_paths = potential(inst, f.values());
  const double via_edges =
      potential_from_edge_flows(inst, edge_flows(inst, f.values()));
  EXPECT_DOUBLE_EQ(via_paths, via_edges);
  EXPECT_THROW(potential_from_edge_flows(inst, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(VirtualGain, ZeroWhenFlowsEqual) {
  const Instance inst = pigou();
  const std::vector<double> f{0.6, 0.4};
  EXPECT_DOUBLE_EQ(virtual_gain(inst, f, f), 0.0);
}

TEST(VirtualGain, MatchesHandComputation) {
  const Instance inst = pigou();
  const std::vector<double> before{0.5, 0.5};
  const std::vector<double> after{0.75, 0.25};
  // V = l1(0.5)*(0.75-0.5) + l2(0.5)*(0.25-0.5) = 0.5*0.25 + 1*(-0.25).
  EXPECT_NEAR(virtual_gain(inst, before, after), -0.125, 1e-15);
}

TEST(ErrorTerms, Lemma3IdentityHoldsExactly) {
  // Phi(f) - Phi(f̂) == sum U_e + V for arbitrary feasible pairs.
  const Instance inst = braess(true);
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> a(inst.path_count()), b(inst.path_count());
    for (auto& v : a) v = rng.uniform();
    for (auto& v : b) v = rng.uniform();
    renormalise(inst, a);
    renormalise(inst, b);
    const PhaseAccounting acc = account_phase(inst, a, b);
    EXPECT_LT(acc.identity_residual, 1e-12)
        << "trial " << trial;
  }
}

TEST(ErrorTerms, NonNegativeForConvexLatencies) {
  // For non-decreasing latencies U_e = INT (l(u) - l(f̂)) du over a growing
  // or shrinking range is always >= 0.
  const Instance inst = two_affine_links();
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(2), b(2);
    a[0] = rng.uniform();
    a[1] = 1.0 - a[0];
    b[0] = rng.uniform();
    b[1] = 1.0 - b[0];
    for (const double u : error_terms(inst, a, b)) {
      EXPECT_GE(u, -1e-15);
    }
  }
}

TEST(WardropGap, ZeroAtEquilibrium) {
  const Instance inst = pigou();
  EXPECT_NEAR(wardrop_gap(inst, std::vector<double>{1.0, 0.0}), 0.0, 1e-15);
  EXPECT_GT(wardrop_gap(inst, std::vector<double>{0.2, 0.8}), 0.0);
}

TEST(WardropGap, MatchesHandComputation) {
  const Instance inst = pigou();
  // f = (0.5, 0.5): l = (0.5, 1), min = 0.5, gap = 0.5 * (1 - 0.5).
  EXPECT_DOUBLE_EQ(wardrop_gap(inst, std::vector<double>{0.5, 0.5}), 0.25);
}

TEST(UnsatisfiedVolume, CountsOnlyAboveDelta) {
  const Instance inst = pigou();
  const std::vector<double> f{0.5, 0.5};
  // Deviation of link 2 over the minimum is 0.5.
  EXPECT_DOUBLE_EQ(unsatisfied_volume(inst, f, 0.4), 0.5);
  EXPECT_DOUBLE_EQ(unsatisfied_volume(inst, f, 0.6), 0.0);
}

TEST(WeaklyUnsatisfiedVolume, UsesAverageLatency) {
  const Instance inst = pigou();
  const std::vector<double> f{0.5, 0.5};
  // L = 0.75; link 2 latency 1 is 0.25 above it.
  EXPECT_DOUBLE_EQ(weakly_unsatisfied_volume(inst, f, 0.2), 0.5);
  EXPECT_DOUBLE_EQ(weakly_unsatisfied_volume(inst, f, 0.3), 0.0);
}

TEST(ApproximateEquilibria, StrictImpliesWeak) {
  // Every (delta, eps)-equilibrium is also a weak one (min <= average).
  const Instance inst = two_affine_links();
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> f(2);
    f[0] = rng.uniform();
    f[1] = 1.0 - f[0];
    const double delta = rng.uniform(0.01, 0.5);
    const double eps = rng.uniform(0.01, 0.5);
    if (is_delta_eps_equilibrium(inst, f, delta, eps)) {
      EXPECT_TRUE(is_weak_delta_eps_equilibrium(inst, f, delta, eps));
    }
  }
}

TEST(MaxLatencyDeviation, IgnoresUnusedPaths) {
  const Instance inst = pigou();
  // All flow on link 1; link 2 is worse but unused.
  EXPECT_DOUBLE_EQ(
      max_latency_deviation(inst, std::vector<double>{1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(
      max_latency_deviation(inst, std::vector<double>{0.5, 0.5}), 0.5);
}

TEST(FrankWolfe, SolvesPigou) {
  const Instance inst = pigou();
  const FrankWolfeResult result = solve_equilibrium(inst);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.flow[PathId{0}], 1.0, 1e-4);
  EXPECT_NEAR(result.potential, 0.5, 1e-7);
  EXPECT_LE(result.gap, 1e-10);
}

TEST(FrankWolfe, SolvesTwoAffineLinks) {
  const Instance inst = two_affine_links();
  const FrankWolfeResult result = solve_equilibrium(inst);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.flow[PathId{0}], 0.75, 1e-4);
  EXPECT_NEAR(result.flow[PathId{1}], 0.25, 1e-4);
  const auto latencies = path_latencies(inst, result.flow.values());
  EXPECT_NEAR(latencies[0], latencies[1], 1e-4);
}

TEST(FrankWolfe, BraessEquilibriumUsesShortcut) {
  // With the zero-cost shortcut everyone routes s->a->b->t; the
  // equilibrium latency is 2 (the paradox: worse than 1.5 without it).
  const Instance inst = braess(true);
  const FrankWolfeResult result = solve_equilibrium(inst);
  EXPECT_TRUE(result.converged);
  const FlowEvaluation eval = evaluate(inst, result.flow.values());
  EXPECT_NEAR(eval.average_latency, 2.0, 1e-5);

  const Instance inst2 = braess(false);
  const FrankWolfeResult result2 = solve_equilibrium(inst2);
  const FlowEvaluation eval2 = evaluate(inst2, result2.flow.values());
  EXPECT_NEAR(eval2.average_latency, 1.5, 1e-5);
}

TEST(FrankWolfe, PulseInstanceEquilibrium) {
  const Instance inst = two_link_pulse(4.0);
  const FrankWolfeResult result = solve_equilibrium(inst);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.flow[PathId{0}], 0.5, 1e-3);
  EXPECT_NEAR(result.potential, 0.0, 1e-9);
}

TEST(FrankWolfe, OptimalPotentialIsMinimal) {
  const Instance inst = braess(true);
  const double opt = optimal_potential(inst);
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> f(inst.path_count());
    for (auto& v : f) v = rng.uniform();
    renormalise(inst, f);
    EXPECT_GE(potential(inst, f), opt - 1e-9);
  }
}

TEST(FrankWolfe, MultiCommodity) {
  const Instance inst = shared_bottleneck(0.5);
  const FrankWolfeResult result = solve_equilibrium(inst);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.gap, 1e-10);
  EXPECT_TRUE(is_feasible(inst, result.flow.values(), 1e-9));
}

TEST(FrankWolfe, RandomInstancesReachSmallGap) {
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const Instance inst = random_parallel_links(6, rng);
    FrankWolfeOptions options;
    options.gap_tolerance = 1e-9;
    const FrankWolfeResult result = solve_equilibrium(inst, options);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.gap, 1e-9);
  }
}

TEST(FrankWolfe, GridInstance) {
  Rng rng(29);
  const Instance inst = grid(3, 3, rng);
  const FrankWolfeResult result = solve_equilibrium(inst);
  EXPECT_TRUE(result.converged);
  // At equilibrium every used path has (near-)minimal latency.
  const FlowEvaluation eval = evaluate(inst, result.flow.values());
  for (std::size_t p = 0; p < inst.path_count(); ++p) {
    if (result.flow[PathId{p}] > 1e-6) {
      EXPECT_NEAR(eval.path_latency[p], eval.commodity_min_latency[0], 1e-4);
    }
  }
}

class GapToleranceSweep : public ::testing::TestWithParam<double> {};

TEST_P(GapToleranceSweep, FrankWolfeMeetsRequestedTolerance) {
  const double tol = GetParam();
  const Instance inst = two_affine_links();
  FrankWolfeOptions options;
  options.gap_tolerance = tol;
  const FrankWolfeResult result = solve_equilibrium(inst, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.gap, tol);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, GapToleranceSweep,
                         ::testing::Values(1e-4, 1e-6, 1e-8, 1e-10));

}  // namespace
}  // namespace staleflow
