// Tests for the deterministic execution layer (src/exec/) and the
// completion-token ThreadPool underneath it: sub-batch splitting
// arithmetic, task-graph dependency order, exception propagation, nested
// submission on a shared pool, the destructor's no-silent-swallow
// contract, and the end-to-end property the layer exists for — route
// service dynamics that are byte-identical across 1/2/8 worker threads
// with sub-batch splitting and epoch pipelining forced on.
//
// Runs under `ctest -L exec` in the sanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/generators.h"
#include "service/service.h"
#include "sweep/sweep.h"
#include "exec/exec.h"
#include "util/thread_pool.h"

namespace staleflow {
namespace {

// ----------------------------------------------------------- splitting

TEST(SubBatchSplit, CountDependsOnBatchSizeOnly) {
  // target 0 = never split; small batches never split; ceil division
  // above the target; clamped to max_chunks (one client per chunk floor).
  EXPECT_EQ(sub_batch_count(0, 100, 8), 1u);
  EXPECT_EQ(sub_batch_count(100, 100, 8), 1u);
  EXPECT_EQ(sub_batch_count(101, 100, 8), 2u);
  EXPECT_EQ(sub_batch_count(1000, 100, 8), 8u);  // clamped from 10
  EXPECT_EQ(sub_batch_count(1000, 0, 8), 1u);
  EXPECT_THROW(sub_batch_count(10, 4, 0), std::invalid_argument);
}

TEST(SubBatchSplit, AutoTargetDependsOnLoadAndLanesOnly) {
  // target = max(256, ceil(total / (4 * lanes))): ~4 sub-batches per lane
  // once the load clears the floor, so the epoch task count stays stable
  // across load levels.
  EXPECT_EQ(auto_sub_batch_target(0, 4), 256u);       // floor
  EXPECT_EQ(auto_sub_batch_target(4096, 4), 256u);    // exactly the floor
  EXPECT_EQ(auto_sub_batch_target(160'000, 4), 10'000u);
  EXPECT_EQ(auto_sub_batch_target(160'001, 4), 10'001u);  // ceil
  EXPECT_EQ(auto_sub_batch_target(160'000, 8), 5'000u);
  EXPECT_THROW(auto_sub_batch_target(100, 0), std::invalid_argument);
  // The derived pieces-per-lane really is ~4 above the floor.
  const std::size_t total = 1'000'000;
  const std::size_t lanes = 8;
  const std::size_t per_lane = total / lanes;
  EXPECT_EQ(sub_batch_count(per_lane, auto_sub_batch_target(total, lanes),
                            per_lane),
            4u);
}

TEST(SubBatchSplit, RangesPartitionExactlyAndBalanced) {
  for (const std::size_t total : {0u, 1u, 7u, 64u, 1000u}) {
    for (const std::size_t chunks : {1u, 2u, 3u, 7u, 16u}) {
      std::size_t covered = 0;
      std::size_t smallest = total + 1;
      std::size_t largest = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const SubRange range = sub_range(total, chunks, c);
        EXPECT_EQ(range.begin, covered) << total << "/" << chunks;
        covered += range.count;
        smallest = std::min(smallest, range.count);
        largest = std::max(largest, range.count);
      }
      EXPECT_EQ(covered, total);
      EXPECT_LE(largest - smallest, 1u) << total << "/" << chunks;
    }
  }
  EXPECT_THROW(sub_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(sub_range(10, 2, 2), std::invalid_argument);
}

TEST(SubBatchSplit, ShardLanePlacementIsTotalStableAndInRange) {
  // The locality placement map: every shard id maps to exactly one lane
  // in [0, lanes), and the map is a pure function of (shard, lanes) — the
  // same inputs give the same lane on every call, which is what makes
  // same-shard sub-batches stick to one worker across epochs.
  for (const std::size_t lanes : {1u, 2u, 3u, 8u, 64u}) {
    for (std::size_t shard = 0; shard < 100; ++shard) {
      const std::size_t lane = shard_lane(shard, lanes);
      EXPECT_LT(lane, lanes);
      EXPECT_EQ(lane, shard_lane(shard, lanes)) << shard << "/" << lanes;
    }
  }
  // One lane: everything lands there (the single-worker degenerate case).
  for (std::size_t shard = 0; shard < 16; ++shard) {
    EXPECT_EQ(shard_lane(shard, 1), 0u);
  }
  // More shards than lanes: the finalizer mix spreads work over every
  // lane instead of leaving some idle.
  std::vector<std::size_t> counts(8, 0);
  for (std::size_t shard = 0; shard < 256; ++shard) {
    ++counts[shard_lane(shard, 8)];
  }
  for (std::size_t lane = 0; lane < counts.size(); ++lane) {
    EXPECT_GT(counts[lane], 0u) << "lane " << lane << " got no shards";
  }
  // More lanes than shards: still total and in range (checked above with
  // lanes=64, shards<100 covers shards<lanes combos); zero lanes is a
  // usage error.
  EXPECT_THROW(shard_lane(0, 0), std::invalid_argument);
}

// ----------------------------------------------------------- TaskGraph

TEST(TaskGraph, RejectsNullTasksAndForwardDependencies) {
  TaskGraph graph;
  EXPECT_THROW(graph.add(nullptr), std::invalid_argument);
  const TaskGraph::NodeId first = graph.add([] {});
  EXPECT_THROW(graph.add([] {}, {first + 1}), std::invalid_argument);
  EXPECT_THROW(graph.add([] {}, {first + 7}), std::invalid_argument);
}

TEST(TaskGraph, DependenciesCompleteBeforeDependents) {
  // A diamond lattice: layer k depends on two nodes of layer k-1. Every
  // node asserts its dependencies' done flags, so any ordering violation
  // fails deterministically — run wide to give the scheduler chances.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    Executor executor(threads);
    constexpr std::size_t kLayers = 6;
    constexpr std::size_t kWidth = 8;
    TaskGraph graph;
    std::vector<std::vector<TaskGraph::NodeId>> ids(kLayers);
    std::vector<std::atomic<bool>> done(kLayers * kWidth);
    for (auto& flag : done) flag = false;
    for (std::size_t layer = 0; layer < kLayers; ++layer) {
      for (std::size_t i = 0; i < kWidth; ++i) {
        const auto fn = [&done, layer, i] {
          if (layer > 0) {
            const std::size_t left = (layer - 1) * kWidth + i;
            const std::size_t right = (layer - 1) * kWidth + (i + 1) % kWidth;
            ASSERT_TRUE(done[left].load());
            ASSERT_TRUE(done[right].load());
          }
          done[layer * kWidth + i] = true;
        };
        if (layer == 0) {
          ids[layer].push_back(graph.add(fn));
        } else {
          ids[layer].push_back(graph.add(
              fn, {ids[layer - 1][i], ids[layer - 1][(i + 1) % kWidth]}));
        }
      }
    }
    executor.run(graph);
    for (const auto& flag : done) EXPECT_TRUE(flag.load());
  }
}

TEST(TaskGraph, ExceptionPropagatesAndSkipsDownstream) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Executor executor(threads);
    TaskGraph graph;
    std::atomic<bool> downstream_ran{false};
    const TaskGraph::NodeId boom =
        graph.add([] { throw std::runtime_error("node exploded"); });
    graph.add([&downstream_ran] { downstream_ran = true; }, {boom});
    try {
      executor.run(graph);
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "node exploded");
    }
    EXPECT_FALSE(downstream_ran.load());
  }
}

// ------------------------------------------------------------ Executor

TEST(Executor, ParallelForCoversRangeAtAnyWidth) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}}) {
    Executor executor(threads);
    EXPECT_EQ(executor.threads(), threads);
    EXPECT_EQ(executor.inline_mode(), threads == 1);
    std::vector<int> hits(257, 0);
    executor.parallel_for(hits.size(),
                          [&hits](std::size_t i) { hits[i] += 1; });
    for (const int hit : hits) EXPECT_EQ(hit, 1);
  }
}

TEST(Executor, ParallelForPropagatesExceptions) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Executor executor(threads);
    EXPECT_THROW(executor.parallel_for(16,
                                       [](std::size_t i) {
                                         if (i == 5) {
                                           throw std::runtime_error("i=5");
                                         }
                                       }),
                 std::runtime_error);
  }
}

TEST(Executor, NestedParallelismSharesThePoolWithoutDeadlock) {
  // Every outer task fans out an inner parallel_for on the SAME executor
  // and waits for it — the sweep-cell-inside-the-sweep shape. With 2
  // threads total this deadlocks unless waiters help drain their own
  // batches.
  Executor executor(2);
  std::atomic<int> total{0};
  executor.parallel_for(8, [&](std::size_t) {
    executor.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

// ---------------------------------------------------------- ThreadPool

TEST(ThreadPoolTokens, WaitSettlesOnlyItsOwnBatch) {
  ThreadPool pool(2);
  const ThreadPool::CompletionToken a = pool.make_token();
  const ThreadPool::CompletionToken b = pool.make_token();
  std::atomic<int> a_done{0};
  std::atomic<int> b_done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&a_done] { a_done.fetch_add(1); }, a);
    pool.submit([&b_done] { b_done.fetch_add(1); }, b);
  }
  pool.wait(a);
  EXPECT_EQ(a_done.load(), 16);
  pool.wait(b);
  EXPECT_EQ(b_done.load(), 16);
  // An empty token settles immediately; a null token is a usage error.
  pool.wait(pool.make_token());
  EXPECT_THROW(pool.wait(nullptr), std::invalid_argument);
}

TEST(ThreadPoolTokens, BatchErrorsGoToTheBatchWaiter) {
  ThreadPool pool(2);
  const ThreadPool::CompletionToken token = pool.make_token();
  pool.submit([] { throw std::runtime_error("batch boom"); }, token);
  EXPECT_THROW(pool.wait(token), std::runtime_error);
  // Consumed by the batch waiter: wait_idle has nothing to rethrow and
  // the destructor has nothing to terminate over.
  pool.wait_idle();
}

TEST(ThreadPoolTokens, NestedSubmissionDrainsOnOneWorker) {
  // A task on the pool's only worker submits sub-tasks to the same pool
  // and waits: helping must run them on the waiting thread.
  ThreadPool pool(1);
  const ThreadPool::CompletionToken outer = pool.make_token();
  std::atomic<int> inner_done{0};
  pool.submit(
      [&pool, &inner_done] {
        const ThreadPool::CompletionToken inner = pool.make_token();
        for (int i = 0; i < 8; ++i) {
          pool.submit([&inner_done] { inner_done.fetch_add(1); }, inner);
        }
        pool.wait(inner);
      },
      outer);
  pool.wait(outer);
  EXPECT_EQ(inner_done.load(), 8);
}

TEST(ThreadPoolDeathTest, DestructorTerminatesOnUncollectedException) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.submit([] { throw std::runtime_error("lost failure"); });
        // No wait_idle(): the destructor must refuse to swallow it.
      },
      "uncollected exception.*lost failure");
}

// ------------------------------------------- end-to-end byte identity

/// The property the execution layer exists for: with sub-batch splitting
/// forced (tiny split threshold, skewed bursty load), the route service
/// dynamics are byte-identical across 1, 2 and 8 worker threads — in
/// EVERY combination of thread pinning and cross-epoch pipelining. The
/// locality placement map is always on, so this also pins that sticky
/// shard->lane routing never reaches the values.
TEST(ExecDeterminism, RouteServerByteIdenticalUnderForcedSplits) {
  const Instance instance = uniform_parallel_links(8, 0.5, 1.0);
  const Policy policy = make_replicator_policy(instance);
  const WorkloadPtr workload = make_workload("bursty:30000,2000,3,2");

  RouteServerOptions options;
  options.update_period = 0.1;
  options.epochs = 15;
  options.num_clients = 1000;
  options.shards = 4;
  options.sub_batch_queries = 128;  // force many sub-batches per shard
  options.seed = 23;
  options.record_latency = false;

  // Reference: the strict single-threaded schedule, no knobs.
  RouteServer reference_server(instance, policy, *workload);
  const RouteServerResult reference =
      reference_server.run(FlowVector::uniform(instance), options);
  // The forced split actually split: more sub-batch streams than shards
  // means the bursty peaks exceeded the threshold.
  EXPECT_GT(reference.total_queries, 4u * 128u);

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const bool pin : {false, true}) {
      for (const bool pipeline : {false, true}) {
        if (threads == 1 && !pin && !pipeline) continue;  // the reference
        options.threads = threads;
        options.pin = pin;
        options.pipeline = pipeline;
        RouteServer server(instance, policy, *workload);
        const RouteServerResult result =
            server.run(FlowVector::uniform(instance), options);
        const std::string label = std::to_string(threads) + " threads pin=" +
                                  std::to_string(pin) +
                                  " pipeline=" + std::to_string(pipeline);
        EXPECT_EQ(telemetry_digest(result.epochs),
                  telemetry_digest(reference.epochs))
            << label;
        ASSERT_EQ(result.epochs.size(), reference.epochs.size()) << label;
        for (std::size_t e = 0; e < reference.epochs.size(); ++e) {
          EXPECT_EQ(result.epochs[e].queries, reference.epochs[e].queries);
          EXPECT_EQ(result.epochs[e].migrations,
                    reference.epochs[e].migrations);
          EXPECT_EQ(result.epochs[e].wardrop_gap,
                    reference.epochs[e].wardrop_gap);
          EXPECT_EQ(result.epochs[e].route_p50, reference.epochs[e].route_p50);
          EXPECT_EQ(result.epochs[e].route_p999,
                    reference.epochs[e].route_p999);
        }
        for (std::size_t p = 0; p < reference.final_flow.size(); ++p) {
          EXPECT_EQ(result.final_flow.values()[p],
                    reference.final_flow.values()[p])
              << label;
        }
        // Histogram equality is exact: same counts, extremes and sum.
        EXPECT_TRUE(result.route_latency == reference.route_latency) << label;
      }
    }
  }
}

/// The ROADMAP "adaptive sub-batch target" follow-on, pinned: with
/// --sub-batch auto the split threshold is re-derived every epoch from
/// that epoch's total arrivals (so a bursty load splits on-peak and not
/// off-peak), and the dynamics stay byte-identical at 1 vs 8 worker
/// threads — the adaptive split is scheduling-independent.
TEST(ExecDeterminism, AutoSubBatchByteIdenticalAcrossOneAndEightThreads) {
  // Braess, NOT a symmetric parallel-link instance: the uniform start
  // must be off-equilibrium so migrations happen and the digest can see
  // the stream layout (a perfectly symmetric instance never migrates and
  // its digest is split-blind).
  const Instance instance = braess(true);
  const Policy policy = make_replicator_policy(instance);
  // Peaks offer 40000 * 0.1 = 4000 queries over 4 shards: 1000 per shard
  // against an auto target of max(256, 4000/16) = 256 -> 4 sub-batches
  // per peak shard; troughs (200 * 0.1 = 20) stay single-batch.
  const WorkloadPtr workload = make_workload("bursty:40000,200,3,2");

  RouteServerOptions options;
  options.update_period = 0.1;
  options.epochs = 15;
  options.num_clients = 1000;
  options.shards = 4;
  options.sub_batch_auto = true;
  options.sub_batch_queries = 0;  // must be ignored in auto mode
  options.seed = 29;
  options.record_latency = false;

  std::vector<EpochSummary> reference;
  std::vector<double> reference_flow;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    options.threads = threads;
    RouteServer server(instance, policy, *workload);
    const RouteServerResult result =
        server.run(FlowVector::uniform(instance), options);
    if (threads == 1) {
      reference = result.epochs;
      reference_flow.assign(result.final_flow.values().begin(),
                            result.final_flow.values().end());
      continue;
    }
    EXPECT_EQ(telemetry_digest(result.epochs), telemetry_digest(reference));
    ASSERT_EQ(result.epochs.size(), reference.size());
    for (std::size_t e = 0; e < reference.size(); ++e) {
      EXPECT_EQ(result.epochs[e].queries, reference[e].queries);
      EXPECT_EQ(result.epochs[e].migrations, reference[e].migrations);
      EXPECT_EQ(result.epochs[e].wardrop_gap, reference[e].wardrop_gap);
      EXPECT_EQ(result.epochs[e].route_p50, reference[e].route_p50);
      EXPECT_EQ(result.epochs[e].route_p999, reference[e].route_p999);
    }
    for (std::size_t p = 0; p < reference_flow.size(); ++p) {
      EXPECT_EQ(result.final_flow.values()[p], reference_flow[p]);
    }
  }

  // Auto mode is a DIFFERENT dynamics configuration than the default
  // fixed threshold whenever it actually splits differently — here the
  // peaks split (auto) vs never split (default 16384), so the digests
  // must differ; pinning that prevents auto from silently aliasing the
  // fixed-threshold stream layout.
  options.sub_batch_auto = false;
  options.sub_batch_queries = 16384;
  options.threads = 1;
  RouteServer server(instance, policy, *workload);
  const RouteServerResult fixed =
      server.run(FlowVector::uniform(instance), options);
  EXPECT_NE(telemetry_digest(fixed.epochs), telemetry_digest(reference));
}

/// Same property one layer up: a service sweep whose cells parallelize
/// internally on the shared executor (forced splits) stays bit-identical
/// across sweep thread counts, digest included.
TEST(ExecDeterminism, ServiceSweepSharedPoolByteIdentical) {
  ExperimentSpec spec;
  spec.simulator = SimulatorKind::kService;
  spec.scenarios = {"braess"};
  spec.policies = {named_policy("replicator")};
  spec.update_periods = {0.1};
  spec.workloads = {"bursty:20000,1000,2,2", "closed-loop:1500"};
  spec.shard_counts = {1, 4};
  spec.num_clients = 1500;
  spec.sub_batch_queries = 200;  // in-cell parallelism on the shared pool
  spec.replicas = 1;
  spec.horizon = 1.5;

  const SweepRunner runner;
  const SweepResult one = runner.run(spec, 1);
  const SweepResult four = runner.run(spec, 4);
  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    ASSERT_TRUE(one.cells[i].ok) << one.cells[i].error;
    EXPECT_EQ(one.cells[i].queries, four.cells[i].queries) << i;
    EXPECT_EQ(one.cells[i].final_gap, four.cells[i].final_gap) << i;
    EXPECT_TRUE(one.cells[i].latency == four.cells[i].latency) << i;
  }
  EXPECT_EQ(cells_digest(one), cells_digest(four));
}

}  // namespace
}  // namespace staleflow
