// Tests for the extension modules: synchronous-rounds dynamics, latency
// combinators, convergence estimation, and the new generator families.
#include <gtest/gtest.h>

#include <cmath>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

Instance pigou() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, constant(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

// --------------------------------------------------------- RoundSimulator

TEST(RoundSimulator, ConvergesWithGentleActivation) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const RoundSimulator sim(inst, policy);
  RoundSimOptions options;
  options.activation_probability = 0.1;
  options.rounds_per_update = 4;
  options.total_rounds = 30'000;
  options.stop_gap = 1e-6;
  const RoundSimResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_LT(result.final_gap, 1e-4);
  EXPECT_TRUE(is_feasible(inst, result.final_flow.values(), 1e-9));
}

TEST(RoundSimulator, MatchesFluidForSmallLambda) {
  // With lambda -> 0 the synchronous map is the Euler discretisation of
  // the fluid ODE: after k rounds it should sit near f(lambda * k).
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const double lambda = 0.01;
  const std::size_t rounds = 400;  // simulated time 4.0

  const RoundSimulator rounds_sim(inst, policy);
  RoundSimOptions round_options;
  round_options.activation_probability = lambda;
  round_options.rounds_per_update = 25;  // board period 0.25 in fluid time
  round_options.total_rounds = rounds;
  const RoundSimResult discrete =
      rounds_sim.run(FlowVector::uniform(inst), round_options);

  const FluidSimulator fluid(inst, policy);
  SimulationOptions fluid_options;
  fluid_options.update_period = lambda * 25.0;
  fluid_options.horizon = lambda * static_cast<double>(rounds);
  fluid_options.method = IntegrationMethod::kExact;
  const SimulationResult continuous =
      fluid.run(FlowVector::uniform(inst), fluid_options);

  for (std::size_t p = 0; p < inst.path_count(); ++p) {
    EXPECT_NEAR(discrete.final_flow[PathId{p}],
                continuous.final_flow[PathId{p}], 5e-3);
  }
}

TEST(RoundSimulator, ObserverSeesBoardCadence) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const RoundSimulator sim(inst, policy);
  RoundSimOptions options;
  options.activation_probability = 0.2;
  options.rounds_per_update = 3;
  options.total_rounds = 9;
  std::vector<bool> updates;
  sim.run(FlowVector::uniform(inst), options,
          [&](const RoundInfo& info) {
            updates.push_back(info.board_updated);
          });
  ASSERT_EQ(updates.size(), 9u);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(updates[i], i % 3 == 0);
  }
}

TEST(RoundSimulator, RejectsBadOptions) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const RoundSimulator sim(inst, policy);
  RoundSimOptions options;
  options.activation_probability = 0.0;
  EXPECT_THROW(sim.run(FlowVector::uniform(inst), options),
               std::invalid_argument);
  options.activation_probability = 1.5;
  EXPECT_THROW(sim.run(FlowVector::uniform(inst), options),
               std::invalid_argument);
  options.activation_probability = 0.5;
  options.rounds_per_update = 0;
  EXPECT_THROW(sim.run(FlowVector::uniform(inst), options),
               std::invalid_argument);
  EXPECT_THROW(sim.run(FlowVector(inst, {0.9, 0.9}), RoundSimOptions{}),
               std::invalid_argument);
}

TEST(RoundSimulator, FullActivationWithBetterResponseOscillates) {
  // lambda = 1 + better response + stale board: the discrete analogue of
  // the paper's oscillation, visible as a non-settling gap.
  const Instance inst = two_link_pulse(8.0);
  const Policy policy = make_naive_better_response_policy();
  const RoundSimulator sim(inst, policy);
  RoundSimOptions options;
  options.activation_probability = 1.0;
  options.rounds_per_update = 2;
  options.total_rounds = 200;
  std::vector<double> gaps;
  sim.run(FlowVector(inst, {0.8, 0.2}), options,
          [&](const RoundInfo& info) {
            gaps.push_back(wardrop_gap(inst, info.flow_after));
          });
  // The tail never settles to zero.
  const double tail = tail_amplitude(gaps, 50);
  EXPECT_GT(tail, 0.01);
}

// ----------------------------------------------------------- combinators

TEST(Combinators, ScaleIsExact) {
  const LatencyPtr base = affine(1.0, 2.0);
  const LatencyPtr doubled = scale(2.0, base);
  for (double x : {0.0, 0.3, 1.0}) {
    EXPECT_DOUBLE_EQ(doubled->value(x), 2.0 * base->value(x));
    EXPECT_DOUBLE_EQ(doubled->integral(x), 2.0 * base->integral(x));
    EXPECT_DOUBLE_EQ(doubled->derivative(x), 2.0 * base->derivative(x));
  }
  EXPECT_DOUBLE_EQ(doubled->max_slope(1.0), 4.0);
  EXPECT_EQ(check_latency_contract(*doubled), "");
  EXPECT_THROW(ScaledLatency(-1.0, *base), std::invalid_argument);
}

TEST(Combinators, SumIsExact) {
  const LatencyPtr a = monomial(1.0, 2.0);
  const LatencyPtr b = constant(0.5);
  const LatencyPtr sum = add(a, b);
  for (double x : {0.0, 0.4, 1.0}) {
    EXPECT_DOUBLE_EQ(sum->value(x), a->value(x) + 0.5);
    EXPECT_DOUBLE_EQ(sum->integral(x), a->integral(x) + 0.5 * x);
  }
  EXPECT_EQ(check_latency_contract(*sum), "");
}

TEST(Combinators, OffsetAndNesting) {
  const LatencyPtr nested = offset(scale(3.0, linear(1.0)), 2.0);  // 3x + 2
  EXPECT_DOUBLE_EQ(nested->value(1.0), 5.0);
  EXPECT_DOUBLE_EQ(nested->integral(1.0), 1.5 + 2.0);
  EXPECT_EQ(check_latency_contract(*nested), "");
  const LatencyPtr copy = nested->clone();
  EXPECT_DOUBLE_EQ(copy->value(0.5), nested->value(0.5));
}

TEST(Combinators, NullArgumentsThrow) {
  const LatencyPtr null_ptr;
  EXPECT_THROW(scale(1.0, null_ptr), std::invalid_argument);
  EXPECT_THROW(add(null_ptr, null_ptr), std::invalid_argument);
  EXPECT_THROW(offset(null_ptr, 1.0), std::invalid_argument);
}

TEST(Combinators, UsableInInstances) {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, scale(0.5, affine(0.0, 2.0)));  // effectively x
  b.set_latency(e2, offset(scale(0.0, linear(1.0)), 1.0));  // effectively 1
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  const Instance inst = std::move(b).build();
  const FrankWolfeResult eq = solve_equilibrium(inst);
  EXPECT_NEAR(eq.flow[PathId{0}], 1.0, 1e-4);  // Pigou in disguise
}

// ----------------------------------------------------------- convergence

TEST(EstimateDecay, RecoversExactExponential) {
  std::vector<double> times, values;
  for (int i = 0; i < 40; ++i) {
    const double t = 0.25 * i;
    times.push_back(t);
    values.push_back(3.0 * std::exp(-0.7 * t));
  }
  const DecayEstimate est = estimate_decay(times, values);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.rate, 0.7, 1e-9);
  EXPECT_NEAR(est.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(est.r_squared, 1.0, 1e-12);
}

TEST(EstimateDecay, SkipsNonPositiveSamples) {
  const std::vector<double> times{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> values{1.0, 0.5, 0.0, 0.25, 0.125};
  const DecayEstimate est = estimate_decay(times, values);
  EXPECT_TRUE(est.valid);
  EXPECT_GT(est.rate, 0.0);
}

TEST(EstimateDecay, InvalidWhenTooFewPoints) {
  const std::vector<double> times{0.0, 1.0};
  const std::vector<double> values{1.0, 0.5};
  EXPECT_FALSE(estimate_decay(times, values).valid);
  const std::vector<double> same_t{1.0, 1.0, 1.0};
  const std::vector<double> vals{1.0, 0.5, 0.25};
  EXPECT_FALSE(estimate_decay(same_t, vals).valid);
  const std::vector<double> bad{1.0};
  EXPECT_THROW(estimate_decay(times, bad), std::invalid_argument);
}

TEST(EstimateGapDecay, WorksOnRealTrajectory) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  TrajectoryRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = 0.25;
  options.horizon = 60.0;
  sim.run(FlowVector::uniform(inst), options, recorder.observer());
  const DecayEstimate est = estimate_gap_decay(recorder.samples());
  ASSERT_TRUE(est.valid);
  EXPECT_GT(est.rate, 0.0);
  EXPECT_GT(est.r_squared, 0.8);  // near-exponential decay
}

TEST(SettlingIndex, FindsFirstStableWindow) {
  const std::vector<double> series{5.0, 2.0, 0.5, 0.1, 0.2, 0.05, 0.01, 0.01};
  EXPECT_EQ(settling_index(series, 0.3, 1), 3u);  // first value <= 0.3
  EXPECT_EQ(settling_index(series, 0.3, 3), 3u);  // run 0.1, 0.2, 0.05
  EXPECT_EQ(settling_index(series, 0.15, 2), 5u); // 0.2 breaks the run
  EXPECT_EQ(settling_index(series, 0.005, 1), std::nullopt);
  EXPECT_EQ(settling_index({}, 1.0), std::nullopt);
}

// ----------------------------------------------------------------- jitter

TEST(PeriodJitter, ConvergesWhenWorstPhaseIsSafe) {
  // With T*(1+jitter) <= T_safe every possible phase length satisfies
  // Lemma 4's premise, so convergence is preserved under random updates.
  const Instance inst = two_link_pulse(4.0);
  const Policy policy = make_uniform_linear_policy(inst);
  const double t_safe = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);

  AccountingRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = t_safe / 1.5;
  options.period_jitter = 0.5;  // phase lengths in [T/2, 3T/2] <= T_safe
  options.jitter_seed = 99;
  options.horizon = 300.0;
  options.stop_gap = 1e-8;
  const SimulationResult result =
      sim.run(FlowVector(inst, {0.9, 0.1}), options, recorder.observer());
  EXPECT_LT(result.final_gap, 1e-4);
  EXPECT_EQ(recorder.lemma4_violations(), 0u);
}

TEST(PeriodJitter, PhaseLengthsActuallyVary) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = 0.2;
  options.period_jitter = 0.4;
  options.horizon = 10.0;
  RunningStats lengths;
  sim.run(FlowVector::uniform(inst), options, [&](const PhaseInfo& info) {
    // The very last phase may be truncated by the horizon; skip it.
    if (info.end_time < options.horizon) {
      lengths.add(info.end_time - info.start_time);
    }
  });
  ASSERT_GT(lengths.count(), 10u);
  EXPECT_GT(lengths.max() - lengths.min(), 0.01);
  EXPECT_GE(lengths.min(), 0.2 * 0.6 - 1e-12);
  EXPECT_LE(lengths.max(), 0.2 * 1.4 + 1e-12);
}

TEST(PeriodJitter, RejectsBadConfig) {
  const Instance inst = pigou();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.period_jitter = 1.0;
  EXPECT_THROW(sim.run(FlowVector::uniform(inst), options),
               std::invalid_argument);
  options.period_jitter = 0.5;
  options.update_period = 0.0;  // fresh mode + jitter is meaningless
  EXPECT_THROW(sim.run(FlowVector::uniform(inst), options),
               std::invalid_argument);
}

// ----------------------------------------------------------------- report

TEST(FlowReport, AggregatesPerCommodity) {
  const Instance inst = shared_bottleneck(0.5);
  const FlowVector f = FlowVector::uniform(inst);
  const FlowReport report = make_report(inst, f.values());
  ASSERT_EQ(report.commodities.size(), 2u);
  double gap_total = 0.0;
  for (const CommodityReport& cr : report.commodities) {
    EXPECT_GT(cr.active_paths, 0u);
    EXPECT_LE(cr.min_latency, cr.avg_latency + 1e-12);
    gap_total += cr.gap_share;
  }
  EXPECT_NEAR(gap_total, report.gap, 1e-12);
  EXPECT_NEAR(report.social_cost, social_cost(inst, f.values()), 1e-12);
}

TEST(FlowReport, FormatsAsTable) {
  const Instance inst = pigou();
  const FlowVector f = FlowVector::uniform(inst);
  const std::string text = describe_flow(inst, f.values());
  EXPECT_NE(text.find("potential"), std::string::npos);
  EXPECT_NE(text.find("c0"), std::string::npos);
  EXPECT_NE(text.find("active paths"), std::string::npos);
}

TEST(FlowReport, ZeroGapAtEquilibrium) {
  const Instance inst = pigou();
  const FrankWolfeResult eq = solve_equilibrium(inst);
  const FlowReport report = make_report(inst, eq.flow.values());
  EXPECT_LT(report.gap, 1e-9);
  EXPECT_NEAR(report.commodities[0].min_latency,
              report.commodities[0].avg_latency, 1e-6);
}

// ------------------------------------------------------------- generators

TEST(SeriesParallel, PathCountGrowsRecursively) {
  Rng rng(3);
  // paths(d) = paths(d-1)^2 + paths(d-1); depth 0 -> 1, 1 -> 2, 2 -> 6.
  EXPECT_EQ(series_parallel(0, rng).path_count(), 1u);
  EXPECT_EQ(series_parallel(1, rng).path_count(), 2u);
  EXPECT_EQ(series_parallel(2, rng).path_count(), 6u);
  EXPECT_THROW(series_parallel(7, rng), std::invalid_argument);
}

TEST(SeriesParallel, IsAcyclicAndSolvable) {
  Rng rng(5);
  const Instance inst = series_parallel(3, rng);
  EXPECT_TRUE(inst.graph().is_acyclic());
  const FrankWolfeResult eq = solve_equilibrium(inst);
  EXPECT_TRUE(eq.converged);
}

TEST(ChainedBraess, EquilibriumCostIsTwoPerGadget) {
  for (const std::size_t k : {1u, 2u, 3u}) {
    const Instance inst = chained_braess(k);
    EXPECT_EQ(inst.path_count(), static_cast<std::size_t>(std::pow(3, k)));
    const FrankWolfeResult eq = solve_equilibrium(inst);
    const FlowEvaluation eval = evaluate(inst, eq.flow.values());
    EXPECT_NEAR(eval.average_latency, 2.0 * static_cast<double>(k), 1e-4)
        << "k=" << k;
  }
  EXPECT_THROW(chained_braess(0), std::invalid_argument);
  EXPECT_THROW(chained_braess(9), std::invalid_argument);
}

TEST(ChainedBraess, PoaApproachesFourThirds) {
  const Instance inst = chained_braess(2);
  const PriceOfAnarchyResult poa = price_of_anarchy(inst);
  EXPECT_NEAR(poa.ratio, 4.0 / 3.0, 1e-3);
}

TEST(ChainedBraess, SmoothPolicyConvergesDespiteStaleness) {
  const Instance inst = chained_braess(2);
  const Policy policy = make_replicator_policy(inst, 0.02);
  const double T = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 3'000.0;
  options.stop_gap = 1e-5;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_LT(result.final_gap, 1e-3);
}

}  // namespace
}  // namespace staleflow
