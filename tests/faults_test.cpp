// Deterministic fault-injection plane tests (ctest label `faults`, run
// under the sanitizer CI job).
//
// The contract under test (src/faults/): a FaultSchedule is a pure
// function of (spec, seed, epochs) — chaos runs are bit-for-bit
// replayable. Slow/drop-telemetry clauses are digest-neutral; a
// brownout changes ONLY the victim tenant's digest, and a faulted run
// pins to the same bytes at any thread count, through resume, and
// across sweep cells.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/exec.h"
#include "faults/fault_plan.h"
#include "net/flow.h"
#include "net/generators.h"
#include "service/service.h"
#include "sweep/sweep.h"

namespace staleflow {
namespace {

using faults::FaultClause;
using faults::FaultKind;
using faults::FaultPlan;
using faults::FaultSchedule;
using faults::parse_fault_plan;

// ------------------------------------------------------------------ grammar

TEST(FaultPlanParse, AcceptsEveryClauseKind) {
  const FaultPlan plan = parse_fault_plan(
      "slow:shard=3,us=250,tenant=1,at=2,for=4;"
      "stall:workers=2,ms=50,at=0,for=1;"
      "drop-telemetry:tenant=2,at=5;"
      "brownout:shed=0.5,at=1,for=3;"
      "crash:at=6");
  ASSERT_EQ(plan.clauses.size(), 5u);

  const FaultClause& slow = plan.clauses[0];
  EXPECT_EQ(slow.kind, FaultKind::kShardSlowdown);
  EXPECT_EQ(slow.shard, 3u);
  EXPECT_EQ(slow.slow_us, 250u);
  EXPECT_EQ(slow.tenant, 1u);
  EXPECT_EQ(slow.at, 2u);
  EXPECT_EQ(slow.duration, 4u);

  const FaultClause& stall = plan.clauses[1];
  EXPECT_EQ(stall.kind, FaultKind::kWorkerStall);
  EXPECT_EQ(stall.workers, 2u);
  EXPECT_EQ(stall.stall_ms, 50u);

  const FaultClause& drop = plan.clauses[2];
  EXPECT_EQ(drop.kind, FaultKind::kDropTelemetry);
  EXPECT_EQ(drop.tenant, 2u);
  EXPECT_EQ(drop.at, 5u);
  EXPECT_FALSE(drop.duration.has_value());  // drawn at materialize time

  const FaultClause& brown = plan.clauses[3];
  EXPECT_EQ(brown.kind, FaultKind::kBrownout);
  EXPECT_DOUBLE_EQ(brown.shed, 0.5);
  EXPECT_EQ(brown.tenant, 0u);  // defaulted

  const FaultClause& crash = plan.clauses[4];
  EXPECT_EQ(crash.kind, FaultKind::kCrash);
  EXPECT_EQ(crash.at, 6u);
}

TEST(FaultPlanParse, PlusAndSemicolonBothSeparateClauses) {
  // '+' lets one sweep-axis value (split on ';') hold a multi-clause plan.
  const FaultPlan plus = parse_fault_plan(
      "brownout:shed=0.25+slow:shard=0,us=10");
  const FaultPlan semi = parse_fault_plan(
      "brownout:shed=0.25;slow:shard=0,us=10");
  ASSERT_EQ(plus.clauses.size(), 2u);
  ASSERT_EQ(semi.clauses.size(), 2u);
  EXPECT_EQ(plus.clauses[0].kind, semi.clauses[0].kind);
  EXPECT_EQ(plus.clauses[1].kind, semi.clauses[1].kind);
}

TEST(FaultPlanParse, NoneIsTheExplicitHealthyPlan) {
  EXPECT_TRUE(parse_fault_plan("none").empty());
  // A "none" clause mixed into a list is skipped, not an error.
  EXPECT_EQ(parse_fault_plan("none;brownout:shed=0.5").clauses.size(), 1u);
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "",                            // empty spec
      ";",                           // no clauses
      "meteor:strike=1",             // unknown kind
      "slow",                        // missing required keys
      "slow:shard=0",                // missing us
      "slow:shard=0,us=0",           // zero slowdown is not a fault
      "slow:shard=0,us=10,vol=3",    // unknown key
      "stall:workers=0,ms=10",       // zero workers
      "stall:workers=2,ms=0",        // zero sleep
      "brownout",                    // missing shed
      "brownout:shed=0",             // shed outside (0, 1]
      "brownout:shed=1.5",           // shed outside (0, 1]
      "brownout:shed=-0.5",          // shed outside (0, 1]
      "brownout:shed=abc",           // not a number
      "crash",                       // crash needs at
      "crash:at=0",                  // crash before any commit = no-op
      "slow:shard=x,us=10",          // not a number
      "slow:shard=0,us=10,at=",      // empty value
      "brownout:shed=0.5,,at=1",     // empty key=value item
  };
  for (const std::string& spec : bad) {
    EXPECT_THROW(parse_fault_plan(spec), std::invalid_argument) << spec;
  }
}

// -------------------------------------------------------------- materialize

TEST(FaultSchedule, IsAPureFunctionOfSpecSeedEpochs) {
  const FaultPlan plan =
      parse_fault_plan("brownout:shed=0.5;drop-telemetry;slow:shard=1,us=20");
  const FaultSchedule a = FaultSchedule::materialize(plan, 99, 16);
  const FaultSchedule b = FaultSchedule::materialize(plan, 99, 16);
  ASSERT_EQ(a.faults().size(), b.faults().size());
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    EXPECT_EQ(a.faults()[i].begin, b.faults()[i].begin) << "clause " << i;
    EXPECT_EQ(a.faults()[i].end, b.faults()[i].end) << "clause " << i;
  }
  // A different seed draws different windows for at least one clause
  // (three independent draws; collision of all three is astronomically
  // unlikely, and deterministic — this is not a flaky assertion).
  bool any_differ = false;
  for (std::uint64_t seed = 100; seed < 110 && !any_differ; ++seed) {
    const FaultSchedule c = FaultSchedule::materialize(plan, seed, 16);
    for (std::size_t i = 0; i < a.faults().size(); ++i) {
      if (c.faults()[i].begin != a.faults()[i].begin ||
          c.faults()[i].end != a.faults()[i].end) {
        any_differ = true;
      }
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(FaultSchedule, DrawnWindowsStayInsideTheRun) {
  const FaultPlan plan = parse_fault_plan("brownout:shed=0.5;drop-telemetry");
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const FaultSchedule schedule = FaultSchedule::materialize(plan, seed, 12);
    for (const faults::ActiveFault& fault : schedule.faults()) {
      EXPECT_LT(fault.begin, 12u) << "seed " << seed;
      EXPECT_GT(fault.end, fault.begin) << "seed " << seed;
    }
  }
}

TEST(FaultSchedule, PinnedWindowsAreKeptVerbatim) {
  const FaultPlan plan =
      parse_fault_plan("brownout:shed=0.5,at=3,for=2;crash:at=5");
  const FaultSchedule schedule = FaultSchedule::materialize(plan, 7, 10);
  ASSERT_EQ(schedule.faults().size(), 2u);
  EXPECT_EQ(schedule.faults()[0].begin, 3u);
  EXPECT_EQ(schedule.faults()[0].end, 5u);
  EXPECT_EQ(schedule.faults()[1].begin, 5u);  // crash: duration pinned to 1

  EXPECT_DOUBLE_EQ(schedule.brownout_shed(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(schedule.brownout_shed(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(schedule.brownout_shed(0, 4), 0.5);
  EXPECT_DOUBLE_EQ(schedule.brownout_shed(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(schedule.brownout_shed(1, 3), 0.0);  // other tenant

  EXPECT_FALSE(schedule.crash_after(0));  // never before the first commit
  EXPECT_FALSE(schedule.crash_after(4));
  EXPECT_TRUE(schedule.crash_after(5));
  EXPECT_FALSE(schedule.crash_after(6));  // fires exactly once
}

TEST(FaultSchedule, OverlappingClausesCompose) {
  const FaultPlan plan = parse_fault_plan(
      "slow:shard=2,us=100,at=1,for=4;slow:shard=2,us=50,at=3,for=2;"
      "brownout:shed=0.5,at=1,for=2;brownout:shed=0.5,at=1,for=2;"
      "stall:workers=2,ms=30,at=0,for=2;stall:workers=1,ms=80,at=1,for=2");
  const FaultSchedule schedule = FaultSchedule::materialize(plan, 1, 8);

  EXPECT_EQ(schedule.slowdown_us(0, 2, 2), 100u);
  EXPECT_EQ(schedule.slowdown_us(0, 2, 3), 150u);  // windows sum
  EXPECT_EQ(schedule.slowdown_us(0, 3, 3), 0u);    // other shard

  // Two 50% brownouts compose as independent survivor products: 75%.
  EXPECT_DOUBLE_EQ(schedule.brownout_shed(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(schedule.brownout_shed(0, 3), 0.0);

  const FaultSchedule::Stall at1 = schedule.stall_at(1);
  EXPECT_EQ(at1.workers, 3u);  // workers sum
  EXPECT_EQ(at1.ms, 80u);      // sleeps max
  EXPECT_EQ(schedule.stall_at(3).workers, 0u);
}

TEST(FaultSchedule, RejectsZeroEpochRunsWithClauses) {
  const FaultPlan plan = parse_fault_plan("brownout:shed=0.5");
  EXPECT_THROW(FaultSchedule::materialize(plan, 1, 0), std::invalid_argument);
  EXPECT_TRUE(
      FaultSchedule::materialize(parse_fault_plan("none"), 1, 0).empty());
}

// ---------------------------------------------------- serving digest contract

/// A deterministic single-server run: braess (libm-free dynamics),
/// closed-loop load, replay mode — every telemetry byte reproducible.
struct FaultedRun {
  Instance instance = braess(true);
  Policy policy = named_policy("replicator").make(instance, 0.1);
  WorkloadPtr workload = make_workload("closed-loop:800");
  RouteServerOptions options;

  FaultedRun() {
    options.update_period = 0.1;
    options.epochs = 10;
    options.num_clients = 400;
    options.shards = 4;
    options.threads = 1;
    options.seed = 5;
    options.record_latency = false;
  }

  RouteServerResult run(const FaultSchedule* schedule,
                        const CutObserver& cuts = nullptr,
                        std::span<const EngineCheckpoint> resume = {}) {
    options.faults = schedule;
    RouteServer server(instance, policy, *workload);
    return server.run(FlowVector::uniform(instance), options, nullptr, cuts,
                      resume);
  }
};

TEST(FaultDigest, SlowAndDropClausesAreDigestNeutral) {
  FaultedRun fixture;
  const std::uint64_t healthy =
      telemetry_digest(fixture.run(nullptr).epochs);

  const FaultPlan plan = parse_fault_plan(
      "slow:shard=1,us=30,at=2,for=3;drop-telemetry:at=4,for=2");
  const FaultSchedule schedule =
      FaultSchedule::materialize(plan, fixture.options.seed,
                                 fixture.options.epochs);
  const RouteServerResult faulted = fixture.run(&schedule);
  EXPECT_EQ(telemetry_digest(faulted.epochs), healthy);
  EXPECT_EQ(faulted.epochs.size(), fixture.options.epochs);
}

TEST(FaultDigest, BrownoutShedsDeterministicallyAndRepinnably) {
  FaultedRun fixture;
  const RouteServerResult healthy = fixture.run(nullptr);

  const FaultPlan plan = parse_fault_plan("brownout:shed=0.5,at=3,for=4");
  const FaultSchedule schedule =
      FaultSchedule::materialize(plan, fixture.options.seed,
                                 fixture.options.epochs);
  const RouteServerResult a = fixture.run(&schedule);
  const RouteServerResult b = fixture.run(&schedule);

  // Shedding changes the digest (it IS load shedding)...
  EXPECT_NE(telemetry_digest(a.epochs), telemetry_digest(healthy.epochs));
  EXPECT_LT(a.total_queries, healthy.total_queries);
  // ...but identically on every run of the same (spec, seed, epochs).
  EXPECT_EQ(telemetry_digest(a.epochs), telemetry_digest(b.epochs));
  EXPECT_EQ(a.total_queries, b.total_queries);

  // Closed-loop load plans the same arrival count every epoch, so the
  // deficit is exactly 4 epochs x floor(per_epoch * 0.5).
  const std::size_t per_epoch =
      healthy.total_queries / fixture.options.epochs;
  EXPECT_EQ(healthy.total_queries - a.total_queries, 4u * (per_epoch / 2));
}

TEST(FaultDigest, FaultedRunIsThreadCountIndependent) {
  const FaultPlan plan = parse_fault_plan(
      "brownout:shed=0.25,at=2,for=3;slow:shard=0,us=20");
  std::map<std::size_t, std::uint64_t> digests;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    FaultedRun fixture;
    fixture.options.threads = threads;
    fixture.options.sub_batch_queries = 64;  // force real sub-batch fan-out
    const FaultSchedule schedule =
        FaultSchedule::materialize(plan, fixture.options.seed,
                                   fixture.options.epochs);
    digests[threads] = telemetry_digest(fixture.run(&schedule).epochs);
  }
  EXPECT_EQ(digests[1], digests[8]);
}

TEST(FaultDigest, ResumedFaultedRunMatchesUninterruptedFaultedRun) {
  // The --resume contract under faults: a run killed at a commit point
  // and resumed under the SAME re-materialized schedule finishes with
  // the uninterrupted faulted run's exact bytes.
  FaultedRun fixture;
  const FaultPlan plan = parse_fault_plan("brownout:shed=0.5,at=3,for=4");
  const FaultSchedule schedule =
      FaultSchedule::materialize(plan, fixture.options.seed,
                                 fixture.options.epochs);

  std::vector<EngineCheckpoint> cuts;
  const RouteServerResult full = fixture.run(
      &schedule, [&cuts](const EngineCheckpoint& c) { cuts.push_back(c); });
  const std::uint64_t golden = telemetry_digest(full.epochs);
  ASSERT_EQ(cuts.size(), fixture.options.epochs);

  // Resume from every cut — including cuts inside the brownout window —
  // against a freshly materialized schedule (what do_resume builds from
  // the WAL header's spec + seed + epochs).
  for (std::size_t k = 0; k <= cuts.size(); ++k) {
    const FaultSchedule rebuilt =
        FaultSchedule::materialize(parse_fault_plan(plan.spec),
                                   fixture.options.seed,
                                   fixture.options.epochs);
    const RouteServerResult resumed =
        fixture.run(&rebuilt, nullptr, std::span(cuts).subspan(0, k));
    EXPECT_EQ(telemetry_digest(resumed.epochs), golden) << "cut " << k;
    EXPECT_EQ(resumed.total_queries, full.total_queries) << "cut " << k;
  }
}

// ------------------------------------------------------- tenant isolation

/// Builds a two-tenant fleet and returns each tenant's digest. The
/// schedule (when non-null) is wired exactly the way route_server_cli
/// does it: every tenant's options point at the one shared schedule.
std::map<std::string, std::uint64_t> run_pair(const FaultSchedule* schedule,
                                              std::size_t threads) {
  Instance braess_net = braess(true);
  Policy braess_policy = named_policy("replicator").make(braess_net, 0.1);
  WorkloadPtr braess_load = make_workload("closed-loop:1200");

  Instance links = uniform_parallel_links(8, 0.5, 1.0);
  Policy links_policy = named_policy("alpha:0.5").make(links, 0.1);
  WorkloadPtr links_load = make_workload("closed-loop:900");

  TenantOptions base;
  base.server.update_period = 0.1;
  base.server.epochs = 10;
  base.server.num_clients = 600;
  base.server.shards = 4;
  base.server.record_latency = false;
  base.server.faults = schedule;

  TenantOptions victim = base;
  victim.server.seed = 21;
  TenantOptions bystander = base;
  bystander.server.seed = 22;

  TenantRegistry registry;
  registry.add("victim", braess_net, braess_policy, *braess_load, victim);
  registry.add("bystander", links, links_policy, *links_load, bystander);

  Executor executor(threads);
  if (schedule != nullptr && !schedule->empty()) {
    executor.set_fault_schedule(schedule);
  }
  const MultiTenantResult result = registry.run(executor);
  std::map<std::string, std::uint64_t> digests;
  for (const TenantResult& tenant : result.tenants) {
    digests[tenant.name] = telemetry_digest(tenant.server.epochs);
  }
  return digests;
}

TEST(FaultIsolation, BrownoutTouchesOnlyTheVictimTenant) {
  const auto healthy = run_pair(nullptr, 1);

  // Tenant 0 ("victim" — registry order is insertion order) browns out;
  // the co-scheduled bystander must not notice, byte for byte.
  const FaultPlan plan =
      parse_fault_plan("brownout:shed=0.5,tenant=0,at=2,for=5");
  const FaultSchedule schedule = FaultSchedule::materialize(plan, 21, 10);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto faulted = run_pair(&schedule, threads);
    EXPECT_NE(faulted.at("victim"), healthy.at("victim"))
        << "threads " << threads;
    EXPECT_EQ(faulted.at("bystander"), healthy.at("bystander"))
        << "threads " << threads;
  }
}

TEST(FaultIsolation, WorkerStallIsDigestNeutralForEveryTenant) {
  const auto healthy = run_pair(nullptr, 4);
  // Hold 2 of 4 workers for the first few scheduled graphs: pure
  // wall-clock pressure on the shared pool.
  const FaultPlan plan = parse_fault_plan("stall:workers=2,ms=5,at=0,for=3");
  const FaultSchedule schedule = FaultSchedule::materialize(plan, 21, 10);
  const auto stalled = run_pair(&schedule, 4);
  EXPECT_EQ(stalled.at("victim"), healthy.at("victim"));
  EXPECT_EQ(stalled.at("bystander"), healthy.at("bystander"));
}

// ------------------------------------------------------------ sweep axis

ExperimentSpec chaos_sweep_spec() {
  ExperimentSpec spec;
  spec.simulator = SimulatorKind::kService;
  spec.scenarios = {"braess"};
  spec.policies = {named_policy("replicator")};
  spec.update_periods = {0.1};
  spec.replicas = 1;
  spec.horizon = 1.0;  // 10 epochs
  spec.workloads = {"closed-loop:1000"};
  spec.shard_counts = {4};
  spec.num_clients = 500;
  spec.fault_specs = {"none", "brownout:shed=0.5,at=2,for=4"};
  return spec;
}

TEST(FaultSweep, ExpandsTheFaultAxisInCanonicalOrder) {
  const ExperimentSpec spec = chaos_sweep_spec();
  const std::vector<CellSpec> cells =
      expand(spec, ScenarioRegistry::builtin());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].faults, "none");
  EXPECT_EQ(cells[1].faults, "brownout:shed=0.5,at=2,for=4");
  EXPECT_EQ(cell_count(spec), 2u);
}

TEST(FaultSweep, RejectsCrashStallAndDuplicateAxisValues) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  ExperimentSpec spec = chaos_sweep_spec();
  spec.fault_specs = {"crash:at=3"};
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);
  spec.fault_specs = {"stall:workers=1,ms=10"};
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);
  spec.fault_specs = {"none", "none"};
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);
  spec.fault_specs = {"meteor"};
  EXPECT_THROW(expand(spec, registry), std::invalid_argument);
  // The axis is service-only, like workloads/shards/tenants.
  ExperimentSpec fluid = chaos_sweep_spec();
  fluid.simulator = SimulatorKind::kFluid;
  fluid.workloads.clear();
  fluid.shard_counts.clear();
  EXPECT_THROW(expand(fluid, registry), std::invalid_argument);
}

TEST(FaultSweep, ChaosCellsDifferFromHealthyAndPinAcrossThreads) {
  const ExperimentSpec spec = chaos_sweep_spec();
  const SweepRunner runner;
  const SweepResult one = runner.run(spec, 1);
  const SweepResult four = runner.run(spec, 4);
  ASSERT_EQ(one.cells.size(), 2u);
  ASSERT_TRUE(one.cells[0].ok) << one.cells[0].error;
  ASSERT_TRUE(one.cells[1].ok) << one.cells[1].error;

  // The healthy and browned-out cells disagree (the fault axis is real)...
  EXPECT_NE(one.cells[0].queries, one.cells[1].queries);
  // ...and the whole chaos sweep pins across thread counts.
  EXPECT_EQ(cells_digest(one), cells_digest(four));
}

}  // namespace
}  // namespace staleflow
