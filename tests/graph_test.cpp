// Tests for the graph module: multigraph, paths, shortest paths and
// simple-path enumeration.
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/path.h"
#include "graph/path_enumeration.h"
#include "graph/shortest_path.h"

namespace staleflow {
namespace {

Graph diamond() {
  // 0 -> 1 -> 3 and 0 -> 2 -> 3 plus chord 1 -> 2.
  Graph g(4);
  g.add_edge(VertexId{0}, VertexId{1});  // e0
  g.add_edge(VertexId{0}, VertexId{2});  // e1
  g.add_edge(VertexId{1}, VertexId{3});  // e2
  g.add_edge(VertexId{2}, VertexId{3});  // e3
  g.add_edge(VertexId{1}, VertexId{2});  // e4
  return g;
}

TEST(StrongIds, AreDistinctTypes) {
  static_assert(!std::is_convertible_v<VertexId, EdgeId>);
  static_assert(!std::is_convertible_v<PathId, EdgeId>);
  static_assert(!std::is_convertible_v<int, VertexId>);
  EXPECT_FALSE(VertexId{}.valid());
  EXPECT_TRUE(VertexId{0}.valid());
  EXPECT_EQ(VertexId{3}.index(), 3u);
  EXPECT_EQ(VertexId{3}, VertexId{3});
  EXPECT_LT(VertexId{1}, VertexId{2});
}

TEST(Graph, BuildsVerticesAndEdges) {
  Graph g;
  EXPECT_EQ(g.vertex_count(), 0u);
  const VertexId a = g.add_vertex();
  const VertexId b = g.add_vertex();
  EXPECT_EQ(g.vertex_count(), 2u);
  const EdgeId e = g.add_edge(a, b);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.source(e), a);
  EXPECT_EQ(g.target(e), b);
}

TEST(Graph, AddVerticesBulk) {
  Graph g;
  const VertexId first = g.add_vertices(5);
  EXPECT_EQ(first, VertexId{0});
  EXPECT_EQ(g.vertex_count(), 5u);
}

TEST(Graph, SupportsParallelEdgesAndLoops) {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId loop = g.add_edge(VertexId{0}, VertexId{0});
  EXPECT_NE(e1, e2);
  EXPECT_EQ(g.out_degree(VertexId{0}), 3u);
  EXPECT_EQ(g.in_degree(VertexId{1}), 2u);
  EXPECT_EQ(g.source(loop), g.target(loop));
}

TEST(Graph, RejectsUnknownIds) {
  Graph g(1);
  EXPECT_THROW(g.add_edge(VertexId{0}, VertexId{7}), std::out_of_range);
  EXPECT_THROW(g.add_edge(VertexId{}, VertexId{0}), std::out_of_range);
  EXPECT_THROW(g.edge(EdgeId{0}), std::out_of_range);
  EXPECT_THROW(g.out_edges(VertexId{1}), std::out_of_range);
}

TEST(Graph, AdjacencyLists) {
  const Graph g = diamond();
  EXPECT_EQ(g.out_edges(VertexId{0}).size(), 2u);
  EXPECT_EQ(g.in_edges(VertexId{3}).size(), 2u);
  EXPECT_EQ(g.out_edges(VertexId{1}).size(), 2u);
  EXPECT_EQ(g.in_edges(VertexId{0}).size(), 0u);
}

TEST(Graph, AcyclicityDetection) {
  Graph dag = diamond();
  EXPECT_TRUE(dag.is_acyclic());
  dag.add_edge(VertexId{3}, VertexId{0});
  EXPECT_FALSE(dag.is_acyclic());
}

TEST(Graph, TopologicalOrderRespectsEdges) {
  const Graph g = diamond();
  const std::vector<VertexId> order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].index()] = i;
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(EdgeId{e});
    EXPECT_LT(pos[edge.from.index()], pos[edge.to.index()]);
  }
}

TEST(Graph, TopologicalOrderThrowsOnCycle) {
  Graph g(2);
  g.add_edge(VertexId{0}, VertexId{1});
  g.add_edge(VertexId{1}, VertexId{0});
  EXPECT_THROW(g.topological_order(), std::logic_error);
}

TEST(Graph, Reachability) {
  const Graph g = diamond();
  EXPECT_TRUE(g.reachable(VertexId{0}, VertexId{3}));
  EXPECT_TRUE(g.reachable(VertexId{1}, VertexId{2}));
  EXPECT_FALSE(g.reachable(VertexId{3}, VertexId{0}));
  EXPECT_TRUE(g.reachable(VertexId{2}, VertexId{2}));
}

TEST(Graph, DescribeMentionsEdges) {
  Graph g(2);
  g.add_edge(VertexId{0}, VertexId{1});
  const std::string desc = g.describe();
  EXPECT_NE(desc.find("v0->v1"), std::string::npos);
}

TEST(Path, ValidatesContiguity) {
  const Graph g = diamond();
  const Path ok(g, {EdgeId{0}, EdgeId{2}});  // 0->1->3
  EXPECT_EQ(ok.source(), VertexId{0});
  EXPECT_EQ(ok.sink(), VertexId{3});
  EXPECT_EQ(ok.length(), 2u);
  EXPECT_THROW(Path(g, {EdgeId{0}, EdgeId{3}}), std::invalid_argument);
  EXPECT_THROW(Path(g, {}), std::invalid_argument);
  EXPECT_THROW(Path(g, {EdgeId{9}}), std::invalid_argument);
}

TEST(Path, UsesAndSimplicity) {
  const Graph g = diamond();
  const Path p(g, {EdgeId{0}, EdgeId{4}, EdgeId{3}});  // 0->1->2->3
  EXPECT_TRUE(p.uses(EdgeId{4}));
  EXPECT_FALSE(p.uses(EdgeId{2}));
  EXPECT_TRUE(p.is_simple(g));

  Graph cyclic(2);
  const EdgeId fwd = cyclic.add_edge(VertexId{0}, VertexId{1});
  const EdgeId back = cyclic.add_edge(VertexId{1}, VertexId{0});
  const Path loop(cyclic, {fwd, back});
  EXPECT_FALSE(loop.is_simple(cyclic));
}

TEST(Path, EqualityAndDescribe) {
  const Graph g = diamond();
  const Path a(g, {EdgeId{0}, EdgeId{2}});
  const Path b(g, {EdgeId{0}, EdgeId{2}});
  const Path c(g, {EdgeId{1}, EdgeId{3}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.describe(g).find("-e0->"), std::string::npos);
}

TEST(Dijkstra, FindsShortestDistances) {
  const Graph g = diamond();
  // weights: e0=1, e1=4, e2=1, e3=1, e4=1
  const std::vector<double> w{1.0, 4.0, 1.0, 1.0, 1.0};
  const ShortestPathTree tree = dijkstra(g, VertexId{0}, w);
  EXPECT_DOUBLE_EQ(tree.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 2.0);  // via 0->1->2, not 0->2 (4)
  EXPECT_DOUBLE_EQ(tree.dist[3], 2.0);  // via 0->1->3
}

TEST(Dijkstra, ReportsUnreachable) {
  Graph g(3);
  g.add_edge(VertexId{0}, VertexId{1});
  const std::vector<double> w{1.0};
  const ShortestPathTree tree = dijkstra(g, VertexId{0}, w);
  EXPECT_TRUE(tree.reachable(VertexId{1}));
  EXPECT_FALSE(tree.reachable(VertexId{2}));
}

TEST(Dijkstra, RejectsBadInput) {
  const Graph g = diamond();
  const std::vector<double> short_w{1.0};
  EXPECT_THROW(dijkstra(g, VertexId{0}, short_w), std::invalid_argument);
  const std::vector<double> negative{1, 1, 1, 1, -1};
  EXPECT_THROW(dijkstra(g, VertexId{0}, negative), std::invalid_argument);
  const std::vector<double> ok{1, 1, 1, 1, 1};
  EXPECT_THROW(dijkstra(g, VertexId{99}, ok), std::out_of_range);
}

TEST(BellmanFord, MatchesDijkstraOnNonNegative) {
  const Graph g = diamond();
  const std::vector<double> w{1.0, 4.0, 1.0, 1.0, 1.0};
  const ShortestPathTree dj = dijkstra(g, VertexId{0}, w);
  const ShortestPathTree bf = bellman_ford(g, VertexId{0}, w);
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(dj.dist[v], bf.dist[v]);
  }
}

TEST(BellmanFord, HandlesNegativeWeights) {
  Graph g(3);
  g.add_edge(VertexId{0}, VertexId{1});  // w = 5
  g.add_edge(VertexId{1}, VertexId{2});  // w = -3
  g.add_edge(VertexId{0}, VertexId{2});  // w = 4
  const std::vector<double> w{5.0, -3.0, 4.0};
  const ShortestPathTree tree = bellman_ford(g, VertexId{0}, w);
  EXPECT_DOUBLE_EQ(tree.dist[2], 2.0);
}

TEST(BellmanFord, DetectsNegativeCycle) {
  Graph g(2);
  g.add_edge(VertexId{0}, VertexId{1});
  g.add_edge(VertexId{1}, VertexId{0});
  const std::vector<double> w{1.0, -2.0};
  EXPECT_THROW(bellman_ford(g, VertexId{0}, w), std::logic_error);
}

TEST(ExtractPath, ReconstructsEdgeSequence) {
  const Graph g = diamond();
  const std::vector<double> w{1.0, 4.0, 1.0, 1.0, 1.0};
  const ShortestPathTree tree = dijkstra(g, VertexId{0}, w);
  const auto path = extract_path(tree, g, VertexId{0}, VertexId{3});
  ASSERT_TRUE(path.has_value());
  const std::vector<EdgeId> expected{EdgeId{0}, EdgeId{2}};
  EXPECT_EQ(*path, expected);
}

TEST(ExtractPath, NulloptWhenUnreachable) {
  Graph g(2);
  const std::vector<double> w{};
  const ShortestPathTree tree = dijkstra(g, VertexId{0}, w);
  EXPECT_FALSE(extract_path(tree, g, VertexId{0}, VertexId{1}).has_value());
}

TEST(PathEnumeration, FindsAllSimplePaths) {
  const Graph g = diamond();
  const std::vector<Path> paths =
      enumerate_simple_paths(g, VertexId{0}, VertexId{3});
  // 0->1->3, 0->1->2->3, 0->2->3.
  EXPECT_EQ(paths.size(), 3u);
  for (const Path& p : paths) {
    EXPECT_EQ(p.source(), VertexId{0});
    EXPECT_EQ(p.sink(), VertexId{3});
    EXPECT_TRUE(p.is_simple(g));
  }
}

TEST(PathEnumeration, CountMatchesEnumerate) {
  const Graph g = diamond();
  EXPECT_EQ(count_simple_paths(g, VertexId{0}, VertexId{3}), 3u);
}

TEST(PathEnumeration, RespectsLengthLimit) {
  const Graph g = diamond();
  EnumerationLimits limits;
  limits.max_length = 2;
  const std::vector<Path> paths =
      enumerate_simple_paths(g, VertexId{0}, VertexId{3}, limits);
  EXPECT_EQ(paths.size(), 2u);  // the length-3 path is excluded
}

TEST(PathEnumeration, ThrowsOnPathBudget) {
  const Graph g = diamond();
  EnumerationLimits limits;
  limits.max_paths = 2;
  EXPECT_THROW(enumerate_simple_paths(g, VertexId{0}, VertexId{3}, limits),
               std::length_error);
}

TEST(PathEnumeration, EmptyWhenUnreachable) {
  Graph g(3);
  g.add_edge(VertexId{0}, VertexId{1});
  EXPECT_TRUE(enumerate_simple_paths(g, VertexId{0}, VertexId{2}).empty());
}

TEST(PathEnumeration, RejectsSourceEqualsSink) {
  const Graph g = diamond();
  EXPECT_THROW(enumerate_simple_paths(g, VertexId{0}, VertexId{0}),
               std::invalid_argument);
}

TEST(PathEnumeration, HandlesParallelEdges) {
  Graph g(2);
  g.add_edge(VertexId{0}, VertexId{1});
  g.add_edge(VertexId{0}, VertexId{1});
  g.add_edge(VertexId{0}, VertexId{1});
  EXPECT_EQ(count_simple_paths(g, VertexId{0}, VertexId{1}), 3u);
}

TEST(PathEnumeration, SkipsCycles) {
  Graph g(3);
  g.add_edge(VertexId{0}, VertexId{1});  // e0
  g.add_edge(VertexId{1}, VertexId{0});  // e1 back edge
  g.add_edge(VertexId{1}, VertexId{2});  // e2
  const std::vector<Path> paths =
      enumerate_simple_paths(g, VertexId{0}, VertexId{2});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), 2u);
}

TEST(PathEnumeration, LargeGridCountIsBinomial) {
  // In a 4x4 right/down grid there are C(6,3) = 20 monotone paths.
  const std::size_t n = 4;
  Graph g(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (c + 1 < n) g.add_edge(VertexId{r * n + c}, VertexId{r * n + c + 1});
      if (r + 1 < n) g.add_edge(VertexId{r * n + c}, VertexId{(r + 1) * n + c});
    }
  }
  EXPECT_EQ(count_simple_paths(g, VertexId{0}, VertexId{n * n - 1}), 20u);
}

}  // namespace
}  // namespace staleflow
