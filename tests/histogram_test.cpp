// Property tests for LogHistogram: record/merge commutativity, quantile
// monotonicity, bucket-boundary round-trips, agreement with exact sorted
// quantiles within one bucket width, and the configuration contract.
// Runs under the `histogram` ctest label so the ASan+UBSan job can target
// it directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/log_histogram.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace staleflow {
namespace {

/// Log-uniform samples spanning most of the default tracked range, plus a
/// few adversarial values (zero, the range edges, out-of-range tails).
std::vector<double> sample_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n + 6);
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(std::pow(10.0, rng.uniform(-6.0, 6.0)));
  }
  values.insert(values.end(),
                {0.0, 1e-12, 1e-9, 1e9, 5e12, 123.456});
  return values;
}

TEST(LogHistogram, RejectsBadConfigurationAndValues) {
  EXPECT_THROW(LogHistogram(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 2.0, 21), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, std::numeric_limits<double>::infinity()),
               std::invalid_argument);

  LogHistogram hist;
  EXPECT_THROW(hist.record(-1.0), std::invalid_argument);
  EXPECT_THROW(hist.record(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(hist.record(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_TRUE(hist.empty());
}

TEST(LogHistogram, EmptyHistogramHasNoStatistics) {
  const LogHistogram hist;
  EXPECT_TRUE(hist.empty());
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
  EXPECT_THROW(hist.min(), std::logic_error);
  EXPECT_THROW(hist.max(), std::logic_error);
  EXPECT_THROW(hist.mean(), std::logic_error);
  EXPECT_THROW(hist.quantile(0.5), std::invalid_argument);
}

TEST(LogHistogram, NegativeZeroIsAnUnderflowSampleNotAnOverflow) {
  // -0.0 passes the (value >= 0) guard but its sign-bit pattern would
  // order above every positive double; it must land in the underflow
  // bucket like +0.0, keeping quantile(0) == min().
  LogHistogram hist;
  hist.record(-0.0);
  hist.record(5.0);
  EXPECT_EQ(hist.bucket_index(-0.0), hist.bucket_index(0.0));
  EXPECT_EQ(hist.bucket_value(0), 1u);
  EXPECT_EQ(hist.bucket_value(hist.bucket_count() - 1), 0u);
  EXPECT_EQ(hist.quantile(0.0), hist.min());
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_LT(hist.quantile(0.25), 1.0);  // the zero, not the 5.0
}

TEST(LogHistogram, GeometryIsDefinedBeforeFirstRecord) {
  // The bucket array allocates lazily; the geometry accessors must not
  // depend on it.
  const LogHistogram hist(1e-3, 1e3, 4);
  EXPECT_GT(hist.bucket_count(), 2u);
  EXPECT_EQ(hist.bucket_value(1), 0u);
  EXPECT_GT(hist.bucket_upper(1), hist.bucket_lower(1));
  EXPECT_EQ(hist.bucket_index(1.0),
            hist.bucket_index(hist.bucket_lower(hist.bucket_index(1.0))));
}

TEST(LogHistogram, CountsMinMaxMeanAreExact) {
  LogHistogram hist;
  hist.record(3.0);
  hist.record(1.0, 2);
  hist.record(0.0);  // underflow bucket, still drives min
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), 3.0);
  EXPECT_DOUBLE_EQ(hist.sum(), 5.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 1.25);
  EXPECT_THROW(hist.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(hist.quantile(1.1), std::invalid_argument);
}

/// Every bucket boundary maps back to its own bucket, and the value just
/// below it (previous representable double) maps to the previous bucket:
/// the bucket geometry is exact, with no log()/exp() rounding slop.
TEST(LogHistogram, BucketBoundariesRoundTrip) {
  const LogHistogram hist(1e-6, 1e6, 4);
  ASSERT_GT(hist.bucket_count(), 3u);
  for (std::size_t b = 0; b < hist.bucket_count(); ++b) {
    const double lower = hist.bucket_lower(b);
    if (std::isinf(lower)) continue;  // overflow bound may be +inf
    EXPECT_EQ(hist.bucket_index(lower), b) << "bucket " << b;
    EXPECT_LT(lower, hist.bucket_upper(b));
    if (b > 1) {
      const double below = std::nextafter(lower, 0.0);
      EXPECT_EQ(hist.bucket_index(below), b - 1) << "bucket " << b;
    }
  }
  // Buckets tile the range: upper(b) == lower(b+1).
  for (std::size_t b = 0; b + 1 < hist.bucket_count(); ++b) {
    EXPECT_EQ(hist.bucket_upper(b), hist.bucket_lower(b + 1));
  }
  EXPECT_THROW(hist.bucket_lower(hist.bucket_count()), std::out_of_range);
}

/// Relative bucket width within the tracked range is bounded by
/// 2^-sub_bucket_bits: the resolution guarantee quantiles inherit.
TEST(LogHistogram, RelativeBucketWidthIsBounded) {
  const unsigned bits = 5;
  const LogHistogram hist(1e-3, 1e3, bits);
  const double max_relative = 1.0 / static_cast<double>(1u << bits);
  for (std::size_t b = 1; b + 1 < hist.bucket_count(); ++b) {
    const double lo = hist.bucket_lower(b);
    const double width = hist.bucket_upper(b) - lo;
    EXPECT_LE(width / lo, max_relative * (1.0 + 1e-12)) << "bucket " << b;
  }
}

/// Recording a sample set in any order, or split across histograms merged
/// in either direction, yields the identical histogram.
TEST(LogHistogram, RecordAndMergeAreCommutative) {
  const std::vector<double> values = sample_values(2000, 99);

  LogHistogram forward, backward;
  for (const double v : values) forward.record(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    backward.record(*it);
  }
  // Counts, extremes and bucket contents are order-independent (the sum is
  // compared via its value; addition order never moves a count).
  EXPECT_EQ(forward.count(), backward.count());
  EXPECT_DOUBLE_EQ(forward.min(), backward.min());
  EXPECT_DOUBLE_EQ(forward.max(), backward.max());
  for (std::size_t b = 0; b < forward.bucket_count(); ++b) {
    EXPECT_EQ(forward.bucket_value(b), backward.bucket_value(b));
  }

  // a.merge(b) == b.merge(a), for every split point of the sample set.
  for (const std::size_t split : {std::size_t{0}, values.size() / 3,
                                  values.size() / 2, values.size()}) {
    LogHistogram a, b;
    for (std::size_t i = 0; i < split; ++i) a.record(values[i]);
    for (std::size_t i = split; i < values.size(); ++i) b.record(values[i]);
    LogHistogram ab = a;
    ab.merge(b);
    LogHistogram ba = b;
    ba.merge(a);
    EXPECT_TRUE(ab == ba) << "split " << split;
    EXPECT_EQ(ab.count(), values.size());
    EXPECT_DOUBLE_EQ(ab.quantile(0.5), ba.quantile(0.5));
    EXPECT_DOUBLE_EQ(ab.quantile(0.99), ba.quantile(0.99));
  }
}

TEST(LogHistogram, MergeRequiresIdenticalConfiguration) {
  LogHistogram a(1e-6, 1e6, 5);
  LogHistogram b(1e-6, 1e6, 4);
  LogHistogram c(1e-5, 1e6, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
  LogHistogram d(1e-6, 1e6, 5);
  d.record(1.0);
  a.merge(d);  // same config merges fine
  EXPECT_EQ(a.count(), 1u);
}

TEST(LogHistogram, QuantilesAreMonotoneInQ) {
  LogHistogram hist;
  for (const double v : sample_values(5000, 7)) hist.record(v);
  double previous = hist.quantile(0.0);
  for (double q = 0.05; q <= 1.0 + 1e-12; q += 0.05) {
    const double current = hist.quantile(std::min(q, 1.0));
    EXPECT_GE(current, previous) << "q = " << q;
    previous = current;
  }
}

TEST(LogHistogram, ExtremeQuantilesAreExactMinAndMax) {
  LogHistogram hist;
  const std::vector<double> values = sample_values(1000, 3);
  for (const double v : values) hist.record(v);
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  EXPECT_EQ(hist.quantile(0.0), lo);
  EXPECT_EQ(hist.quantile(1.0), hi);

  // Also with every sample strictly inside the tracked range (no
  // under/overflow sentinels whose representatives happen to be the
  // extremes): the endpoints must still be the exact samples, not the
  // midpoints of their buckets.
  LogHistogram interior;
  interior.record(1.0);
  interior.record(1.03);  // same bucket as 1.0 at 32 sub-buckets/octave
  interior.record(7.25);
  EXPECT_EQ(interior.quantile(0.0), 1.0);
  EXPECT_EQ(interior.quantile(1.0), 7.25);

  LogHistogram single;
  single.record(42.5);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(single.quantile(q), 42.5) << "q = " << q;
  }
}

/// The histogram quantile lands in the same bucket as the exact order
/// statistic it targets — i.e. it agrees with the sorted-sample quantile
/// to within one bucket width.
TEST(LogHistogram, AgreesWithSortedQuantilesWithinOneBucket) {
  LogHistogram hist;
  std::vector<double> values = sample_values(4000, 21);
  for (const double v : values) hist.record(v);
  std::sort(values.begin(), values.end());

  for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                         0.999, 1.0}) {
    // The order statistic the histogram targets: rank ceil(q * n).
    const auto rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(q * static_cast<double>(values.size()))));
    const double exact = values[rank - 1];
    const double approx = hist.quantile(q);
    const std::size_t bucket = hist.bucket_index(exact);
    const double width =
        std::isinf(hist.bucket_upper(bucket))
            ? 0.0  // overflow bucket: representative is the exact max
            : hist.bucket_upper(bucket) - hist.bucket_lower(bucket);
    EXPECT_NEAR(approx, exact, width) << "q = " << q;

    // And against the interpolating sorted_quantile, which may straddle
    // two adjacent order statistics: two bucket widths bound it.
    const double interpolated = sorted_quantile(values, q);
    const std::size_t ibucket = hist.bucket_index(interpolated);
    const double iwidth =
        std::isinf(hist.bucket_upper(ibucket))
            ? 0.0
            : hist.bucket_upper(ibucket) - hist.bucket_lower(ibucket);
    EXPECT_NEAR(approx, interpolated, width + iwidth) << "q = " << q;
  }
}

/// Out-of-range recordings land in the underflow/overflow buckets and
/// keep quantiles clamped to real observations.
TEST(LogHistogram, UnderflowAndOverflowAreClampedToObservations) {
  LogHistogram hist(1.0, 100.0, 4);
  hist.record(0.001, 10);   // below min_value
  hist.record(1e6, 10);     // above max_value
  EXPECT_EQ(hist.bucket_value(0), 10u);
  EXPECT_EQ(hist.bucket_value(hist.bucket_count() - 1), 10u);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 0.001);
  EXPECT_DOUBLE_EQ(hist.quantile(0.25), 0.001);
  EXPECT_DOUBLE_EQ(hist.quantile(0.75), 1e6);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 1e6);
}

// ------------------------------------------- sorted_quantile edge cases
//
// Pinned here (rather than util_test) because the histogram comparison
// tests above are what surfaced them: the histogram's exact-endpoint
// contract only matches sorted_quantile if its own edges are exact.

TEST(SortedQuantile, EmptyInputThrows) {
  EXPECT_THROW(sorted_quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(sorted_quantile({}, 0.0), std::invalid_argument);
}

TEST(SortedQuantile, SingleSampleReturnsItForEveryQ) {
  const std::vector<double> one{3.25};
  for (const double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(sorted_quantile(one, q), 3.25) << "q = " << q;
  }
}

TEST(SortedQuantile, EndpointsAreExactSamples) {
  const std::vector<double> data{1.0, 2.5, 2.5, 7.0,
                                 std::numeric_limits<double>::infinity()};
  // q == 0 / q == 1 must return the extreme samples bit-for-bit — even
  // when interpolating against an infinite neighbour would produce NaN.
  EXPECT_EQ(sorted_quantile(data, 0.0), 1.0);
  EXPECT_TRUE(std::isinf(sorted_quantile(data, 1.0)));
  const std::vector<double> finite{1.0, 3.0};
  EXPECT_EQ(sorted_quantile(finite, 0.0), 1.0);
  EXPECT_EQ(sorted_quantile(finite, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(finite, 0.5), 2.0);
}

TEST(SortedQuantile, RejectsOutOfRangeQ) {
  const std::vector<double> data{1.0, 2.0};
  EXPECT_THROW(sorted_quantile(data, -0.01), std::invalid_argument);
  EXPECT_THROW(sorted_quantile(data, 1.01), std::invalid_argument);
}

}  // namespace
}  // namespace staleflow
