// Integration tests: end-to-end properties that span the whole stack —
// generators, dynamics, bulletin board, equilibrium solver, analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

// ------------------------------------------------------------ end-to-end

TEST(EndToEnd, StaleDynamicsReachesTheFrankWolfeEquilibrium) {
  // On strictly-increasing parallel links the equilibrium is unique, so
  // the dynamics' limit must match the convex solver's flow path-by-path.
  Rng rng(41);
  const Instance inst = random_parallel_links(5, rng, 0.5, 0.5, 1.5);
  const FrankWolfeResult reference = solve_equilibrium(inst);

  const Policy policy = make_uniform_linear_policy(inst);
  const double T = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 4'000.0;
  options.stop_gap = 1e-9;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);

  for (std::size_t p = 0; p < inst.path_count(); ++p) {
    EXPECT_NEAR(result.final_flow[PathId{p}], reference.flow[PathId{p}],
                2e-3);
  }
}

TEST(EndToEnd, PotentialNeverDropsBelowOptimum) {
  Rng rng(43);
  const Instance inst = grid(3, 3, rng);
  const double phi_star = optimal_potential(inst);
  const Policy policy = make_replicator_policy(inst, 0.05);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = 0.05;
  options.horizon = 50.0;
  sim.run(FlowVector::uniform(inst), options, [&](const PhaseInfo& info) {
    EXPECT_GE(potential(inst, info.flow_after), phi_star - 1e-9);
  });
}

TEST(EndToEnd, SerialisedInstanceReproducesDynamics) {
  // Save/load an instance and re-run the identical simulation: the
  // trajectories must agree exactly (determinism across the I/O layer).
  const Instance original = braess(true);
  const Instance reloaded = parse_instance(serialize_instance(original));

  auto run = [](const Instance& inst) {
    const Policy policy = make_uniform_linear_policy(inst);
    const FluidSimulator sim(inst, policy);
    SimulationOptions options;
    options.update_period = 0.1;
    options.horizon = 10.0;
    return sim.run(FlowVector::uniform(inst), options);
  };
  const SimulationResult a = run(original);
  const SimulationResult b = run(reloaded);
  for (std::size_t p = 0; p < original.path_count(); ++p) {
    EXPECT_DOUBLE_EQ(a.final_flow[PathId{p}], b.final_flow[PathId{p}]);
  }
}

TEST(EndToEnd, AgentsAndFluidAgreeOnTheEquilibrium) {
  const Instance inst = shared_bottleneck(0.5);
  const Policy policy = make_uniform_linear_policy(inst);
  const double T = inst.safe_update_period(*policy.smoothness());

  const FluidSimulator fluid(inst, policy);
  SimulationOptions fluid_options;
  fluid_options.update_period = T;
  fluid_options.horizon = 200.0;
  const SimulationResult fluid_result =
      fluid.run(FlowVector::uniform(inst), fluid_options);

  const AgentSimulator agents(inst, policy);
  AgentSimOptions agent_options;
  agent_options.num_agents = 50'000;
  agent_options.update_period = T;
  agent_options.horizon = 200.0;
  agent_options.seed = 17;
  const AgentSimResult agent_result =
      agents.run(FlowVector::uniform(inst), agent_options);

  for (std::size_t p = 0; p < inst.path_count(); ++p) {
    EXPECT_NEAR(agent_result.final_flow[PathId{p}],
                fluid_result.final_flow[PathId{p}], 0.02);
  }
}

TEST(EndToEnd, RelativeSlackPolicyConvergesOnSteepInstance) {
  // Degree-4 monomial links: beta = 4 * c is large, so slope-driven rules
  // are slow; the relative-slack rule (extension, [10]) still converges
  // under fresh information and — with a shift — under staleness.
  const Instance inst = parallel_links(4, [](std::size_t j) {
    return polynomial({0.1 * static_cast<double>(j), 0.0, 0.0, 0.0, 8.0});
  });
  const Policy policy = make_relative_slack_policy(0.25);
  ASSERT_TRUE(policy.smoothness().has_value());
  const double T = inst.safe_update_period(*policy.smoothness());

  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 2'000.0;
  options.stop_gap = 1e-6;
  std::vector<double> start(4, 0.1 / 3.0);
  start[3] = 0.9;
  const SimulationResult result = sim.run(FlowVector(inst, start), options);
  EXPECT_LT(result.final_gap, 1e-4);
}

// --------------------------------------------- theorem-shape property sweeps

struct StaleCase {
  double beta;
  double fraction;  // T / T_safe
};

class StaleConvergenceSweep
    : public ::testing::TestWithParam<StaleCase> {};

TEST_P(StaleConvergenceSweep, Corollary5HoldsAcrossBetaAndT) {
  const auto [beta, fraction] = GetParam();
  const Instance inst = two_link_pulse(beta);
  const Policy policy = make_uniform_linear_policy(inst);
  const double T = fraction * inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);

  AccountingRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 500.0;
  options.stop_gap = 1e-9;
  const SimulationResult result =
      sim.run(FlowVector(inst, {0.9, 0.1}), options, recorder.observer());

  EXPECT_LT(result.final_gap, 1e-4) << "beta=" << beta << " frac=" << fraction;
  EXPECT_EQ(recorder.lemma4_violations(), 0u);
  EXPECT_LT(recorder.max_identity_residual(), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StaleConvergenceSweep,
    ::testing::Values(StaleCase{1.0, 0.5}, StaleCase{1.0, 1.0},
                      StaleCase{4.0, 0.5}, StaleCase{4.0, 1.0},
                      StaleCase{16.0, 0.5}, StaleCase{16.0, 1.0},
                      StaleCase{64.0, 1.0}));

class OscillationSweep : public ::testing::TestWithParam<double> {};

TEST_P(OscillationSweep, BestResponseAmplitudeFormulaAcrossBeta) {
  const double beta = GetParam();
  const double T = 0.4;
  const Instance inst = two_link_pulse(beta);
  const BestResponseSimulator sim(inst);
  const double f1 = 1.0 / (std::exp(-T) + 1.0);

  double measured = 0.0;
  BestResponseOptions options;
  options.update_period = T;
  options.horizon = 12.0 * T;
  sim.run(FlowVector(inst, {f1, 1.0 - f1}), options,
          [&](const PhaseInfo& info) {
            measured = std::max(
                measured, max_latency_deviation(inst, info.flow_before, -1.0));
          });
  const double predicted =
      beta * (1.0 - std::exp(-T)) / (2.0 * std::exp(-T) + 2.0);
  EXPECT_NEAR(measured, predicted, 1e-9 * (1.0 + beta));
}

INSTANTIATE_TEST_SUITE_P(Betas, OscillationSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0, 32.0));

// Theorem 6/7 shape at test scale: more paths => more bad rounds under
// uniform sampling, roughly flat under proportional sampling.
TEST(TheoremShapes, ProportionalBeatsUniformScalingInPathCount) {
  auto bad_rounds = [](std::size_t m, bool uniform) {
    const Instance inst = parallel_links(m, [m](std::size_t j) {
      return affine(0.5 * static_cast<double>(j) / static_cast<double>(m),
                    1.0);
    });
    const Policy policy = uniform ? make_uniform_linear_policy(inst)
                                  : make_replicator_policy(inst);
    const double T =
        std::min(inst.safe_update_period(*policy.smoothness()), 1.0);
    std::vector<double> start(m, 0.1 / static_cast<double>(m - 1));
    start[m - 1] = 0.9;
    const FluidSimulator sim(inst, policy);
    RoundCounter counter(inst, RoundCounter::Mode::kWeak, 0.1, 0.05);
    SimulationOptions options;
    options.update_period = T;
    options.horizon = 1e9;
    options.max_phases = 5'000;
    options.stop_gap = 1e-9;
    options.step_size = T / 16.0;
    sim.run(FlowVector(inst, start), options, counter.observer());
    return counter.bad_rounds();
  };

  const double uniform_growth = static_cast<double>(bad_rounds(16, true)) /
                                static_cast<double>(bad_rounds(4, true));
  const double proportional_growth =
      static_cast<double>(bad_rounds(16, false)) /
      static_cast<double>(bad_rounds(4, false));
  EXPECT_GT(uniform_growth, proportional_growth);
  EXPECT_LT(proportional_growth, 2.0);  // near-flat in m (Theorem 7)
}

TEST(TheoremShapes, SaferPeriodsMeanSlowerConvergence) {
  // Corollary 5's trade-off: alpha ~ 1/T, so time-to-equilibrium grows
  // with T when alpha is tuned to the staleness.
  const Instance inst = two_link_pulse(4.0);
  double previous_time = 0.0;
  for (const double T : {0.1, 0.4, 1.6}) {
    const double alpha =
        1.0 / (4.0 * static_cast<double>(inst.max_path_length()) *
               inst.max_slope() * T);
    const Policy policy = make_alpha_policy(alpha);
    const FluidSimulator sim(inst, policy);
    TrajectoryRecorder recorder(inst);
    SimulationOptions options;
    options.update_period = T;
    options.horizon = 2'000.0;
    options.stop_gap = 1e-6;
    sim.run(FlowVector(inst, {0.9, 0.1}), options, recorder.observer());
    const auto hit = recorder.time_to_gap(1e-3);
    ASSERT_TRUE(hit.has_value()) << "T=" << T;
    EXPECT_GT(*hit, previous_time);
    previous_time = *hit;
  }
}

// --------------------------------------------------------- multi-commodity

TEST(MultiCommodity, StaleConvergenceOnSharedBottleneck) {
  const Instance inst = shared_bottleneck(0.4);
  const Policy policy = make_uniform_linear_policy(inst);
  const double T = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);
  AccountingRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 600.0;
  options.stop_gap = 1e-8;
  const SimulationResult result =
      sim.run(FlowVector::uniform(inst), options, recorder.observer());
  EXPECT_LT(result.final_gap, 1e-5);
  EXPECT_EQ(recorder.lemma4_violations(), 0u);
}

TEST(MultiCommodity, GridWithTwoCommodities) {
  Rng rng(51);
  const Instance inst = multicommodity_grid(3, 3, 2, rng);
  const Policy policy = make_replicator_policy(inst, 0.05);
  const double T = inst.safe_update_period(*policy.smoothness());
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 2'000.0;
  options.stop_gap = 1e-6;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_LT(result.final_gap, 1e-3);
  EXPECT_TRUE(is_feasible(inst, result.final_flow.values(), 1e-8));
}

}  // namespace
}  // namespace staleflow
