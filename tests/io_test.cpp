// Tests for instance serialisation: DOT export, text round trips and
// parse error reporting.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "latency/functions.h"
#include "net/flow.h"
#include "net/generators.h"
#include "net/io.h"
#include "util/rng.h"

namespace staleflow {
namespace {

/// An instance exercising every serialisable latency family.
Instance kitchen_sink() {
  Graph g(2);
  std::vector<EdgeId> edges;
  for (int i = 0; i < 8; ++i) {
    edges.push_back(g.add_edge(VertexId{0}, VertexId{1}));
  }
  InstanceBuilder b(std::move(g));
  b.set_latency(edges[0], constant(0.7));
  b.set_latency(edges[1], affine(0.25, 1.5));
  b.set_latency(edges[2], monomial(2.0, 3.0));
  b.set_latency(edges[3], polynomial({0.1, 0.0, 0.5, 0.25}));
  b.set_latency(edges[4], shifted_linear(4.0, 0.5));
  b.set_latency(edges[5],
                piecewise_linear({{0.0, 0.0}, {0.3, 0.5}, {1.0, 2.0}}));
  b.set_latency(edges[6], bpr(1.0, 0.15, 0.8, 4.0));
  b.set_latency(edges[7], mm1(2.5));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

void expect_same_behaviour(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.path_count(), b.path_count());
  ASSERT_EQ(a.commodity_count(), b.commodity_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> f(a.path_count());
    for (auto& v : f) v = rng.uniform();
    renormalise(a, f);
    const auto la = path_latencies(a, f);
    const auto lb = path_latencies(b, f);
    for (std::size_t p = 0; p < la.size(); ++p) {
      EXPECT_DOUBLE_EQ(la[p], lb[p]);
    }
  }
  for (std::size_t c = 0; c < a.commodity_count(); ++c) {
    EXPECT_DOUBLE_EQ(a.commodity(CommodityId{c}).demand,
                     b.commodity(CommodityId{c}).demand);
  }
}

TEST(Dot, ContainsEdgesAndLabels) {
  const Instance inst = braess(true);
  const std::string dot = to_dot(inst);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("label="), std::string::npos);
  EXPECT_NE(dot.find("commodity 0"), std::string::npos);
}

TEST(Serialize, RoundTripsAllFamilies) {
  const Instance original = kitchen_sink();
  const std::string text = serialize_instance(original);
  const Instance parsed = parse_instance(text);
  expect_same_behaviour(original, parsed);
}

TEST(Serialize, RoundTripsGenerators) {
  Rng rng(11);
  expect_same_behaviour(braess(true),
                        parse_instance(serialize_instance(braess(true))));
  const Instance g = grid(3, 3, rng);
  expect_same_behaviour(g, parse_instance(serialize_instance(g)));
  const Instance sb = shared_bottleneck(0.3);
  expect_same_behaviour(sb, parse_instance(serialize_instance(sb)));
}

TEST(Serialize, ExactDoubleRoundTrip) {
  // Full-precision printing: an awkward demand must survive.
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, affine(0.1, 1.0 / 3.0));
  b.set_latency(e2, constant(0.7));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  const Instance inst = std::move(b).build();
  const Instance parsed = parse_instance(serialize_instance(inst));
  EXPECT_DOUBLE_EQ(
      parsed.latency(EdgeId{0}).value(1.0), 0.1 + 1.0 / 3.0);
}

TEST(Parse, AcceptsCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "\n"
      "vertices 2\n"
      "edge 0 1 affine 0 1\n"
      "# another comment\n"
      "edge 0 1 constant 1\n"
      "commodity 0 1 1.0\n";
  const Instance inst = parse_instance(text);
  EXPECT_EQ(inst.edge_count(), 2u);
  EXPECT_EQ(inst.path_count(), 2u);
}

TEST(Parse, ReportsLineNumbers) {
  const std::string bad =
      "vertices 2\n"
      "edge 0 1 affine 0 1\n"
      "edge 0 7 constant 1\n";  // endpoint out of range on line 3
  try {
    parse_instance(bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parse, RejectsMalformedInput) {
  EXPECT_THROW(parse_instance(std::string{"edge 0 1 constant 1\n"}),
               std::invalid_argument);  // no vertices
  EXPECT_THROW(parse_instance(std::string{"vertices 0\n"}),
               std::invalid_argument);
  EXPECT_THROW(
      parse_instance(std::string{"vertices 2\nedge 0 1 nosuch 1\n"}),
      std::invalid_argument);
  EXPECT_THROW(parse_instance(std::string{"vertices 2\nfrobnicate\n"}),
               std::invalid_argument);
  EXPECT_THROW(
      parse_instance(std::string{"vertices 2\nedge 0 1 affine 0\n"}),
      std::invalid_argument);  // missing parameter
  EXPECT_THROW(
      parse_instance(std::string{"vertices 2\nvertices 2\n"}),
      std::invalid_argument);  // duplicate
}

TEST(Parse, MissingCommodityFailsAtBuild) {
  const std::string text =
      "vertices 2\n"
      "edge 0 1 constant 1\n";
  EXPECT_THROW(parse_instance(text), std::logic_error);
}

TEST(Files, SaveAndLoad) {
  const std::string path = testing::TempDir() + "/staleflow_io_test.txt";
  const Instance original = braess(true);
  save_instance(original, path);
  const Instance loaded = load_instance(path);
  expect_same_behaviour(original, loaded);
  std::remove(path.c_str());
  EXPECT_THROW(load_instance("/nonexistent/dir/file.txt"),
               std::runtime_error);
}

// Round-trip property over randomly generated instances of every family.
class RoundTripSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RoundTripSweep, GeneratedInstancesSurviveRoundTrip) {
  const auto [family, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Instance inst = [&]() {
    switch (family) {
      case 0:
        return random_parallel_links(3 + static_cast<std::size_t>(seed % 4),
                                     rng);
      case 1:
        return grid(2 + static_cast<std::size_t>(seed % 2), 3, rng);
      case 2:
        return layered_dag(2, 3, 2, rng);
      case 3:
        return series_parallel(2, rng);
      default:
        return multicommodity_grid(3, 3, 2, rng);
    }
  }();
  const Instance parsed = parse_instance(serialize_instance(inst));
  expect_same_behaviour(inst, parsed);
  // Structural parameters survive too.
  EXPECT_EQ(parsed.max_path_length(), inst.max_path_length());
  EXPECT_DOUBLE_EQ(parsed.max_slope(), inst.max_slope());
  EXPECT_DOUBLE_EQ(parsed.max_latency(), inst.max_latency());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RoundTripSweep,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(1, 2, 3)));

TEST(Serialize, StreamOverloadMatchesStringOverload) {
  const Instance inst = braess(false);
  const std::string text = serialize_instance(inst);
  std::istringstream stream(text);
  expect_same_behaviour(parse_instance(stream), parse_instance(text));
}

}  // namespace
}  // namespace staleflow
