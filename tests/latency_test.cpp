// Tests for the latency module: every function family satisfies the model
// contract (continuous, non-decreasing, finite slope) and its closed-form
// derivative/integral agree with numerical differentiation/quadrature.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "latency/functions.h"
#include "latency/latency_function.h"
#include "latency/quadrature.h"

namespace staleflow {
namespace {

TEST(Quadrature, IntegratesPolynomialsExactly) {
  EXPECT_NEAR(integrate([](double x) { return x * x; }, 0.0, 1.0), 1.0 / 3.0,
              1e-12);
  EXPECT_NEAR(integrate([](double x) { return 3.0 * x * x; }, 1.0, 2.0), 7.0,
              1e-10);
}

TEST(Quadrature, OrientedInterval) {
  EXPECT_NEAR(integrate([](double x) { return x; }, 1.0, 0.0), -0.5, 1e-12);
  EXPECT_DOUBLE_EQ(integrate([](double) { return 1.0; }, 2.0, 2.0), 0.0);
}

TEST(Quadrature, HandlesKinks) {
  const auto kink = [](double x) { return std::max(0.0, x - 0.5); };
  EXPECT_NEAR(integrate(kink, 0.0, 1.0), 0.125, 1e-8);
}

TEST(Quadrature, RejectsBadTolerance) {
  EXPECT_THROW(integrate([](double) { return 1.0; }, 0.0, 1.0, 0.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------- families

/// Checks value/derivative/integral consistency via finite differences and
/// quadrature on a grid, plus the library's own contract check.
void expect_consistent(const LatencyFunction& fn) {
  EXPECT_EQ(check_latency_contract(fn), "") << fn.describe();

  // Spot-check derivative against central differences away from kinks.
  const double h = 1e-7;
  for (double x : {0.123, 0.347, 0.622, 0.881}) {
    const double numeric = (fn.value(x + h) - fn.value(x - h)) / (2.0 * h);
    EXPECT_NEAR(fn.derivative(x), numeric, 1e-4 * (1.0 + fn.max_slope(1.0)))
        << fn.describe() << " at x=" << x;
  }
}

TEST(ConstantLatency, Behaviour) {
  const ConstantLatency fn(2.5);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 2.5);
  EXPECT_DOUBLE_EQ(fn.value(1.0), 2.5);
  EXPECT_DOUBLE_EQ(fn.derivative(0.5), 0.0);
  EXPECT_DOUBLE_EQ(fn.integral(0.4), 1.0);
  EXPECT_DOUBLE_EQ(fn.max_slope(1.0), 0.0);
  expect_consistent(fn);
  EXPECT_THROW(ConstantLatency(-1.0), std::invalid_argument);
}

TEST(AffineLatency, Behaviour) {
  const AffineLatency fn(1.0, 2.0);
  EXPECT_DOUBLE_EQ(fn.value(0.5), 2.0);
  EXPECT_DOUBLE_EQ(fn.derivative(0.1), 2.0);
  EXPECT_DOUBLE_EQ(fn.integral(1.0), 2.0);
  EXPECT_DOUBLE_EQ(fn.max_slope(1.0), 2.0);
  EXPECT_DOUBLE_EQ(fn.offset(), 1.0);
  EXPECT_DOUBLE_EQ(fn.slope(), 2.0);
  expect_consistent(fn);
  EXPECT_THROW(AffineLatency(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(AffineLatency(0.1, -1.0), std::invalid_argument);
}

TEST(MonomialLatency, Behaviour) {
  const MonomialLatency fn(2.0, 3.0);  // 2 x^3
  EXPECT_DOUBLE_EQ(fn.value(1.0), 2.0);
  EXPECT_DOUBLE_EQ(fn.derivative(1.0), 6.0);
  EXPECT_DOUBLE_EQ(fn.integral(1.0), 0.5);
  EXPECT_DOUBLE_EQ(fn.max_slope(1.0), 6.0);
  EXPECT_DOUBLE_EQ(fn.max_slope(0.5), 1.5);
  expect_consistent(fn);
  EXPECT_THROW(MonomialLatency(1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(MonomialLatency(-1.0, 2.0), std::invalid_argument);
}

TEST(PolynomialLatency, Behaviour) {
  const PolynomialLatency fn({1.0, 0.0, 3.0});  // 1 + 3x^2
  EXPECT_DOUBLE_EQ(fn.value(2.0), 13.0);
  EXPECT_DOUBLE_EQ(fn.derivative(1.0), 6.0);
  EXPECT_DOUBLE_EQ(fn.integral(1.0), 2.0);
  EXPECT_DOUBLE_EQ(fn.max_slope(1.0), 6.0);
  expect_consistent(fn);
  EXPECT_THROW(PolynomialLatency({}), std::invalid_argument);
  EXPECT_THROW(PolynomialLatency({1.0, -2.0}), std::invalid_argument);
}

TEST(PolynomialLatency, MatchesEquivalentAffine) {
  const PolynomialLatency poly({0.5, 1.5});
  const AffineLatency aff(0.5, 1.5);
  for (double x = 0.0; x <= 1.0; x += 0.1) {
    EXPECT_NEAR(poly.value(x), aff.value(x), 1e-14);
    EXPECT_NEAR(poly.integral(x), aff.integral(x), 1e-14);
  }
}

TEST(ShiftedLinearLatency, PaperExample) {
  // The Section 3.2 instance: l(x) = max{0, beta (x - 1/2)} with beta = 4.
  const ShiftedLinearLatency fn(4.0, 0.5);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.value(0.5), 0.0);
  EXPECT_DOUBLE_EQ(fn.value(0.75), 1.0);
  EXPECT_DOUBLE_EQ(fn.value(1.0), 2.0);
  EXPECT_DOUBLE_EQ(fn.derivative(0.25), 0.0);
  EXPECT_DOUBLE_EQ(fn.derivative(0.75), 4.0);
  EXPECT_DOUBLE_EQ(fn.integral(0.5), 0.0);
  EXPECT_DOUBLE_EQ(fn.integral(1.0), 0.5);
  EXPECT_DOUBLE_EQ(fn.max_slope(1.0), 4.0);
  EXPECT_DOUBLE_EQ(fn.max_slope(0.4), 0.0);  // flat below the threshold
  expect_consistent(fn);
}

TEST(PiecewiseLinearLatency, Behaviour) {
  const PiecewiseLinearLatency fn({{0.0, 0.0}, {0.5, 1.0}, {1.0, 1.5}});
  EXPECT_DOUBLE_EQ(fn.value(0.25), 0.5);
  EXPECT_DOUBLE_EQ(fn.value(0.75), 1.25);
  EXPECT_DOUBLE_EQ(fn.derivative(0.25), 2.0);
  EXPECT_DOUBLE_EQ(fn.derivative(0.75), 1.0);
  EXPECT_DOUBLE_EQ(fn.max_slope(1.0), 2.0);
  EXPECT_NEAR(fn.integral(0.5), 0.25, 1e-12);
  EXPECT_NEAR(fn.integral(1.0), 0.25 + 0.5 * (1.0 + 1.5) * 0.5, 1e-12);
  expect_consistent(fn);
}

TEST(PiecewiseLinearLatency, RejectsBadBreakpoints) {
  using BP = PiecewiseLinearLatency::Breakpoint;
  EXPECT_THROW(PiecewiseLinearLatency(std::vector<BP>{{0.0, 0.0}}),
               std::invalid_argument);
  // Does not start at 0.
  EXPECT_THROW(PiecewiseLinearLatency(std::vector<BP>{{0.1, 0.0}, {1.0, 1.0}}),
               std::invalid_argument);
  // Does not cover [0, 1].
  EXPECT_THROW(PiecewiseLinearLatency(std::vector<BP>{{0.0, 0.0}, {0.9, 1.0}}),
               std::invalid_argument);
  // Decreasing y.
  EXPECT_THROW(PiecewiseLinearLatency(std::vector<BP>{{0.0, 1.0}, {1.0, 0.5}}),
               std::invalid_argument);
  // Non-increasing x.
  EXPECT_THROW(PiecewiseLinearLatency(
                   std::vector<BP>{{0.0, 0.0}, {0.5, 0.5}, {0.5, 1.0}, {1.0, 1.0}}),
               std::invalid_argument);
}

TEST(BprLatency, Behaviour) {
  const BprLatency fn(1.0, 0.15, 0.8, 4.0);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 1.0);
  EXPECT_NEAR(fn.value(0.8), 1.15, 1e-12);
  EXPECT_GT(fn.derivative(1.0), fn.derivative(0.5));
  expect_consistent(fn);
  EXPECT_THROW(BprLatency(0.0, 0.15, 0.8, 4.0), std::invalid_argument);
  EXPECT_THROW(BprLatency(1.0, -0.1, 0.8, 4.0), std::invalid_argument);
  EXPECT_THROW(BprLatency(1.0, 0.15, 0.0, 4.0), std::invalid_argument);
  EXPECT_THROW(BprLatency(1.0, 0.15, 0.8, 0.5), std::invalid_argument);
}

TEST(MM1Latency, Behaviour) {
  const MM1Latency fn(2.0);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 0.5);
  EXPECT_DOUBLE_EQ(fn.value(1.0), 1.0);
  EXPECT_DOUBLE_EQ(fn.derivative(1.0), 1.0);
  EXPECT_DOUBLE_EQ(fn.max_slope(1.0), 1.0);
  EXPECT_NEAR(fn.integral(1.0), std::log(2.0), 1e-12);
  expect_consistent(fn);
  EXPECT_THROW(MM1Latency(1.0), std::invalid_argument);
  EXPECT_THROW(MM1Latency(0.5), std::invalid_argument);
}

TEST(AllFamilies, CloneProducesEqualBehaviour) {
  std::vector<LatencyPtr> fns;
  fns.push_back(constant(1.0));
  fns.push_back(affine(0.5, 2.0));
  fns.push_back(linear(3.0));
  fns.push_back(monomial(1.0, 2.0));
  fns.push_back(polynomial({1.0, 1.0, 1.0}));
  fns.push_back(shifted_linear(4.0));
  fns.push_back(piecewise_linear({{0.0, 0.0}, {1.0, 2.0}}));
  fns.push_back(bpr(1.0, 0.15, 1.0, 4.0));
  fns.push_back(mm1(3.0));
  for (const auto& fn : fns) {
    const LatencyPtr copy = fn->clone();
    for (double x = 0.0; x <= 1.0; x += 0.25) {
      EXPECT_DOUBLE_EQ(copy->value(x), fn->value(x)) << fn->describe();
      EXPECT_DOUBLE_EQ(copy->integral(x), fn->integral(x)) << fn->describe();
    }
    EXPECT_EQ(copy->describe(), fn->describe());
  }
}

TEST(AllFamilies, DescribeIsNonEmpty) {
  EXPECT_FALSE(constant(1.0)->describe().empty());
  EXPECT_FALSE(affine(1.0, 1.0)->describe().empty());
  EXPECT_FALSE(shifted_linear(2.0)->describe().empty());
  EXPECT_FALSE(mm1(2.0)->describe().empty());
}

TEST(MaxElasticity, MonomialEqualsDegree) {
  // For c*x^d the elasticity x*l'/l is exactly d everywhere.
  for (const double d : {1.0, 2.0, 3.5, 6.0}) {
    const MonomialLatency fn(7.0, d);
    EXPECT_NEAR(max_elasticity(fn), d, 1e-9) << "d=" << d;
  }
}

TEST(MaxElasticity, ConstantIsZero) {
  EXPECT_DOUBLE_EQ(max_elasticity(ConstantLatency(3.0)), 0.0);
}

TEST(MaxElasticity, AffineBelowOne) {
  // x*b/(a+bx) < 1, approaching 1 as a -> 0.
  const AffineLatency fn(0.01, 1.0);
  const double e = max_elasticity(fn);
  EXPECT_GT(e, 0.9);
  EXPECT_LT(e, 1.0);
}

TEST(MaxElasticity, SkipsZeroLatencyRegion) {
  // The pulse function is 0 below the threshold; elasticity is evaluated
  // only where l > 0 and is large just past the kink.
  const ShiftedLinearLatency fn(4.0, 0.5);
  EXPECT_GT(max_elasticity(fn), 1.0);
}

TEST(ContractCheck, CatchesViolations) {
  // A deliberately broken function: claims slope 0 but has slope 1.
  class Broken final : public LatencyFunction {
   public:
    double value(double x) const override { return x; }
    double derivative(double) const override { return 1.0; }
    double integral(double x) const override { return 0.5 * x * x; }
    double max_slope(double) const override { return 0.0; }  // lie
    std::string describe() const override { return "broken"; }
    LatencyPtr clone() const override {
      return std::make_unique<Broken>(*this);
    }
  };
  EXPECT_NE(check_latency_contract(Broken{}), "");
}

TEST(ContractCheck, CatchesWrongIntegral) {
  class WrongIntegral final : public LatencyFunction {
   public:
    double value(double x) const override { return x; }
    double derivative(double) const override { return 1.0; }
    double integral(double x) const override { return x; }  // wrong
    double max_slope(double) const override { return 1.0; }
    std::string describe() const override { return "wrong-integral"; }
    LatencyPtr clone() const override {
      return std::make_unique<WrongIntegral>(*this);
    }
  };
  EXPECT_NE(check_latency_contract(WrongIntegral{}), "");
}

// Parameterised sweep: the contract holds across a family grid.
class MonomialSweep : public ::testing::TestWithParam<double> {};

TEST_P(MonomialSweep, ContractHolds) {
  const double degree = GetParam();
  const MonomialLatency fn(1.5, degree);
  EXPECT_EQ(check_latency_contract(fn), "");
}

INSTANTIATE_TEST_SUITE_P(Degrees, MonomialSweep,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 4.0, 6.0));

class MM1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(MM1Sweep, ContractHoldsAndSlopeFormula) {
  const double capacity = GetParam();
  const MM1Latency fn(capacity);
  EXPECT_EQ(check_latency_contract(fn), "");
  const double expected = 1.0 / ((capacity - 1.0) * (capacity - 1.0));
  EXPECT_NEAR(fn.max_slope(1.0), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Capacities, MM1Sweep,
                         ::testing::Values(1.1, 1.5, 2.0, 4.0, 10.0));

}  // namespace
}  // namespace staleflow
