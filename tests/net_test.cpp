// Tests for the net module: instance building, flow vectors, derived
// quantities and the generator families.
#include <gtest/gtest.h>

#include <cmath>

#include "latency/functions.h"
#include "net/flow.h"
#include "net/generators.h"
#include "net/instance.h"

namespace staleflow {
namespace {

Instance simple_two_link() {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, affine(0.0, 1.0));  // l(x) = x
  b.set_latency(e2, constant(0.75));    // l(x) = 3/4
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  return std::move(b).build();
}

TEST(InstanceBuilder, BuildsAndComputesParameters) {
  const Instance inst = simple_two_link();
  EXPECT_EQ(inst.edge_count(), 2u);
  EXPECT_EQ(inst.path_count(), 2u);
  EXPECT_EQ(inst.commodity_count(), 1u);
  EXPECT_EQ(inst.max_path_length(), 1u);       // D
  EXPECT_DOUBLE_EQ(inst.max_slope(), 1.0);     // beta
  EXPECT_DOUBLE_EQ(inst.max_latency(), 1.0);   // max path latency at x = 1
  EXPECT_EQ(inst.max_paths_per_commodity(), 2u);
}

TEST(InstanceBuilder, NormalisesDemands) {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, linear(1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 3.0);
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  const Instance inst = std::move(b).build();
  EXPECT_DOUBLE_EQ(inst.commodity(CommodityId{0}).demand, 0.75);
  EXPECT_DOUBLE_EQ(inst.commodity(CommodityId{1}).demand, 0.25);
}

TEST(InstanceBuilder, RejectsMissingLatency) {
  Graph g(2);
  g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  EXPECT_THROW(std::move(b).build(), std::logic_error);
}

TEST(InstanceBuilder, RejectsNoCommodities) {
  Graph g(2);
  const EdgeId e = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e, linear(1.0));
  EXPECT_THROW(std::move(b).build(), std::logic_error);
}

TEST(InstanceBuilder, RejectsUnreachableSink) {
  Graph g(3);
  const EdgeId e = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e, linear(1.0));
  b.add_commodity(VertexId{0}, VertexId{2}, 1.0);
  EXPECT_THROW(std::move(b).build(), std::logic_error);
}

TEST(InstanceBuilder, RejectsBadExplicitPath) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e12 = g.add_edge(VertexId{1}, VertexId{2});
  InstanceBuilder b(std::move(g));
  b.set_latency(e01, linear(1.0));
  b.set_latency(e12, linear(1.0));
  // Path ends at v1 but the commodity wants v2.
  b.add_commodity(VertexId{0}, VertexId{2}, 1.0, {{e01}});
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(InstanceBuilder, ExplicitPathsRestrictStrategySpace) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e12 = g.add_edge(VertexId{1}, VertexId{2});
  const EdgeId e02 = g.add_edge(VertexId{0}, VertexId{2});
  InstanceBuilder b(std::move(g));
  b.set_latency(e01, linear(1.0));
  b.set_latency(e12, linear(1.0));
  b.set_latency(e02, linear(1.0));
  b.add_commodity(VertexId{0}, VertexId{2}, 1.0, {{e02}});  // direct only
  const Instance inst = std::move(b).build();
  EXPECT_EQ(inst.path_count(), 1u);
}

TEST(InstanceBuilder, RejectsInvalidArguments) {
  Graph g(2);
  const EdgeId e = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  EXPECT_THROW(b.set_latency(EdgeId{5}, linear(1.0)), std::out_of_range);
  EXPECT_THROW(b.set_latency(e, nullptr), std::invalid_argument);
  EXPECT_THROW(b.add_commodity(VertexId{0}, VertexId{1}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(b.add_commodity(VertexId{0}, VertexId{9}, 1.0),
               std::out_of_range);
}

TEST(Instance, SafeUpdatePeriodFormula) {
  const Instance inst = simple_two_link();
  // T = 1/(4 D alpha beta) with D = 1, beta = 1.
  EXPECT_DOUBLE_EQ(inst.safe_update_period(2.0), 1.0 / 8.0);
  EXPECT_THROW(inst.safe_update_period(0.0), std::invalid_argument);
}

TEST(Instance, SafeUpdatePeriodInfiniteForConstantLatencies) {
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, constant(1.0));
  b.set_latency(e2, constant(2.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  const Instance inst = std::move(b).build();
  EXPECT_TRUE(std::isinf(inst.safe_update_period(1.0)));
}

TEST(Instance, LookupsThrowOnBadIds) {
  const Instance inst = simple_two_link();
  EXPECT_THROW(inst.latency(EdgeId{9}), std::out_of_range);
  EXPECT_THROW(inst.path(PathId{9}), std::out_of_range);
  EXPECT_THROW(inst.commodity(CommodityId{9}), std::out_of_range);
  EXPECT_THROW(inst.commodity_of(PathId{9}), std::out_of_range);
}

TEST(Instance, DescribeMentionsParameters) {
  const std::string desc = simple_two_link().describe();
  EXPECT_NE(desc.find("E=2"), std::string::npos);
  EXPECT_NE(desc.find("beta="), std::string::npos);
}

TEST(FlowVector, UniformSplitsDemand) {
  const Instance inst = simple_two_link();
  const FlowVector f = FlowVector::uniform(inst);
  EXPECT_DOUBLE_EQ(f[PathId{0}], 0.5);
  EXPECT_DOUBLE_EQ(f[PathId{1}], 0.5);
  EXPECT_TRUE(is_feasible(inst, f.values()));
}

TEST(FlowVector, ConcentratedPutsAllOnOnePath) {
  const Instance inst = simple_two_link();
  const std::vector<std::size_t> choice{1};
  const FlowVector f = FlowVector::concentrated(inst, choice);
  EXPECT_DOUBLE_EQ(f[PathId{0}], 0.0);
  EXPECT_DOUBLE_EQ(f[PathId{1}], 1.0);
  EXPECT_TRUE(is_feasible(inst, f.values()));
  const std::vector<std::size_t> bad{7};
  EXPECT_THROW(FlowVector::concentrated(inst, bad), std::out_of_range);
}

TEST(FlowVector, WrapRejectsWrongSize) {
  const Instance inst = simple_two_link();
  EXPECT_THROW(FlowVector(inst, {1.0}), std::invalid_argument);
}

TEST(Feasibility, DetectsViolations) {
  const Instance inst = simple_two_link();
  EXPECT_FALSE(is_feasible(inst, std::vector<double>{0.7, 0.7}));  // sum != 1
  EXPECT_FALSE(is_feasible(inst, std::vector<double>{1.5, -0.5}));  // negative
  EXPECT_TRUE(is_feasible(inst, std::vector<double>{0.3, 0.7}));
}

TEST(Renormalise, ProjectsBackToSimplex) {
  const Instance inst = simple_two_link();
  std::vector<double> f{0.62, 0.40};  // drifted above 1
  renormalise(inst, f);
  EXPECT_TRUE(is_feasible(inst, f, 1e-12));
  EXPECT_NEAR(f[0] / f[1], 0.62 / 0.40, 1e-12);  // ratios preserved

  std::vector<double> negative{-0.1, 1.0};
  renormalise(inst, negative);
  EXPECT_DOUBLE_EQ(negative[0], 0.0);
  EXPECT_DOUBLE_EQ(negative[1], 1.0);

  std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(renormalise(inst, zero), std::invalid_argument);
}

TEST(EdgeFlows, AggregatesSharedEdges) {
  // Two paths sharing the middle edge: 0->1->2 via e0,e1 and e2,e1 where
  // e2 is a parallel first hop.
  Graph g(3);
  const EdgeId e0 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e1 = g.add_edge(VertexId{1}, VertexId{2});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e0, linear(1.0));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, linear(1.0));
  b.add_commodity(VertexId{0}, VertexId{2}, 1.0);
  const Instance inst = std::move(b).build();
  ASSERT_EQ(inst.path_count(), 2u);
  const std::vector<double> f{0.3, 0.7};
  const std::vector<double> fe = edge_flows(inst, f);
  EXPECT_DOUBLE_EQ(fe[e1.index()], 1.0);  // shared by both paths
  EXPECT_DOUBLE_EQ(fe[e0.index()] + fe[e2.index()], 1.0);
}

TEST(Evaluate, ComputesLatenciesAndAverages) {
  const Instance inst = simple_two_link();
  const std::vector<double> f{0.25, 0.75};
  const FlowEvaluation eval = evaluate(inst, f);
  EXPECT_DOUBLE_EQ(eval.edge_flow[0], 0.25);
  EXPECT_DOUBLE_EQ(eval.path_latency[0], 0.25);   // l = x
  EXPECT_DOUBLE_EQ(eval.path_latency[1], 0.75);   // l = 3/4
  EXPECT_DOUBLE_EQ(eval.commodity_min_latency[0], 0.25);
  EXPECT_DOUBLE_EQ(eval.commodity_avg_latency[0],
                   0.25 * 0.25 + 0.75 * 0.75);
  EXPECT_DOUBLE_EQ(eval.average_latency, 0.25 * 0.25 + 0.75 * 0.75);
}

TEST(PathLatencies, MatchesEvaluate) {
  const Instance inst = simple_two_link();
  const std::vector<double> f{0.4, 0.6};
  const FlowEvaluation eval = evaluate(inst, f);
  const std::vector<double> direct = path_latencies(inst, f);
  ASSERT_EQ(direct.size(), eval.path_latency.size());
  for (std::size_t p = 0; p < direct.size(); ++p) {
    EXPECT_DOUBLE_EQ(direct[p], eval.path_latency[p]);
  }
}

// -------------------------------------------------------------- generators

TEST(Generators, TwoLinkPulseMatchesPaper) {
  const Instance inst = two_link_pulse(4.0);
  EXPECT_EQ(inst.path_count(), 2u);
  EXPECT_DOUBLE_EQ(inst.max_slope(), 4.0);
  EXPECT_EQ(inst.max_path_length(), 1u);
  // At the Wardrop equilibrium f = (1/2, 1/2) both latencies are 0.
  const std::vector<double> eq{0.5, 0.5};
  const FlowEvaluation eval = evaluate(inst, eq);
  EXPECT_DOUBLE_EQ(eval.path_latency[0], 0.0);
  EXPECT_DOUBLE_EQ(eval.path_latency[1], 0.0);
}

TEST(Generators, ParallelLinks) {
  const Instance inst = uniform_parallel_links(8, 0.5, 1.0);
  EXPECT_EQ(inst.path_count(), 8u);
  EXPECT_EQ(inst.commodity_count(), 1u);
  EXPECT_EQ(inst.max_paths_per_commodity(), 8u);
  EXPECT_THROW(uniform_parallel_links(0, 0.0, 1.0), std::invalid_argument);
}

TEST(Generators, RandomParallelLinksDeterministic) {
  Rng rng1(5), rng2(5);
  const Instance a = random_parallel_links(4, rng1);
  const Instance b = random_parallel_links(4, rng2);
  const std::vector<double> f{0.25, 0.25, 0.25, 0.25};
  const auto la = path_latencies(a, f);
  const auto lb = path_latencies(b, f);
  for (std::size_t p = 0; p < 4; ++p) EXPECT_DOUBLE_EQ(la[p], lb[p]);
}

TEST(Generators, BraessTopology) {
  const Instance with = braess(true);
  const Instance without = braess(false);
  EXPECT_EQ(with.path_count(), 3u);     // upper, lower, zig-zag
  EXPECT_EQ(without.path_count(), 2u);
  EXPECT_EQ(with.max_path_length(), 3u);
}

TEST(Generators, GridHasBinomialPathCount) {
  Rng rng(7);
  const Instance inst = grid(3, 3, rng);
  // C(4, 2) = 6 monotone paths in a 3x3 grid.
  EXPECT_EQ(inst.path_count(), 6u);
  EXPECT_EQ(inst.max_path_length(), 4u);
  EXPECT_THROW(grid(1, 3, rng), std::invalid_argument);
}

TEST(Generators, LayeredDagIsConnected) {
  Rng rng(11);
  const Instance inst = layered_dag(3, 4, 2, rng);
  EXPECT_GE(inst.path_count(), 1u);
  EXPECT_EQ(inst.commodity_count(), 1u);
  EXPECT_TRUE(inst.graph().is_acyclic());
  EXPECT_THROW(layered_dag(0, 4, 2, rng), std::invalid_argument);
}

TEST(Generators, SharedBottleneckHasTwoCommodities) {
  const Instance inst = shared_bottleneck(0.5);
  EXPECT_EQ(inst.commodity_count(), 2u);
  EXPECT_DOUBLE_EQ(inst.commodity(CommodityId{0}).demand, 0.5);
  EXPECT_THROW(shared_bottleneck(0.0), std::invalid_argument);
  EXPECT_THROW(shared_bottleneck(1.0), std::invalid_argument);
}

TEST(Generators, MulticommodityGrid) {
  Rng rng(13);
  const Instance inst = multicommodity_grid(3, 3, 2, rng);
  EXPECT_EQ(inst.commodity_count(), 2u);
  EXPECT_DOUBLE_EQ(inst.commodity(CommodityId{0}).demand, 0.5);
  EXPECT_THROW(multicommodity_grid(3, 3, 9, rng), std::invalid_argument);
}

class ParallelLinkSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelLinkSweep, UniformFlowIsFeasibleAndSymmetric) {
  const std::size_t m = GetParam();
  const Instance inst = uniform_parallel_links(m, 0.0, 1.0);
  const FlowVector f = FlowVector::uniform(inst);
  EXPECT_TRUE(is_feasible(inst, f.values()));
  const auto latencies = path_latencies(inst, f.values());
  for (const double l : latencies) {
    EXPECT_NEAR(l, 1.0 / static_cast<double>(m), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelLinkSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 64));

}  // namespace
}  // namespace staleflow
