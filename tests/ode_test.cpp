// Tests for the ODE module: integrators against closed-form solutions,
// dense matrix algebra, and the matrix exponential.
#include <gtest/gtest.h>

#include <cmath>

#include "ode/expm.h"
#include "ode/integrator.h"
#include "ode/matrix.h"

namespace staleflow {
namespace {

// y' = -y, y(0) = 1 => y(t) = e^{-t}.
const OdeRhs kDecay = [](double, std::span<const double> y,
                         std::span<double> dydt) { dydt[0] = -y[0]; };

// Harmonic oscillator: (x, v)' = (v, -x); solution (cos t, -sin t).
const OdeRhs kOscillator = [](double, std::span<const double> y,
                              std::span<double> dydt) {
  dydt[0] = y[1];
  dydt[1] = -y[0];
};

// Non-autonomous: y' = t => y(t) = y0 + t^2/2.
const OdeRhs kRamp = [](double t, std::span<const double>,
                        std::span<double> dydt) { dydt[0] = t; };

TEST(ExplicitEuler, ConvergesFirstOrder) {
  // Error at t = 1 should shrink roughly linearly with the step.
  double prev_err = 0.0;
  for (int k = 0; k < 3; ++k) {
    const double h = 0.01 / std::pow(2.0, k);
    std::vector<double> y{1.0};
    ExplicitEuler(h).integrate(kDecay, 0.0, 1.0, y);
    const double err = std::abs(y[0] - std::exp(-1.0));
    if (k > 0) {
      EXPECT_NEAR(prev_err / err, 2.0, 0.3);
    }
    prev_err = err;
  }
}

TEST(RungeKutta4, IsVeryAccurate) {
  std::vector<double> y{1.0};
  const OdeStats stats = RungeKutta4(0.01).integrate(kDecay, 0.0, 2.0, y);
  EXPECT_NEAR(y[0], std::exp(-2.0), 1e-10);
  EXPECT_EQ(stats.steps_accepted, 200u);
  EXPECT_EQ(stats.rhs_evaluations, 800u);
}

TEST(RungeKutta4, OscillatorStaysOnCircle) {
  std::vector<double> y{1.0, 0.0};
  RungeKutta4(0.001).integrate(kOscillator, 0.0, 6.283185307179586, y);
  EXPECT_NEAR(y[0], 1.0, 1e-9);
  EXPECT_NEAR(y[1], 0.0, 1e-9);
}

TEST(RungeKutta4, HandlesNonAutonomousRhs) {
  std::vector<double> y{1.0};
  RungeKutta4(0.05).integrate(kRamp, 0.0, 2.0, y);
  EXPECT_NEAR(y[0], 3.0, 1e-10);
}

TEST(RungeKutta4, LastStepLandsExactly) {
  // 0.3 is not a multiple of the 0.04 step.
  std::vector<double> y{1.0};
  RungeKutta4(0.04).integrate(kDecay, 0.0, 0.3, y);
  EXPECT_NEAR(y[0], std::exp(-0.3), 1e-8);
}

TEST(Integrators, ObserverSeesMonotoneTimes) {
  std::vector<double> y{1.0};
  double last_t = 0.0;
  std::size_t calls = 0;
  RungeKutta4(0.1).integrate(kDecay, 0.0, 1.0, y,
                             [&](double t, std::span<const double>) {
                               EXPECT_GT(t, last_t);
                               last_t = t;
                               ++calls;
                             });
  EXPECT_EQ(calls, 10u);
  EXPECT_DOUBLE_EQ(last_t, 1.0);
}

TEST(Integrators, RejectBadArguments) {
  EXPECT_THROW(ExplicitEuler(0.0), std::invalid_argument);
  EXPECT_THROW(RungeKutta4(-0.1), std::invalid_argument);
  std::vector<double> y{1.0};
  EXPECT_THROW(RungeKutta4(0.1).integrate(kDecay, 1.0, 0.0, y),
               std::invalid_argument);
  DormandPrince45::Options bad;
  bad.abs_tolerance = 0.0;
  // Braces avoid the vexing parse inside the macro.
  EXPECT_THROW(DormandPrince45{bad}, std::invalid_argument);
}

TEST(DormandPrince45, MatchesExactSolution) {
  std::vector<double> y{1.0};
  DormandPrince45::Options opts;
  opts.abs_tolerance = 1e-12;
  opts.rel_tolerance = 1e-12;
  const OdeStats stats = DormandPrince45(opts).integrate(kDecay, 0.0, 5.0, y);
  EXPECT_NEAR(y[0], std::exp(-5.0), 1e-10);
  EXPECT_GT(stats.steps_accepted, 0u);
}

TEST(DormandPrince45, AdaptsStepOnOscillator) {
  std::vector<double> y{1.0, 0.0};
  DormandPrince45::Options opts;
  opts.abs_tolerance = 1e-10;
  opts.rel_tolerance = 1e-10;
  DormandPrince45(opts).integrate(kOscillator, 0.0, 12.566370614359172, y);
  EXPECT_NEAR(y[0], 1.0, 1e-7);
  EXPECT_NEAR(y[1], 0.0, 1e-7);
}

TEST(DormandPrince45, UsesFewerStepsThanFixedRk4ForSameAccuracy) {
  std::vector<double> y1{1.0};
  DormandPrince45::Options opts;
  opts.abs_tolerance = 1e-8;
  opts.rel_tolerance = 1e-8;
  const OdeStats adaptive = DormandPrince45(opts).integrate(kDecay, 0.0, 10.0, y1);
  // Over a long quiet interval the adaptive method should take big steps.
  EXPECT_LT(adaptive.steps_accepted, 200u);
  EXPECT_NEAR(y1[0], std::exp(-10.0), 1e-7);
}

TEST(DormandPrince45, ZeroLengthIntervalIsNoop) {
  std::vector<double> y{3.0};
  const OdeStats stats = DormandPrince45().integrate(kDecay, 1.0, 1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_EQ(stats.steps_accepted, 0u);
}

// ------------------------------------------------------------------ Matrix

TEST(Matrix, BasicAlgebra) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  const Matrix ident = Matrix::identity(2);
  const Matrix sum = a + ident;
  EXPECT_DOUBLE_EQ(sum(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix twice = a * 2.0;
  EXPECT_DOUBLE_EQ(twice(1, 0), 6.0);
  const Matrix diff = twice - a;
  EXPECT_DOUBLE_EQ(diff(0, 1), 2.0);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix a(2, 3), b(3, 2);
  int v = 1;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  }
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) b(i, j) = v++;
  }
  const Matrix c = a.multiply(b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12] => c = [58 64; 139 154].
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, ApplyIsMatVec) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 0.0;
  a(1, 1) = 3.0;
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y = a.apply(x);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(a.apply(wrong), std::invalid_argument);
}

TEST(Matrix, InfNorm) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = -5.0;
  a(1, 0) = 2.0;
  a(1, 1) = 2.0;
  EXPECT_DOUBLE_EQ(a.inf_norm(), 6.0);
}

TEST(Matrix, SolveRecoversKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  Matrix rhs(2, 1);
  rhs(0, 0) = 1.0;
  rhs(1, 0) = 2.0;
  const Matrix x = a.solve(rhs);
  EXPECT_NEAR(4.0 * x(0, 0) + x(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 0) + 3.0 * x(1, 0), 2.0, 1e-12);
}

TEST(Matrix, SolveNeedsPivoting) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const Matrix x = a.solve(Matrix::identity(2));
  // The inverse of the swap matrix is itself.
  EXPECT_DOUBLE_EQ(x(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(x(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(x(0, 0), 0.0);
}

TEST(Matrix, SolveDetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(a.solve(Matrix::identity(2)), std::domain_error);
}

TEST(Matrix, ShapeMismatchesThrow) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.multiply(a), std::invalid_argument);
  EXPECT_THROW(a.solve(b), std::invalid_argument);
}

// -------------------------------------------------------------------- expm

TEST(Expm, IdentityAndZero) {
  const Matrix zero(3, 3);
  const Matrix e = expm(zero);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(e(i, j), i == j ? 1.0 : 0.0, 1e-14);
    }
  }
}

TEST(Expm, DiagonalMatrix) {
  Matrix d(2, 2);
  d(0, 0) = 1.0;
  d(1, 1) = -2.0;
  const Matrix e = expm(d);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, RotationGenerator) {
  // A = [[0, -t], [t, 0]] => expm(A) is rotation by t.
  const double t = 1.234;
  Matrix a(2, 2);
  a(0, 1) = -t;
  a(1, 0) = t;
  const Matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-12);
  EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-12);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-12);
  EXPECT_NEAR(e(1, 1), std::cos(t), 1e-12);
}

TEST(Expm, LargeNormUsesScaling) {
  // Rotation by a large angle exercises the squaring phase.
  const double t = 50.0;
  Matrix a(2, 2);
  a(0, 1) = -t;
  a(1, 0) = t;
  const Matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-9);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-9);
}

TEST(Expm, GeneratorMatrixPreservesMass) {
  // Columns of a generator sum to 0 => expm columns sum to 1.
  Matrix g(3, 3);
  g(0, 0) = -1.0;
  g(1, 0) = 0.6;
  g(2, 0) = 0.4;
  g(1, 1) = -0.5;
  g(0, 1) = 0.5;
  g(2, 2) = -2.0;
  g(0, 2) = 1.0;
  g(1, 2) = 1.0;
  const Matrix e = expm(g);
  for (std::size_t j = 0; j < 3; ++j) {
    double column = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      column += e(i, j);
      EXPECT_GE(e(i, j), -1e-12);  // transition probabilities
    }
    EXPECT_NEAR(column, 1.0, 1e-12);
  }
}

TEST(Expm, AgreesWithOdeIntegration) {
  Matrix a(3, 3);
  a(0, 0) = -0.7;
  a(0, 1) = 0.2;
  a(1, 0) = 0.7;
  a(1, 1) = -0.2;
  a(1, 2) = 0.3;
  a(2, 2) = -0.3;
  const std::vector<double> y0{0.5, 0.3, 0.2};
  const double t = 2.0;

  Matrix at = a;
  at *= t;
  const std::vector<double> via_expm = expm(at).apply(y0);

  std::vector<double> via_rk4 = y0;
  const OdeRhs rhs = [&a](double, std::span<const double> y,
                          std::span<double> dydt) {
    const std::vector<double> out = a.apply(y);
    std::copy(out.begin(), out.end(), dydt.begin());
  };
  RungeKutta4(1e-4).integrate(rhs, 0.0, t, via_rk4);

  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(via_expm[i], via_rk4[i], 1e-9);
  }
}

TEST(Expm, RejectsNonSquare) {
  EXPECT_THROW(expm(Matrix(2, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace staleflow
