// Tests for sampling rules, migration rules, alpha-smoothness
// (Definition 2) and policy composition.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/fluid_simulator.h"
#include "core/migration.h"
#include "core/policy.h"
#include "core/sampling.h"
#include "net/generators.h"
#include "util/rng.h"

namespace staleflow {
namespace {

Instance three_links() {
  return uniform_parallel_links(3, 0.0, 1.0);
}

std::vector<double> get_distribution(const SamplingRule& rule,
                                     const Instance& inst,
                                     std::span<const double> flow,
                                     std::span<const double> latency) {
  const Commodity& commodity = inst.commodity(CommodityId{0});
  std::vector<double> out(commodity.paths.size());
  rule.distribution(inst, commodity, flow, latency, out);
  return out;
}

TEST(UniformSampling, EqualProbabilities) {
  const Instance inst = three_links();
  const std::vector<double> flow{0.7, 0.2, 0.1};
  const std::vector<double> latency{0.7, 0.2, 0.1};
  const UniformSampling rule;
  const auto sigma = get_distribution(rule, inst, flow, latency);
  for (const double s : sigma) EXPECT_DOUBLE_EQ(s, 1.0 / 3.0);
  EXPECT_FALSE(rule.depends_on_flow());
  EXPECT_EQ(rule.name(), "uniform");
}

TEST(ProportionalSampling, MatchesFlowShares) {
  const Instance inst = three_links();
  const std::vector<double> flow{0.7, 0.2, 0.1};
  const std::vector<double> latency{0.0, 0.0, 0.0};
  const ProportionalSampling rule;
  const auto sigma = get_distribution(rule, inst, flow, latency);
  EXPECT_DOUBLE_EQ(sigma[0], 0.7);
  EXPECT_DOUBLE_EQ(sigma[1], 0.2);
  EXPECT_DOUBLE_EQ(sigma[2], 0.1);
  EXPECT_TRUE(rule.depends_on_flow());
}

TEST(ProportionalSampling, UniformFloorMixesIn) {
  const Instance inst = three_links();
  const std::vector<double> flow{1.0, 0.0, 0.0};
  const std::vector<double> latency{0.0, 0.0, 0.0};
  const ProportionalSampling rule(0.3);
  const auto sigma = get_distribution(rule, inst, flow, latency);
  EXPECT_DOUBLE_EQ(sigma[0], 0.7 + 0.1);
  EXPECT_DOUBLE_EQ(sigma[1], 0.1);
  EXPECT_DOUBLE_EQ(sigma[2], 0.1);
  EXPECT_THROW(ProportionalSampling(-0.1), std::invalid_argument);
  EXPECT_THROW(ProportionalSampling(1.1), std::invalid_argument);
}

TEST(ProportionalSampling, NormalisesByCommodityDemand) {
  const Instance inst = shared_bottleneck(0.5);
  const Commodity& c0 = inst.commodity(CommodityId{0});
  std::vector<double> flow(inst.path_count(), 0.0);
  // Put all of commodity 0's demand (0.5) on its first path.
  flow[c0.paths.front().index()] = 0.5;
  std::vector<double> latency(inst.path_count(), 0.0);
  const ProportionalSampling rule;
  std::vector<double> sigma(c0.paths.size());
  rule.distribution(inst, c0, flow, latency, sigma);
  EXPECT_DOUBLE_EQ(sigma[0], 1.0);  // 0.5 / 0.5
  EXPECT_DOUBLE_EQ(std::accumulate(sigma.begin(), sigma.end(), 0.0), 1.0);
}

TEST(LogitSampling, PrefersLowLatency) {
  const Instance inst = three_links();
  const std::vector<double> flow{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const std::vector<double> latency{0.1, 0.5, 0.9};
  const LogitSampling rule(5.0);
  const auto sigma = get_distribution(rule, inst, flow, latency);
  EXPECT_GT(sigma[0], sigma[1]);
  EXPECT_GT(sigma[1], sigma[2]);
  EXPECT_NEAR(std::accumulate(sigma.begin(), sigma.end(), 0.0), 1.0, 1e-12);
  // Ratios follow exp(-c * delta_l).
  EXPECT_NEAR(sigma[0] / sigma[1], std::exp(5.0 * 0.4), 1e-9);
}

TEST(LogitSampling, LargeCApproachesBestResponse) {
  const Instance inst = three_links();
  const std::vector<double> flow{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const std::vector<double> latency{0.1, 0.5, 0.9};
  const LogitSampling rule(200.0);
  const auto sigma = get_distribution(rule, inst, flow, latency);
  EXPECT_GT(sigma[0], 0.999);
  EXPECT_THROW(LogitSampling(0.0), std::invalid_argument);
}

TEST(LogitSampling, StableUnderLargeLatencies) {
  // The softmax must not overflow for big c * l values.
  const Instance inst = three_links();
  const std::vector<double> flow{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const std::vector<double> latency{1000.0, 2000.0, 3000.0};
  const LogitSampling rule(10.0);
  const auto sigma = get_distribution(rule, inst, flow, latency);
  EXPECT_NEAR(sigma[0], 1.0, 1e-9);
  EXPECT_FALSE(std::isnan(sigma[2]));
}

TEST(BlendedSampling, MixesComponentDistributions) {
  const Instance inst = three_links();
  const std::vector<double> flow{0.7, 0.2, 0.1};
  const std::vector<double> latency{0.0, 0.0, 0.0};
  std::vector<BlendedSampling::Component> parts;
  parts.push_back({1.0, uniform_sampling()});
  parts.push_back({1.0, proportional_sampling()});
  const SamplingPtr blend = blended_sampling(std::move(parts));
  const auto sigma = get_distribution(*blend, inst, flow, latency);
  // Equal weights: sigma = (uniform + proportional) / 2.
  EXPECT_DOUBLE_EQ(sigma[0], 0.5 * (1.0 / 3.0) + 0.5 * 0.7);
  EXPECT_DOUBLE_EQ(sigma[1], 0.5 * (1.0 / 3.0) + 0.5 * 0.2);
  EXPECT_NEAR(std::accumulate(sigma.begin(), sigma.end(), 0.0), 1.0, 1e-12);
  EXPECT_TRUE(blend->depends_on_flow());
  EXPECT_NE(blend->name().find("blend"), std::string::npos);
}

TEST(BlendedSampling, NormalisesWeightsAndValidates) {
  std::vector<BlendedSampling::Component> parts;
  parts.push_back({3.0, uniform_sampling()});
  parts.push_back({1.0, logit_sampling(2.0)});
  const SamplingPtr blend = blended_sampling(std::move(parts));
  EXPECT_FALSE(blend->depends_on_flow());

  EXPECT_THROW(BlendedSampling({}), std::invalid_argument);
  std::vector<BlendedSampling::Component> null_rule;
  null_rule.push_back({1.0, nullptr});
  EXPECT_THROW(BlendedSampling(std::move(null_rule)), std::invalid_argument);
  std::vector<BlendedSampling::Component> negative;
  negative.push_back({-1.0, uniform_sampling()});
  EXPECT_THROW(BlendedSampling(std::move(negative)), std::invalid_argument);
  std::vector<BlendedSampling::Component> zero_sum;
  zero_sum.push_back({0.0, uniform_sampling()});
  EXPECT_THROW(BlendedSampling(std::move(zero_sum)), std::invalid_argument);
}

TEST(BlendedSampling, ConvergesAsAPolicy) {
  // The blend keeps positivity (from the uniform part), so the general
  // convergence machinery applies to it like any other member of the
  // paper's class. Heterogeneous links so the start is off-equilibrium.
  Rng rng(61);
  const Instance inst = random_parallel_links(3, rng);
  std::vector<BlendedSampling::Component> parts;
  parts.push_back({0.3, uniform_sampling()});
  parts.push_back({0.7, proportional_sampling()});
  Policy policy(blended_sampling(std::move(parts)),
                linear_migration(inst.max_latency()));
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = inst.safe_update_period(*policy.smoothness());
  options.horizon = 200.0;
  options.stop_gap = 1e-8;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_LT(result.final_gap, 1e-6);
}

TEST(SamplingRules, RejectWrongOutputSize) {
  const Instance inst = three_links();
  const Commodity& commodity = inst.commodity(CommodityId{0});
  const std::vector<double> flow{1.0 / 3, 1.0 / 3, 1.0 / 3};
  std::vector<double> wrong(2);
  EXPECT_THROW(
      UniformSampling{}.distribution(inst, commodity, flow, flow, wrong),
      std::invalid_argument);
}

// --------------------------------------------------------------- migration

TEST(BetterResponseMigration, StepFunction) {
  const BetterResponseMigration rule;
  EXPECT_DOUBLE_EQ(rule.probability(1.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(rule.probability(0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(rule.probability(1.0, 1.0), 0.0);
  EXPECT_FALSE(rule.smoothness().has_value());
}

TEST(LinearMigration, ProportionalToGain) {
  const LinearMigration rule(2.0);  // l_max = 2
  EXPECT_DOUBLE_EQ(rule.probability(1.0, 0.5), 0.25);
  EXPECT_DOUBLE_EQ(rule.probability(0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(rule.probability(5.0, 0.0), 1.0);  // clamped
  ASSERT_TRUE(rule.smoothness().has_value());
  EXPECT_DOUBLE_EQ(*rule.smoothness(), 0.5);
  EXPECT_THROW(LinearMigration(0.0), std::invalid_argument);
}

TEST(AlphaCappedMigration, RespectsAlpha) {
  const AlphaCappedMigration rule(0.1);
  EXPECT_DOUBLE_EQ(rule.probability(2.0, 1.0), 0.1);
  EXPECT_DOUBLE_EQ(rule.probability(20.0, 0.0), 1.0);
  ASSERT_TRUE(rule.smoothness().has_value());
  EXPECT_DOUBLE_EQ(*rule.smoothness(), 0.1);
  EXPECT_THROW(AlphaCappedMigration(-1.0), std::invalid_argument);
}

TEST(RelativeSlackMigration, RelativeGain) {
  const RelativeSlackMigration rule(0.0);
  EXPECT_DOUBLE_EQ(rule.probability(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(rule.probability(2.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(rule.probability(1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(rule.probability(0.0, 0.0), 0.0);
  EXPECT_FALSE(rule.smoothness().has_value());
  EXPECT_THROW(RelativeSlackMigration(-1.0), std::invalid_argument);
}

TEST(RelativeSlackMigration, ShiftMakesItSmooth) {
  const RelativeSlackMigration rule(0.5);
  ASSERT_TRUE(rule.smoothness().has_value());
  EXPECT_DOUBLE_EQ(*rule.smoothness(), 2.0);
  EXPECT_TRUE(satisfies_alpha_smoothness(rule, 2.0, 10.0));
  // mu = (lP - lQ)/(lP + 0.5) <= 2 (lP - lQ); the bound is tight at lP->0.
  EXPECT_DOUBLE_EQ(rule.probability(1.5, 0.5), 0.5);
}

TEST(RelativeSlackMigration, DoesNotScaleWithLatencyMagnitude) {
  // The relative rule is invariant under scaling all latencies.
  const RelativeSlackMigration relative(0.0);
  EXPECT_DOUBLE_EQ(relative.probability(2.0, 1.0),
                   relative.probability(200.0, 100.0));
  // And it stays aggressive in the regime that cripples the linear rule:
  // typical latencies far below the worst case l_max. With l_max = 1000
  // and latencies around 1, linear migrates with ~1e-3 probability where
  // the relative rule migrates with ~1/2.
  const LinearMigration linear_rule(1000.0);
  EXPECT_DOUBLE_EQ(linear_rule.probability(1.0, 0.5), 0.0005);
  EXPECT_DOUBLE_EQ(relative.probability(1.0, 0.5), 0.5);
}

TEST(ConstantMigration, FixedProbability) {
  const ConstantMigration rule(0.4);
  EXPECT_DOUBLE_EQ(rule.probability(1.0, 0.99), 0.4);
  EXPECT_DOUBLE_EQ(rule.probability(0.99, 1.0), 0.0);
  EXPECT_FALSE(rule.smoothness().has_value());
  EXPECT_THROW(ConstantMigration(0.0), std::invalid_argument);
  EXPECT_THROW(ConstantMigration(1.5), std::invalid_argument);
}

TEST(AlphaSmoothness, NumericCheckAgreesWithTheory) {
  // Linear rule with scale L is (1/L)-smooth but not (1/(2L))-smooth.
  const LinearMigration linear(2.0);
  EXPECT_TRUE(satisfies_alpha_smoothness(linear, 0.5, 4.0));
  EXPECT_TRUE(satisfies_alpha_smoothness(linear, 0.6, 4.0));
  EXPECT_FALSE(satisfies_alpha_smoothness(linear, 0.25, 4.0));

  const BetterResponseMigration better;
  EXPECT_FALSE(satisfies_alpha_smoothness(better, 1.0, 4.0));
  EXPECT_FALSE(satisfies_alpha_smoothness(better, 1000.0, 4.0));

  const ConstantMigration constant_rule(0.5);
  EXPECT_FALSE(satisfies_alpha_smoothness(constant_rule, 100.0, 4.0));

  const AlphaCappedMigration capped(0.3);
  EXPECT_TRUE(satisfies_alpha_smoothness(capped, 0.3, 10.0));
  EXPECT_FALSE(satisfies_alpha_smoothness(capped, 0.2, 10.0));
}

TEST(MigrationRules, SelfishContract) {
  // All rules must never migrate towards equal-or-worse paths.
  std::vector<MigrationPtr> rules;
  rules.push_back(better_response_migration());
  rules.push_back(linear_migration(1.0));
  rules.push_back(alpha_capped_migration(2.0));
  rules.push_back(constant_migration(0.5));
  for (const auto& rule : rules) {
    for (double l = 0.0; l <= 2.0; l += 0.25) {
      EXPECT_DOUBLE_EQ(rule->probability(l, l), 0.0) << rule->name();
      EXPECT_DOUBLE_EQ(rule->probability(l, l + 0.5), 0.0) << rule->name();
      const double mu = rule->probability(l + 0.5, l);
      EXPECT_GE(mu, 0.0) << rule->name();
      EXPECT_LE(mu, 1.0) << rule->name();
    }
  }
}

TEST(MigrationRules, MonotoneInGain) {
  std::vector<MigrationPtr> rules;
  rules.push_back(linear_migration(2.0));
  rules.push_back(alpha_capped_migration(0.7));
  for (const auto& rule : rules) {
    double prev = 0.0;
    for (double gain = 0.0; gain <= 3.0; gain += 0.1) {
      const double mu = rule->probability(1.0 + gain, 1.0);
      EXPECT_GE(mu, prev - 1e-15) << rule->name();
      prev = mu;
    }
  }
}

// ------------------------------------------------------------------ policy

TEST(Policy, ComposesNames) {
  const Instance inst = three_links();
  const Policy policy = make_replicator_policy(inst);
  EXPECT_NE(policy.name().find("proportional"), std::string::npos);
  EXPECT_NE(policy.name().find("linear"), std::string::npos);
}

TEST(Policy, ReplicatorSmoothnessIsInverseLmax) {
  const Instance inst = three_links();  // l_max = 1 (a=0, b=1, x<=1)
  const Policy policy = make_replicator_policy(inst);
  ASSERT_TRUE(policy.smoothness().has_value());
  EXPECT_DOUBLE_EQ(*policy.smoothness(), 1.0 / inst.max_latency());
}

TEST(Policy, FactoriesProduceExpectedRules) {
  const Instance inst = three_links();
  EXPECT_FALSE(make_naive_better_response_policy().smoothness().has_value());
  EXPECT_TRUE(make_uniform_linear_policy(inst).smoothness().has_value());
  const Policy alpha_policy = make_alpha_policy(0.25);
  ASSERT_TRUE(alpha_policy.smoothness().has_value());
  EXPECT_DOUBLE_EQ(*alpha_policy.smoothness(), 0.25);
  EXPECT_NE(make_logit_policy(inst, 3.0).name().find("logit"),
            std::string::npos);
}

TEST(Policy, RejectsNullRules) {
  EXPECT_THROW(Policy(nullptr, linear_migration(1.0)),
               std::invalid_argument);
  EXPECT_THROW(Policy(uniform_sampling(), nullptr), std::invalid_argument);
}

class SamplingPositivity
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SamplingPositivity, DistributionsSumToOneAndStayPositive) {
  // Section 2.2 requires sigma_Q > 0 for convergence; with a floor the
  // proportional rule keeps that property even on concentrated flows.
  const auto [links, floor_value] = GetParam();
  const Instance inst =
      uniform_parallel_links(static_cast<std::size_t>(links), 0.0, 1.0);
  std::vector<double> flow(inst.path_count(), 0.0);
  flow[0] = 1.0;  // fully concentrated
  const std::vector<double> latency(inst.path_count(), 0.5);

  std::vector<std::unique_ptr<const SamplingRule>> rules;
  rules.push_back(uniform_sampling());
  rules.push_back(proportional_sampling(floor_value));
  rules.push_back(logit_sampling(2.0));
  for (const auto& rule : rules) {
    const auto sigma = get_distribution(*rule, inst, flow, latency);
    const double total = std::accumulate(sigma.begin(), sigma.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12) << rule->name();
    if (rule->name() != "proportional" || floor_value > 0.0) {
      for (const double s : sigma) EXPECT_GT(s, 0.0) << rule->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SamplingPositivity,
    ::testing::Combine(::testing::Values(2, 3, 8),
                       ::testing::Values(0.01, 0.1, 0.5)));

}  // namespace
}  // namespace staleflow
