// Cross-cutting property sweeps: randomized invariants that should hold
// for the whole stack regardless of instance and policy.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

// ------------------------------------------------------------------- expm

class ExpmGeneratorSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExpmGeneratorSweep, RandomGeneratorMatricesAgreeWithRk4) {
  // Property: for random generator matrices (non-negative off-diagonals,
  // zero column sums) expm agrees with direct ODE integration and maps
  // distributions to distributions.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + static_cast<std::size_t>(GetParam()) % 4;
  Matrix g(n, n);
  for (std::size_t col = 0; col < n; ++col) {
    double total = 0.0;
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col) continue;
      g(row, col) = rng.uniform(0.0, 2.0);
      total += g(row, col);
    }
    g(col, col) = -total;
  }

  std::vector<double> start(n);
  for (auto& v : start) v = rng.uniform(0.1, 1.0);
  const double mass = std::accumulate(start.begin(), start.end(), 0.0);
  for (auto& v : start) v /= mass;

  const double tau = rng.uniform(0.1, 2.0);
  Matrix gt = g;
  gt *= tau;
  const std::vector<double> via_expm = expm(gt).apply(start);

  std::vector<double> via_rk4 = start;
  const OdeRhs rhs = [&g](double, std::span<const double> y,
                          std::span<double> dydt) {
    const std::vector<double> out = g.apply(y);
    std::copy(out.begin(), out.end(), dydt.begin());
  };
  RungeKutta4(1e-4).integrate(rhs, 0.0, tau, via_rk4);

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(via_expm[i], via_rk4[i], 1e-8);
    EXPECT_GE(via_expm[i], -1e-12);
    total += via_expm[i];
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpmGeneratorSweep,
                         ::testing::Range(1, 13));

// ------------------------------------------------------------ Frank-Wolfe

class FrankWolfeFamilySweep : public ::testing::TestWithParam<int> {};

TEST_P(FrankWolfeFamilySweep, NonlinearLatencyFamiliesReachEquilibrium) {
  // Property: the solver handles every latency family, and at the result
  // every flow-carrying path has (near-)minimal latency.
  const int which = GetParam();
  Instance inst = parallel_links(4, [which](std::size_t j) -> LatencyPtr {
    const double a = 0.2 * static_cast<double>(j);
    switch (which) {
      case 0:
        return affine(a, 1.0);
      case 1:
        return polynomial({a, 0.0, 1.0});
      case 2:
        return bpr(0.5 + a, 0.3, 0.7, 2.0);
      case 3:
        return mm1(1.5 + a);
      default:
        return monomial(1.0 + a, 2.0);
    }
  });
  FrankWolfeOptions options;
  options.gap_tolerance = 1e-9;
  const FrankWolfeResult result = solve_equilibrium(inst, options);
  EXPECT_TRUE(result.converged);
  const FlowEvaluation eval = evaluate(inst, result.flow.values());
  for (std::size_t p = 0; p < inst.path_count(); ++p) {
    if (result.flow[PathId{p}] > 1e-7) {
      EXPECT_NEAR(eval.path_latency[p], eval.commodity_min_latency[0], 1e-5)
          << "family " << which << " path " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FrankWolfeFamilySweep,
                         ::testing::Range(0, 5));

// ------------------------------------------------------------ marginal cost

class MarginalContractSweep : public ::testing::TestWithParam<int> {};

TEST_P(MarginalContractSweep, MarginalCostSatisfiesContractForConvexFamilies) {
  const int which = GetParam();
  LatencyPtr base;
  switch (which) {
    case 0:
      base = constant(2.0);
      break;
    case 1:
      base = affine(0.5, 1.5);
      break;
    case 2:
      base = monomial(2.0, 2.0);
      break;
    case 3:
      base = polynomial({0.1, 0.2, 0.3, 0.4});
      break;
    case 4:
      base = bpr(1.0, 0.15, 0.9, 4.0);
      break;
    default:
      base = mm1(2.0);
      break;
  }
  const MarginalCostLatency mc(*base);
  EXPECT_EQ(check_latency_contract(mc), "") << base->describe();
  // Integral identity INT_0^x c = x * l(x) for a few probes.
  for (double x : {0.25, 0.5, 1.0}) {
    EXPECT_NEAR(mc.integral(x), x * base->value(x), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, MarginalContractSweep,
                         ::testing::Range(0, 6));

// --------------------------------------------------------------- dynamics

class MassConservationSweep : public ::testing::TestWithParam<int> {};

TEST_P(MassConservationSweep, SimulationConservesDemandExactly) {
  // Property: across random instances, policies and periods, the fluid
  // simulator returns feasible flows (mass conservation + nonnegativity).
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const Instance inst = layered_dag(2, 3, 2, rng);
  std::vector<Policy> policies;
  policies.push_back(make_uniform_linear_policy(inst));
  policies.push_back(make_replicator_policy(inst, 0.1));
  policies.push_back(make_logit_policy(inst, 2.0));
  for (const Policy& policy : policies) {
    const FluidSimulator sim(inst, policy);
    SimulationOptions options;
    options.update_period = rng.uniform(0.01, 0.5);
    options.horizon = 5.0;
    const SimulationResult result =
        sim.run(FlowVector::uniform(inst), options);
    EXPECT_TRUE(is_feasible(inst, result.final_flow.values(), 1e-9))
        << policy.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MassConservationSweep,
                         ::testing::Range(0, 8));

TEST(SafePolicyFactory, MatchesCorollary5Recipe) {
  const Instance inst = two_link_pulse(8.0);  // D = 1, beta = 8
  const Policy policy = make_safe_policy(inst, 0.25);
  ASSERT_TRUE(policy.smoothness().has_value());
  EXPECT_DOUBLE_EQ(*policy.smoothness(), 1.0 / (4.0 * 8.0 * 0.25));
  // By construction T = 0.25 is exactly the safe period for this alpha.
  EXPECT_DOUBLE_EQ(inst.safe_update_period(*policy.smoothness()), 0.25);
  EXPECT_THROW(make_safe_policy(inst, 0.0), std::invalid_argument);

  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, constant(1.0));
  b.set_latency(e2, constant(2.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  const Instance flat = std::move(b).build();
  EXPECT_THROW(make_safe_policy(flat, 0.25), std::invalid_argument);
}

class SafePolicySweep : public ::testing::TestWithParam<double> {};

TEST_P(SafePolicySweep, SafePolicyConvergesAtItsOwnPeriod) {
  const double T = GetParam();
  const Instance inst = two_link_pulse(4.0);
  const Policy policy = make_safe_policy(inst, T);
  const FluidSimulator sim(inst, policy);
  AccountingRecorder recorder(inst);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 1'500.0 * T;
  options.stop_gap = 1e-8;
  const SimulationResult result =
      sim.run(FlowVector(inst, {0.9, 0.1}), options, recorder.observer());
  EXPECT_LT(result.final_gap, 1e-4) << "T=" << T;
  EXPECT_EQ(recorder.lemma4_violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Periods, SafePolicySweep,
                         ::testing::Values(0.05, 0.2, 0.8, 3.2));

// ----------------------------------------------------- best-reply ties

TEST(BestReply, MultiCommodityTies) {
  const Instance inst = shared_bottleneck(0.5);
  // Equal latencies everywhere: each commodity splits over its paths.
  const std::vector<double> latency(inst.path_count(), 1.0);
  const FlowVector reply = best_reply_flow(inst, latency);
  for (std::size_t c = 0; c < inst.commodity_count(); ++c) {
    const Commodity& commodity = inst.commodity(CommodityId{c});
    const double share =
        commodity.demand / static_cast<double>(commodity.paths.size());
    for (const PathId p : commodity.paths) {
      EXPECT_DOUBLE_EQ(reply[p], share);
    }
  }
}

// ------------------------------------------------------ agents (replicator)

TEST(AgentsProperty, ReplicatorPolicyNeverResurrectsEmptyPaths) {
  // Proportional sampling cannot discover a path with zero board flow; in
  // the discrete simulator a path that starts empty stays empty.
  const Instance inst = uniform_parallel_links(3, 0.0, 1.0);
  const Policy policy = make_replicator_policy(inst);
  const AgentSimulator sim(inst, policy);
  AgentSimOptions options;
  options.num_agents = 600;
  options.update_period = 0.2;
  options.horizon = 8.0;
  options.seed = 77;
  const FlowVector start(inst, {0.5, 0.5, 0.0});
  const AgentSimResult result = sim.run(start, options);
  EXPECT_DOUBLE_EQ(result.final_flow[PathId{2}], 0.0);
}

TEST(AgentsProperty, UniformFloorResurrectsEmptyPaths) {
  // With a uniform floor the third path gets sampled and, being cheaper,
  // attracts flow.
  const Instance inst = parallel_links(3, [](std::size_t j) {
    return j == 2 ? affine(0.0, 0.5) : affine(0.5, 1.0);
  });
  const Policy policy = make_replicator_policy(inst, 0.2);
  const AgentSimulator sim(inst, policy);
  AgentSimOptions options;
  options.num_agents = 2'000;
  options.update_period = 0.2;
  options.horizon = 30.0;
  options.seed = 78;
  const FlowVector start(inst, {0.5, 0.5, 0.0});
  const AgentSimResult result = sim.run(start, options);
  EXPECT_GT(result.final_flow[PathId{2}], 0.3);
}

}  // namespace
}  // namespace staleflow
