// Crash-recovery property suite (ctest label `recovery`, run under the
// sanitizer CI job).
//
// The contract under test: a run serving with --wal can be killed at ANY
// byte of its write-ahead log — a torn tail, a clean record boundary, a
// flipped bit — and recover_wal + resume reproduce the uninterrupted
// run's deterministic telemetry byte for byte: same per-epoch digests,
// same final flow, same route-latency histogram. The contract holds
// under BOTH execution schedules: strict epoch-at-a-time and cross-epoch
// pipelining (--pipeline), whose overlap-spanning cuts must be byte-
// identical to strict ones. The protocol invariants ride along: cut
// records commit only at round marks, a single-server WAL is
// record-for-record identical to a one-tenant registry's, the v3 header
// records the pipeline flag (v2 files decode as strict), and the
// CLI-facing recovery flags fail closed (exit 2) on conflicting or
// unusable paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cli_common.h"
#include "exec/exec.h"
#include "faults/fault_plan.h"
#include "net/flow.h"
#include "net/generators.h"
#include "recovery/recovery.h"
#include "service/service.h"
#include "sweep/spec.h"
#include "trace/metrics.h"
#include "util/binio.h"
#include "util/fnv.h"
#include "util/log_histogram.h"
#include "util/rng.h"

namespace staleflow {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "staleflow_recovery_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------- binio

TEST(BinIO, RoundTripsAllFieldTypes) {
  binio::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(-0.0);
  w.f64(3.141592653589793);
  w.str(std::string("bin\0ary", 7));  // embedded NUL survives
  w.str("");

  binio::Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  const double negative_zero = r.f64();
  EXPECT_EQ(negative_zero, 0.0);
  EXPECT_TRUE(std::signbit(negative_zero));  // exact bit pattern, not value
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), std::string("bin\0ary", 7));
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(BinIO, ReaderThrowsOnUnderrun) {
  binio::Writer w;
  w.u32(7);
  binio::Reader r(w.data());
  EXPECT_THROW(r.u64(), std::runtime_error);

  binio::Writer lying;
  lying.u64(1000);  // string length prefix far past the buffer
  binio::Reader r2(lying.data());
  EXPECT_THROW(r2.str(), std::runtime_error);
}

// ------------------------------------------- LogHistogram::from_state

std::vector<std::pair<std::uint64_t, std::uint64_t>> nonzero_buckets(
    const LogHistogram& hist) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  for (std::size_t b = 0; b < hist.bucket_count(); ++b) {
    if (hist.bucket_value(b) != 0) buckets.emplace_back(b, hist.bucket_value(b));
  }
  return buckets;
}

TEST(HistogramState, RoundTripIsObservationallyIdentical) {
  LogHistogram hist(1e-6, 1e6, 4);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) hist.record(rng.uniform(0.0, 100.0));
  hist.record(1e-9);  // underflow bucket
  hist.record(1e9);   // overflow bucket

  const LogHistogram restored = LogHistogram::from_state(
      hist.min_value(), hist.max_value(), hist.sub_bucket_bits(),
      nonzero_buckets(hist), hist.min(), hist.max(), hist.sum());
  EXPECT_TRUE(restored == hist);
  EXPECT_EQ(restored.quantile(0.99), hist.quantile(0.99));

  // Restored histograms must keep MERGING exactly — that is how resume
  // rebuilds the run distribution from per-epoch cuts.
  LogHistogram more(1e-6, 1e6, 4);
  more.record(42.0, 17);
  LogHistogram merged_original = hist;
  merged_original.merge(more);
  LogHistogram merged_restored = restored;
  merged_restored.merge(more);
  EXPECT_TRUE(merged_restored == merged_original);
}

TEST(HistogramState, EmptyRoundTrip) {
  const LogHistogram empty(1e-3, 1e3, 5);
  const LogHistogram restored = LogHistogram::from_state(
      1e-3, 1e3, 5, {}, /*min=*/0.0, /*max=*/0.0, /*sum=*/0.0);
  EXPECT_TRUE(restored == empty);
  EXPECT_TRUE(restored.empty());
}

TEST(HistogramState, RejectsBadState) {
  using Buckets = std::vector<std::pair<std::uint64_t, std::uint64_t>>;
  const Buckets repeated = {{5, 1}, {5, 2}};
  EXPECT_THROW(
      LogHistogram::from_state(1e-3, 1e3, 5, repeated, 1.0, 2.0, 3.0),
      std::invalid_argument);
  const Buckets zero_count = {{5, 0}};
  EXPECT_THROW(
      LogHistogram::from_state(1e-3, 1e3, 5, zero_count, 1.0, 2.0, 3.0),
      std::invalid_argument);
  const Buckets out_of_range = {{1u << 30, 1}};
  EXPECT_THROW(
      LogHistogram::from_state(1e-3, 1e3, 5, out_of_range, 1.0, 2.0, 3.0),
      std::invalid_argument);
  const Buckets fine = {{5, 1}};
  EXPECT_THROW(  // min > max
      LogHistogram::from_state(1e-3, 1e3, 5, fine, 2.0, 1.0, 3.0),
      std::invalid_argument);
}

// ------------------------------------------------ incremental digest

TEST(TelemetryDigest, AccumulateFoldsToWholeRunDigest) {
  std::vector<EpochSummary> epochs(5);
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    epochs[e].epoch = e;
    epochs[e].queries = 100 + e;
    epochs[e].migrations = e;
    epochs[e].wardrop_gap = 0.25 / static_cast<double>(e + 1);
    epochs[e].board_latency = 1.5 + static_cast<double>(e);
    epochs[e].route_p50 = 1.0;
    epochs[e].route_p99 = 2.0;
    epochs[e].route_p999 = 3.0;
  }
  std::uint64_t folded = fnv::kOffsetBasis;
  for (const EpochSummary& epoch : epochs) {
    folded = telemetry_digest_accumulate(folded, epoch);
  }
  EXPECT_EQ(folded, telemetry_digest(epochs));
}

// ------------------------------------------------------- WAL framing

TEST(WalFraming, WritesAndScansRecords) {
  const std::string path = temp_path("framing.wal");
  {
    recovery::WalWriter writer = recovery::WalWriter::create(path);
    writer.append(recovery::RecordType::kRunHeader, "alpha");
    writer.append(recovery::RecordType::kEpochCut,
                  std::string("b\0in", 4));
    writer.append(recovery::RecordType::kTrailer, "");
  }
  const recovery::WalScan scan = recovery::scan_wal(path);
  EXPECT_FALSE(scan.truncated);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].type, recovery::RecordType::kRunHeader);
  EXPECT_EQ(scan.records[0].payload, "alpha");
  EXPECT_EQ(scan.records[1].payload, std::string("b\0in", 4));
  EXPECT_EQ(scan.records[2].type, recovery::RecordType::kTrailer);
  EXPECT_EQ(scan.valid_bytes, std::filesystem::file_size(path));
}

TEST(WalFraming, TornTailIsTruncatedAtLastGoodRecord) {
  const std::string path = temp_path("torn.wal");
  {
    recovery::WalWriter writer = recovery::WalWriter::create(path);
    writer.append(recovery::RecordType::kRunHeader, "one");
    writer.append(recovery::RecordType::kEpochCut, "two-two");
    writer.append(recovery::RecordType::kRoundMark, "three");
  }
  const std::string clean = read_file(path);
  const recovery::WalScan full = recovery::scan_wal(path);
  ASSERT_EQ(full.records.size(), 3u);

  // Cut the file anywhere inside the third record: the scan keeps the
  // first two and reports the amputation point.
  for (const std::size_t keep :
       {full.records[1].end_offset + 1, full.records[2].end_offset - 1}) {
    write_file(path, clean.substr(0, keep));
    const recovery::WalScan torn = recovery::scan_wal(path);
    EXPECT_TRUE(torn.truncated);
    ASSERT_EQ(torn.records.size(), 2u);
    EXPECT_EQ(torn.valid_bytes, full.records[1].end_offset);
    EXPECT_FALSE(torn.note.empty());
  }
}

TEST(WalFraming, BitFlipStopsTheScan) {
  const std::string path = temp_path("flip.wal");
  {
    recovery::WalWriter writer = recovery::WalWriter::create(path);
    writer.append(recovery::RecordType::kRunHeader, "head");
    writer.append(recovery::RecordType::kEpochCut, "payload-payload");
    writer.append(recovery::RecordType::kRoundMark, "mark");
  }
  std::string bytes = read_file(path);
  const recovery::WalScan full = recovery::scan_wal(path);
  ASSERT_EQ(full.records.size(), 3u);

  // Flip one bit inside the SECOND record's payload: the scan must keep
  // the header, reject the flipped record, and — prefix property — not
  // surface the intact third record either.
  const std::uint64_t flip_at = full.records[0].end_offset + 8 + 3;
  bytes[flip_at] = static_cast<char>(bytes[flip_at] ^ 0x10);
  write_file(path, bytes);
  const recovery::WalScan flipped = recovery::scan_wal(path);
  EXPECT_TRUE(flipped.truncated);
  ASSERT_EQ(flipped.records.size(), 1u);
  EXPECT_EQ(flipped.valid_bytes, full.records[0].end_offset);
  EXPECT_NE(flipped.note.find("checksum"), std::string::npos);
}

TEST(WalFraming, RejectsNonWalFiles) {
  const std::string path = temp_path("notawal.bin");
  write_file(path, "this is certainly not a WAL file");
  EXPECT_THROW(recovery::scan_wal(path), std::runtime_error);
  EXPECT_THROW(recovery::scan_wal(temp_path("missing.wal")),
               std::runtime_error);
}

// ---------------------------------------------------- serving fixtures

/// A small deterministic single-server run: braess (libm-free dynamics),
/// closed-loop load, replay mode — every telemetry byte reproducible.
struct SingleRun {
  Instance instance = braess(true);
  Policy policy = named_policy("replicator").make(instance, 0.1);
  WorkloadPtr workload = make_workload("closed-loop:800");
  RouteServerOptions options;

  SingleRun() {
    options.update_period = 0.1;
    options.epochs = 8;
    options.num_clients = 400;
    options.shards = 2;
    options.threads = 1;
    options.seed = 5;
    options.record_latency = false;
  }

  RouteServerResult run(const CutObserver& cuts = nullptr,
                        std::span<const EngineCheckpoint> resume = {}) {
    RouteServer server(instance, policy, *workload);
    return server.run(FlowVector::uniform(instance), options, nullptr, cuts,
                      resume);
  }

  recovery::RunManifest manifest() const {
    recovery::RunManifest m;
    m.multi_tenant = false;
    recovery::TenantManifest self;
    self.scenario = "braess";
    self.policy = "replicator";
    self.workload = "closed-loop:800";
    self.options = options;
    self.weight = 1;
    m.tenants.push_back(std::move(self));
    return m;
  }
};

/// Resumes a single-server WAL file to completion and returns the whole
/// run's digest (the resumed process's view).
std::uint64_t resume_single_to_completion(const std::string& path,
                                          SingleRun& fixture) {
  const recovery::RecoveredRun state = recovery::recover_wal(path);
  EXPECT_FALSE(state.clean_shutdown);
  recovery::WalLog log(path, state);
  const RouteServerResult result =
      fixture.run(log.single_observer(), std::span(state.cuts.front()));
  log.finish();
  return telemetry_digest(result.epochs);
}

// ------------------------------------- kill-at-every-cut-point (library)

TEST(Resume, KillAtEveryCutPointResumesBitIdentically) {
  SingleRun fixture;
  std::vector<EngineCheckpoint> cuts;
  const RouteServerResult full =
      fixture.run([&cuts](const EngineCheckpoint& c) { cuts.push_back(c); });
  ASSERT_EQ(cuts.size(), fixture.options.epochs);
  const std::uint64_t golden = telemetry_digest(full.epochs);
  ASSERT_GT(full.total_migrations, 0u);  // dynamics actually moved

  for (std::size_t k = 0; k <= cuts.size(); ++k) {
    const RouteServerResult resumed =
        fixture.run(nullptr, std::span(cuts).subspan(0, k));
    EXPECT_EQ(telemetry_digest(resumed.epochs), golden) << "cut " << k;
    const std::vector<double> resumed_flow(resumed.final_flow.values().begin(),
                                           resumed.final_flow.values().end());
    const std::vector<double> full_flow(full.final_flow.values().begin(),
                                        full.final_flow.values().end());
    EXPECT_EQ(resumed_flow, full_flow) << "cut " << k;
    EXPECT_TRUE(resumed.route_latency == full.route_latency) << "cut " << k;
    EXPECT_EQ(resumed.total_queries, full.total_queries) << "cut " << k;
  }
}

TEST(Resume, RejectsCutsThatDoNotFitTheConfiguration) {
  SingleRun fixture;
  std::vector<EngineCheckpoint> cuts;
  fixture.run([&cuts](const EngineCheckpoint& c) { cuts.push_back(c); });

  std::vector<EngineCheckpoint> gap = {cuts[0], cuts[2]};  // not contiguous
  EXPECT_THROW(fixture.run(nullptr, gap), std::invalid_argument);

  std::vector<EngineCheckpoint> wrong_flow = {cuts[0]};
  wrong_flow[0].flow.push_back(0.0);
  EXPECT_THROW(fixture.run(nullptr, wrong_flow), std::invalid_argument);

  std::vector<EngineCheckpoint> wrong_clients = {cuts[0]};
  wrong_clients[0].client_paths.pop_back();
  EXPECT_THROW(fixture.run(nullptr, wrong_clients), std::invalid_argument);
}

// --------------------------------------------- WAL end-to-end (single)

TEST(WalLog, CleanRunRoundTripsThroughRecoverWal) {
  SingleRun fixture;
  const std::string path = temp_path("clean.wal");
  std::uint64_t golden = 0;
  {
    recovery::WalLog log(path, fixture.manifest());
    const RouteServerResult full = fixture.run(log.single_observer());
    log.finish();
    golden = telemetry_digest(full.epochs);
  }

  const recovery::RecoveredRun state = recovery::recover_wal(path);
  EXPECT_TRUE(state.clean_shutdown);
  EXPECT_FALSE(state.truncated);
  EXPECT_FALSE(state.manifest.multi_tenant);
  ASSERT_EQ(state.cuts.size(), 1u);
  EXPECT_EQ(state.cuts[0].size(), fixture.options.epochs);
  EXPECT_EQ(state.digests[0], golden);
  EXPECT_EQ(state.rounds, fixture.options.epochs);

  const recovery::TenantManifest& manifest = state.manifest.tenants[0];
  EXPECT_EQ(manifest.scenario, "braess");
  EXPECT_EQ(manifest.policy, "replicator");
  EXPECT_EQ(manifest.workload, "closed-loop:800");
  EXPECT_EQ(manifest.options.epochs, fixture.options.epochs);
  EXPECT_EQ(manifest.options.seed, fixture.options.seed);
  EXPECT_EQ(manifest.options.num_clients, fixture.options.num_clients);
  EXPECT_FALSE(manifest.options.record_latency);

  // Restored cuts are bit-identical to freshly captured ones: replaying
  // the recovered state must land on the same digest.
  const RouteServerResult resumed =
      fixture.run(nullptr, std::span(state.cuts[0]));
  EXPECT_EQ(telemetry_digest(resumed.epochs), golden);
}

TEST(WalLog, KilledAtAnyByteResumesToTheSameDigest) {
  SingleRun fixture;
  const std::string clean_path = temp_path("killbytes.wal");
  std::uint64_t golden = 0;
  {
    recovery::WalLog log(clean_path, fixture.manifest());
    golden = telemetry_digest(fixture.run(log.single_observer()).epochs);
    log.finish();
  }
  const std::string clean = read_file(clean_path);
  const recovery::WalScan scan = recovery::scan_wal(clean_path);

  // Crash images: the WAL cut at every record boundary and mid-record —
  // every one must recover and resume to the uninterrupted digest. The
  // prefix must at least contain the run header (records[0]); anything
  // shorter is "not a resumable WAL", tested separately.
  std::vector<std::size_t> prefixes;
  for (std::size_t i = 0; i + 1 < scan.records.size(); ++i) {
    prefixes.push_back(scan.records[i].end_offset);       // boundary
    prefixes.push_back(scan.records[i].end_offset + 5);   // torn mid-record
  }
  const std::string crash_path = temp_path("killbytes_crash.wal");
  for (const std::size_t keep : prefixes) {
    write_file(crash_path, clean.substr(0, keep));
    SingleRun resumed_fixture;
    EXPECT_EQ(resume_single_to_completion(crash_path, resumed_fixture),
              golden)
        << "killed at byte " << keep;
    // The healed WAL is now a complete, clean run.
    const recovery::RecoveredRun healed = recovery::recover_wal(crash_path);
    EXPECT_TRUE(healed.clean_shutdown) << "killed at byte " << keep;
    EXPECT_EQ(healed.digests[0], golden) << "killed at byte " << keep;
  }
}

TEST(WalLog, BitFlippedCutRecoversToLastGoodEpoch) {
  SingleRun fixture;
  const std::string path = temp_path("flipcut.wal");
  std::uint64_t golden = 0;
  {
    recovery::WalLog log(path, fixture.manifest());
    golden = telemetry_digest(fixture.run(log.single_observer()).epochs);
    log.finish();
  }
  std::string bytes = read_file(path);
  const recovery::WalScan scan = recovery::scan_wal(path);
  // Records: header, then (cut, mark) pairs. Flip a bit inside epoch 3's
  // cut record (records[7]): epochs 0..2 stay committed.
  ASSERT_GT(scan.records.size(), 8u);
  const std::uint64_t flip_at = scan.records[6].end_offset + 8 + 11;
  bytes[flip_at] = static_cast<char>(bytes[flip_at] ^ 0x01);
  write_file(path, bytes);

  const recovery::RecoveredRun state = recovery::recover_wal(path);
  EXPECT_TRUE(state.truncated);
  EXPECT_FALSE(state.clean_shutdown);
  EXPECT_EQ(state.cuts[0].size(), 3u);
  EXPECT_EQ(state.rounds, 3u);

  SingleRun resumed_fixture;
  EXPECT_EQ(resume_single_to_completion(path, resumed_fixture), golden);
}

// ------------------------- pipelining × WAL (overlap-spanning cuts)

TEST(PipelinedCuts, MatchStrictCutsFieldForField) {
  SingleRun strict;
  std::vector<EngineCheckpoint> strict_cuts;
  strict.run([&](const EngineCheckpoint& c) { strict_cuts.push_back(c); });

  SingleRun pipelined;
  pipelined.options.pipeline = true;
  std::vector<EngineCheckpoint> pipe_cuts;
  pipelined.run([&](const EngineCheckpoint& c) { pipe_cuts.push_back(c); });

  // Cut CONTENT is schedule-independent: the overlap-spanning capture in
  // pipelined mode must produce the exact bytes the strict schedule logs.
  ASSERT_EQ(pipe_cuts.size(), strict_cuts.size());
  for (std::size_t e = 0; e < strict_cuts.size(); ++e) {
    EXPECT_EQ(pipe_cuts[e].rng_state, strict_cuts[e].rng_state) << "cut " << e;
    EXPECT_EQ(pipe_cuts[e].flow, strict_cuts[e].flow) << "cut " << e;
    EXPECT_EQ(pipe_cuts[e].client_paths, strict_cuts[e].client_paths)
        << "cut " << e;
    EXPECT_TRUE(pipe_cuts[e].route_hist == strict_cuts[e].route_hist)
        << "cut " << e;
    EXPECT_EQ(telemetry_digest(std::span(&pipe_cuts[e].summary, 1)),
              telemetry_digest(std::span(&strict_cuts[e].summary, 1)))
        << "cut " << e;
  }
}

TEST(Resume, PipelinedKillAtEveryCutPointResumesBitIdentically) {
  SingleRun fixture;
  fixture.options.pipeline = true;
  std::vector<EngineCheckpoint> cuts;
  const RouteServerResult full =
      fixture.run([&cuts](const EngineCheckpoint& c) { cuts.push_back(c); });
  ASSERT_EQ(cuts.size(), fixture.options.epochs);
  const std::uint64_t golden = telemetry_digest(full.epochs);

  // The pinnable property: pipelined digest == strict 1-thread digest.
  SingleRun strict;
  ASSERT_EQ(telemetry_digest(strict.run().epochs), golden);

  for (std::size_t k = 0; k <= cuts.size(); ++k) {
    // Resume under the pipelined schedule...
    const RouteServerResult resumed =
        fixture.run(nullptr, std::span(cuts).subspan(0, k));
    EXPECT_EQ(telemetry_digest(resumed.epochs), golden) << "cut " << k;
    EXPECT_TRUE(resumed.route_latency == full.route_latency) << "cut " << k;
    EXPECT_EQ(resumed.total_queries, full.total_queries) << "cut " << k;
    // ...and under the strict one: a cut restores into either schedule.
    SingleRun strict_resume;
    EXPECT_EQ(telemetry_digest(
                  strict_resume.run(nullptr, std::span(cuts).subspan(0, k))
                      .epochs),
              golden)
        << "cut " << k;
  }
}

TEST(WalLog, PipelinedKilledAtAnyByteResumesToTheSameDigest) {
  SingleRun fixture;
  fixture.options.pipeline = true;
  recovery::RunManifest manifest = fixture.manifest();
  manifest.pipeline = true;
  const std::string clean_path = temp_path("pipekillbytes.wal");
  std::uint64_t golden = 0;
  {
    recovery::WalLog log(clean_path, manifest);
    golden = telemetry_digest(fixture.run(log.single_observer()).epochs);
    log.finish();
  }
  // Strict cross-check: the pipelined WAL describes the strict dynamics.
  SingleRun strict;
  ASSERT_EQ(telemetry_digest(strict.run().epochs), golden);

  const std::string clean = read_file(clean_path);
  const recovery::WalScan scan = recovery::scan_wal(clean_path);
  std::vector<std::size_t> prefixes;
  for (std::size_t i = 0; i + 1 < scan.records.size(); ++i) {
    prefixes.push_back(scan.records[i].end_offset);      // boundary
    prefixes.push_back(scan.records[i].end_offset + 5);  // torn mid-record
  }
  const std::string crash_path = temp_path("pipekillbytes_crash.wal");
  for (const std::size_t keep : prefixes) {
    write_file(crash_path, clean.substr(0, keep));
    // The header's pipeline flag survives every crash image...
    const recovery::RecoveredRun probe = recovery::recover_wal(crash_path);
    EXPECT_TRUE(probe.manifest.pipeline) << "killed at byte " << keep;
    // ...and the resumed run, honoring it, lands on the same digest.
    SingleRun resumed_fixture;
    resumed_fixture.options.pipeline = true;
    EXPECT_EQ(resume_single_to_completion(crash_path, resumed_fixture),
              golden)
        << "killed at byte " << keep;
    const recovery::RecoveredRun healed = recovery::recover_wal(crash_path);
    EXPECT_TRUE(healed.clean_shutdown) << "killed at byte " << keep;
    EXPECT_EQ(healed.digests[0], golden) << "killed at byte " << keep;
  }
}

TEST(PipelinedFallback, FeedbackWorkloadServesStrictAndBumpsCounter) {
  trace::Counter& fallbacks =
      trace::MetricsRegistry::global().counter("engine.pipeline_fallbacks");

  SingleRun strict;
  strict.workload = make_workload("closed-loop-lat:400,0.01");
  strict.options.epochs = 4;
  const std::uint64_t golden = telemetry_digest(strict.run().epochs);
  const std::uint64_t before = fallbacks.load();

  // Same feedback workload with --pipeline: the engine must fall back to
  // the strict schedule (identical telemetry), count the fallback, and
  // announce it through the host's notice sink — exactly once, and only
  // there (library code never prints itself; no sink = counter only).
  SingleRun pipelined;
  pipelined.workload = make_workload("closed-loop-lat:400,0.01");
  pipelined.options.epochs = 4;
  pipelined.options.pipeline = true;
  std::vector<std::string> notices;
  pipelined.options.notice = [&notices](const std::string& message) {
    notices.push_back(message);
  };
  EXPECT_EQ(telemetry_digest(pipelined.run().epochs), golden);
  EXPECT_EQ(fallbacks.load(), before + 1);
  ASSERT_EQ(notices.size(), 1u);
  EXPECT_NE(notices[0].find("pipeline disabled for feedback workload"),
            std::string::npos);
  EXPECT_NE(notices[0].find("closed-loop-lat"), std::string::npos);
}

TEST(ResumeDeathTest, PipelinedResumeOfCrashFaultRunMakesProgress) {
  // A run under --faults "crash:at=4" _Exit(137)s right after commit
  // point 4 hits the WAL, and the resumed process re-materializes the
  // SAME schedule from the logged spec — crash_after is stateless. The
  // host's crash check must therefore fire only on iterations that
  // committed NEW progress: a pipelined resume's priming iteration
  // closes no epoch, so re-evaluating the clause at the restored count
  // there would re-crash every resume at commit point 4 with zero new
  // progress — an unrecoverable loop. Run the resume in a death-test
  // child so a regression shows up as exit 137, not a dead test binary.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";

  SingleRun fixture;
  fixture.options.pipeline = true;
  std::vector<EngineCheckpoint> cuts;
  const std::uint64_t golden = telemetry_digest(
      fixture.run([&cuts](const EngineCheckpoint& c) { cuts.push_back(c); })
          .epochs);
  ASSERT_GT(cuts.size(), 4u);

  EXPECT_EXIT(
      {
        const faults::FaultSchedule schedule =
            faults::FaultSchedule::materialize(
                faults::parse_fault_plan("crash:at=4"),
                fixture.options.seed, fixture.options.epochs);
        // The crash image: 4 committed cuts, same spec, pipelined.
        SingleRun resumed;
        resumed.options.pipeline = true;
        resumed.options.faults = &schedule;
        const RouteServerResult result =
            resumed.run(nullptr, std::span(cuts).subspan(0, 4));
        std::_Exit(telemetry_digest(result.epochs) == golden ? 0 : 1);
      },
      ::testing::ExitedWithCode(0), "");
}

TEST(RecoverWal, RejectsHeaderlessWal) {
  const std::string path = temp_path("headerless.wal");
  { recovery::WalWriter::create(path); }  // magic only, no records
  EXPECT_THROW(recovery::recover_wal(path), std::runtime_error);
}

// ------------------------------------- single-server == one-tenant WAL

TEST(WalProtocol, SingleServerMatchesOneTenantRegistryRecordForRecord) {
  SingleRun fixture;
  const std::string single_path = temp_path("proto_single.wal");
  {
    recovery::WalLog log(single_path, fixture.manifest());
    fixture.run(log.single_observer());
    log.finish();
  }

  const std::string tenant_path = temp_path("proto_tenant.wal");
  {
    recovery::RunManifest manifest = fixture.manifest();
    manifest.multi_tenant = true;
    manifest.tenants[0].name = "solo";
    recovery::WalLog log(tenant_path, manifest);
    TenantRegistry registry;
    TenantOptions options;
    options.server = fixture.options;
    registry.add("solo", fixture.instance, fixture.policy, *fixture.workload,
                 options);
    Executor executor(1);
    registry.run(executor, nullptr, log.round_observer());
    log.finish();
  }

  const recovery::WalScan single = recovery::scan_wal(single_path);
  const recovery::WalScan tenant = recovery::scan_wal(tenant_path);
  ASSERT_EQ(single.records.size(), tenant.records.size());
  // Headers differ (multi-tenant flag, tenant name); every record after
  // them — cuts, round marks, trailer — must be byte-identical.
  for (std::size_t i = 1; i < single.records.size(); ++i) {
    EXPECT_EQ(single.records[i].type, tenant.records[i].type) << "rec " << i;
    EXPECT_EQ(single.records[i].payload, tenant.records[i].payload)
        << "record " << i << " differs";
  }
}

// --------------------------------------------------- multi-tenant WAL

/// Three heterogeneous tenants with different weights, budgets and
/// scenarios — the interleaving actually exercises the round protocol.
struct MultiRun {
  Instance braess_instance = braess(true);
  Instance links = uniform_parallel_links(8, 0.5, 1.0);
  Policy braess_policy = named_policy("replicator").make(braess_instance, 0.1);
  Policy links_policy = named_policy("replicator").make(links, 0.1);
  WorkloadPtr workload_a = make_workload("closed-loop:800");
  WorkloadPtr workload_b = make_workload("closed-loop:400");
  WorkloadPtr workload_c = make_workload("closed-loop:300");
  TenantOptions options_a;
  TenantOptions options_b;
  TenantOptions options_c;
  bool pipeline = false;

  MultiRun() {
    options_a.server.update_period = 0.1;
    options_a.server.epochs = 6;
    options_a.server.num_clients = 400;
    options_a.server.shards = 2;
    options_a.server.seed = 5;
    options_a.server.record_latency = false;
    options_a.weight = 2;

    options_b.server = options_a.server;
    options_b.server.epochs = 4;
    options_b.server.num_clients = 200;
    options_b.server.seed = 9;
    options_b.weight = 1;

    options_c.server = options_a.server;
    options_c.server.epochs = 5;
    options_c.server.num_clients = 250;
    options_c.server.seed = 13;
    options_c.weight = 1;
  }

  /// Switches every tenant to the pipelined schedule (the registry
  /// pipelines per engine; the manifest records the run-level flag).
  void enable_pipeline() {
    pipeline = true;
    options_a.server.pipeline = true;
    options_b.server.pipeline = true;
    options_c.server.pipeline = true;
  }

  void add_tenants(TenantRegistry& registry) const {
    registry.add("alpha", braess_instance, braess_policy, *workload_a,
                 options_a);
    registry.add("beta", links, links_policy, *workload_b, options_b);
    registry.add("gamma", braess_instance, braess_policy, *workload_c,
                 options_c);
  }

  recovery::RunManifest manifest() const {
    recovery::RunManifest m;
    m.multi_tenant = true;
    m.pipeline = pipeline;
    recovery::TenantManifest alpha;
    alpha.name = "alpha";
    alpha.scenario = "braess";
    alpha.policy = "replicator";
    alpha.workload = "closed-loop:800";
    alpha.options = options_a.server;
    alpha.weight = options_a.weight;
    recovery::TenantManifest beta;
    beta.name = "beta";
    beta.scenario = "uniform-links-8";
    beta.policy = "replicator";
    beta.workload = "closed-loop:400";
    beta.options = options_b.server;
    beta.weight = options_b.weight;
    recovery::TenantManifest gamma;
    gamma.name = "gamma";
    gamma.scenario = "braess";
    gamma.policy = "replicator";
    gamma.workload = "closed-loop:300";
    gamma.options = options_c.server;
    gamma.weight = options_c.weight;
    m.tenants.push_back(std::move(alpha));
    m.tenants.push_back(std::move(beta));
    m.tenants.push_back(std::move(gamma));
    return m;
  }

  MultiTenantResult run(const RoundCutObserver& rounds = nullptr,
                        const RegistryResume* resume = nullptr) const {
    TenantRegistry registry;
    add_tenants(registry);
    Executor executor(1);
    return registry.run(executor, nullptr, rounds, resume);
  }
};

std::vector<std::uint64_t> tenant_digests(const MultiTenantResult& result) {
  std::vector<std::uint64_t> digests;
  for (const TenantResult& tenant : result.tenants) {
    digests.push_back(telemetry_digest(tenant.server.epochs));
  }
  return digests;
}

TEST(WalLog, MultiTenantKilledMidRunResumesBitIdentically) {
  MultiRun fixture;
  const std::string path = temp_path("multi.wal");
  std::vector<std::uint64_t> golden;
  {
    recovery::WalLog log(path, fixture.manifest());
    golden = tenant_digests(fixture.run(log.round_observer()));
    log.finish();
  }

  // Sanity: the clean WAL recovers to a finished run with those digests.
  const recovery::RecoveredRun clean = recovery::recover_wal(path);
  EXPECT_TRUE(clean.clean_shutdown);
  EXPECT_EQ(clean.digests, golden);
  EXPECT_EQ(clean.manifest.tenants[0].weight, 2u);

  // Kill the run at several byte offsets (including mid-record) and
  // resume each crash image: per-tenant digests must match, and every
  // tenant picks up at a scheduler-round boundary (committed cuts only).
  const std::string bytes = read_file(path);
  const recovery::WalScan scan = recovery::scan_wal(path);
  const std::string crash_path = temp_path("multi_crash.wal");
  for (std::size_t i = 0; i + 1 < scan.records.size(); i += 2) {
    for (const std::size_t keep :
         {scan.records[i].end_offset, scan.records[i].end_offset + 7}) {
      write_file(crash_path, bytes.substr(0, keep));
      const recovery::RecoveredRun state = recovery::recover_wal(crash_path);
      ASSERT_FALSE(state.clean_shutdown);
      recovery::WalLog log(crash_path, state);
      const RegistryResume resume = recovery::registry_resume(state);
      const MultiTenantResult resumed =
          fixture.run(log.round_observer(), &resume);
      log.finish();
      EXPECT_EQ(tenant_digests(resumed), golden) << "killed at byte " << keep;

      const recovery::RecoveredRun healed = recovery::recover_wal(crash_path);
      EXPECT_TRUE(healed.clean_shutdown) << "killed at byte " << keep;
      EXPECT_EQ(healed.digests, golden) << "killed at byte " << keep;
    }
  }
}

TEST(WalLog, PipelinedThreeTenantsKilledMidRunResumeBitIdentically) {
  // Strict reference digests first: the pipelined run, every crash image,
  // and every resumed run must all land on exactly these.
  MultiRun strict;
  const std::vector<std::uint64_t> golden = tenant_digests(strict.run());

  MultiRun fixture;
  fixture.enable_pipeline();
  const std::string path = temp_path("multipipe.wal");
  {
    recovery::WalLog log(path, fixture.manifest());
    EXPECT_EQ(tenant_digests(fixture.run(log.round_observer())), golden);
    log.finish();
  }

  const std::string bytes = read_file(path);
  const recovery::WalScan scan = recovery::scan_wal(path);
  const std::string crash_path = temp_path("multipipe_crash.wal");
  for (std::size_t i = 0; i + 1 < scan.records.size(); i += 2) {
    for (const std::size_t keep :
         {scan.records[i].end_offset, scan.records[i].end_offset + 7}) {
      write_file(crash_path, bytes.substr(0, keep));
      const recovery::RecoveredRun state = recovery::recover_wal(crash_path);
      ASSERT_FALSE(state.clean_shutdown);
      EXPECT_TRUE(state.manifest.pipeline) << "killed at byte " << keep;
      recovery::WalLog log(crash_path, state);
      const RegistryResume resume = recovery::registry_resume(state);
      MultiRun resumed_fixture;
      resumed_fixture.enable_pipeline();
      const MultiTenantResult resumed =
          resumed_fixture.run(log.round_observer(), &resume);
      log.finish();
      EXPECT_EQ(tenant_digests(resumed), golden) << "killed at byte " << keep;

      const recovery::RecoveredRun healed = recovery::recover_wal(crash_path);
      EXPECT_TRUE(healed.clean_shutdown) << "killed at byte " << keep;
      EXPECT_EQ(healed.digests, golden) << "killed at byte " << keep;
    }
  }
}

// ------------------------------------------- WAL header version skew

TEST(WalHeader, V3RecordsPipelineAndReadsV2) {
  SingleRun fixture;
  recovery::RunManifest manifest = fixture.manifest();
  manifest.pipeline = true;
  const std::string v3 = recovery::encode_run_header(manifest);

  // Wire layout under test: u32 version (LE), u8 multi_tenant, u8
  // pipeline — the pipeline byte is exactly what v3 added.
  binio::Reader head(v3);
  ASSERT_EQ(recovery::kWalVersion, 3u);
  EXPECT_EQ(head.u32(), recovery::kWalVersion);
  EXPECT_EQ(head.u8(), 0u);  // multi_tenant
  EXPECT_EQ(head.u8(), 1u);  // pipeline

  const recovery::RunManifest decoded = recovery::decode_run_header(v3);
  EXPECT_TRUE(decoded.pipeline);
  ASSERT_EQ(decoded.tenants.size(), 1u);
  EXPECT_EQ(decoded.tenants[0].options.epochs, fixture.options.epochs);

  // A v2 header is the same payload minus the pipeline byte. Splice it
  // out and patch the version word: a v3 reader must accept it and
  // default pipeline off — every pre-existing WAL stays resumable.
  std::string v2 = v3;
  v2.erase(5, 1);
  v2[0] = 2;
  const recovery::RunManifest old = recovery::decode_run_header(v2);
  EXPECT_FALSE(old.pipeline);
  ASSERT_EQ(old.tenants.size(), 1u);
  EXPECT_EQ(old.tenants[0].scenario, "braess");
  EXPECT_EQ(old.tenants[0].workload, "closed-loop:800");
  EXPECT_EQ(old.tenants[0].options.epochs, fixture.options.epochs);
  EXPECT_EQ(old.tenants[0].options.seed, fixture.options.seed);

  // An unknown version fails closed. This is also how the OTHER side of
  // the skew behaves: a v2 reader's version check rejects anything but
  // its own version, so a v3 WAL never half-decodes on an old build.
  std::string v4 = v3;
  v4[0] = 4;
  EXPECT_THROW(recovery::decode_run_header(v4), std::runtime_error);
}

// ------------------------------------------------- CLI recovery flags

const std::set<std::string> kConfigKeys = {
    "scenario", "policy", "workload", "tenants",   "period",       "epochs",
    "clients",  "shards", "seed",     "sub-batch", "deterministic"};

TEST(RecoveryFlags, WalAndResumeAreMutuallyExclusive) {
  cli::RecoveryFlags flags;
  flags.wal = "a.wal";
  flags.resume = "b.wal";
  EXPECT_THROW(cli::validate_recovery_flags(flags, {}, kConfigKeys),
               cli::UsageError);
}

TEST(RecoveryFlags, ResumeConflictsWithConfigFlags) {
  const std::string path = temp_path("flags_ok.wal");
  write_file(path, "exists");
  cli::RecoveryFlags flags;
  flags.resume = path;
  const std::map<std::string, std::string> with_seed = {{"resume", path},
                                                        {"seed", "7"}};
  EXPECT_THROW(cli::validate_recovery_flags(flags, with_seed, kConfigKeys),
               cli::UsageError);
  const std::map<std::string, std::string> with_epochs = {{"resume", path},
                                                          {"epochs", "9"}};
  EXPECT_THROW(cli::validate_recovery_flags(flags, with_epochs, kConfigKeys),
               cli::UsageError);
}

TEST(RecoveryFlags, RuntimeKnobsStayLegalWithResume) {
  const std::string path = temp_path("flags_runtime.wal");
  write_file(path, "exists");
  cli::RecoveryFlags flags;
  flags.resume = path;
  const std::map<std::string, std::string> runtime = {
      {"resume", path}, {"threads", "4"}, {"csv", "out.csv"}, {"quiet", "1"}};
  EXPECT_NO_THROW(cli::validate_recovery_flags(flags, runtime, kConfigKeys));
}

TEST(RecoveryFlags, ResumeRequiresReadableFile) {
  cli::RecoveryFlags flags;
  flags.resume = temp_path("definitely_missing.wal");
  EXPECT_THROW(cli::validate_recovery_flags(flags, {}, kConfigKeys),
               cli::UsageError);
}

TEST(RecoveryFlags, WalRequiresWritablePath) {
  cli::RecoveryFlags flags;
  flags.wal = "/nonexistent_dir_for_staleflow_tests/x.wal";
  EXPECT_THROW(cli::validate_recovery_flags(flags, {}, kConfigKeys),
               cli::UsageError);
}

}  // namespace
}  // namespace staleflow
