// Robustness and degenerate-case tests: single-path commodities, shared
// edges, extreme parameters, and randomized cross-validation of the
// shortest-path algorithms.
#include <gtest/gtest.h>

#include <cmath>

#include "staleflow/staleflow.h"

namespace staleflow {
namespace {

/// A commodity with exactly one admissible path: every dynamics must be
/// stationary on it.
Instance single_path_instance() {
  Graph g(3);
  const EdgeId e01 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e12 = g.add_edge(VertexId{1}, VertexId{2});
  InstanceBuilder b(std::move(g));
  b.set_latency(e01, affine(0.5, 1.0));
  b.set_latency(e12, linear(2.0));
  b.add_commodity(VertexId{0}, VertexId{2}, 1.0);
  return std::move(b).build();
}

TEST(Degenerate, SinglePathIsAlwaysAtEquilibrium) {
  const Instance inst = single_path_instance();
  ASSERT_EQ(inst.path_count(), 1u);
  const FlowVector f = FlowVector::uniform(inst);
  EXPECT_DOUBLE_EQ(wardrop_gap(inst, f.values()), 0.0);
  EXPECT_TRUE(is_delta_eps_equilibrium(inst, f.values(), 0.01, 0.01));

  const FrankWolfeResult eq = solve_equilibrium(inst);
  EXPECT_TRUE(eq.converged);
  EXPECT_EQ(eq.iterations, 0u);
}

TEST(Degenerate, DynamicsStationaryOnSinglePath) {
  const Instance inst = single_path_instance();
  const Policy policy = make_uniform_linear_policy(inst);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = 0.5;
  options.horizon = 5.0;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_DOUBLE_EQ(result.final_flow[PathId{0}], 1.0);
  EXPECT_DOUBLE_EQ(result.final_gap, 0.0);

  const BestResponseSimulator br(inst);
  BestResponseOptions br_options;
  br_options.update_period = 0.5;
  br_options.horizon = 5.0;
  const SimulationResult br_result =
      br.run(FlowVector::uniform(inst), br_options);
  EXPECT_DOUBLE_EQ(br_result.final_flow[PathId{0}], 1.0);
}

TEST(Degenerate, ZeroLatencyNetwork) {
  // All-zero latencies: everything is an equilibrium; dynamics must not
  // divide by zero anywhere.
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, constant(0.0));
  b.set_latency(e2, constant(0.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  const Instance inst = std::move(b).build();

  EXPECT_DOUBLE_EQ(inst.max_latency(), 0.0);
  const FlowVector f(inst, {0.3, 0.7});
  EXPECT_DOUBLE_EQ(wardrop_gap(inst, f.values()), 0.0);

  // Relative-slack handles l_P = 0 without dividing by zero.
  const Policy policy = make_relative_slack_policy(0.0);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = 0.5;
  options.horizon = 2.0;
  const SimulationResult result = sim.run(f, options);
  EXPECT_DOUBLE_EQ(result.final_flow[PathId{0}], 0.3);
}

TEST(Robustness, HugeBetaStillConverges) {
  const Instance inst = two_link_pulse(1e4);
  const Policy policy = make_uniform_linear_policy(inst);
  const double T = inst.safe_update_period(*policy.smoothness());
  // For the pulse family l_max = beta/2, so the linear rule's alpha
  // shrinks exactly as beta grows and T_safe = l_max/(4*D*beta) = 1/8
  // independent of beta.
  EXPECT_DOUBLE_EQ(T, 0.125);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = T;
  options.horizon = 50.0;
  options.stop_gap = 1e-8;
  const SimulationResult result =
      sim.run(FlowVector(inst, {0.6, 0.4}), options);
  EXPECT_LT(result.final_gap, 1e-3);
}

TEST(Robustness, TinyDemandCommodity) {
  // 1e-6 of the demand on commodity 2: everything stays finite and
  // feasible, and the tiny commodity still equilibrates.
  Graph g(2);
  const EdgeId e1 = g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId e2 = g.add_edge(VertexId{0}, VertexId{1});
  InstanceBuilder b(std::move(g));
  b.set_latency(e1, linear(1.0));
  b.set_latency(e2, affine(0.1, 1.0));
  b.add_commodity(VertexId{0}, VertexId{1}, 1.0);
  b.add_commodity(VertexId{0}, VertexId{1}, 1e-6);
  const Instance inst = std::move(b).build();
  const FrankWolfeResult eq = solve_equilibrium(inst);
  EXPECT_TRUE(eq.converged);
  EXPECT_TRUE(is_feasible(inst, eq.flow.values(), 1e-12));
}

TEST(Robustness, SharedEdgesAcrossCommodities) {
  // Both commodities cross the same middle edge: the latency coupling
  // must show up in both commodities' path latencies.
  const Instance inst = shared_bottleneck(0.5);
  std::vector<double> all_on_bottleneck(inst.path_count(), 0.0);
  for (std::size_t c = 0; c < inst.commodity_count(); ++c) {
    const Commodity& commodity = inst.commodity(CommodityId{c});
    // The first enumerated path of each commodity routes via the hub.
    for (const PathId p : commodity.paths) {
      if (inst.path(p).length() == 2) {
        all_on_bottleneck[p.index()] = commodity.demand;
        break;
      }
    }
  }
  ASSERT_TRUE(is_feasible(inst, all_on_bottleneck, 1e-12));
  const FlowEvaluation eval = evaluate(inst, all_on_bottleneck);
  // Bottleneck carries the full unit of demand; latency 2.0 * 1.
  bool found_shared = false;
  for (std::size_t e = 0; e < inst.edge_count(); ++e) {
    if (eval.edge_flow[e] > 0.99) {
      found_shared = true;
      EXPECT_NEAR(eval.edge_latency[e], 2.0, 1e-12);
    }
  }
  EXPECT_TRUE(found_shared);
}

TEST(Robustness, LongSimulationNumericallyStable) {
  // 10^4 phases: feasibility and the potential's floor must survive.
  const Instance inst = braess(true);
  const Policy policy = make_replicator_policy(inst, 0.01);
  const double phi_star = optimal_potential(inst);
  const FluidSimulator sim(inst, policy);
  SimulationOptions options;
  options.update_period = 0.05;
  options.horizon = 500.0;
  const SimulationResult result = sim.run(FlowVector::uniform(inst), options);
  EXPECT_TRUE(is_feasible(inst, result.final_flow.values(), 1e-9));
  EXPECT_GE(result.final_potential, phi_star - 1e-9);
}

// ---------------------------------------------- shortest-path cross check

class ShortestPathSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShortestPathSweep, DijkstraMatchesBellmanFordOnRandomGraphs) {
  Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  const std::size_t n = 12;
  Graph g(n);
  std::vector<double> weights;
  // Random sparse digraph with non-negative weights.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.25)) {
        g.add_edge(VertexId{i}, VertexId{j});
        weights.push_back(rng.uniform(0.0, 10.0));
      }
    }
  }
  const ShortestPathTree dj = dijkstra(g, VertexId{0}, weights);
  const ShortestPathTree bf = bellman_ford(g, VertexId{0}, weights);
  for (std::size_t v = 0; v < n; ++v) {
    if (dj.dist[v] == ShortestPathTree::kInfinity) {
      EXPECT_EQ(bf.dist[v], ShortestPathTree::kInfinity);
    } else {
      EXPECT_NEAR(dj.dist[v], bf.dist[v], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShortestPathSweep, ::testing::Range(0, 10));

TEST(ShortestPathConsistency, TreeDistancesMatchExtractedPaths) {
  Rng rng(2024);
  const std::size_t n = 10;
  Graph g(n);
  std::vector<double> weights;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(VertexId{i}, VertexId{i + 1});
    weights.push_back(rng.uniform(0.1, 1.0));
    if (i + 2 < n) {
      g.add_edge(VertexId{i}, VertexId{i + 2});
      weights.push_back(rng.uniform(0.1, 2.0));
    }
  }
  const ShortestPathTree tree = dijkstra(g, VertexId{0}, weights);
  for (std::size_t v = 1; v < n; ++v) {
    const auto path = extract_path(tree, g, VertexId{0}, VertexId{v});
    ASSERT_TRUE(path.has_value());
    double total = 0.0;
    for (const EdgeId e : *path) total += weights[e.index()];
    EXPECT_NEAR(total, tree.dist[v], 1e-12);
  }
}

// ---------------------------------------------------- serialisation round 2

TEST(Robustness, SerialisationOfGeneratedFamilies) {
  Rng rng(9);
  const Instance sp = series_parallel(2, rng);
  const Instance sp2 = parse_instance(serialize_instance(sp));
  EXPECT_EQ(sp2.path_count(), sp.path_count());
  const Instance cb = chained_braess(2);
  const Instance cb2 = parse_instance(serialize_instance(cb));
  EXPECT_EQ(cb2.path_count(), cb.path_count());
  EXPECT_NEAR(optimal_potential(cb2), optimal_potential(cb), 1e-9);
}

}  // namespace
}  // namespace staleflow
